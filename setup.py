"""Setup shim: enables legacy editable installs (``python setup.py develop``)
in offline environments that lack the ``wheel`` package required by PEP-660
editable installs. All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
