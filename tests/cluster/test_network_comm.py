"""Tests for the link model and the simulated communicator."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, LinkModel, NodeSpec
from repro.comm import SimCommunicator
from repro.util.errors import SimulationError


class TestLinkModel:
    def test_zero_bytes_is_free(self):
        assert LinkModel().transfer_time(0, 100, 100) == 0.0

    def test_alpha_beta(self):
        link = LinkModel(latency_s=1e-3)
        # 100 Mbit/s = 12.5 MB/s; 12.5 MB should take ~1 s + latency.
        t = link.transfer_time(12.5e6, 100, 100)
        assert t == pytest.approx(1.0 + 1e-3)

    def test_slower_endpoint_throttles(self):
        link = LinkModel(latency_s=0.0)
        t_fast = link.transfer_time(1e6, 100, 100)
        t_mixed = link.transfer_time(1e6, 100, 10)
        assert t_mixed == pytest.approx(10 * t_fast)

    def test_contention_scales(self):
        base = LinkModel(latency_s=0.0)
        contended = LinkModel(latency_s=0.0, contention_factor=2.0)
        assert contended.transfer_time(1e6, 100, 100) == pytest.approx(
            2 * base.transfer_time(1e6, 100, 100)
        )

    def test_guards(self):
        with pytest.raises(SimulationError):
            LinkModel(latency_s=-1.0)
        with pytest.raises(SimulationError):
            LinkModel(contention_factor=0.5)
        with pytest.raises(SimulationError):
            LinkModel().transfer_time(-1, 100, 100)
        with pytest.raises(SimulationError):
            LinkModel().transfer_time(10, 0, 100)


class TestSimCommunicator:
    def test_self_message_free(self):
        comm = SimCommunicator(Cluster.homogeneous(2))
        assert comm.p2p_time(0, 0, 1e6) == 0.0

    def test_p2p_records_stats(self):
        comm = SimCommunicator(Cluster.homogeneous(2))
        t = comm.p2p_time(0, 1, 1e6)
        assert t > 0
        assert comm.stats.messages == 1
        assert comm.stats.bytes_sent == 1_000_000
        assert comm.stats.per_pair_bytes[(0, 1)] == 1_000_000

    def test_rank_guard(self):
        comm = SimCommunicator(Cluster.homogeneous(2))
        with pytest.raises(SimulationError):
            comm.p2p_time(0, 5, 10)

    def test_exchange_busy_times(self):
        comm = SimCommunicator(Cluster.homogeneous(3))
        busy = comm.exchange_time({(0, 1): 1e6, (1, 2): 1e6})
        # Rank 1 both receives and sends -> busiest.
        assert busy[1] == pytest.approx(busy[0] + busy[2])
        assert busy.shape == (3,)

    def test_allreduce_scales_with_log_p(self):
        t2 = SimCommunicator(Cluster.homogeneous(2)).allreduce_time(1e4)
        t8 = SimCommunicator(Cluster.homogeneous(8)).allreduce_time(1e4)
        assert t8 == pytest.approx(3 * t2)

    def test_allreduce_single_rank_free(self):
        assert SimCommunicator(Cluster.homogeneous(1)).allreduce_time(1e6) == 0.0

    def test_migration_time_empty(self):
        comm = SimCommunicator(Cluster.homogeneous(4))
        assert comm.migration_time({}) == 0.0

    def test_migration_time_is_makespan(self):
        comm = SimCommunicator(Cluster.homogeneous(4))
        moved = {(0, 1): int(1e6), (2, 3): int(2e6)}
        t = comm.migration_time(moved)
        # Pair (2,3) carries twice the bytes -> defines the makespan.
        solo = SimCommunicator(Cluster.homogeneous(4)).p2p_time(2, 3, 2e6)
        assert t == pytest.approx(solo)

    def test_slow_nic_node_slows_exchange(self):
        nodes = [
            NodeSpec(name="a"),
            NodeSpec(name="b", bandwidth_mbps=10.0),
        ]
        comm = SimCommunicator(Cluster(nodes))
        fast = SimCommunicator(Cluster.homogeneous(2))
        assert comm.p2p_time(0, 1, 1e6) > fast.p2p_time(0, 1, 1e6)


class TestDegenerateAndFaultedComm:
    """Single-rank collectives, zero-byte messages, dead and derated NICs."""

    def test_zero_byte_message_is_free_but_counted(self):
        cluster = Cluster.homogeneous(2)
        comm = SimCommunicator(cluster)
        assert comm.p2p_time(0, 1, 0) == 0.0
        assert comm.stats.messages == 1
        assert comm.stats.bytes_sent == 0

    def test_zero_byte_collectives_on_single_rank(self):
        comm = SimCommunicator(Cluster.homogeneous(1))
        assert comm.allreduce_time(0) == 0.0
        assert comm.broadcast_time(0) == 0.0
        assert comm.migration_time({}) == 0.0
        assert comm.exchange_time({}).shape == (1,)

    def test_self_message_on_down_node_stays_free(self):
        """rank==rank short-circuits before the liveness check."""
        cluster = Cluster.homogeneous(2)
        cluster.mark_down(0)
        assert SimCommunicator(cluster).p2p_time(0, 0, 1e6) == 0.0

    def test_p2p_with_down_endpoint_raises(self):
        cluster = Cluster.homogeneous(3)
        comm = SimCommunicator(cluster)
        cluster.mark_down(1)
        with pytest.raises(SimulationError, match="down endpoint"):
            comm.p2p_time(0, 1, 1e6)
        with pytest.raises(SimulationError, match="down endpoint"):
            comm.p2p_time(1, 2, 1e6)
        # Live pairs keep working around the dead node.
        assert comm.p2p_time(0, 2, 1e6) > 0.0

    def test_allreduce_shrinks_around_down_nodes(self):
        cluster = Cluster.homogeneous(8)
        comm = SimCommunicator(cluster)
        t8 = comm.allreduce_time(1e4)  # 3 rounds over 8 ranks
        for k in (5, 6, 7, 4):
            cluster.mark_down(k)
        t4 = comm.allreduce_time(1e4)  # 2 rounds over 4 survivors
        assert t4 == pytest.approx(t8 * 2 / 3)
        for k in (0, 1, 2):
            cluster.mark_down(k)
        assert comm.allreduce_time(1e4) == 0.0  # one survivor: free

    def test_degraded_link_slows_exchange_and_recovers(self):
        cluster = Cluster.homogeneous(2)
        comm = SimCommunicator(cluster)
        healthy = comm.p2p_time(0, 1, 1e6)
        cluster.degrade_link(1, 0.1)
        degraded = comm.p2p_time(0, 1, 1e6)
        # The slower (derated) endpoint throttles the transfer.
        assert degraded == pytest.approx(
            cluster.link.transfer_time(1e6, 100.0, 10.0)
        )
        assert degraded > 9 * healthy
        cluster.restore_link(1)
        assert comm.p2p_time(0, 1, 1e6) == pytest.approx(healthy)

    def test_link_degrade_mid_run_changes_prices_at_probe_time(self):
        """Derating applies from the simulated instant it lands."""
        cluster = Cluster.homogeneous(2)
        comm = SimCommunicator(cluster)
        before = comm.p2p_time(0, 1, 1e6, t=0.0)
        cluster.clock.schedule(5.0, lambda _: cluster.degrade_link(0, 0.5))
        cluster.clock.advance_to(10.0)
        after = comm.p2p_time(0, 1, 1e6)
        assert after == pytest.approx(
            cluster.link.transfer_time(1e6, 50.0, 100.0)
        )
        assert after > before


class TestCommTelemetry:
    """Traffic accounting promoted into the tracer (S2 of the profiling PR)."""

    def traced_comm(self, num_nodes=3):
        from repro.telemetry import Tracer

        tracer = Tracer()
        comm = SimCommunicator(Cluster.homogeneous(num_nodes))
        comm.bind_tracer(tracer)
        return comm, tracer

    def test_p2p_increments_counters(self):
        comm, tracer = self.traced_comm(2)
        comm.p2p_time(0, 1, 1e6)
        comm.p2p_time(1, 0, 5e5)
        by_name = {m.name: m for m in tracer.metrics}
        assert by_name["comm.bytes_total"].value == pytest.approx(1.5e6)
        assert by_name["comm.messages_total"].value == 2

    def test_exchange_emits_event_with_pair_detail(self):
        comm, tracer = self.traced_comm(3)
        comm.exchange_time({(0, 1): 1e6, (1, 2): 2e6, (2, 2): 7.0})
        (event,) = [e for e in tracer.events if e.name == "comm.exchange"]
        assert event.attributes["phase"] == "exchange"
        assert event.attributes["bytes"] == pytest.approx(3e6)  # no self-pair
        assert event.attributes["messages"] == 2
        pairs = {(p[0], p[1]): p[2] for p in event.attributes["pairs"]}
        assert pairs == {(0, 1): 1_000_000, (1, 2): 2_000_000}

    def test_exchange_derated_attribution(self):
        from repro.telemetry import Tracer

        cluster = Cluster.homogeneous(2)
        comm = SimCommunicator(cluster)
        tracer = Tracer()
        comm.bind_tracer(tracer)
        cluster.degrade_link(1, 0.5)
        comm.exchange_time({(0, 1): 1e6})
        (event,) = [e for e in tracer.events if e.name == "comm.exchange"]
        assert event.attributes["derated_bytes"] == pytest.approx(1e6)
        src, dst, nbytes, seconds, derated = event.attributes["pairs"][0]
        assert (src, dst, derated) == (0, 1, True)

    def test_collective_timing_histograms(self):
        comm, tracer = self.traced_comm(4)
        comm.allreduce_time(64.0)
        comm.broadcast_time(128.0)
        names = {(m.name, m.labels.get("op")) for m in tracer.metrics}
        assert ("comm.collective_seconds", "allreduce") in names
        assert ("comm.collective_seconds", "broadcast") in names

    def test_phase_seconds_histogram_per_phase(self):
        comm, tracer = self.traced_comm(3)
        comm.exchange_time({(0, 1): 1e6})
        comm.migration_time({(1, 2): 1000})
        labels = {
            m.labels.get("phase")
            for m in tracer.metrics
            if m.name == "comm.phase_seconds"
        }
        assert {"exchange", "migration"} <= labels

    def test_untraced_communicator_stays_silent(self):
        comm = SimCommunicator(Cluster.homogeneous(2))
        comm.p2p_time(0, 1, 1e6)
        comm.exchange_time({(0, 1): 1e6})  # no tracer bound: no error

    def test_per_pair_seconds_and_messages_in_stats(self):
        comm = SimCommunicator(Cluster.homogeneous(2))
        comm.p2p_time(0, 1, 1e6)
        comm.p2p_time(0, 1, 1e6)
        assert comm.stats.per_pair_messages[(0, 1)] == 2
        assert comm.stats.per_pair_seconds[(0, 1)] > 0
