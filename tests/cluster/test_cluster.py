"""Tests for the Cluster facade and its presets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import Cluster, NodeSpec, SyntheticLoadGenerator
from repro.cluster.cluster import OS_BASE_MEMORY_MB
from repro.util.errors import SimulationError


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            Cluster([])

    def test_generator_on_unknown_node_rejected(self):
        with pytest.raises(SimulationError):
            Cluster(
                [NodeSpec(name="n0")],
                load_generators=[SyntheticLoadGenerator(node=3)],
            )

    def test_state_of_unknown_node_rejected(self):
        c = Cluster.homogeneous(2)
        with pytest.raises(SimulationError):
            c.state_of(5)


class TestStateDynamics:
    def test_unloaded_node_state(self):
        c = Cluster.homogeneous(1)
        st = c.state_of(0)
        assert st.cpu_available == pytest.approx(0.97)  # OS overhead
        assert st.free_memory_mb == pytest.approx(512.0 - OS_BASE_MEMORY_MB)
        assert st.bandwidth_mbps == 100.0
        assert st.load_level == 0.0

    def test_load_lowers_cpu_and_memory(self):
        c = Cluster.homogeneous(2)
        c.add_load_generator(
            SyntheticLoadGenerator(
                node=0, ramp_rate=1.0, target_level=1.0, memory_per_unit_mb=100.0
            )
        )
        c.clock.advance(10.0)
        loaded, idle = c.state_of(0), c.state_of(1)
        assert loaded.cpu_available == pytest.approx(0.97 / 2)
        assert loaded.free_memory_mb == pytest.approx(448.0 - 100.0)
        assert idle.cpu_available == pytest.approx(0.97)

    def test_multiple_generators_stack(self):
        c = Cluster.homogeneous(1)
        for target in (0.5, 1.5):
            c.add_load_generator(
                SyntheticLoadGenerator(node=0, ramp_rate=10.0, target_level=target)
            )
        assert c.load_level(0, t=10.0) == pytest.approx(2.0)
        assert c.state_of(0, t=10.0).cpu_available == pytest.approx(0.97 / 3)

    def test_memory_floor_is_zero(self):
        c = Cluster([NodeSpec(name="tiny", memory_mb=80.0)])
        c.add_load_generator(
            SyntheticLoadGenerator(
                node=0, ramp_rate=10.0, target_level=5.0, memory_per_unit_mb=100.0
            )
        )
        assert c.state_of(0, t=10.0).free_memory_mb == 0.0

    def test_state_is_pure_function_of_time(self):
        """Replaying queries at the same t gives identical states."""
        c = Cluster.paper_linux_cluster(8, dynamic=True)
        s1 = c.states(t=123.0)
        c.clock.advance(500.0)
        s2 = c.states(t=123.0)
        assert s1 == s2

    def test_effective_speed_combines_spec_and_load(self):
        c = Cluster([NodeSpec(name="fast", cpu_speed=2.0)])
        c.add_load_generator(
            SyntheticLoadGenerator(node=0, ramp_rate=10.0, target_level=1.0)
        )
        assert c.effective_speed(0, t=10.0) == pytest.approx(2.0 * 0.97 / 2)
        speeds = c.effective_speeds(t=10.0)
        assert speeds.shape == (1,)


class TestPresets:
    def test_homogeneous(self):
        c = Cluster.homogeneous(4)
        assert c.num_nodes == 4
        assert len({n.cpu_speed for n in c.nodes}) == 1

    def test_heterogeneous_replayable(self):
        a = Cluster.heterogeneous(8, seed=3)
        b = Cluster.heterogeneous(8, seed=3)
        assert [n.cpu_speed for n in a.nodes] == [n.cpu_speed for n in b.nodes]
        speeds = {n.cpu_speed for n in a.nodes}
        assert len(speeds) > 1  # actually heterogeneous

    def test_paper_four_node_capacity_targets(self):
        """Equal-weight relative capacities ~ 16/19/31/34 % (section 6.1.3)."""
        c = Cluster.paper_four_node()
        t = 5.0  # ramps plateau within the first second
        states = c.states(t)
        p = np.array([s.cpu_available for s in states])
        m = np.array([s.free_memory_mb for s in states])
        b = np.array([s.bandwidth_mbps for s in states])
        cap = (p / p.sum() + m / m.sum() + b / b.sum()) / 3.0
        np.testing.assert_allclose(cap, [0.16, 0.19, 0.31, 0.34], atol=0.01)
        assert cap.sum() == pytest.approx(1.0)

    def test_paper_linux_cluster_sizes(self):
        c = Cluster.paper_linux_cluster(32)
        assert c.num_nodes == 32
        assert len(c.load_generators) == 16

    def test_paper_linux_cluster_dynamic_changes_over_time(self):
        """Phase 1 nodes are loaded at t=0; after mid-horizon the load has
        moved to the phase 2 nodes."""
        c = Cluster.paper_linux_cluster(8, dynamic=True, seed=1, horizon_s=900.0)
        early = c.effective_speeds(t=0.0)
        late = c.effective_speeds(t=600.0)
        assert not np.allclose(early, late)
        # Some node slowed down and some sped up (the load moved).
        assert (late < early - 0.1).any()
        assert (late > early + 0.1).any()

    def test_paper_linux_cluster_bad_n(self):
        with pytest.raises(SimulationError):
            Cluster.paper_linux_cluster(0)
