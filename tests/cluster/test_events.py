"""Tests for the discrete-event clock."""

from __future__ import annotations

import pytest

from repro.cluster.events import SimClock
from repro.util.errors import SimulationError


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_custom_start(self):
        assert SimClock(start=5.0).now == 5.0

    def test_advance(self):
        c = SimClock()
        c.advance(2.5)
        assert c.now == 2.5
        c.advance_to(10.0)
        assert c.now == 10.0

    def test_no_time_travel(self):
        c = SimClock()
        c.advance(5.0)
        with pytest.raises(SimulationError):
            c.advance(-1.0)
        with pytest.raises(SimulationError):
            c.advance_to(4.0)

    def test_events_fire_in_order(self):
        c = SimClock()
        fired: list[float] = []
        c.schedule(3.0, lambda clk: fired.append(clk.now))
        c.schedule(1.0, lambda clk: fired.append(clk.now))
        c.schedule(2.0, lambda clk: fired.append(clk.now))
        c.advance_to(5.0)
        assert fired == [1.0, 2.0, 3.0]
        assert c.now == 5.0
        assert c.pending_events == 0

    def test_events_beyond_horizon_stay_queued(self):
        c = SimClock()
        fired = []
        c.schedule(10.0, lambda clk: fired.append(clk.now))
        c.advance_to(5.0)
        assert fired == []
        assert c.pending_events == 1
        c.advance_to(10.0)
        assert fired == [10.0]

    def test_equal_time_events_fifo(self):
        c = SimClock()
        order = []
        c.schedule(1.0, lambda clk: order.append("a"))
        c.schedule(1.0, lambda clk: order.append("b"))
        c.advance_to(1.0)
        assert order == ["a", "b"]

    def test_callback_can_schedule_more(self):
        c = SimClock()
        fired = []

        def chain(clk: SimClock) -> None:
            fired.append(clk.now)
            if clk.now < 3.0:
                clk.schedule(clk.now + 1.0, chain)

        c.schedule(1.0, chain)
        c.advance_to(10.0)
        assert fired == [1.0, 2.0, 3.0]

    def test_schedule_in_past_rejected(self):
        c = SimClock()
        c.advance(5.0)
        with pytest.raises(SimulationError):
            c.schedule(4.0, lambda clk: None)
        with pytest.raises(SimulationError):
            c.schedule_in(-1.0, lambda clk: None)

    def test_schedule_in_relative(self):
        c = SimClock()
        c.advance(2.0)
        fired = []
        c.schedule_in(3.0, lambda clk: fired.append(clk.now))
        c.advance(3.0)
        assert fired == [5.0]


class TestReentrantScheduling:
    """Callbacks may schedule() freely; they must never move the clock."""

    def test_callback_schedules_at_current_timestamp(self):
        """A same-timestamp schedule fires later in the same sweep."""
        c = SimClock()
        order = []

        def first(clk: SimClock) -> None:
            order.append("first")
            clk.schedule(clk.now, lambda _: order.append("nested"))

        c.schedule(1.0, first)
        c.schedule(1.0, lambda clk: order.append("second"))
        c.advance_to(1.0)
        # FIFO within the timestamp: the nested event queues behind the
        # already-scheduled "second", not in front of it.
        assert order == ["first", "second", "nested"]
        assert c.pending_events == 0

    def test_nested_same_time_chain_terminates_sweep(self):
        """Each nested schedule at t=now still fires within one advance."""
        c = SimClock()
        fired = []

        def chain(clk: SimClock) -> None:
            fired.append(len(fired))
            if len(fired) < 5:
                clk.schedule(clk.now, chain)

        c.schedule(2.0, chain)
        c.advance_to(2.0)
        assert fired == [0, 1, 2, 3, 4]

    def test_advance_from_callback_raises(self):
        c = SimClock()
        errors = []

        def bad(clk: SimClock) -> None:
            try:
                clk.advance(1.0)
            except SimulationError as exc:
                errors.append(str(exc))

        c.schedule(1.0, bad)
        c.advance_to(2.0)
        assert len(errors) == 1
        assert "re-entrant advance" in errors[0]

    def test_advance_to_from_callback_raises(self):
        c = SimClock()
        with pytest.raises(SimulationError, match="re-entrant advance"):
            c.schedule(1.0, lambda clk: clk.advance_to(5.0))
            c.advance_to(2.0)

    def test_clock_usable_after_reentrancy_error(self):
        """The guard resets: a failed sweep does not wedge the clock."""
        c = SimClock()
        c.schedule(1.0, lambda clk: clk.advance(1.0))
        with pytest.raises(SimulationError):
            c.advance_to(2.0)
        fired = []
        c.schedule(3.0, lambda clk: fired.append(clk.now))
        c.advance_to(4.0)
        assert fired == [3.0]
        assert c.now == 4.0
