"""Tests for node specs, node state and the synthetic load generator."""

from __future__ import annotations

import pytest

from repro.cluster.loadgen import SyntheticLoadGenerator, cpu_share_under_load
from repro.cluster.node import NodeSpec, NodeState
from repro.util.errors import SimulationError


class TestNodeSpec:
    def test_defaults(self):
        s = NodeSpec(name="n0")
        assert s.cpu_speed == 1.0
        assert s.bandwidth_mbps == 100.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"cpu_speed": 0.0},
            {"cpu_speed": -1.0},
            {"memory_mb": 0.0},
            {"bandwidth_mbps": -5.0},
            {"os_overhead": 1.0},
            {"os_overhead": -0.1},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(SimulationError):
            NodeSpec(name="bad", **kwargs)


class TestNodeState:
    def test_effective_speed(self):
        spec = NodeSpec(name="n", cpu_speed=2.0)
        st = NodeState(cpu_available=0.5, free_memory_mb=100, bandwidth_mbps=100)
        assert st.effective_speed(spec) == 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"cpu_available": 1.5, "free_memory_mb": 0, "bandwidth_mbps": 1},
            {"cpu_available": -0.1, "free_memory_mb": 0, "bandwidth_mbps": 1},
            {"cpu_available": 0.5, "free_memory_mb": -1, "bandwidth_mbps": 1},
            {"cpu_available": 0.5, "free_memory_mb": 0, "bandwidth_mbps": -1},
        ],
    )
    def test_invalid_states_rejected(self, kwargs):
        with pytest.raises(SimulationError):
            NodeState(**kwargs)


class TestCpuShare:
    def test_unloaded(self):
        assert cpu_share_under_load(0.0) == 1.0
        assert cpu_share_under_load(0.0, os_overhead=0.03) == 0.97

    def test_unit_load_halves(self):
        assert cpu_share_under_load(1.0) == 0.5

    def test_monotone_decreasing(self):
        shares = [cpu_share_under_load(l) for l in (0, 0.5, 1, 2, 5, 100)]
        assert shares == sorted(shares, reverse=True)
        assert shares[-1] > 0.0

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            cpu_share_under_load(-0.5)


class TestSyntheticLoadGenerator:
    def test_linear_ramp_then_plateau(self):
        g = SyntheticLoadGenerator(
            node=0, start_time=10.0, ramp_rate=0.5, target_level=2.0
        )
        assert g.level_at(0.0) == 0.0
        assert g.level_at(10.0) == 0.0
        assert g.level_at(12.0) == pytest.approx(1.0)
        assert g.level_at(14.0) == pytest.approx(2.0)
        assert g.level_at(100.0) == pytest.approx(2.0)  # plateau

    def test_stop_time_removes_load(self):
        g = SyntheticLoadGenerator(
            node=0, ramp_rate=1.0, target_level=1.0, stop_time=50.0
        )
        assert g.level_at(49.9) == 1.0
        assert g.level_at(50.0) == 0.0
        assert g.level_at(60.0) == 0.0

    def test_memory_tracks_level(self):
        g = SyntheticLoadGenerator(
            node=0, ramp_rate=1.0, target_level=2.0, memory_per_unit_mb=10.0
        )
        assert g.memory_at(1.0) == pytest.approx(10.0)
        assert g.memory_at(5.0) == pytest.approx(20.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"node": -1},
            {"ramp_rate": 0.0},
            {"ramp_rate": -1.0},
            {"target_level": -0.5},
            {"start_time": 10.0, "stop_time": 5.0},
            {"memory_per_unit_mb": -1.0},
        ],
    )
    def test_invalid_generators_rejected(self, kwargs):
        base = {"node": 0}
        base.update(kwargs)
        with pytest.raises(SimulationError):
            SyntheticLoadGenerator(**base)
