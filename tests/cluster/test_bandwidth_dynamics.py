"""Tests for network-load effects on deliverable bandwidth."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, SyntheticLoadGenerator
from repro.comm import SimCommunicator
from repro.monitor import ResourceMonitor
from repro.util.errors import SimulationError


def network_loaded_cluster(fraction: float = 0.6) -> Cluster:
    c = Cluster.homogeneous(2)
    c.add_load_generator(
        SyntheticLoadGenerator(
            node=0,
            ramp_rate=10.0,
            target_level=1.0,
            memory_per_unit_mb=0.0,
            bandwidth_fraction_per_unit=fraction,
        )
    )
    return c


class TestBandwidthLoad:
    def test_consumption_reduces_bandwidth(self):
        c = network_loaded_cluster(0.6)
        assert c.state_of(0, t=5.0).bandwidth_mbps == pytest.approx(40.0)
        assert c.state_of(1, t=5.0).bandwidth_mbps == pytest.approx(100.0)

    def test_floor_at_five_percent(self):
        c = network_loaded_cluster(1.0)
        c.add_load_generator(
            SyntheticLoadGenerator(
                node=0, ramp_rate=10.0, target_level=1.0,
                memory_per_unit_mb=0.0, bandwidth_fraction_per_unit=1.0,
            )
        )
        assert c.state_of(0, t=5.0).bandwidth_mbps == pytest.approx(5.0)

    def test_ramp_applies_to_bandwidth_too(self):
        c = Cluster.homogeneous(1)
        c.add_load_generator(
            SyntheticLoadGenerator(
                node=0, start_time=0.0, ramp_rate=0.1, target_level=1.0,
                bandwidth_fraction_per_unit=0.5,
            )
        )
        early = c.state_of(0, t=1.0).bandwidth_mbps
        late = c.state_of(0, t=10.0).bandwidth_mbps
        assert late < early

    def test_invalid_fraction_rejected(self):
        with pytest.raises(SimulationError):
            SyntheticLoadGenerator(node=0, bandwidth_fraction_per_unit=1.5)
        with pytest.raises(SimulationError):
            SyntheticLoadGenerator(node=0, bandwidth_fraction_per_unit=-0.1)

    def test_transfers_slow_down(self):
        loaded = SimCommunicator(network_loaded_cluster(0.8))
        loaded.cluster.clock.advance(5.0)
        idle = SimCommunicator(Cluster.homogeneous(2))
        assert loaded.p2p_time(0, 1, 1e6) > idle.p2p_time(0, 1, 1e6)

    def test_monitor_sees_reduced_bandwidth(self):
        c = network_loaded_cluster(0.6)
        c.clock.advance(5.0)
        snap = ResourceMonitor(c).probe_all()
        assert snap.bandwidth_mbps[0] == pytest.approx(40.0)
        assert snap.bandwidth_mbps[1] == pytest.approx(100.0)
