"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.util.geometry import Box


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)


def boxes(
    ndim: int | None = None,
    max_coord: int = 64,
    max_side: int = 32,
    max_level: int = 3,
) -> st.SearchStrategy[Box]:
    """Strategy producing valid Boxes of 1-3 dimensions."""

    def build(draw_ndim: int) -> st.SearchStrategy[Box]:
        lowers = st.tuples(
            *[st.integers(0, max_coord) for _ in range(draw_ndim)]
        )
        sides = st.tuples(
            *[st.integers(1, max_side) for _ in range(draw_ndim)]
        )
        lvl = st.integers(0, max_level)
        return st.builds(
            lambda lo, sd, lv: Box(lo, tuple(a + b for a, b in zip(lo, sd)), lv),
            lowers,
            sides,
            lvl,
        )

    if ndim is not None:
        return build(ndim)
    return st.integers(1, 3).flatmap(build)
