"""Tests for the campaign orchestrator: resume, failures, telemetry."""

from __future__ import annotations

import pytest

import repro.campaign.orchestrator as orch
from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    campaign_status,
)
from repro.telemetry.spans import Tracer
from repro.util.errors import CampaignError


def small_spec(**overrides) -> CampaignSpec:
    kwargs = dict(
        name="t",
        scenarios=("paper-four-node",),
        partitioners=("greedy", "heterogeneous"),
        seeds=(1, 2),
        base_config={"iterations": 3},
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


class TestValidation:
    def test_unknown_scenario_rejected_upfront(self, tmp_path):
        spec = small_spec(scenarios=("no-such-scenario",))
        with pytest.raises(CampaignError, match="unknown scenario"):
            CampaignRunner(spec, tmp_path / "c")

    def test_unknown_partitioner_rejected_upfront(self, tmp_path):
        spec = small_spec(partitioners=("no-such-partitioner",))
        with pytest.raises(CampaignError, match="unknown partitioner"):
            CampaignRunner(spec, tmp_path / "c")

    def test_directory_owned_by_other_campaign(self, tmp_path):
        d = tmp_path / "c"
        CampaignRunner(small_spec(), d)
        with pytest.raises(CampaignError, match="belongs to campaign"):
            CampaignRunner(small_spec(seeds=(9,)), d)


class TestRunAndResume:
    def test_full_inline_run(self, tmp_path):
        d = tmp_path / "c"
        result = CampaignRunner(small_spec(), d).run()
        assert result["complete"]
        assert result["executed"] == 4
        assert result["failed"] == 0
        assert (d / "results.jsonl").is_file()
        assert (d / "index.json").is_file()

    def test_max_cells_interrupts_then_resume_skips(self, tmp_path):
        d = tmp_path / "c"
        first = CampaignRunner(small_spec(), d).run(max_cells=3)
        assert not first["complete"]
        assert first["executed"] == 3
        second = CampaignRunner(small_spec(), d).run()
        assert second["complete"]
        assert second["executed"] == 1  # zero completed cells re-executed
        assert second["skipped"] == 3

    def test_resume_of_complete_campaign_is_noop(self, tmp_path):
        d = tmp_path / "c"
        CampaignRunner(small_spec(), d).run()
        again = CampaignRunner(small_spec(), d).run()
        assert again["complete"]
        assert again["executed"] == 0
        assert again["skipped"] == 4

    def test_state_survives_in_checkpoints(self, tmp_path):
        d = tmp_path / "c"
        CampaignRunner(small_spec(), d).run(max_cells=2)
        runner = CampaignRunner(small_spec(), d)
        assert runner.state.num_completed == 2

    def test_pool_mode_completes(self, tmp_path):
        d = tmp_path / "c"
        result = CampaignRunner(small_spec(), d, workers=2).run()
        assert result["complete"]
        assert result["executed"] == 4


class TestFailures:
    def test_failed_cell_recorded_not_stored(self, tmp_path, monkeypatch):
        d = tmp_path / "c"
        real = orch.execute_cell

        def flaky(cell_dict, *args):
            if cell_dict["seed"] == 2:
                raise RuntimeError("injected")
            return real(cell_dict, *args)

        monkeypatch.setattr(orch, "execute_cell", flaky)
        runner = CampaignRunner(small_spec(), d)
        result = runner.run()
        assert result["failed"] == 2
        assert not result["complete"]
        assert runner.state.num_completed == 2
        assert (d / "failures.jsonl").is_file()
        status = campaign_status(d)
        assert len(status["failed"]) == 2
        assert "RuntimeError: injected" in next(
            iter(status["failed"].values())
        )

    def test_failed_cells_retry_on_resume(self, tmp_path, monkeypatch):
        d = tmp_path / "c"

        def broken(cell_dict, *args):
            raise RuntimeError("down")

        monkeypatch.setattr(orch, "execute_cell", broken)
        CampaignRunner(small_spec(), d).run()
        monkeypatch.undo()
        result = CampaignRunner(small_spec(), d).run()
        assert result["complete"]
        assert result["executed"] == 4
        assert not campaign_status(d)["failed"]


class TestTelemetry:
    def test_cell_spans_and_counters(self, tmp_path):
        tracer = Tracer()
        CampaignRunner(small_spec(), tmp_path / "c", tracer=tracer).run()
        spans = list(tracer.spans_named("campaign.cell"))
        assert len(spans) == 4
        assert all(s.attributes["cell_key"] for s in spans)
        assert all(s.sim_duration > 0 for s in spans)
        counters = {
            c.name: c.value
            for c in tracer.metrics
            if c.name.startswith("campaign.cells_")
        }
        assert counters["campaign.cells_completed"] == 4

    def test_started_and_completed_events(self, tmp_path):
        tracer = Tracer()
        CampaignRunner(small_spec(), tmp_path / "c", tracer=tracer).run()
        names = [e.name for e in tracer.events]
        assert "campaign.started" in names
        assert "campaign.completed" in names


class TestStatus:
    def test_status_of_fresh_directory_fails(self, tmp_path):
        with pytest.raises(CampaignError, match="not a campaign directory"):
            campaign_status(tmp_path)

    def test_status_progress(self, tmp_path):
        d = tmp_path / "c"
        CampaignRunner(small_spec(), d).run(max_cells=1)
        status = campaign_status(d)
        assert status["completed"] == 1
        assert status["num_cells"] == 4
        assert not status["complete"]
