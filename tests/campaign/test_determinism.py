"""The campaign acceptance property: byte-identical result stores.

The compacted store must not depend on *how* the campaign was executed:
one worker vs a sharded pool, uninterrupted vs killed-and-resumed.  These
tests compare the canonical ``results.jsonl`` files byte for byte.

The same property extends to the per-cell trace-artifact bundles under
``artifacts/<cell-key>/``: cells run under a zero-wall deterministic
tracer, so every bundle file is a pure function of its cell spec.
"""

from __future__ import annotations

from repro.campaign import ARTIFACTS_DIRNAME, CampaignRunner, CampaignSpec


def spec() -> CampaignSpec:
    return CampaignSpec(
        name="det",
        scenarios=("paper-four-node", "linux-static"),
        partitioners=("greedy", "heterogeneous"),
        seeds=(1, 2),
        base_config={"iterations": 3},
    )


def store_bytes(directory) -> bytes:
    return (directory / "results.jsonl").read_bytes()


def bundle_bytes(directory) -> dict[str, bytes]:
    """Every artifact file, keyed by bundle-relative path."""
    root = directory / ARTIFACTS_DIRNAME
    return {
        str(p.relative_to(root)): p.read_bytes()
        for p in sorted(root.rglob("*"))
        if p.is_file()
    }


class TestWorkerCountInvariance:
    def test_one_vs_eight_workers_byte_identical(self, tmp_path):
        d1, d8 = tmp_path / "w1", tmp_path / "w8"
        assert CampaignRunner(spec(), d1, workers=1).run()["complete"]
        assert CampaignRunner(spec(), d8, workers=8).run()["complete"]
        assert store_bytes(d1) == store_bytes(d8)

    def test_artifact_bundles_byte_identical_across_workers(self, tmp_path):
        d1, d8 = tmp_path / "w1", tmp_path / "w8"
        CampaignRunner(spec(), d1, workers=1).run()
        CampaignRunner(spec(), d8, workers=8).run()
        one, eight = bundle_bytes(d1), bundle_bytes(d8)
        assert one  # one bundle per cell actually written
        assert len({p.split("/")[0] for p in one}) == spec().num_cells
        assert one == eight


class TestInterruptResumeInvariance:
    def test_interrupted_resume_byte_identical(self, tmp_path):
        straight, chopped = tmp_path / "s", tmp_path / "c"
        CampaignRunner(spec(), straight, workers=1).run()
        # Interrupt after every couple of cells; each restart restores
        # the ledger from checkpoints and re-executes nothing done.
        executed = 0
        for _ in range(10):
            result = CampaignRunner(spec(), chopped, workers=1).run(
                max_cells=2
            )
            executed += result["executed"]
            if result["complete"]:
                break
        assert result["complete"]
        assert executed == spec().num_cells  # no cell ever ran twice
        assert store_bytes(straight) == store_bytes(chopped)

    def test_interrupted_pool_resume_byte_identical(self, tmp_path):
        straight, chopped = tmp_path / "s", tmp_path / "c"
        CampaignRunner(spec(), straight, workers=1).run()
        CampaignRunner(spec(), chopped, workers=2).run(max_cells=3)
        result = CampaignRunner(spec(), chopped, workers=2).run()
        assert result["complete"]
        assert result["executed"] == spec().num_cells - 3
        assert store_bytes(straight) == store_bytes(chopped)

    def test_artifact_bundles_byte_identical_after_resume(self, tmp_path):
        straight, chopped = tmp_path / "s", tmp_path / "c"
        CampaignRunner(spec(), straight, workers=1).run()
        CampaignRunner(spec(), chopped, workers=2).run(max_cells=3)
        CampaignRunner(spec(), chopped, workers=2).run()
        assert bundle_bytes(straight) == bundle_bytes(chopped)

    def test_index_identical_too(self, tmp_path):
        d1, d2 = tmp_path / "a", tmp_path / "b"
        CampaignRunner(spec(), d1, workers=1).run()
        CampaignRunner(spec(), d2, workers=1).run(max_cells=5)
        CampaignRunner(spec(), d2, workers=1).run()
        assert (d1 / "index.json").read_bytes() == (
            d2 / "index.json"
        ).read_bytes()
