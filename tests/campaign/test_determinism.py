"""The campaign acceptance property: byte-identical result stores.

The compacted store must not depend on *how* the campaign was executed:
one worker vs a sharded pool, uninterrupted vs killed-and-resumed.  These
tests compare the canonical ``results.jsonl`` files byte for byte.
"""

from __future__ import annotations

from repro.campaign import CampaignRunner, CampaignSpec


def spec() -> CampaignSpec:
    return CampaignSpec(
        name="det",
        scenarios=("paper-four-node", "linux-static"),
        partitioners=("greedy", "heterogeneous"),
        seeds=(1, 2),
        base_config={"iterations": 3},
    )


def store_bytes(directory) -> bytes:
    return (directory / "results.jsonl").read_bytes()


class TestWorkerCountInvariance:
    def test_one_vs_eight_workers_byte_identical(self, tmp_path):
        d1, d8 = tmp_path / "w1", tmp_path / "w8"
        assert CampaignRunner(spec(), d1, workers=1).run()["complete"]
        assert CampaignRunner(spec(), d8, workers=8).run()["complete"]
        assert store_bytes(d1) == store_bytes(d8)


class TestInterruptResumeInvariance:
    def test_interrupted_resume_byte_identical(self, tmp_path):
        straight, chopped = tmp_path / "s", tmp_path / "c"
        CampaignRunner(spec(), straight, workers=1).run()
        # Interrupt after every couple of cells; each restart restores
        # the ledger from checkpoints and re-executes nothing done.
        executed = 0
        for _ in range(10):
            result = CampaignRunner(spec(), chopped, workers=1).run(
                max_cells=2
            )
            executed += result["executed"]
            if result["complete"]:
                break
        assert result["complete"]
        assert executed == spec().num_cells  # no cell ever ran twice
        assert store_bytes(straight) == store_bytes(chopped)

    def test_interrupted_pool_resume_byte_identical(self, tmp_path):
        straight, chopped = tmp_path / "s", tmp_path / "c"
        CampaignRunner(spec(), straight, workers=1).run()
        CampaignRunner(spec(), chopped, workers=2).run(max_cells=3)
        result = CampaignRunner(spec(), chopped, workers=2).run()
        assert result["complete"]
        assert result["executed"] == spec().num_cells - 3
        assert store_bytes(straight) == store_bytes(chopped)

    def test_index_identical_too(self, tmp_path):
        d1, d2 = tmp_path / "a", tmp_path / "b"
        CampaignRunner(spec(), d1, workers=1).run()
        CampaignRunner(spec(), d2, workers=1).run(max_cells=5)
        CampaignRunner(spec(), d2, workers=1).run()
        assert (d1 / "index.json").read_bytes() == (
            d2 / "index.json"
        ).read_bytes()
