"""Tests for the campaign result store: durability, dedup, compaction."""

from __future__ import annotations

import json

import pytest

from repro.campaign.store import ResultStore
from repro.util.errors import CampaignError


def rec(key: str, **extra) -> dict:
    base = {
        "cell_key": key,
        "scenario": "s",
        "partitioner": "p",
        "seed": 1,
        "metrics": {"total_seconds": 1.5},
    }
    base.update(extra)
    return base


class TestAppendAndRead:
    def test_append_then_records(self, tmp_path):
        store = ResultStore(tmp_path)
        store.append(rec("b"))
        store.append(rec("a"))
        assert store.keys() == ["b", "a"]  # log order before compaction

    def test_append_requires_cell_key(self, tmp_path):
        with pytest.raises(CampaignError, match="cell_key"):
            ResultStore(tmp_path).append({"metrics": {}})

    def test_duplicate_keys_deduped(self, tmp_path):
        store = ResultStore(tmp_path)
        store.append(rec("a", seed=1))
        store.append(rec("a", seed=1))
        assert len(store) == 1

    def test_torn_tail_line_skipped(self, tmp_path):
        store = ResultStore(tmp_path)
        store.append(rec("a"))
        with open(store.log_path, "a", encoding="utf-8") as fh:
            fh.write('{"cell_key": "b", "metr')  # crash mid-append
        assert store.keys() == ["a"]

    def test_get_missing_key(self, tmp_path):
        with pytest.raises(CampaignError, match="no result record"):
            ResultStore(tmp_path).get("nope")


class TestCompaction:
    def test_compact_sorts_by_key(self, tmp_path):
        store = ResultStore(tmp_path)
        for key in ("c", "a", "b"):
            store.append(rec(key))
        store.compact()
        assert store.keys() == ["a", "b", "c"]
        assert not store.log_path.exists()

    def test_compact_is_idempotent_bytes(self, tmp_path):
        store = ResultStore(tmp_path)
        for key in ("c", "a", "b"):
            store.append(rec(key))
        store.compact()
        first = store.results_path.read_bytes()
        store.compact()
        assert store.results_path.read_bytes() == first

    def test_index_offsets_resolve_records(self, tmp_path):
        store = ResultStore(tmp_path)
        for key in ("c", "a", "b"):
            store.append(rec(key, seed=ord(key)))
        index = store.compact()
        assert index["num_cells"] == 3
        for key in ("a", "b", "c"):
            record = store.get(key)
            assert record["cell_key"] == key
            assert record["seed"] == ord(key)

    def test_log_appends_after_compaction_still_visible(self, tmp_path):
        store = ResultStore(tmp_path)
        store.append(rec("a"))
        store.compact()
        store.append(rec("b"))
        assert sorted(store.keys()) == ["a", "b"]

    def test_corrupt_index_falls_back_to_scan(self, tmp_path):
        store = ResultStore(tmp_path)
        store.append(rec("a"))
        store.compact()
        store.index_path.write_text("{torn", encoding="utf-8")
        assert store.get("a")["cell_key"] == "a"


class TestServingHelpers:
    def test_signature_changes_on_append(self, tmp_path):
        store = ResultStore(tmp_path)
        before = store.signature()
        store.append(rec("a"))
        assert store.signature() != before

    def test_signature_stable_when_untouched(self, tmp_path):
        store = ResultStore(tmp_path)
        store.append(rec("a"))
        assert store.signature() == store.signature()

    def test_summary_groups_by_scenario_partitioner(self, tmp_path):
        store = ResultStore(tmp_path)
        store.append(rec("a", scenario="s1", partitioner="p1"))
        store.append(rec("b", scenario="s1", partitioner="p1"))
        store.append(rec("c", scenario="s2", partitioner="p1"))
        summary = store.summary()
        assert summary["num_cells"] == 3
        rows = {
            (g["scenario"], g["partitioner"]): g["cells"]
            for g in summary["grid"]
        }
        assert rows == {("s1", "p1"): 2, ("s2", "p1"): 1}

    def test_records_are_canonical_json_lines(self, tmp_path):
        store = ResultStore(tmp_path)
        store.append(rec("a"))
        store.compact()
        line = store.results_path.read_text(encoding="utf-8").splitlines()[0]
        assert line == json.dumps(
            json.loads(line), sort_keys=True, separators=(",", ":")
        )
