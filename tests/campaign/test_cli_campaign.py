"""CLI tests: ``repro campaign``, ``repro serve`` errors, bench-diff audit."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


@pytest.fixture
def spec_file(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(
        json.dumps(
            {
                "name": "cli",
                "scenarios": ["paper-four-node"],
                "partitioners": ["greedy"],
                "seeds": [1, 2],
                "base_config": {"iterations": 3},
            }
        ),
        encoding="utf-8",
    )
    return path


class TestCampaignCommand:
    def test_run_status_resume_cycle(self, tmp_path, spec_file, capsys):
        d = str(tmp_path / "c")
        assert main(
            ["campaign", "run", str(spec_file), "--dir", d, "--max-cells", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "1/2 cells (interrupted)" in out
        assert "campaign resume" in out

        assert main(["campaign", "status", d]) == 0
        assert "1/2 cells, in progress" in capsys.readouterr().out

        assert main(["campaign", "resume", d]) == 0
        out = capsys.readouterr().out
        assert "2/2 cells (complete)" in out
        assert "skipped 1 already-done" in out

        assert main(["campaign", "status", d]) == 0
        assert "complete" in capsys.readouterr().out

    def test_run_missing_spec_exits_2(self, tmp_path, capsys):
        code = main(
            ["campaign", "run", str(tmp_path / "no.json"), "--dir", "x"]
        )
        assert code == 2
        assert "not found" in capsys.readouterr().err

    def test_run_corrupt_spec_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{oops", encoding="utf-8")
        assert main(["campaign", "run", str(bad), "--dir", "x"]) == 2
        assert "could not parse" in capsys.readouterr().err

    def test_run_empty_grid_exits_2(self, tmp_path, capsys):
        empty = tmp_path / "empty.json"
        empty.write_text(
            json.dumps(
                {
                    "name": "e",
                    "scenarios": [],
                    "partitioners": ["greedy"],
                    "seeds": [1],
                }
            ),
            encoding="utf-8",
        )
        assert main(["campaign", "run", str(empty), "--dir", "x"]) == 2
        assert "is empty" in capsys.readouterr().err

    def test_status_non_campaign_dir_exits_2(self, tmp_path, capsys):
        assert main(["campaign", "status", str(tmp_path)]) == 2
        assert "not a campaign directory" in capsys.readouterr().err

    def test_resume_non_campaign_dir_exits_2(self, tmp_path, capsys):
        assert main(["campaign", "resume", str(tmp_path)]) == 2
        assert "not a campaign directory" in capsys.readouterr().err

    def test_no_subcommand_exits_2(self, capsys):
        assert main(["campaign"]) == 2
        assert "usage" in capsys.readouterr().err


class TestCampaignWatch:
    def completed_dir(self, tmp_path, spec_file) -> str:
        d = str(tmp_path / "c")
        assert main(["campaign", "run", str(spec_file), "--dir", d]) == 0
        return d

    def test_watch_completed_directory(self, tmp_path, spec_file, capsys):
        d = self.completed_dir(tmp_path, spec_file)
        capsys.readouterr()
        assert main(["campaign", "watch", d]) == 0
        out = capsys.readouterr().out
        # Non-tty mode prints one line per lifecycle event, then a summary.
        assert out.count("cell finished") == 2
        assert "watch: " in out
        assert "complete" in out

    def test_watch_timeout_on_stalled_campaign(
        self, tmp_path, spec_file, capsys
    ):
        d = str(tmp_path / "c")
        main(
            ["campaign", "run", str(spec_file), "--dir", d, "--max-cells", "1"]
        )
        capsys.readouterr()
        code = main(["campaign", "watch", d, "--timeout", "0.3"])
        assert code == 1
        assert "timed out" in capsys.readouterr().out

    def test_watch_non_campaign_dir_exits_2(self, tmp_path, capsys):
        assert main(["campaign", "watch", str(tmp_path)]) == 2
        assert "not a campaign directory" in capsys.readouterr().err

    def test_watch_live_url(self, tmp_path, spec_file, capsys):
        import threading

        from repro.campaign import make_server

        root = tmp_path / "root"
        root.mkdir()
        self.completed_dir(root, spec_file)
        server = make_server(root, port=0)
        try:
            thread = threading.Thread(
                target=server.serve_forever, daemon=True
            )
            thread.start()
            port = server.server_address[1]
            capsys.readouterr()
            code = main(
                [
                    "campaign",
                    "watch",
                    f"http://127.0.0.1:{port}/campaigns/c/live",
                ]
            )
            out = capsys.readouterr().out
            assert code == 0
            assert "progress: 2/2 cells" in out
            assert "watch: complete" in out
        finally:
            server.shutdown()
            server.server_close()

    def test_watch_bad_url_exits_2(self, capsys):
        code = main(
            [
                "campaign",
                "watch",
                "http://127.0.0.1:1/campaigns/x/live",
                "--timeout", "2",
            ]
        )
        assert code == 2
        assert "watch error" in capsys.readouterr().err


class TestServeCommand:
    def test_missing_root_exits_2(self, tmp_path, capsys):
        code = main(["serve", "--root", str(tmp_path / "nope")])
        assert code == 2
        assert "serve error" in capsys.readouterr().err


class TestBenchDiffErrorAudit:
    """Missing, empty and malformed inputs: one-line error, exit 2."""

    def test_missing_file(self, tmp_path, capsys):
        good = tmp_path / "good.json"
        good.write_text("{}", encoding="utf-8")
        code = main(["bench-diff", str(tmp_path / "no.json"), str(good)])
        assert code == 2
        assert "not found" in capsys.readouterr().err

    def test_empty_file(self, tmp_path, capsys):
        empty = tmp_path / "empty.json"
        empty.write_text("", encoding="utf-8")
        good = tmp_path / "good.json"
        good.write_text("{}", encoding="utf-8")
        assert main(["bench-diff", str(empty), str(good)]) == 2
        assert "could not parse" in capsys.readouterr().err

    def test_non_object_json(self, tmp_path, capsys):
        arr = tmp_path / "arr.json"
        arr.write_text("[1, 2, 3]", encoding="utf-8")
        good = tmp_path / "good.json"
        good.write_text("{}", encoding="utf-8")
        assert main(["bench-diff", str(arr), str(good)]) == 2
        assert "JSON object" in capsys.readouterr().err

    def test_malformed_json(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{torn", encoding="utf-8")
        good = tmp_path / "good.json"
        good.write_text("{}", encoding="utf-8")
        assert main(["bench-diff", str(bad), str(good)]) == 2
        assert "could not parse" in capsys.readouterr().err
