"""Tests for the ``repro serve`` HTTP layer."""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.campaign import CampaignRunner, CampaignSpec, make_server
from repro.util.errors import CampaignError


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    """One completed campaign behind a live server on an ephemeral port."""
    root = tmp_path_factory.mktemp("serve-root")
    spec = CampaignSpec(
        name="web",
        scenarios=("paper-four-node",),
        partitioners=("greedy", "heterogeneous"),
        seeds=(1,),
        base_config={"iterations": 3},
    )
    CampaignRunner(spec, root / "web", workers=1).run()
    server = make_server(root, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server, f"http://127.0.0.1:{server.server_address[1]}"
    server.shutdown()
    server.server_close()


def get(url: str, headers: dict | None = None):
    request = urllib.request.Request(url, headers=headers or {})
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as err:
        return err.code, dict(err.headers), err.read()


class TestRoutes:
    def test_healthz(self, served):
        _, base = served
        status, _, body = get(f"{base}/healthz")
        assert status == 200
        assert json.loads(body) == {"status": "ok"}

    def test_campaign_listing(self, served):
        _, base = served
        status, _, body = get(f"{base}/campaigns")
        assert status == 200
        rows = json.loads(body)["campaigns"]
        assert [r["id"] for r in rows] == ["web"]
        assert rows[0]["complete"]

    def test_campaign_detail(self, served):
        _, base = served
        status, _, body = get(f"{base}/campaigns/web")
        assert status == 200
        detail = json.loads(body)
        assert detail["num_cells"] == 2
        assert detail["completed"] == 2

    def test_cells_and_single_cell(self, served):
        _, base = served
        status, _, body = get(f"{base}/campaigns/web/cells")
        assert status == 200
        cells = json.loads(body)["cells"]
        assert len(cells) == 2
        key = sorted(cells)[0]
        status, _, body = get(f"{base}/campaigns/web/cells/{key}")
        assert status == 200
        record = json.loads(body)
        assert record["cell_key"] == key
        assert "metrics" in record

    def test_report_html(self, served):
        _, base = served
        status, headers, body = get(f"{base}/campaigns/web/report")
        assert status == 200
        assert headers["Content-Type"].startswith("text/html")
        assert b"Campaign web" in body
        assert b"greedy" in body and b"heterogeneous" in body

    def test_unknown_campaign_404(self, served):
        _, base = served
        status, _, body = get(f"{base}/campaigns/nope")
        assert status == 404
        assert "error" in json.loads(body)

    def test_unknown_route_404(self, served):
        _, base = served
        assert get(f"{base}/attic")[0] == 404

    def test_traversal_rejected(self, served):
        _, base = served
        assert get(f"{base}/campaigns/..%2F..%2Fetc")[0] == 404


class TestCaching:
    def test_etag_present_and_304_on_match(self, served):
        _, base = served
        _, headers, _ = get(f"{base}/campaigns/web/report")
        etag = headers["ETag"]
        status, headers2, body = get(
            f"{base}/campaigns/web/report", {"If-None-Match": etag}
        )
        assert status == 304
        assert body == b""
        assert headers2["ETag"] == etag

    def test_cached_report_is_fast_and_identical(self, served):
        server, base = served
        _, _, first = get(f"{base}/campaigns/web/report")  # warm
        start = time.perf_counter()
        _, _, second = get(f"{base}/campaigns/web/report")
        elapsed = time.perf_counter() - start
        assert second == first
        assert elapsed < 0.05  # the <50 ms cached-answer budget
        assert server.cache.hits >= 1

    def test_cache_invalidated_by_store_change(self, served):
        server, base = served
        _, headers, _ = get(f"{base}/campaigns/web/cells")
        etag = headers["ETag"]
        # Touch the store: append + remove a no-op log entry.
        log = server.root / "web" / "results.log.jsonl"
        log.write_text("", encoding="utf-8")
        status, headers2, _ = get(f"{base}/campaigns/web/cells")
        assert status == 200
        assert headers2["ETag"] != etag
        log.unlink()


class TestServerConstruction:
    def test_missing_root_rejected(self, tmp_path):
        with pytest.raises(CampaignError, match="not a directory"):
            make_server(tmp_path / "nope")

    def test_campaign_ids_ignores_plain_dirs(self, tmp_path):
        (tmp_path / "junk").mkdir()
        server = make_server(tmp_path, port=0)
        try:
            assert server.campaign_ids() == []
        finally:
            server.server_close()
