"""Tests for the ``repro serve`` HTTP layer."""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.campaign import CampaignRunner, CampaignSpec, make_server
from repro.util.errors import CampaignError


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    """One completed campaign behind a live server on an ephemeral port."""
    root = tmp_path_factory.mktemp("serve-root")
    spec = CampaignSpec(
        name="web",
        scenarios=("paper-four-node",),
        partitioners=("greedy", "heterogeneous"),
        seeds=(1,),
        base_config={"iterations": 3},
    )
    CampaignRunner(spec, root / "web", workers=1).run()
    server = make_server(root, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server, f"http://127.0.0.1:{server.server_address[1]}"
    server.shutdown()
    server.server_close()


def get(url: str, headers: dict | None = None):
    request = urllib.request.Request(url, headers=headers or {})
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as err:
        return err.code, dict(err.headers), err.read()


class TestRoutes:
    def test_healthz(self, served):
        _, base = served
        status, _, body = get(f"{base}/healthz")
        assert status == 200
        assert json.loads(body) == {"status": "ok"}

    def test_campaign_listing(self, served):
        _, base = served
        status, _, body = get(f"{base}/campaigns")
        assert status == 200
        rows = json.loads(body)["campaigns"]
        assert [r["id"] for r in rows] == ["web"]
        assert rows[0]["complete"]

    def test_campaign_detail(self, served):
        _, base = served
        status, _, body = get(f"{base}/campaigns/web")
        assert status == 200
        detail = json.loads(body)
        assert detail["num_cells"] == 2
        assert detail["completed"] == 2

    def test_cells_and_single_cell(self, served):
        _, base = served
        status, _, body = get(f"{base}/campaigns/web/cells")
        assert status == 200
        cells = json.loads(body)["cells"]
        assert len(cells) == 2
        key = sorted(cells)[0]
        status, _, body = get(f"{base}/campaigns/web/cells/{key}")
        assert status == 200
        record = json.loads(body)
        assert record["cell_key"] == key
        assert "metrics" in record

    def test_report_html(self, served):
        _, base = served
        status, headers, body = get(f"{base}/campaigns/web/report")
        assert status == 200
        assert headers["Content-Type"].startswith("text/html")
        assert b"Campaign web" in body
        assert b"greedy" in body and b"heterogeneous" in body

    def test_unknown_campaign_404(self, served):
        _, base = served
        status, _, body = get(f"{base}/campaigns/nope")
        assert status == 404
        assert "error" in json.loads(body)

    def test_unknown_route_404(self, served):
        _, base = served
        assert get(f"{base}/attic")[0] == 404

    def test_traversal_rejected(self, served):
        _, base = served
        assert get(f"{base}/campaigns/..%2F..%2Fetc")[0] == 404


class TestCellsPagination:
    def cells(self, base, query=""):
        status, _, body = get(f"{base}/campaigns/web/cells{query}")
        assert status == 200
        return json.loads(body)

    def test_cells_carry_status_and_artifacts(self, served):
        _, base = served
        payload = self.cells(base)
        assert payload["num_cells"] == 2
        assert payload["total_cells"] == 2
        for cell in payload["cells"].values():
            assert cell["status"] == "completed"
            assert cell["artifacts"] is True

    def test_limit_and_offset_page_in_key_order(self, served):
        _, base = served
        all_keys = sorted(self.cells(base)["cells"])
        first = self.cells(base, "?limit=1")
        assert list(first["cells"]) == all_keys[:1]
        assert first["num_cells"] == 2  # total matching, not page size
        second = self.cells(base, "?limit=1&offset=1")
        assert list(second["cells"]) == all_keys[1:]
        beyond = self.cells(base, "?offset=5")
        assert beyond["cells"] == {}

    def test_status_filter(self, served):
        _, base = served
        completed = self.cells(base, "?status=completed")
        assert len(completed["cells"]) == 2
        pending = self.cells(base, "?status=pending")
        assert pending["cells"] == {}
        assert pending["num_cells"] == 0

    def test_invalid_known_params_400(self, served):
        _, base = served
        for query in ("?limit=banana", "?offset=-1", "?status=bogus"):
            status, _, body = get(f"{base}/campaigns/web/cells{query}")
            assert status == 400, query
            assert "error" in json.loads(body)

    def test_unknown_params_ignored(self, served):
        _, base = served
        payload = self.cells(base, "?frobnicate=1&limit=1")
        assert len(payload["cells"]) == 1


class TestArtifactRoutes:
    def first_key(self, base) -> str:
        _, _, body = get(f"{base}/campaigns/web/cells")
        return sorted(json.loads(body)["cells"])[0]

    def test_flamegraph_artifact(self, served):
        server, base = served
        key = self.first_key(base)
        status, headers, body = get(
            f"{base}/campaigns/web/cells/{key}/artifacts/flamegraph"
        )
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        on_disk = (
            server.root / "web" / "artifacts" / key / "flamegraph.txt"
        ).read_bytes()
        assert body == on_disk

    def test_trace_and_profile_artifacts(self, served):
        _, base = served
        key = self.first_key(base)
        status, headers, body = get(
            f"{base}/campaigns/web/cells/{key}/artifacts/trace"
        )
        assert status == 200
        assert headers["Content-Type"].startswith("application/x-ndjson")
        assert all(
            json.loads(line) for line in body.decode("utf-8").splitlines()
        )
        status, headers, body = get(
            f"{base}/campaigns/web/cells/{key}/artifacts/profile"
        )
        assert status == 200
        assert json.loads(body)["cell_key"] == key

    def test_unknown_kind_404_json(self, served):
        _, base = served
        key = self.first_key(base)
        status, _, body = get(
            f"{base}/campaigns/web/cells/{key}/artifacts/coredump"
        )
        assert status == 404
        assert "unknown artifact kind" in json.loads(body)["error"]

    def test_missing_cell_404_json(self, served):
        _, base = served
        status, _, body = get(
            f"{base}/campaigns/web/cells/no-such-cell/artifacts/trace"
        )
        assert status == 404
        assert "error" in json.loads(body)

    def test_malformed_key_404_never_500(self, served):
        _, base = served
        status, _, body = get(
            f"{base}/campaigns/web/cells/..%2Fsecrets/artifacts/trace"
        )
        assert status == 404
        assert "error" in json.loads(body)


class TestMetricsEndpoint:
    def test_openmetrics_exposition(self, served):
        _, base = served
        status, headers, body = get(f"{base}/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith(
            "application/openmetrics-text"
        )
        text = body.decode("utf-8")
        assert text.endswith("# EOF\n")
        assert 'campaign="web"' in text
        assert "campaign_cells_completed" in text
        assert "serve_requests_total" in text

    def test_exposition_passes_selfcheck(self, served):
        from repro.telemetry.metrics import openmetrics_selfcheck

        _, base = served
        _, _, body = get(f"{base}/metrics")
        assert openmetrics_selfcheck(body.decode("utf-8")) == []

    def test_metrics_not_cached(self, served):
        _, base = served
        _, headers, first = get(f"{base}/metrics")
        assert "ETag" not in headers
        _, _, second = get(f"{base}/metrics")
        # The request counter moves between scrapes: live, not a snapshot.
        assert first != second


def read_sse_frames(base: str, campaign: str) -> list[tuple[str, dict]]:
    """Consume one /live stream to EOF; returns (event, payload) frames."""
    frames: list[tuple[str, dict]] = []
    request = urllib.request.Request(f"{base}/campaigns/{campaign}/live")
    with urllib.request.urlopen(request, timeout=30) as response:
        event = None
        for raw in response:
            line = raw.decode("utf-8").rstrip("\n")
            if line.startswith("event: "):
                event = line[len("event: "):]
            elif line.startswith("data: ") and event is not None:
                frames.append((event, json.loads(line[len("data: "):])))
    return frames


class TestLiveStream:
    def test_replays_one_event_per_completed_cell(self, served):
        _, base = served
        frames = read_sse_frames(base, "web")
        names = [e for e, _ in frames]
        assert names[0] == "snapshot"
        assert names.count("live.cell_finished") == 2
        assert names[-1] == "campaign.completed"
        final = frames[-1][1]["progress"]
        assert final["complete"]
        assert final["completed"] == 2

    def test_frames_carry_progress_snapshots(self, served):
        _, base = served
        frames = read_sse_frames(base, "web")
        finishes = [p for e, p in frames if e == "live.cell_finished"]
        assert [f["progress"]["completed"] for f in finishes] == [1, 2]
        assert finishes[0]["event"]["attributes"]["cell_key"]

    def test_stream_terminates_on_server_shutdown(self, tmp_path):
        """A tail-following stream must end on graceful shutdown."""
        spec = CampaignSpec(
            name="slow",
            scenarios=("paper-four-node",),
            partitioners=("greedy",),
            seeds=(1, 2),
            base_config={"iterations": 3},
        )
        # One of two cells done: the stream replays it, then tails.
        CampaignRunner(spec, tmp_path / "slow", workers=1).run(max_cells=1)
        server = make_server(tmp_path, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        result: dict = {}

        def consume():
            result["frames"] = read_sse_frames(base, "slow")

        reader = threading.Thread(target=consume, daemon=True)
        reader.start()
        time.sleep(0.5)  # let it replay history and enter the tail loop
        server.shutdown()
        reader.join(timeout=5)
        server.server_close()
        assert not reader.is_alive(), "SSE stream survived shutdown"
        names = [e for e, _ in result["frames"]]
        assert "live.cell_finished" in names


class TestCaching:
    def test_etag_present_and_304_on_match(self, served):
        _, base = served
        _, headers, _ = get(f"{base}/campaigns/web/report")
        etag = headers["ETag"]
        status, headers2, body = get(
            f"{base}/campaigns/web/report", {"If-None-Match": etag}
        )
        assert status == 304
        assert body == b""
        assert headers2["ETag"] == etag

    def test_cached_report_is_fast_and_identical(self, served):
        server, base = served
        _, _, first = get(f"{base}/campaigns/web/report")  # warm
        start = time.perf_counter()
        _, _, second = get(f"{base}/campaigns/web/report")
        elapsed = time.perf_counter() - start
        assert second == first
        assert elapsed < 0.05  # the <50 ms cached-answer budget
        assert server.cache.hits >= 1

    def test_cache_invalidated_by_store_change(self, served):
        server, base = served
        _, headers, _ = get(f"{base}/campaigns/web/cells")
        etag = headers["ETag"]
        # Touch the store: append + remove a no-op log entry.
        log = server.root / "web" / "results.log.jsonl"
        log.write_text("", encoding="utf-8")
        status, headers2, _ = get(f"{base}/campaigns/web/cells")
        assert status == 200
        assert headers2["ETag"] != etag
        log.unlink()

    def test_cells_pages_revalidate_with_304(self, served):
        _, base = served
        _, headers, _ = get(f"{base}/campaigns/web/cells?limit=1")
        etag = headers["ETag"]
        status, _, body = get(
            f"{base}/campaigns/web/cells?limit=1", {"If-None-Match": etag}
        )
        assert status == 304
        assert body == b""

    def test_pages_have_distinct_etags(self, served):
        _, base = served
        _, h1, _ = get(f"{base}/campaigns/web/cells?limit=1")
        _, h2, _ = get(f"{base}/campaigns/web/cells?limit=1&offset=1")
        assert h1["ETag"] != h2["ETag"]

    def test_etag_invalidated_by_compaction_mid_serve(self, served):
        from repro.campaign import ResultStore

        server, base = served
        _, headers, first = get(f"{base}/campaigns/web/cells")
        etag = headers["ETag"]
        # Re-compact while the server is live: identical content, but the
        # store files were rewritten, so the validator must turn over and
        # a conditional request must be answered with a fresh 200.
        ResultStore(server.root / "web").compact()
        status, headers2, body = get(
            f"{base}/campaigns/web/cells", {"If-None-Match": etag}
        )
        assert status == 200
        assert headers2["ETag"] != etag
        assert body == first  # same bytes, new validator


class TestServerConstruction:
    def test_missing_root_rejected(self, tmp_path):
        with pytest.raises(CampaignError, match="not a directory"):
            make_server(tmp_path / "nope")

    def test_campaign_ids_ignores_plain_dirs(self, tmp_path):
        (tmp_path / "junk").mkdir()
        server = make_server(tmp_path, port=0)
        try:
            assert server.campaign_ids() == []
        finally:
            server.server_close()


class TestDecisionsRoute:
    @staticmethod
    def write_ledger(directory):
        from repro.learn import DecisionLedger

        ledger = DecisionLedger(directory / "learn")
        for i in range(4):
            ledger.record(
                "prediction",
                iteration=i,
                t=float(i),
                x=1.0 * i,
                predicted=1.0,
                lo=0.9,
                hi=1.1,
                actual=1.0 if i < 3 else 1.5,
                cold=False,
            )
        ledger.record(
            "gate",
            iteration=3,
            t=3.0,
            loads=[8.0, 2.0],
            capacities=[0.5, 0.5],
            horizon_iters=10,
            beta=0.1,
            migration_seconds=0.5,
            gate_safety=1.0,
            repartition=True,
            reason="payoff",
            payoff_seconds=6.0,
            cost_seconds=0.5,
        )

    def test_no_ledger_404(self, served):
        _, base = served
        status, _, body = get(f"{base}/campaigns/web/decisions")
        assert status == 404
        assert "no decision ledger" in json.loads(body)["error"]

    def test_route_and_metrics_agree(self, served):
        import shutil

        server, base = served
        directory = server.root / "web"
        self.write_ledger(directory)
        try:
            status, _, body = get(f"{base}/campaigns/web/decisions")
            assert status == 200
            payload = json.loads(body)
            assert payload["campaign"] == "web"
            assert payload["records"] == 5
            assert payload["gate"]["decisions"] == 1
            assert payload["calibration"]["predictions"] == 4
            assert payload["calibration"]["coverage"] == 0.75

            status, _, body = get(f"{base}/metrics")
            assert status == 200
            text = body.decode()
            lines = {
                line.split("{")[0]: line
                for line in text.splitlines()
                if line.startswith("decision_")
            }
            assert 'campaign="web"' in lines["decision_records"]
            assert lines["decision_records"].split()[-1] in ("5", "5.0")
            assert lines["decision_calibration_coverage"].endswith(" 0.75")
            assert "decision_cumulative_regret_seconds" in lines
            assert "decision_oracle_agreement_rate" in lines
        finally:
            shutil.rmtree(directory / "learn")

    def test_metrics_skip_campaigns_without_ledger(self, served):
        _, base = served
        status, _, body = get(f"{base}/metrics")
        assert status == 200
        assert "decision_records" not in body.decode()
