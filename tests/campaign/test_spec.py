"""Tests for campaign specs: grid expansion, cell keys, validation."""

from __future__ import annotations

import json

import pytest

from repro.campaign.spec import CampaignSpec, CellSpec, canonical_json
from repro.util.errors import CampaignError


def small_spec(**overrides) -> CampaignSpec:
    kwargs = dict(
        name="t",
        scenarios=("paper-four-node",),
        partitioners=("greedy", "heterogeneous"),
        seeds=(1, 2),
        base_config={"iterations": 3},
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


class TestCellKey:
    def test_key_is_stable_across_instances(self):
        a = CellSpec("s", "p", 3, {"x": 1, "y": 2})
        b = CellSpec("s", "p", 3, {"y": 2, "x": 1})
        assert a.key == b.key

    def test_key_distinguishes_config(self):
        a = CellSpec("s", "p", 3, {"x": 1})
        b = CellSpec("s", "p", 3, {"x": 2})
        assert a.key != b.key

    def test_key_is_greppable(self):
        cell = CellSpec("linux-static", "greedy", 7, {})
        assert cell.key.startswith("linux-static--greedy--s7--")

    def test_roundtrip(self):
        cell = CellSpec("s", "p", 3, {"x": 1})
        assert CellSpec.from_dict(cell.to_dict()) == cell


class TestExpansion:
    def test_cell_count(self):
        spec = small_spec(configs=({}, {"iterations": 5}))
        assert spec.num_cells == 1 * 2 * 2 * 2
        assert len(spec.cells()) == spec.num_cells

    def test_expansion_order_is_deterministic(self):
        a = small_spec().cells()
        b = small_spec().cells()
        assert a == b

    def test_base_config_merged_under_overrides(self):
        spec = small_spec(
            base_config={"iterations": 3, "procs": 4},
            configs=({"iterations": 9},),
        )
        cell = spec.cells()[0]
        assert cell.config == {"iterations": 9, "procs": 4}

    def test_campaign_id_stable_and_spec_sensitive(self):
        assert small_spec().campaign_id == small_spec().campaign_id
        assert small_spec().campaign_id != small_spec(seeds=(1, 3)).campaign_id


class TestValidation:
    def test_empty_axis_rejected(self):
        with pytest.raises(CampaignError, match="axis 'seeds' is empty"):
            small_spec(seeds=())

    def test_bad_name_rejected(self):
        with pytest.raises(CampaignError, match="slug"):
            small_spec(name="bad name!")

    def test_duplicate_cells_rejected(self):
        with pytest.raises(CampaignError, match="duplicate"):
            small_spec(configs=({}, {}))

    def test_from_dict_missing_fields(self):
        with pytest.raises(CampaignError, match="missing fields"):
            CampaignSpec.from_dict({"name": "x"})

    def test_from_dict_bad_schema_version(self):
        data = small_spec().to_dict()
        data["schema_version"] = 99
        with pytest.raises(CampaignError, match="schema version"):
            CampaignSpec.from_dict(data)

    def test_roundtrip_preserves_id(self):
        spec = small_spec()
        again = CampaignSpec.from_dict(
            json.loads(canonical_json(spec.to_dict()))
        )
        assert again.campaign_id == spec.campaign_id


class TestFromFile:
    def test_missing_file(self, tmp_path):
        with pytest.raises(CampaignError, match="not found"):
            CampaignSpec.from_file(tmp_path / "nope.json")

    def test_unparseable_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(CampaignError, match="could not parse"):
            CampaignSpec.from_file(path)

    def test_valid_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(
            json.dumps(small_spec().to_dict()), encoding="utf-8"
        )
        assert CampaignSpec.from_file(path) == small_spec()
