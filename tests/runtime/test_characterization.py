"""Unit tests for the characterization metric panel."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels.workloads import moving_blob_trace
from repro.partition import ACEComposite, ACEHeterogeneous, GreedyLPT
from repro.runtime.characterization import CharacterizationRow, characterize

CAPS = np.array([0.16, 0.19, 0.31, 0.34])


@pytest.fixture(scope="module")
def workload():
    return moving_blob_trace(domain_shape=(64, 64), num_regrids=5, max_levels=3)


class TestCharacterize:
    def test_row_fields(self, workload):
        row = characterize(ACEHeterogeneous(), workload, CAPS)
        assert isinstance(row, CharacterizationRow)
        assert row.partitioner == "ACEHeterogeneous"
        assert row.mean_imbalance_pct <= row.max_imbalance_pct + 1e-9
        assert row.mean_comm_kb > 0
        assert row.fragmentation >= 1.0
        assert row.mean_partition_ms > 0

    def test_no_split_fragmentation_is_one(self, workload):
        row = characterize(GreedyLPT(), workload, CAPS)
        assert row.fragmentation == 1.0

    def test_migration_zero_for_single_epoch(self):
        w = moving_blob_trace(domain_shape=(32, 32), num_regrids=1, max_levels=2)
        row = characterize(ACEHeterogeneous(), w, CAPS)
        assert row.mean_migration_kb == 0.0

    def test_capacity_blind_scores_high_imbalance(self, workload):
        het = characterize(ACEHeterogeneous(), workload, CAPS)
        comp = characterize(ACEComposite(), workload, CAPS)
        assert comp.mean_imbalance_pct > het.mean_imbalance_pct

    def test_capacities_normalized_internally(self, workload):
        a = characterize(ACEHeterogeneous(), workload, CAPS)
        b = characterize(ACEHeterogeneous(), workload, CAPS * 10)
        assert a.mean_imbalance_pct == pytest.approx(b.mean_imbalance_pct)
