"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import EXPERIMENTS, main


class TestList:
    def test_list_prints_all(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in EXPERIMENTS:
            assert key in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "fig7" in capsys.readouterr().out


class TestRun:
    def test_unknown_experiment(self, capsys):
        assert main(["run", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    @pytest.mark.parametrize("key", ["fig8", "fig9", "fig10"])
    def test_quick_figures(self, key, capsys):
        assert main(["run", key, "--quick"]) == 0
        out = capsys.readouterr().out
        assert "regrid" in out

    def test_quick_fig11(self, capsys):
        assert main(["run", "fig11", "--quick"]) == 0
        assert "Fig. 11" in capsys.readouterr().out

    def test_quick_ablation_panel(self, capsys):
        assert main(["run", "ablation-panel", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "ACEHeterogeneous" in out and "SFCHybrid" in out

    def test_quick_ablation_multiaxis(self, capsys):
        assert main(["run", "ablation-multiaxis", "--quick"]) == 0
        assert "longest-axis" in capsys.readouterr().out

    def test_quick_ablation_forecasters(self, capsys):
        assert main(["run", "ablation-forecasters", "--quick"]) == 0
        assert "MAE" in capsys.readouterr().out

    def test_quick_sweep_heterogeneity(self, capsys):
        assert main(["run", "sweep-heterogeneity", "--quick"]) == 0
        assert "improvement vs load level" in capsys.readouterr().out

    def test_quick_sweep_probe_cost(self, capsys):
        assert main(["run", "sweep-probe-cost", "--quick"]) == 0
        assert "probe" in capsys.readouterr().out


class TestTrace:
    def test_unknown_experiment(self, tmp_path, capsys):
        code = main(
            ["trace", "nope", "--quick", "--out-dir", str(tmp_path)]
        )
        assert code == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_trace_writes_all_artifacts(self, tmp_path, capsys):
        code = main(
            ["trace", "fig10", "--quick", "--out-dir", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "regrid" in out  # the experiment's own report still prints
        assert "telemetry:" in out
        for suffix in (".trace.json", ".events.jsonl", ".metrics.json"):
            assert (tmp_path / f"fig10{suffix}").exists()

    def test_chrome_trace_is_valid(self, tmp_path, capsys):
        assert (
            main(["trace", "fig10", "--quick", "--out-dir", str(tmp_path)])
            == 0
        )
        events = json.loads((tmp_path / "fig10.trace.json").read_text())
        assert isinstance(events, list) and events
        complete = [e for e in events if e["ph"] == "X"]
        assert complete
        for event in complete:
            assert {"name", "ph", "ts", "dur", "pid", "tid"} <= set(event)
        # One thread track per simulated rank (4 ranks) plus the runtime.
        assert {e["tid"] for e in complete} == {0, 1, 2, 3, 4}
        names = {e["name"] for e in complete}
        assert {"run", "sense", "partition", "compute"} <= names

    def test_event_log_and_metrics(self, tmp_path, capsys):
        assert (
            main(["trace", "fig10", "--quick", "--out-dir", str(tmp_path)])
            == 0
        )
        lines = (tmp_path / "fig10.events.jsonl").read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert all("type" in r and "name" in r for r in records)
        assert any(r["type"] == "span" for r in records)
        metrics = json.loads((tmp_path / "fig10.metrics.json").read_text())
        assert metrics["num_spans"] == sum(
            1 for r in records if r["type"] == "span"
        )
        assert "migration_bytes" in metrics["metrics"]
        assert "partition" in metrics["phases"]
