"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import EXPERIMENTS, main


class TestList:
    def test_list_prints_all(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in EXPERIMENTS:
            assert key in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "fig7" in capsys.readouterr().out


class TestRun:
    def test_unknown_experiment(self, capsys):
        assert main(["run", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    @pytest.mark.parametrize("key", ["fig8", "fig9", "fig10"])
    def test_quick_figures(self, key, capsys):
        assert main(["run", key, "--quick"]) == 0
        out = capsys.readouterr().out
        assert "regrid" in out

    def test_quick_fig11(self, capsys):
        assert main(["run", "fig11", "--quick"]) == 0
        assert "Fig. 11" in capsys.readouterr().out

    def test_quick_ablation_panel(self, capsys):
        assert main(["run", "ablation-panel", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "ACEHeterogeneous" in out and "SFCHybrid" in out

    def test_quick_ablation_multiaxis(self, capsys):
        assert main(["run", "ablation-multiaxis", "--quick"]) == 0
        assert "longest-axis" in capsys.readouterr().out

    def test_quick_ablation_forecasters(self, capsys):
        assert main(["run", "ablation-forecasters", "--quick"]) == 0
        assert "MAE" in capsys.readouterr().out

    def test_quick_sweep_heterogeneity(self, capsys):
        assert main(["run", "sweep-heterogeneity", "--quick"]) == 0
        assert "improvement vs load level" in capsys.readouterr().out

    def test_quick_sweep_probe_cost(self, capsys):
        assert main(["run", "sweep-probe-cost", "--quick"]) == 0
        assert "probe" in capsys.readouterr().out


class TestTrace:
    def test_unknown_experiment(self, tmp_path, capsys):
        code = main(
            ["trace", "nope", "--quick", "--out-dir", str(tmp_path)]
        )
        assert code == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_trace_writes_all_artifacts(self, tmp_path, capsys):
        code = main(
            ["trace", "fig10", "--quick", "--out-dir", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "regrid" in out  # the experiment's own report still prints
        assert "telemetry:" in out
        for suffix in (".trace.json", ".events.jsonl", ".metrics.json"):
            assert (tmp_path / f"fig10{suffix}").exists()

    def test_chrome_trace_is_valid(self, tmp_path, capsys):
        assert (
            main(["trace", "fig10", "--quick", "--out-dir", str(tmp_path)])
            == 0
        )
        events = json.loads((tmp_path / "fig10.trace.json").read_text())
        assert isinstance(events, list) and events
        complete = [e for e in events if e["ph"] == "X"]
        assert complete
        for event in complete:
            assert {"name", "ph", "ts", "dur", "pid", "tid"} <= set(event)
        # One thread track per simulated rank (4 ranks) plus the runtime.
        assert {e["tid"] for e in complete} == {0, 1, 2, 3, 4}
        names = {e["name"] for e in complete}
        assert {"run", "sense", "partition", "compute"} <= names

    def test_event_log_and_metrics(self, tmp_path, capsys):
        assert (
            main(["trace", "fig10", "--quick", "--out-dir", str(tmp_path)])
            == 0
        )
        lines = (tmp_path / "fig10.events.jsonl").read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert all("type" in r and "name" in r for r in records)
        assert any(r["type"] == "span" for r in records)
        metrics = json.loads((tmp_path / "fig10.metrics.json").read_text())
        assert metrics["num_spans"] == sum(
            1 for r in records if r["type"] == "span"
        )
        assert "migration_bytes" in metrics["metrics"]
        assert "partition" in metrics["phases"]


class TestReport:
    def test_unknown_experiment(self, tmp_path, capsys):
        code = main(
            ["report", "nope", "--quick", "--out-dir", str(tmp_path)]
        )
        assert code == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_missing_trace_file(self, tmp_path, capsys):
        code = main(
            ["report", str(tmp_path / "no.events.jsonl"),
             "--out-dir", str(tmp_path)]
        )
        assert code == 2
        assert "not found" in capsys.readouterr().err

    def test_report_writes_dashboard_and_events(self, tmp_path, capsys):
        code = main(
            ["report", "fig10", "--quick", "--out-dir", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "health:" in out and "iteration snapshots" in out
        assert (tmp_path / "fig10.events.jsonl").exists()
        html = (tmp_path / "fig10.dashboard.html").read_text()
        assert "<svg" in html
        assert "40% paper bound" in html
        assert "<script src" not in html and "<link" not in html

    def test_report_from_trace_file(self, tmp_path, capsys):
        assert (
            main(["report", "fig10", "--quick", "--out-dir", str(tmp_path)])
            == 0
        )
        offline = tmp_path / "offline"
        code = main(
            ["report", str(tmp_path / "fig10.events.jsonl"),
             "--out-dir", str(offline)]
        )
        assert code == 0
        html = (offline / "fig10.dashboard.html").read_text()
        assert "Per-rank phase timeline" in html


class TestBenchDiff:
    BENCH = {
        "results": [{"partitioner": "ACE", "wall_seconds": 1.0,
                     "total_sim_seconds": 10.0}],
    }

    def write(self, path, payload):
        path.write_text(json.dumps(payload))
        return str(path)

    def test_identical_files_pass(self, tmp_path, capsys):
        old = self.write(tmp_path / "old.json", self.BENCH)
        new = self.write(tmp_path / "new.json", self.BENCH)
        assert main(["bench-diff", old, new, "--fail-on-regression"]) == 0
        assert "0 regressions" in capsys.readouterr().out

    def test_regression_fails_when_gated(self, tmp_path, capsys):
        slow = json.loads(json.dumps(self.BENCH))
        slow["results"][0]["wall_seconds"] = 1.5
        old = self.write(tmp_path / "old.json", self.BENCH)
        new = self.write(tmp_path / "new.json", slow)
        assert main(["bench-diff", old, new, "--fail-on-regression"]) == 1
        assert "REGRESSIONS" in capsys.readouterr().out
        # Without the gate the same regression only warns.
        assert main(["bench-diff", old, new]) == 0

    def test_missing_file(self, tmp_path, capsys):
        old = self.write(tmp_path / "old.json", self.BENCH)
        assert main(["bench-diff", old, str(tmp_path / "gone.json")]) == 2
        assert "not found" in capsys.readouterr().err

    def test_malformed_json(self, tmp_path, capsys):
        old = self.write(tmp_path / "old.json", self.BENCH)
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["bench-diff", old, str(bad)]) == 2
        assert "could not parse" in capsys.readouterr().err
