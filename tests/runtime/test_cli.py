"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import EXPERIMENTS, main


class TestList:
    def test_list_prints_all(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in EXPERIMENTS:
            assert key in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "fig7" in capsys.readouterr().out


class TestRun:
    def test_unknown_experiment(self, capsys):
        assert main(["run", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    @pytest.mark.parametrize("key", ["fig8", "fig9", "fig10"])
    def test_quick_figures(self, key, capsys):
        assert main(["run", key, "--quick"]) == 0
        out = capsys.readouterr().out
        assert "regrid" in out

    def test_quick_fig11(self, capsys):
        assert main(["run", "fig11", "--quick"]) == 0
        assert "Fig. 11" in capsys.readouterr().out

    def test_quick_ablation_panel(self, capsys):
        assert main(["run", "ablation-panel", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "ACEHeterogeneous" in out and "SFCHybrid" in out

    def test_quick_ablation_multiaxis(self, capsys):
        assert main(["run", "ablation-multiaxis", "--quick"]) == 0
        assert "longest-axis" in capsys.readouterr().out

    def test_quick_ablation_forecasters(self, capsys):
        assert main(["run", "ablation-forecasters", "--quick"]) == 0
        assert "MAE" in capsys.readouterr().out

    def test_quick_sweep_heterogeneity(self, capsys):
        assert main(["run", "sweep-heterogeneity", "--quick"]) == 0
        assert "improvement vs load level" in capsys.readouterr().out

    def test_quick_sweep_probe_cost(self, capsys):
        assert main(["run", "sweep-probe-cost", "--quick"]) == 0
        assert "probe" in capsys.readouterr().out


class TestTrace:
    def test_unknown_experiment(self, tmp_path, capsys):
        code = main(
            ["trace", "nope", "--quick", "--out-dir", str(tmp_path)]
        )
        assert code == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_trace_writes_all_artifacts(self, tmp_path, capsys):
        code = main(
            ["trace", "fig10", "--quick", "--out-dir", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "regrid" in out  # the experiment's own report still prints
        assert "telemetry:" in out
        for suffix in (".trace.json", ".events.jsonl", ".metrics.json"):
            assert (tmp_path / f"fig10{suffix}").exists()

    def test_chrome_trace_is_valid(self, tmp_path, capsys):
        assert (
            main(["trace", "fig10", "--quick", "--out-dir", str(tmp_path)])
            == 0
        )
        events = json.loads((tmp_path / "fig10.trace.json").read_text())
        assert isinstance(events, list) and events
        complete = [e for e in events if e["ph"] == "X"]
        assert complete
        for event in complete:
            assert {"name", "ph", "ts", "dur", "pid", "tid"} <= set(event)
        # One thread track per simulated rank (4 ranks) plus the runtime.
        assert {e["tid"] for e in complete} == {0, 1, 2, 3, 4}
        names = {e["name"] for e in complete}
        assert {"run", "sense", "partition", "compute"} <= names

    def test_event_log_and_metrics(self, tmp_path, capsys):
        assert (
            main(["trace", "fig10", "--quick", "--out-dir", str(tmp_path)])
            == 0
        )
        lines = (tmp_path / "fig10.events.jsonl").read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert all("type" in r and "name" in r for r in records)
        assert any(r["type"] == "span" for r in records)
        metrics = json.loads((tmp_path / "fig10.metrics.json").read_text())
        assert metrics["num_spans"] == sum(
            1 for r in records if r["type"] == "span"
        )
        assert "migration_bytes" in metrics["metrics"]
        assert "partition" in metrics["phases"]


class TestReport:
    def test_unknown_experiment(self, tmp_path, capsys):
        code = main(
            ["report", "nope", "--quick", "--out-dir", str(tmp_path)]
        )
        assert code == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_missing_trace_file(self, tmp_path, capsys):
        code = main(
            ["report", str(tmp_path / "no.events.jsonl"),
             "--out-dir", str(tmp_path)]
        )
        assert code == 2
        assert "not found" in capsys.readouterr().err

    def test_report_writes_dashboard_and_events(self, tmp_path, capsys):
        code = main(
            ["report", "fig10", "--quick", "--out-dir", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "health:" in out and "iteration snapshots" in out
        assert (tmp_path / "fig10.events.jsonl").exists()
        html = (tmp_path / "fig10.dashboard.html").read_text()
        assert "<svg" in html
        assert "40% paper bound" in html
        assert "<script src" not in html and "<link" not in html

    def test_report_from_trace_file(self, tmp_path, capsys):
        assert (
            main(["report", "fig10", "--quick", "--out-dir", str(tmp_path)])
            == 0
        )
        offline = tmp_path / "offline"
        code = main(
            ["report", str(tmp_path / "fig10.events.jsonl"),
             "--out-dir", str(offline)]
        )
        assert code == 0
        html = (offline / "fig10.dashboard.html").read_text()
        assert "Per-rank phase timeline" in html


class TestBenchDiff:
    BENCH = {
        "results": [{"partitioner": "ACE", "wall_seconds": 1.0,
                     "total_sim_seconds": 10.0}],
    }

    def write(self, path, payload):
        path.write_text(json.dumps(payload))
        return str(path)

    def test_identical_files_pass(self, tmp_path, capsys):
        old = self.write(tmp_path / "old.json", self.BENCH)
        new = self.write(tmp_path / "new.json", self.BENCH)
        assert main(["bench-diff", old, new, "--fail-on-regression"]) == 0
        assert "0 regressions" in capsys.readouterr().out

    def test_regression_fails_when_gated(self, tmp_path, capsys):
        slow = json.loads(json.dumps(self.BENCH))
        slow["results"][0]["wall_seconds"] = 1.5
        old = self.write(tmp_path / "old.json", self.BENCH)
        new = self.write(tmp_path / "new.json", slow)
        assert main(["bench-diff", old, new, "--fail-on-regression"]) == 1
        assert "REGRESSIONS" in capsys.readouterr().out
        # Without the gate the same regression only warns.
        assert main(["bench-diff", old, new]) == 0

    def test_missing_file(self, tmp_path, capsys):
        old = self.write(tmp_path / "old.json", self.BENCH)
        assert main(["bench-diff", old, str(tmp_path / "gone.json")]) == 2
        assert "not found" in capsys.readouterr().err

    def test_malformed_json(self, tmp_path, capsys):
        old = self.write(tmp_path / "old.json", self.BENCH)
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["bench-diff", old, str(bad)]) == 2
        assert "could not parse" in capsys.readouterr().err


class TestTraceFileErrors:
    """Missing/corrupt trace files exit 2 with a one-line error (S1)."""

    def test_report_missing_file(self, capsys, tmp_path):
        missing = tmp_path / "nope.jsonl"
        assert main(["report", str(missing)]) == 2
        err = capsys.readouterr().err
        assert "trace file not found" in err and str(missing) in err

    def test_profile_missing_file(self, capsys, tmp_path):
        assert main(["profile", str(tmp_path / "gone.jsonl")]) == 2
        assert "trace file not found" in capsys.readouterr().err

    def test_report_corrupt_file(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{ not json at all\n")
        assert main(["report", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "corrupt trace file" in err and str(bad) in err

    def test_profile_corrupt_file(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "span"}\nBOOM\n')
        assert main(["profile", str(bad)]) == 2
        assert "corrupt trace file" in capsys.readouterr().err

    def test_profile_non_object_line(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("[1, 2, 3]\n")
        assert main(["profile", str(bad)]) == 2
        assert "expected a JSON object" in capsys.readouterr().err

    def test_profile_empty_file(self, capsys, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["profile", str(empty)]) == 2
        assert "no records" in capsys.readouterr().err

    def test_trace_unknown_experiment(self, capsys):
        assert main(["trace", "not-an-experiment"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_profile_unknown_experiment(self, capsys):
        assert main(["profile", "not-an-experiment"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestProfileCommand:
    def test_profile_experiment_writes_artifacts(self, capsys, tmp_path):
        out = str(tmp_path)
        assert main(["profile", "fig10", "--quick", "--out-dir", out]) == 0
        stdout = capsys.readouterr().out
        assert "critical path" in stdout.lower()
        for suffix in (
            "critical_path.json",
            "comm.json",
            "collapsed.txt",
            "speedscope.json",
            "openmetrics.txt",
        ):
            artifact = tmp_path / f"fig10.{suffix}"
            assert artifact.is_file() and artifact.stat().st_size > 0
        # The speedscope export must be loadable JSON with profiles.
        doc = json.loads((tmp_path / "fig10.speedscope.json").read_text())
        assert doc["profiles"]
        # And the exposition must end with the OpenMetrics terminator.
        om = (tmp_path / "fig10.openmetrics.txt").read_text()
        assert om.endswith("# EOF\n")

    def test_profile_roundtrip_from_trace_file(self, capsys, tmp_path):
        out = str(tmp_path)
        assert main(["profile", "fig10", "--quick", "--out-dir", out]) == 0
        capsys.readouterr()
        events = tmp_path / "fig10.events.jsonl"
        assert events.is_file()
        assert main(["profile", str(events), "--out-dir", out]) == 0
        assert "critical path" in capsys.readouterr().out.lower()

    def test_top_quick_prints_summary(self, capsys):
        assert main(["top", "fig10", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "rank" in out and "iteration" in out
