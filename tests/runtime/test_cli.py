"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import EXPERIMENTS, main


class TestList:
    def test_list_prints_all(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in EXPERIMENTS:
            assert key in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "fig7" in capsys.readouterr().out


class TestRun:
    def test_unknown_experiment(self, capsys):
        assert main(["run", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    @pytest.mark.parametrize("key", ["fig8", "fig9", "fig10"])
    def test_quick_figures(self, key, capsys):
        assert main(["run", key, "--quick"]) == 0
        out = capsys.readouterr().out
        assert "regrid" in out

    def test_quick_fig11(self, capsys):
        assert main(["run", "fig11", "--quick"]) == 0
        assert "Fig. 11" in capsys.readouterr().out

    def test_quick_ablation_panel(self, capsys):
        assert main(["run", "ablation-panel", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "ACEHeterogeneous" in out and "SFCHybrid" in out

    def test_quick_ablation_multiaxis(self, capsys):
        assert main(["run", "ablation-multiaxis", "--quick"]) == 0
        assert "longest-axis" in capsys.readouterr().out

    def test_quick_ablation_forecasters(self, capsys):
        assert main(["run", "ablation-forecasters", "--quick"]) == 0
        assert "MAE" in capsys.readouterr().out

    def test_quick_sweep_heterogeneity(self, capsys):
        assert main(["run", "sweep-heterogeneity", "--quick"]) == 0
        assert "improvement vs load level" in capsys.readouterr().out

    def test_quick_sweep_probe_cost(self, capsys):
        assert main(["run", "sweep-probe-cost", "--quick"]) == 0
        assert "probe" in capsys.readouterr().out
