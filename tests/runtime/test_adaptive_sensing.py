"""Tests for the deviation-driven adaptive sensing policy."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster
from repro.kernels.workloads import paper_rm3d_trace
from repro.partition import ACEHeterogeneous
from repro.runtime import RuntimeConfig, SamrRuntime
from repro.util.errors import SimulationError


def run(horizon: float = 350.0, seed: int = 11, **cfg_kwargs):
    cluster = Cluster.paper_linux_cluster(
        4, seed=seed, dynamic=True, horizon_s=horizon
    )
    runtime = SamrRuntime(
        paper_rm3d_trace(num_regrids=26),
        cluster,
        ACEHeterogeneous(),
        config=RuntimeConfig(
            iterations=120, regrid_interval=5, **cfg_kwargs
        ),
    )
    return runtime.run()


class TestAdaptiveSensing:
    def test_config_guard(self):
        with pytest.raises(SimulationError):
            RuntimeConfig(adaptive_sensing_threshold=0.0)
        with pytest.raises(SimulationError):
            RuntimeConfig(adaptive_sensing_threshold=-1.0)

    def test_senses_when_load_moves(self):
        r = run(adaptive_sensing_threshold=0.2)
        # Initial sense + at least one triggered by each load phase change.
        assert r.num_sensings >= 2

    def test_quiet_cluster_stays_quiet(self):
        """On a static cluster the deviation trigger never fires."""
        cluster = Cluster.paper_linux_cluster(4, seed=3)  # static loads
        runtime = SamrRuntime(
            paper_rm3d_trace(num_regrids=10),
            cluster,
            ACEHeterogeneous(),
            config=RuntimeConfig(
                iterations=40,
                regrid_interval=5,
                adaptive_sensing_threshold=0.2,
            ),
        )
        r = runtime.run()
        assert r.num_sensings == 1  # only the initial probe

    def test_beats_sense_once_under_dynamics(self):
        adaptive = run(adaptive_sensing_threshold=0.2)
        once = run(sensing_interval=0)
        assert adaptive.total_seconds < once.total_seconds

    def test_competitive_with_fixed_at_fewer_probes(self):
        adaptive = run(adaptive_sensing_threshold=0.2)
        fixed = run(sensing_interval=10)
        assert adaptive.num_sensings < fixed.num_sensings
        assert adaptive.total_seconds < 1.1 * fixed.total_seconds

    def test_floor_limits_probe_rate(self):
        eager = run(adaptive_sensing_threshold=0.01)
        floored = run(
            adaptive_sensing_threshold=0.01, sensing_interval=20
        )
        assert floored.num_sensings <= eager.num_sensings
