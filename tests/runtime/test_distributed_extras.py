"""Extra distributed-runtime coverage: sensing during real-kernel runs,
Richardson-criterion runs, and broadcast/collective costs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.amr.ghost import GhostFiller
from repro.amr.hierarchy import GridHierarchy
from repro.amr.regrid import RegridParams
from repro.cluster import Cluster
from repro.comm import SimCommunicator
from repro.kernels.advection import AdvectionKernel
from repro.partition import SFCHybrid
from repro.runtime.distributed import DistributedAmrRun, DistributedRunConfig
from repro.util.geometry import Box


def advection_hierarchy() -> GridHierarchy:
    k = AdvectionKernel(
        velocity=(1.0, 0.5), pulse_center=(8.0, 8.0), pulse_width=2.0
    )
    return GridHierarchy(Box((0, 0), (32, 32)), k, max_levels=3)


class TestDistributedSensing:
    def test_mid_run_sensing_adapts_ownership(self):
        """A dynamic cluster plus periodic sensing changes the assignment
        mid-run, without perturbing the solution."""
        # Tiny hierarchy -> ~2 simulated seconds total; a 1.5 s horizon puts
        # the load swap mid-run.
        cluster = Cluster.paper_linux_cluster(
            4, seed=5, dynamic=True, horizon_s=1.5
        )
        h = advection_hierarchy()
        run = DistributedAmrRun(
            h,
            cluster,
            SFCHybrid(),
            config=DistributedRunConfig(
                steps=9, regrid_interval=3, sensing_interval=3
            ),
        )
        r = run.run()
        assert r.num_sensings >= 3
        caps = np.array(r.capacities_history)
        assert (caps.max(axis=0) - caps.min(axis=0)).max() > 0.02
        # Solution still matches the sequential reference.
        from repro.amr.integrator import BergerOligerIntegrator

        h_ref = advection_hierarchy()
        integ = BergerOligerIntegrator(h_ref, regrid_interval=3)
        integ.setup()
        for _ in range(9):
            integ.advance()
        np.testing.assert_array_equal(
            GhostFiller(h).fetch(h.domain, 0),
            GhostFiller(h_ref).fetch(h_ref.domain, 0),
        )

    def test_richardson_criterion_in_distributed_run(self):
        h = advection_hierarchy()
        run = DistributedAmrRun(
            h,
            Cluster.paper_four_node(),
            SFCHybrid(),
            config=DistributedRunConfig(steps=6, regrid_interval=3),
            regrid_params=RegridParams(
                flag_threshold=1e-4, criterion="richardson"
            ),
        )
        r = run.run()
        assert r.steps == 6
        assert h.num_levels >= 2
        assert h.proper_nesting_ok()


class TestCollectives:
    def test_broadcast_matches_allreduce_cost(self):
        comm = SimCommunicator(Cluster.homogeneous(8))
        assert comm.broadcast_time(1e4) == pytest.approx(
            SimCommunicator(Cluster.homogeneous(8)).allreduce_time(1e4)
        )

    def test_collective_stats_accumulate(self):
        comm = SimCommunicator(Cluster.homogeneous(4))
        comm.allreduce_time(100.0)
        comm.broadcast_time(100.0)
        assert comm.stats.collective_time > 0
