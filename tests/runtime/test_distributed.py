"""Tests for the distributed AMR execution layer.

The centerpiece is *partition invariance*: because ghost filling reads the
composite grid and restriction accumulates in a fixed order, the solution
after N steps is bitwise identical whatever patch layout the partitioner
imposes -- one patch, four ranks' worth of splits, or any other tiling.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.amr.ghost import GhostFiller
from repro.amr.hierarchy import GridHierarchy
from repro.amr.integrator import BergerOligerIntegrator
from repro.cluster import Cluster
from repro.kernels.advection import AdvectionKernel
from repro.kernels.rm3d import RM3DKernel
from repro.partition import ACEComposite, ACEHeterogeneous, SFCHybrid
from repro.runtime.distributed import (
    DistributedAmrRun,
    DistributedRunConfig,
)
from repro.util.errors import SimulationError
from repro.util.geometry import Box


def advection_hierarchy() -> GridHierarchy:
    k = AdvectionKernel(
        velocity=(1.0, 0.5), pulse_center=(8.0, 8.0), pulse_width=2.0
    )
    return GridHierarchy(Box((0, 0), (32, 32)), k, max_levels=3)


def sequential_solution(steps: int = 9) -> np.ndarray:
    h = advection_hierarchy()
    integ = BergerOligerIntegrator(h, regrid_interval=3)
    integ.setup()
    for _ in range(steps):
        integ.advance()
    return GhostFiller(h).fetch(h.domain, 0)


class TestConfig:
    def test_guards(self):
        with pytest.raises(SimulationError):
            DistributedRunConfig(steps=0)
        with pytest.raises(SimulationError):
            DistributedRunConfig(regrid_interval=-1)
        with pytest.raises(SimulationError):
            DistributedRunConfig(sensing_interval=-1)


class TestPartitionInvariance:
    @pytest.mark.parametrize(
        "partitioner", [ACEHeterogeneous(), ACEComposite(), SFCHybrid()],
        ids=lambda p: p.name,
    )
    def test_bitwise_equal_to_sequential(self, partitioner):
        ref = sequential_solution(steps=9)
        h = advection_hierarchy()
        run = DistributedAmrRun(
            h,
            Cluster.paper_four_node(),
            partitioner,
            config=DistributedRunConfig(steps=9, regrid_interval=3),
        )
        run.run()
        got = GhostFiller(h).fetch(h.domain, 0)
        np.testing.assert_array_equal(got, ref)

    def test_rank_count_does_not_matter(self):
        solutions = []
        for n in (1, 2, 8):
            h = advection_hierarchy()
            run = DistributedAmrRun(
                h,
                Cluster.homogeneous(n),
                ACEHeterogeneous(),
                config=DistributedRunConfig(steps=6, regrid_interval=3),
            )
            run.run()
            solutions.append(GhostFiller(h).fetch(h.domain, 0))
        np.testing.assert_array_equal(solutions[0], solutions[1])
        np.testing.assert_array_equal(solutions[0], solutions[2])

    def test_rm3d_invariance(self):
        def make():
            return GridHierarchy(
                Box((0, 0, 0), (16, 8, 8)),
                RM3DKernel(domain_shape=(16, 8, 8)),
                max_levels=2,
            )

        h_seq = make()
        integ = BergerOligerIntegrator(h_seq, regrid_interval=2, cfl=0.3)
        integ.setup()
        for _ in range(4):
            integ.advance()
        h_dist = make()
        DistributedAmrRun(
            h_dist,
            Cluster.paper_four_node(),
            ACEHeterogeneous(),
            config=DistributedRunConfig(steps=4, regrid_interval=2, cfl=0.3),
        ).run()
        np.testing.assert_array_equal(
            GhostFiller(h_seq).fetch(h_seq.domain, 0),
            GhostFiller(h_dist).fetch(h_dist.domain, 0),
        )


class TestAccounting:
    def test_counters_and_time(self):
        h = advection_hierarchy()
        run = DistributedAmrRun(
            h,
            Cluster.paper_four_node(),
            ACEHeterogeneous(),
            config=DistributedRunConfig(steps=7, regrid_interval=3),
        )
        r = run.run()
        assert r.steps == 7
        # Setup regrid + regrids at steps 3 and 6.
        assert r.num_regrids == 3
        assert r.total_seconds > 0
        assert len(r.step_seconds) == 7
        assert r.num_sensings == 1  # sense-once default
        assert r.sensing_seconds > 0

    def test_loads_track_capacity(self):
        h = advection_hierarchy()
        run = DistributedAmrRun(
            h,
            Cluster.paper_four_node(),
            ACEHeterogeneous(),
            config=DistributedRunConfig(steps=3, regrid_interval=5),
        )
        r = run.run()
        loads = r.loads_history[0]
        shares = loads / loads.sum()
        caps = r.capacities_history[0]
        np.testing.assert_allclose(shares, caps, atol=0.06)

    def test_sensing_interval_counts(self):
        h = advection_hierarchy()
        run = DistributedAmrRun(
            h,
            Cluster.paper_four_node(),
            ACEHeterogeneous(),
            config=DistributedRunConfig(
                steps=9, regrid_interval=3, sensing_interval=4
            ),
        )
        r = run.run()
        assert r.num_sensings == 3  # start + steps 4 and 8

    def test_capacity_aware_is_faster_on_loaded_cluster(self):
        """The headline effect, with the *real* kernel end to end."""
        times = {}
        for part in (ACEHeterogeneous(), ACEComposite()):
            h = advection_hierarchy()
            run = DistributedAmrRun(
                h,
                Cluster.paper_four_node(),
                part,
                config=DistributedRunConfig(steps=10, regrid_interval=5),
            )
            times[part.name] = run.run().total_seconds
        assert times["ACEHeterogeneous"] < times["ACEComposite"]


class TestRepatchLevel:
    def test_level0_repatch_preserves_data(self):
        h = advection_hierarchy()
        h.initialize()
        before = GhostFiller(h).fetch(h.domain, 0).copy()
        left, right = h.domain.halve()
        from repro.util.geometry import BoxList

        h.repatch_level(0, BoxList([left, right]))
        assert len(h.levels[0]) == 2
        np.testing.assert_array_equal(GhostFiller(h).fetch(h.domain, 0), before)

    def test_repatch_guards(self):
        from repro.util.geometry import BoxList

        h = advection_hierarchy()
        h.initialize()
        with pytest.raises(Exception):
            h.repatch_level(3, BoxList([h.domain]))  # no such level
        with pytest.raises(Exception):
            # coverage change (half the domain) is rejected
            h.repatch_level(0, BoxList([h.domain.halve()[0]]))
        with pytest.raises(Exception):
            # wrong level on the boxes
            h.repatch_level(0, BoxList([h.domain.refine(2)]))
