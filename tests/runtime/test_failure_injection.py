"""Failure injection: the runtime must degrade gracefully, not crash.

Scenarios from DESIGN.md section 6: node capacity collapse mid-run, flaky
monitor probes, and degenerate hierarchies (single huge box, all-minimum
boxes, one box per rank short).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import Cluster, NodeSpec, SyntheticLoadGenerator
from repro.kernels.workloads import SyntheticWorkload, paper_rm3d_trace
from repro.monitor import ResourceMonitor
from repro.partition import ACEComposite, ACEHeterogeneous
from repro.runtime import RuntimeConfig, SamrRuntime
from repro.util.geometry import Box, BoxList


def single_box_workload(side: int = 32, epochs: int = 4) -> SyntheticWorkload:
    dom = Box((0, 0), (side, side))
    return SyntheticWorkload(
        name="one-box",
        domain=dom,
        refine_factor=2,
        box_lists=tuple(BoxList([dom]) for _ in range(epochs)),
    )


def confetti_workload(tiles: int = 8, epochs: int = 3) -> SyntheticWorkload:
    """Many minimum-size boxes: nothing is splittable."""
    dom = Box((0, 0), (2 * tiles, 2))
    boxes = BoxList(
        [Box((2 * i, 0), (2 * i + 2, 2)) for i in range(tiles)]
    )
    return SyntheticWorkload(
        name="confetti", domain=dom, refine_factor=2,
        box_lists=tuple(boxes for _ in range(epochs)),
    )


class TestNodeCollapse:
    def test_capacity_collapse_mid_run(self):
        """A node dropping to ~zero effective speed mid-run must not stall
        the loop, and dynamic sensing must shift work off it."""
        cluster = Cluster.homogeneous(4)
        cluster.add_load_generator(
            SyntheticLoadGenerator(
                node=2, start_time=30.0, ramp_rate=50.0,
                target_level=40.0,  # ~97% capacity loss
                memory_per_unit_mb=10.0,
            )
        )
        rt = SamrRuntime(
            paper_rm3d_trace(num_regrids=20),
            cluster,
            ACEHeterogeneous(),
            config=RuntimeConfig(
                iterations=60, regrid_interval=5, sensing_interval=5
            ),
        )
        result = rt.run()
        assert result.iterations == 60
        # After the collapse, node 2's share shrinks dramatically.
        first = result.regrids[0].loads
        last = result.regrids[-1].loads
        share_before = first[2] / first.sum()
        share_after = last[2] / last.sum()
        assert share_after < 0.4 * share_before

    def test_collapse_blind_baseline_still_terminates(self):
        cluster = Cluster.homogeneous(2)
        cluster.add_load_generator(
            SyntheticLoadGenerator(
                node=0, start_time=5.0, ramp_rate=100.0, target_level=30.0
            )
        )
        rt = SamrRuntime(
            paper_rm3d_trace(num_regrids=5),
            cluster,
            ACEComposite(),
            config=RuntimeConfig(iterations=10, regrid_interval=5),
        )
        result = rt.run()
        assert result.total_seconds > 0


class TestFlakyMonitor:
    def test_runtime_survives_probe_failures(self):
        cluster = Cluster.paper_linux_cluster(4, seed=3)
        monitor = ResourceMonitor(cluster, failure_rate=0.6, seed=9)
        rt = SamrRuntime(
            paper_rm3d_trace(num_regrids=8),
            cluster,
            ACEHeterogeneous(),
            monitor=monitor,
            config=RuntimeConfig(
                iterations=30, regrid_interval=5, sensing_interval=5
            ),
        )
        result = rt.run()
        assert result.iterations == 30
        assert result.num_sensings >= 6
        # Capacities stay well-formed despite failed probes.
        for _, caps in result.capacity_history:
            assert caps.sum() == pytest.approx(1.0)
            assert (caps >= 0).all()

    def test_all_probes_failing_uses_fallbacks(self):
        cluster = Cluster.homogeneous(3)
        monitor = ResourceMonitor(cluster, failure_rate=0.999, seed=1)
        snap = monitor.probe_all()
        assert snap.stale_nodes  # everything stale
        assert (snap.cpu > 0).all()  # optimistic defaults, not garbage


class TestDegenerateWorkloads:
    def test_single_huge_box_gets_carved(self):
        rt = SamrRuntime(
            single_box_workload(),
            Cluster.paper_four_node(),
            ACEHeterogeneous(),
            config=RuntimeConfig(iterations=8, regrid_interval=4),
        )
        result = rt.run()
        loads = result.regrids[0].loads
        assert (loads > 0).all()  # every rank got a piece of the one box
        shares = loads / loads.sum()
        caps = result.regrids[0].capacities
        np.testing.assert_allclose(shares, caps, atol=0.1)

    def test_unsplittable_confetti(self):
        """All-minimum boxes: no splits possible, loop still balances by
        counting and terminates."""
        rt = SamrRuntime(
            confetti_workload(tiles=8),
            Cluster.paper_four_node(),
            ACEHeterogeneous(),
            config=RuntimeConfig(iterations=6, regrid_interval=3),
        )
        result = rt.run()
        assert result.iterations == 6
        assert result.regrids[0].num_splits == 0

    def test_fewer_boxes_than_ranks(self):
        """One unsplittable box on an 8-rank cluster: someone gets it,
        everyone else idles, nothing crashes."""
        rt = SamrRuntime(
            confetti_workload(tiles=1),
            Cluster.homogeneous(8),
            ACEHeterogeneous(),
            config=RuntimeConfig(iterations=4, regrid_interval=2),
        )
        result = rt.run()
        loads = result.regrids[0].loads
        assert (loads > 0).sum() == 1

    def test_zero_capacity_rank_gets_no_work(self):
        """A node with (near) zero capacity should receive (near) zero work
        while others absorb its share."""
        cluster = Cluster(
            [
                NodeSpec(name="dead", cpu_speed=1.0, memory_mb=1e-6,
                         bandwidth_mbps=1e-6, os_overhead=0.99),
                NodeSpec(name="a"),
                NodeSpec(name="b"),
            ]
        )
        rt = SamrRuntime(
            paper_rm3d_trace(num_regrids=4),
            cluster,
            ACEHeterogeneous(),
            config=RuntimeConfig(iterations=4, regrid_interval=2),
        )
        result = rt.run()
        loads = result.regrids[0].loads
        assert loads[0] < 0.05 * loads.sum()
