"""Tests for the SamrRuntime loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.kernels.workloads import moving_blob_trace, paper_rm3d_trace
from repro.partition import ACEComposite, ACEHeterogeneous
from repro.runtime import RuntimeConfig, SamrRuntime
from repro.util.errors import SimulationError


def small_workload():
    return moving_blob_trace(domain_shape=(32, 32), num_regrids=6, max_levels=2)


class TestConfig:
    def test_guards(self):
        with pytest.raises(SimulationError):
            RuntimeConfig(iterations=0)
        with pytest.raises(SimulationError):
            RuntimeConfig(regrid_interval=0)
        with pytest.raises(SimulationError):
            RuntimeConfig(sensing_interval=-1)


class TestLoop:
    def test_iteration_and_regrid_counts(self):
        rt = SamrRuntime(
            small_workload(),
            Cluster.homogeneous(2),
            ACEHeterogeneous(),
            config=RuntimeConfig(iterations=12, regrid_interval=4),
        )
        r = rt.run()
        assert r.iterations == 12
        assert len(r.iteration_times) == 12
        # Initial partition + regrids at iterations 4 and 8.
        assert len(r.regrids) == 3
        assert [rec.iteration for rec in r.regrids] == [0, 4, 8]
        assert all(rec.trigger == "regrid" for rec in r.regrids)

    def test_sensing_counts_and_overhead(self):
        c = Cluster.homogeneous(2)
        rt = SamrRuntime(
            small_workload(),
            c,
            ACEHeterogeneous(),
            config=RuntimeConfig(
                iterations=12, regrid_interval=4, sensing_interval=6
            ),
        )
        r = rt.run()
        # Initial sense + iteration 6 (iteration 12 never runs).
        assert r.num_sensings == 2
        assert r.sensing_seconds == pytest.approx(2 * (0.5 + 0.02 * 2))
        # The sense at iteration 6 is not a regrid point -> extra record.
        triggers = [rec.trigger for rec in r.regrids]
        assert "sense" in triggers

    def test_sense_once_default(self):
        rt = SamrRuntime(
            small_workload(),
            Cluster.homogeneous(2),
            ACEHeterogeneous(),
            config=RuntimeConfig(iterations=10, regrid_interval=5),
        )
        r = rt.run()
        assert r.num_sensings == 1
        assert len(r.capacity_history) == 1

    def test_total_time_is_clock_time(self):
        c = Cluster.homogeneous(3)
        rt = SamrRuntime(
            small_workload(),
            c,
            ACEHeterogeneous(),
            config=RuntimeConfig(iterations=6, regrid_interval=3),
        )
        r = rt.run()
        assert r.total_seconds == pytest.approx(c.clock.now)
        assert r.total_seconds > 0
        assert r.total_seconds >= sum(r.iteration_times)

    def test_deterministic_replay(self):
        def go():
            return SamrRuntime(
                small_workload(),
                Cluster.paper_linux_cluster(4, seed=3),
                ACEHeterogeneous(),
                config=RuntimeConfig(iterations=10, regrid_interval=5),
            ).run()

        a, b = go(), go()
        assert a.total_seconds == b.total_seconds
        np.testing.assert_array_equal(a.loads_by_regrid(), b.loads_by_regrid())

    def test_hdda_tracks_assignment(self):
        rt = SamrRuntime(
            small_workload(),
            Cluster.homogeneous(2),
            ACEHeterogeneous(),
            config=RuntimeConfig(iterations=4, regrid_interval=2),
        )
        rt.run()
        rt.hdda.check_invariants()
        assert rt.hdda.total_blocks > 0

    def test_migration_seconds_accumulate_under_churn(self):
        """Sensing-triggered repartitions on a changing cluster move data."""
        c = Cluster.paper_linux_cluster(4, seed=5, dynamic=True, horizon_s=100.0)
        rt = SamrRuntime(
            paper_rm3d_trace(num_regrids=10),
            c,
            ACEHeterogeneous(),
            config=RuntimeConfig(
                iterations=20, regrid_interval=5, sensing_interval=2
            ),
        )
        r = rt.run()
        assert r.migration_seconds > 0
        assert any(rec.migration_bytes > 0 for rec in r.regrids)

    def test_forecast_mode_smooths_noisy_probes(self):
        """With noisy sensors, forecast-driven capacities are steadier
        than raw-probe capacities on a static cluster."""
        from repro.monitor import ResourceMonitor

        def run(use_forecast: bool):
            c = Cluster.paper_linux_cluster(4, seed=3)
            rt = SamrRuntime(
                small_workload(),
                c,
                ACEHeterogeneous(),
                monitor=ResourceMonitor(
                    c, noise=0.3, forecaster="median", seed=4
                ),
                config=RuntimeConfig(
                    iterations=24,
                    regrid_interval=4,
                    sensing_interval=2,
                    use_forecast=use_forecast,
                ),
            )
            r = rt.run()
            caps = np.array([c for _, c in r.capacity_history])
            return caps.std(axis=0).mean()

        assert run(True) < run(False)

    def test_repartition_on_sense_disabled(self):
        rt = SamrRuntime(
            small_workload(),
            Cluster.homogeneous(2),
            ACEHeterogeneous(),
            config=RuntimeConfig(
                iterations=12,
                regrid_interval=4,
                sensing_interval=6,
                repartition_on_sense=False,
            ),
        )
        r = rt.run()
        assert all(rec.trigger == "regrid" for rec in r.regrids)

    def test_capacity_blind_partitioner_ignores_sensing(self):
        """ACEComposite runs fine in the same loop (baseline config)."""
        rt = SamrRuntime(
            small_workload(),
            Cluster.paper_linux_cluster(4, seed=2),
            ACEComposite(),
            config=RuntimeConfig(iterations=10, regrid_interval=5),
        )
        r = rt.run()
        shares = r.regrids[0].loads / r.regrids[0].loads.sum()
        np.testing.assert_allclose(shares, 0.25, atol=0.05)


class TestHeadlineEffects:
    def test_system_sensitive_beats_default_on_loaded_cluster(self):
        """The paper's core claim, end to end through the runtime."""
        w = paper_rm3d_trace(num_regrids=8)
        times = {}
        for name, part in (
            ("het", ACEHeterogeneous()),
            ("comp", ACEComposite()),
        ):
            rt = SamrRuntime(
                w,
                Cluster.paper_linux_cluster(8, seed=7),
                part,
                config=RuntimeConfig(iterations=20, regrid_interval=5),
            )
            times[name] = rt.run().total_seconds
        assert times["het"] < times["comp"]

    def test_no_advantage_on_homogeneous_cluster(self):
        """On an unloaded homogeneous cluster the two schemes tie (within
        a small tolerance from splitting granularity)."""
        w = paper_rm3d_trace(num_regrids=8)
        times = {}
        for name, part in (
            ("het", ACEHeterogeneous()),
            ("comp", ACEComposite()),
        ):
            rt = SamrRuntime(
                w,
                Cluster.homogeneous(4),
                part,
                config=RuntimeConfig(iterations=20, regrid_interval=5),
            )
            times[name] = rt.run().total_seconds
        assert times["het"] == pytest.approx(times["comp"], rel=0.1)

    def test_dynamic_sensing_beats_sense_once_under_dynamics(self):
        w = paper_rm3d_trace(num_regrids=20)
        times = {}
        for name, interval in (("dyn", 10), ("once", 0)):
            # Horizon chosen so the load swap lands mid-run (~150 s total).
            c = Cluster.paper_linux_cluster(
                4, seed=5, dynamic=True, horizon_s=120.0
            )
            rt = SamrRuntime(
                w,
                c,
                ACEHeterogeneous(),
                config=RuntimeConfig(
                    iterations=80, regrid_interval=5, sensing_interval=interval
                ),
            )
            times[name] = rt.run().total_seconds
        assert times["dyn"] < times["once"]

    def test_imbalance_gap_on_fixed_capacity_cluster(self):
        """Fig. 10's effect through the runtime: the default partitioner's
        imbalance against capacity targets dwarfs the system-sensitive one."""
        w = paper_rm3d_trace(num_regrids=6)
        recs = {}
        for name, part in (
            ("het", ACEHeterogeneous()),
            ("comp", ACEComposite()),
        ):
            c = Cluster.paper_four_node()
            rt = SamrRuntime(
                w, c, part, config=RuntimeConfig(iterations=30, regrid_interval=5)
            )
            recs[name] = rt.run()
        assert recs["het"].max_imbalance < 40.0  # paper's bound
        assert recs["comp"].mean_imbalance > 2 * recs["het"].mean_imbalance
