"""Tests for the execution-time model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import Cluster, SyntheticLoadGenerator
from repro.runtime.timemodel import TimeModel
from repro.util.errors import SimulationError


class TestIterationCost:
    def test_compute_scales_with_load_and_speed(self):
        c = Cluster.homogeneous(2)
        tm = TimeModel(c, seconds_per_work_unit=1e-3)
        cost = tm.iteration_cost(np.array([1000.0, 2000.0]), {})
        assert cost.compute[1] == pytest.approx(2 * cost.compute[0])
        assert cost.compute[0] == pytest.approx(1000 * 1e-3 / 0.97)

    def test_loaded_node_slows_down(self):
        c = Cluster.homogeneous(2)
        c.add_load_generator(
            SyntheticLoadGenerator(node=0, ramp_rate=10.0, target_level=1.0)
        )
        c.clock.advance(5.0)
        tm = TimeModel(c, seconds_per_work_unit=1e-3)
        cost = tm.iteration_cost(np.array([1000.0, 1000.0]), {})
        assert cost.compute[0] == pytest.approx(2 * cost.compute[1])

    def test_total_is_max_plus_sync(self):
        c = Cluster.homogeneous(4)
        tm = TimeModel(c, seconds_per_work_unit=1e-3)
        cost = tm.iteration_cost(np.array([100.0, 400.0, 200.0, 300.0]), {})
        assert cost.total == pytest.approx(
            float((cost.compute + cost.comm).max()) + cost.sync
        )
        assert cost.sync > 0  # 4 ranks -> log-tree reduction costs something

    def test_comm_included(self):
        c = Cluster.homogeneous(2)
        tm = TimeModel(c, seconds_per_work_unit=1e-9)
        quiet = tm.iteration_cost(np.array([1.0, 1.0]), {})
        chatty = TimeModel(c, seconds_per_work_unit=1e-9).iteration_cost(
            np.array([1.0, 1.0]), {(0, 1): 1e7}
        )
        assert chatty.total > quiet.total

    def test_guards(self):
        c = Cluster.homogeneous(2)
        with pytest.raises(SimulationError):
            TimeModel(c, seconds_per_work_unit=0.0)
        tm = TimeModel(c)
        with pytest.raises(SimulationError):
            tm.iteration_cost(np.array([1.0]), {})
        with pytest.raises(SimulationError):
            tm.iteration_cost(np.array([-1.0, 1.0]), {})

    def test_migration_cost(self):
        c = Cluster.homogeneous(2)
        tm = TimeModel(c)
        assert tm.migration_cost({}) == 0.0
        t = tm.migration_cost({(0, 1): int(12.5e6)})
        assert t == pytest.approx(1.0, rel=0.01)  # 12.5 MB at 100 Mbit/s


class TestPerLevelCost:
    def test_balanced_levels_match_bulk(self):
        """When every level is perfectly balanced, per-level sync costs the
        same compute as bulk (just more sync rounds)."""
        c = Cluster.homogeneous(2)
        tm = TimeModel(c, seconds_per_work_unit=1e-3)
        level_loads = np.array([[100.0, 100.0], [400.0, 400.0]])
        bulk = tm.iteration_cost(level_loads.sum(axis=0), {})
        per = tm.iteration_cost_per_level(level_loads, np.array([1, 2]), {})
        assert per.total - per.sync == pytest.approx(
            bulk.total - bulk.sync, rel=1e-9
        )

    def test_level_imbalance_punished(self):
        """Equal totals but skewed levels: per-level sync is slower."""
        c = Cluster.homogeneous(2)
        tm = TimeModel(c, seconds_per_work_unit=1e-3)
        # Rank 0 does all of level 0, rank 1 all of level 1; totals equal.
        skewed = np.array([[400.0, 0.0], [0.0, 400.0]])
        balanced = np.array([[200.0, 200.0], [200.0, 200.0]])
        subs = np.array([1, 2])
        t_skew = tm.iteration_cost_per_level(skewed, subs, {}).total
        t_bal = tm.iteration_cost_per_level(balanced, subs, {}).total
        assert t_skew > 1.5 * t_bal
        # Bulk sync would not see the difference.
        b_skew = tm.iteration_cost(skewed.sum(axis=0), {}).total
        b_bal = tm.iteration_cost(balanced.sum(axis=0), {}).total
        assert b_skew == pytest.approx(b_bal)

    def test_guards(self):
        c = Cluster.homogeneous(2)
        tm = TimeModel(c)
        with pytest.raises(SimulationError):
            tm.iteration_cost_per_level(np.zeros((2, 3)), np.array([1, 2]), {})
        with pytest.raises(SimulationError):
            tm.iteration_cost_per_level(
                np.full((1, 2), -1.0), np.array([1]), {}
            )
        with pytest.raises(SimulationError):
            tm.iteration_cost_per_level(
                np.ones((2, 2)), np.array([1]), {}
            )
        with pytest.raises(SimulationError):
            tm.iteration_cost_per_level(
                np.ones((1, 2)), np.array([0]), {}
            )


class TestSyncModeConfig:
    def test_bad_sync_mode_rejected(self):
        from repro.runtime import RuntimeConfig

        with pytest.raises(SimulationError):
            RuntimeConfig(sync_mode="chaotic")
