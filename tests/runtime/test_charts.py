"""Tests for ASCII chart rendering."""

from __future__ import annotations

import pytest

from repro.runtime.charts import bar_chart, line_chart


class TestLineChart:
    def test_basic_render(self):
        out = line_chart(
            {"a": [1, 2, 3], "b": [3, 2, 1]},
            title="t", x_label="x", y_label="y",
        )
        assert "t" in out
        assert "o=a" in out and "x=b" in out
        assert "y" in out
        # Top label is the max, bottom the min.
        first_grid_line = out.splitlines()[1]
        assert first_grid_line.strip().startswith("3")

    def test_extremes_plotted_at_edges(self):
        out = line_chart({"s": [0.0, 10.0]}, width=20, height=5)
        rows = out.splitlines()
        assert rows[0].rstrip().endswith("o")  # max at top-right
        assert rows[4].split("|")[1].startswith("o")  # min at bottom-left

    def test_constant_series_ok(self):
        out = line_chart({"c": [5, 5, 5]})
        assert "o=c" in out

    def test_custom_x(self):
        out = line_chart({"s": [1, 2]}, x=[4, 32])
        assert "4" in out and "32" in out

    def test_guards(self):
        with pytest.raises(ValueError):
            line_chart({})
        with pytest.raises(ValueError):
            line_chart({"a": [1], "b": [1, 2]})
        with pytest.raises(ValueError):
            line_chart({"a": []})
        with pytest.raises(ValueError):
            line_chart({"a": [1, 2]}, x=[1])


class TestBarChart:
    def test_basic_render(self):
        out = bar_chart({"one": 1.0, "two": 2.0}, width=10, unit="s")
        lines = out.splitlines()
        assert lines[0].startswith("one")
        assert lines[1].count("#") == 10  # max fills the width
        assert lines[0].count("#") == 5
        assert "1s" in lines[0]

    def test_title(self):
        assert bar_chart({"a": 1.0}, title="hello").startswith("hello")

    def test_zero_values_ok(self):
        out = bar_chart({"z": 0.0})
        assert "#" in out  # minimum one tick

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({})
