"""Golden-trace replay guard for the repartition pipeline.

The :class:`~repro.runtime.pipeline.RepartitionPipeline` extraction must
not change a single observable byte of telemetry: the PR-2 dashboard,
:class:`~repro.telemetry.analysis.HealthMonitor` and the bench-diff
tooling all replay traces recorded by earlier versions.  These tests run
two instrumented scenarios -- a fig10-style :class:`SamrRuntime` run and a
:class:`DistributedAmrRun` -- and compare every *deterministic* field of
the resulting trace (span tree over simulated time, span attributes,
events, health snapshots and anomaly events, metric aggregates) against
golden JSON captured before the pipeline existed.

Wall-clock fields are excluded; everything else must match exactly.

Regenerate the goldens (only when telemetry output changes on purpose)::

    PYTHONPATH=src python tests/runtime/test_pipeline_replay.py --regen
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import numpy as np

from repro.cluster import Cluster
from repro.kernels.advection import AdvectionKernel
from repro.amr.hierarchy import GridHierarchy
from repro.kernels.workloads import paper_rm3d_trace
from repro.partition import ACEHeterogeneous
from repro.runtime import RuntimeConfig, SamrRuntime
from repro.runtime.distributed import DistributedAmrRun, DistributedRunConfig
from repro.telemetry import HealthMonitor, Tracer, metrics_summary
from repro.util.geometry import Box

DATA_DIR = Path(__file__).parent / "data"
ENGINE_GOLDEN = DATA_DIR / "golden_engine_trace.json"
DISTRIBUTED_GOLDEN = DATA_DIR / "golden_distributed_trace.json"


# ---------------------------------------------------------------------------
# Canonicalization: keep deterministic fields only
# ---------------------------------------------------------------------------
def _canon_value(value):
    """JSON-stable form of a span/event attribute value."""
    if isinstance(value, np.ndarray):
        return [_canon_value(v) for v in value.tolist()]
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (list, tuple)):
        return [_canon_value(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _canon_value(v) for k, v in value.items()}
    return value


def canonical_trace(tracer, monitor) -> dict:
    """Deterministic projection of one instrumented run.

    Includes the full span sequence over simulated time, all events, the
    health monitor's snapshots and anomaly events, and the sim-side metric
    aggregates.  Excludes every wall-clock quantity.
    """
    spans = [
        {
            "name": s.name,
            "span_id": s.span_id,
            "parent_id": s.parent_id,
            "pid": s.pid,
            "rank": s.rank,
            "start_sim": s.start_sim,
            "end_sim": s.end_sim,
            "attributes": _canon_value(s.attributes),
        }
        for s in tracer.spans
    ]
    events = [
        {
            "name": e.name,
            "pid": e.pid,
            "rank": e.rank,
            "sim": e.sim,
            "attributes": _canon_value(e.attributes),
        }
        for e in tracer.events
    ]
    summary = metrics_summary(tracer)
    phases = {
        name: {"count": agg["count"], "sim_seconds": agg["sim_seconds"]}
        for name, agg in summary["phases"].items()
    }
    return {
        "spans": spans,
        "events": events,
        "run_labels": {str(k): v for k, v in tracer.run_labels.items()},
        "phases": phases,
        "metrics": _canon_value(summary["metrics"]),
        "health_snapshots": [
            _canon_value(s.to_dict()) for s in monitor.snapshots
        ],
        "health_events": [_canon_value(e.to_dict()) for e in monitor.events],
    }


# ---------------------------------------------------------------------------
# Scenario builders
# ---------------------------------------------------------------------------
def engine_trace() -> dict:
    """Fig10-style run (paper 4-node cluster) plus a sensing-driven stretch
    on a dynamic cluster, fully instrumented."""
    tracer = Tracer()
    monitor = HealthMonitor().attach(tracer)

    # Fig. 10 shape: fixed capacities, sense once, regrid every 5.
    runtime = SamrRuntime(
        paper_rm3d_trace(num_regrids=6),
        Cluster.paper_four_node(),
        ACEHeterogeneous(),
        config=RuntimeConfig(
            iterations=30, regrid_interval=5, sensing_interval=0
        ),
        tracer=tracer,
    )
    runtime.run()

    # Dynamic cluster with periodic sensing: exercises the sense-triggered
    # repartition path and the forecast branch.
    runtime = SamrRuntime(
        paper_rm3d_trace(num_regrids=5),
        Cluster.paper_linux_cluster(4, seed=5, dynamic=True, horizon_s=400.0),
        ACEHeterogeneous(),
        config=RuntimeConfig(
            iterations=15,
            regrid_interval=5,
            sensing_interval=3,
            use_forecast=True,
        ),
        tracer=tracer,
    )
    runtime.run()
    monitor.finish()
    return canonical_trace(tracer, monitor)


def distributed_trace() -> dict:
    """A real AMR kernel driven by DistributedAmrRun, instrumented."""
    tracer = Tracer()
    monitor = HealthMonitor().attach(tracer)
    kernel = AdvectionKernel(
        velocity=(1.0, 0.5), pulse_center=(8.0, 8.0), pulse_width=2.0
    )
    hierarchy = GridHierarchy(Box((0, 0), (32, 32)), kernel, max_levels=3)
    run = DistributedAmrRun(
        hierarchy,
        Cluster.paper_linux_cluster(4, seed=11),
        ACEHeterogeneous(),
        config=DistributedRunConfig(
            steps=9, regrid_interval=3, sensing_interval=3
        ),
        tracer=tracer,
    )
    run.run()
    monitor.finish()
    return canonical_trace(tracer, monitor)


def _assert_matches_golden(actual: dict, path: Path) -> None:
    golden = json.loads(path.read_text())
    # Compare section by section for actionable failure output.
    for key in golden:
        assert actual[key] == golden[key], (
            f"telemetry drift in {path.name}:{key} -- the repartition "
            "pipeline no longer reproduces the pre-refactor trace"
        )
    assert set(actual) == set(golden)


def test_engine_trace_matches_golden():
    _assert_matches_golden(engine_trace(), ENGINE_GOLDEN)


def test_distributed_trace_matches_golden():
    _assert_matches_golden(distributed_trace(), DISTRIBUTED_GOLDEN)


def _regen() -> None:
    DATA_DIR.mkdir(exist_ok=True)
    for path, build in (
        (ENGINE_GOLDEN, engine_trace),
        (DISTRIBUTED_GOLDEN, distributed_trace),
    ):
        path.write_text(json.dumps(build(), indent=1) + "\n")
        print(f"wrote {path}")


if __name__ == "__main__":
    if "--regen" in sys.argv:
        _regen()
    else:
        print(__doc__)
