"""Tests for the experiment builders and reporting (small configurations)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime import experiment as ex
from repro.runtime import reporting as rep
from repro.util.errors import ExperimentError


class TestRegistry:
    def test_make_partitioner(self):
        assert ex.make_partitioner("heterogeneous").name == "ACEHeterogeneous"
        assert ex.make_partitioner("composite").name == "ACEComposite"
        assert ex.make_partitioner("hybrid").name == "SFCHybrid"
        assert ex.make_partitioner("greedy").name == "GreedyLPT"
        assert ex.make_partitioner("graph").name == "GraphPartitioner"
        with pytest.raises(ExperimentError):
            ex.make_partitioner("magic")


class TestFig7Table1:
    def test_shape_and_report(self):
        data = ex.execution_time_comparison(
            processor_counts=(4, 8), iterations=10, seeds=(7,)
        )
        assert [r["procs"] for r in data["rows"]] == [4, 8]
        for row in data["rows"]:
            assert row["system_sensitive_s"] > 0
            assert row["default_s"] > 0
        # System-sensitive wins on the loaded cluster.
        assert all(r["improvement_pct"] > 0 for r in data["rows"])
        text = rep.format_fig7_table1(data)
        assert "Fig. 7" in text and "improvement" in text


class TestFigs8To10:
    def test_default_assigns_equally(self):
        data = ex.load_assignment_tracking("composite", num_regrids=3)
        loads = np.asarray(data["loads"])
        shares = loads / loads.sum(axis=1, keepdims=True)
        np.testing.assert_allclose(shares, 0.25, atol=0.03)

    def test_heterogeneous_tracks_capacities(self):
        data = ex.load_assignment_tracking("heterogeneous", num_regrids=3)
        loads = np.asarray(data["loads"])
        shares = loads / loads.sum(axis=1, keepdims=True)
        caps = np.asarray(data["capacities"])
        np.testing.assert_allclose(
            shares, np.tile(caps, (len(loads), 1)), atol=0.04
        )
        np.testing.assert_allclose(caps, ex.PAPER_CAPACITIES, atol=0.01)

    def test_imbalance_comparison_gap(self):
        data = ex.imbalance_comparison(num_regrids=3)
        assert (data["default"] > data["system_sensitive"]).all()
        assert data["system_sensitive"].max() < 40.0
        text = rep.format_imbalance(data)
        assert "Fig. 10" in text

    def test_reports_render(self):
        for name in ("composite", "heterogeneous"):
            text = rep.format_load_assignment(
                ex.load_assignment_tracking(name, num_regrids=2)
            )
            assert "work-load assignment" in text


class TestDynamicExperiments:
    def test_dynamic_allocation_trace(self):
        data = ex.dynamic_allocation_trace(num_sensings=2, iterations=20)
        assert len(data["iterations"]) >= 4
        caps = np.array([c for c in data["capacities"]])
        # Capacities change at least once during the run.
        assert not np.allclose(caps.min(axis=0), caps.max(axis=0))
        text = rep.format_dynamic_allocation(data)
        assert "Fig. 11" in text

    def test_dynamic_vs_static_sensing_small(self):
        data = ex.dynamic_vs_static_sensing(
            processor_counts=(4,), iterations=60, seeds=(5,)
        )
        row = data["rows"][0]
        assert row["once_s"] > row["dynamic_s"]
        assert "Table II" in rep.format_table2(data)

    def test_sensing_frequency_sweep_small(self):
        data = ex.sensing_frequency_sweep(
            frequencies=(10, 40), iterations=60, seeds=(5,)
        )
        assert len(data["rows"]) == 2
        assert all(r["seconds"] > 0 for r in data["rows"])
        assert "Table III" in rep.format_table3(data)

    def test_sensing_frequency_traces_small(self):
        data = ex.sensing_frequency_traces(
            frequencies=(10, 20), iterations=40
        )
        assert set(data["traces"]) == {10, 20}
        text = rep.format_frequency_traces(data)
        assert "Fig. 12" in text and "Fig. 13" in text
