"""Tests for the geometric multigrid Poisson solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.solvers import PoissonMultigrid
from repro.solvers.multigrid import MultigridError


def manufactured_2d(n: int):
    """u = sin(pi x) sin(pi y) on [0,1]^2, f = 2 pi^2 u, u=0 on boundary."""
    dx = 1.0 / n
    x = (np.arange(n) + 0.5) * dx
    X, Y = np.meshgrid(x, x, indexing="ij")
    u = np.sin(np.pi * X) * np.sin(np.pi * Y)
    return u, 2 * np.pi**2 * u, dx


class TestConstruction:
    def test_level_hierarchy(self):
        mg = PoissonMultigrid((64, 64), dx=1.0 / 64)
        assert mg.num_levels == 6
        assert mg.level_shapes[-1] == (2, 2)

    def test_non_power_of_two_stops_early(self):
        mg = PoissonMultigrid((12, 12))
        assert mg.level_shapes == [(12, 12), (6, 6), (3, 3)][: mg.num_levels]

    def test_guards(self):
        with pytest.raises(MultigridError):
            PoissonMultigrid((0, 4))
        with pytest.raises(MultigridError):
            PoissonMultigrid((4, 4, 4, 4))
        with pytest.raises(MultigridError):
            PoissonMultigrid((4, 4), dx=0.0)
        with pytest.raises(MultigridError):
            PoissonMultigrid((4, 4), coarse_sweeps=0)

    def test_rhs_shape_checked(self):
        mg = PoissonMultigrid((8, 8))
        with pytest.raises(MultigridError):
            mg.solve(np.zeros((4, 4)))
        with pytest.raises(MultigridError):
            mg.solve(np.zeros((8, 8)), u0=np.zeros((4, 4)))


class TestConvergence:
    def test_manufactured_solution_2d(self):
        u_exact, f, dx = manufactured_2d(64)
        mg = PoissonMultigrid((64, 64), dx=dx)
        u, info = mg.solve(f, tol=1e-10)
        assert info["converged"]
        # Discretization error of the 5-point stencil is O(dx^2).
        assert np.abs(u - u_exact).max() < 5 * dx**2

    def test_vcycle_contraction(self):
        """Residual shrinks by a healthy multigrid factor each cycle."""
        _, f, dx = manufactured_2d(64)
        mg = PoissonMultigrid((64, 64), dx=dx)
        _, info = mg.solve(f, tol=0.0, max_cycles=6)
        res = info["residuals"]
        for a, b in zip(res[1:], res[2:]):
            assert b < 0.3 * a

    def test_grid_convergence_order(self):
        """Halving dx quarters the solution error (2nd order)."""
        errs = []
        for n in (16, 32, 64):
            u_exact, f, dx = manufactured_2d(n)
            u, _ = PoissonMultigrid((n, n), dx=dx).solve(f, tol=1e-11)
            errs.append(np.abs(u - u_exact).max())
        assert errs[0] / errs[1] > 3.0
        assert errs[1] / errs[2] > 3.0

    def test_1d(self):
        n = 128
        dx = 1.0 / n
        x = (np.arange(n) + 0.5) * dx
        u_exact = np.sin(np.pi * x)
        f = np.pi**2 * u_exact
        u, info = PoissonMultigrid((n,), dx=dx).solve(f, tol=1e-10)
        assert info["converged"]
        assert np.abs(u - u_exact).max() < 5 * dx**2

    def test_3d(self):
        n = 16
        dx = 1.0 / n
        x = (np.arange(n) + 0.5) * dx
        X, Y, Z = np.meshgrid(x, x, x, indexing="ij")
        u_exact = (
            np.sin(np.pi * X) * np.sin(np.pi * Y) * np.sin(np.pi * Z)
        )
        f = 3 * np.pi**2 * u_exact
        u, info = PoissonMultigrid((n, n, n), dx=dx).solve(f, tol=1e-9)
        assert info["converged"]
        assert np.abs(u - u_exact).max() < 10 * dx**2

    def test_zero_rhs_zero_solution(self):
        mg = PoissonMultigrid((16, 16))
        u, info = mg.solve(np.zeros((16, 16)))
        np.testing.assert_allclose(u, 0.0)
        assert info["cycles"] == 0

    def test_warm_start(self):
        u_exact, f, dx = manufactured_2d(32)
        mg = PoissonMultigrid((32, 32), dx=dx)
        u1, info_cold = mg.solve(f, tol=1e-9)
        _, info_warm = mg.solve(f, tol=1e-9, u0=u1)
        assert info_warm["cycles"] < info_cold["cycles"]

    def test_residual_operator(self):
        """residual(u_exact_discrete) is ~0 for the discrete solution."""
        u_exact, f, dx = manufactured_2d(32)
        mg = PoissonMultigrid((32, 32), dx=dx)
        u, _ = mg.solve(f, tol=1e-12, max_cycles=60)
        r = mg.residual(u, f, dx)
        assert np.abs(r).max() < 1e-9 * np.abs(f).max()
