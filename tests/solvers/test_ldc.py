"""Tests for the Local Defect Correction composite-grid solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.solvers.ldc import LocalDefectCorrection
from repro.solvers.multigrid import MultigridError, PoissonMultigrid
from repro.util.geometry import Box

N = 32
DX = 1.0 / N
PATCH = Box((8, 8), (24, 24))
SIGMA2 = 0.03**2


def exact(X, Y):
    return np.exp(-((X - 0.5) ** 2 + (Y - 0.5) ** 2) / (2 * SIGMA2))


def rhs(X, Y):
    r2 = (X - 0.5) ** 2 + (Y - 0.5) ** 2
    g = np.exp(-r2 / (2 * SIGMA2))
    return -g * (r2 / SIGMA2**2 - 2 / SIGMA2)


def grids(factor: int):
    xc = (np.arange(N) + 0.5) * DX
    Xc, Yc = np.meshgrid(xc, xc, indexing="ij")
    nf = PATCH.shape[0] * factor
    xf = (PATCH.lower[0] + (np.arange(nf) + 0.5) / factor) * DX
    Xf, Yf = np.meshgrid(xf, xf, indexing="ij")
    return (Xc, Yc), (Xf, Yf)


class TestConstruction:
    def test_guards(self):
        with pytest.raises(MultigridError):
            LocalDefectCorrection((N,), PATCH)  # ndim mismatch
        with pytest.raises(MultigridError):
            LocalDefectCorrection((N, N), Box((0, 8), (24, 24)))  # touches edge
        with pytest.raises(MultigridError):
            LocalDefectCorrection((16, 16), Box((4, 4), (40, 40)))  # outside
        with pytest.raises(MultigridError):
            LocalDefectCorrection((N, N), PATCH, factor=1)

    def test_rhs_shapes_checked(self):
        ldc = LocalDefectCorrection((N, N), PATCH, dx=DX)
        with pytest.raises(MultigridError):
            ldc.solve(np.zeros((N, N)), np.zeros((4, 4)))
        with pytest.raises(MultigridError):
            ldc.solve(np.zeros((4, 4)), np.zeros(ldc.fine_shape))


class TestAccuracy:
    def test_iteration_contracts(self):
        (Xc, Yc), (Xf, Yf) = grids(4)
        ldc = LocalDefectCorrection((N, N), PATCH, dx=DX, factor=4)
        _, _, info = ldc.solve(rhs(Xc, Yc), rhs(Xf, Yf), iterations=6)
        changes = info["changes"][1:]  # first step is the initial solve
        for a, b in zip(changes, changes[1:]):
            assert b < 0.7 * a

    def test_beats_coarse_only_on_local_feature(self):
        """The whole point of the composite solve: a sharp local feature is
        resolved far better than the global coarse grid can."""
        (Xc, Yc), (Xf, Yf) = grids(4)
        ldc = LocalDefectCorrection((N, N), PATCH, dx=DX, factor=4)
        _, u_fine, _ = ldc.solve(rhs(Xc, Yc), rhs(Xf, Yf), iterations=8)
        coarse_only, _ = PoissonMultigrid((N, N), dx=DX).solve(
            rhs(Xc, Yc), tol=1e-11
        )
        sl = tuple(slice(l, u) for l, u in zip(PATCH.lower, PATCH.upper))
        err_coarse = np.abs(coarse_only[sl] - exact(Xc, Yc)[sl]).max()
        err_ldc = np.abs(u_fine - exact(Xf, Yf)).max()
        assert err_ldc < 0.2 * err_coarse

    def test_composite_consistency(self):
        """The coarse solution under the patch equals the restricted fine
        solution (the defect-correction fixed point)."""
        (Xc, Yc), (Xf, Yf) = grids(2)
        ldc = LocalDefectCorrection((N, N), PATCH, dx=DX, factor=2)
        u_coarse, u_fine, _ = ldc.solve(
            rhs(Xc, Yc), rhs(Xf, Yf), iterations=8
        )
        sl = tuple(slice(l, u) for l, u in zip(PATCH.lower, PATCH.upper))
        restricted = ldc._restrict(u_fine, 2)
        np.testing.assert_allclose(
            u_coarse[sl], restricted, atol=5e-4
        )

    def test_zero_rhs_gives_zero(self):
        ldc = LocalDefectCorrection((16, 16), Box((4, 4), (12, 12)), dx=1.0 / 16)
        uc, uf, _ = ldc.solve(
            np.zeros((16, 16)), np.zeros(ldc.fine_shape), iterations=3
        )
        np.testing.assert_allclose(uc, 0.0, atol=1e-12)
        np.testing.assert_allclose(uf, 0.0, atol=1e-12)
