"""Tests for the HDDA facade: registration, redistribution, invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdda import HDDA, HierarchicalIndexSpace
from repro.util.errors import HDDAError
from repro.util.geometry import Box


def make_hdda(num_procs: int = 4) -> HDDA:
    space = HierarchicalIndexSpace(Box((0, 0), (32, 32)), max_levels=3)
    return HDDA(space, num_procs=num_procs)


def tile_boxes(n: int, side: int = 4, level: int = 0) -> list[Box]:
    """n disjoint tiles in a row at the given level."""
    return [
        Box((i * side, 0), ((i + 1) * side, side), level) for i in range(n)
    ]


class TestRegistration:
    def test_register_and_lookup(self):
        h = make_hdda()
        b = Box((0, 0), (4, 4))
        key = h.register_box(b, rank=2, payload="x")
        assert h.owner_of(b) == 2
        assert h.get_block(b).payload == "x"
        assert h.get_block(b).nbytes == 16 * 8
        assert h.total_blocks == 1
        assert key == h.index_space.key_for_box(b)

    def test_double_register_rejected(self):
        h = make_hdda()
        b = Box((0, 0), (4, 4))
        h.register_box(b, 0)
        with pytest.raises(HDDAError):
            h.register_box(b, 1)

    def test_unregister(self):
        h = make_hdda()
        b = Box((0, 0), (4, 4))
        h.register_box(b, 0)
        h.unregister_box(b)
        assert h.total_blocks == 0
        with pytest.raises(HDDAError):
            h.get_block(b)

    def test_boxes_of_in_index_order(self):
        h = make_hdda(2)
        boxes = tile_boxes(4)
        for b in boxes:
            h.register_box(b, 0)
        owned = h.boxes_of(0)
        keys = [h.index_space.key_for_box(b) for b in owned]
        assert keys == sorted(keys)
        assert len(h.boxes_of(1)) == 0

    def test_cells_per_rank(self):
        h = make_hdda(2)
        h.register_box(Box((0, 0), (4, 4)), 0)
        h.register_box(Box((8, 0), (16, 8)), 1)
        np.testing.assert_array_equal(h.cells_per_rank(), [16, 64])

    def test_clear(self):
        h = make_hdda()
        h.register_box(Box((0, 0), (4, 4)), 0)
        h.clear()
        assert h.total_blocks == 0
        h.check_invariants()


class TestRedistribution:
    def test_plan_counts_moves_and_bytes(self):
        h = make_hdda(2)
        boxes = tile_boxes(4)
        for b in boxes:
            h.register_box(b, 0)
        # Move the last two tiles to rank 1.
        plan = h.plan_redistribution({boxes[2]: 1, boxes[3]: 1, boxes[0]: 0})
        assert plan.total_blocks == 2
        assert plan.total_bytes == 2 * 16 * 8
        assert set(plan.moves) == {(0, 1)}

    def test_plan_ignores_unregistered(self):
        h = make_hdda(2)
        plan = h.plan_redistribution({Box((0, 0), (4, 4)): 1})
        assert plan.is_empty()

    def test_plan_rejects_bad_rank(self):
        h = make_hdda(2)
        b = Box((0, 0), (4, 4))
        h.register_box(b, 0)
        with pytest.raises(HDDAError):
            h.plan_redistribution({b: 7})

    def test_apply_moves_creates_and_drops(self):
        h = make_hdda(2)
        old = tile_boxes(3)
        for b in old:
            h.register_box(b, 0)
        new_box = Box((0, 8), (4, 12))
        assignment = {old[0]: 1, old[1]: 0, new_box: 1}  # old[2] disappears
        plan = h.apply_assignment(assignment)
        assert plan.total_blocks == 1  # old[0] moved
        assert h.owner_of(old[0]) == 1
        assert h.owner_of(old[1]) == 0
        assert h.owner_of(new_box) == 1
        assert h.total_blocks == 3
        with pytest.raises(HDDAError):
            h.owner_of(old[2])
        h.check_invariants()

    def test_apply_is_idempotent(self):
        h = make_hdda(3)
        boxes = tile_boxes(6)
        assignment = {b: i % 3 for i, b in enumerate(boxes)}
        h.apply_assignment(assignment)
        plan2 = h.apply_assignment(assignment)
        assert plan2.is_empty()
        h.check_invariants()

    def test_locality_score_extremes(self):
        h = make_hdda(2)
        boxes = list(h.index_space.order_boxes(tile_boxes(8)))
        # Contiguous halves -> one boundary crossing out of 7.
        for b in boxes[:4]:
            h.register_box(b, 0)
        for b in boxes[4:]:
            h.register_box(b, 1)
        assert h.locality_score() == pytest.approx(6 / 7)
        # Alternating ownership -> zero adjacency.
        h.clear()
        for i, b in enumerate(boxes):
            h.register_box(b, i % 2)
        assert h.locality_score() == 0.0

    def test_locality_score_trivial_cases(self):
        h = make_hdda(2)
        assert h.locality_score() == 1.0
        h.register_box(Box((0, 0), (4, 4)), 0)
        assert h.locality_score() == 1.0


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(0, 3), min_size=1, max_size=16),
    st.lists(st.integers(0, 3), min_size=1, max_size=16),
)
def test_apply_assignment_reaches_target_state(first, second):
    """After apply_assignment, ownership matches the assignment exactly,
    whatever the previous state was."""
    h = make_hdda(4)
    tiles = tile_boxes(16, side=2)
    a1 = {tiles[i]: r for i, r in enumerate(first)}
    a2 = {tiles[i]: r for i, r in enumerate(second)}
    h.apply_assignment(a1)
    h.apply_assignment(a2)
    assert h.total_blocks == len(a2)
    for box, rank in a2.items():
        assert h.owner_of(box) == rank
    h.check_invariants()
