"""Stateful property tests: the HDDA and the extendible hash table under
arbitrary operation sequences.

hypothesis drives random interleavings of register / unregister /
reassign / lookup operations against a plain-dict model; after every step
the structural invariants must hold and lookups must agree with the
model.  This is the strongest guarantee we have that regrid-time churn
(the paper's every-5-iterations repartitioning) can never corrupt the
distributed array's ownership state.
"""

from __future__ import annotations

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.hdda import HDDA, HierarchicalIndexSpace
from repro.util.errors import HDDAError
from repro.util.geometry import Box
from repro.util.hashing import ExtendibleHashTable

# ---------------------------------------------------------------------------
# Extendible hash table vs dict model
# ---------------------------------------------------------------------------


class HashTableMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.table = ExtendibleHashTable(bucket_capacity=2)
        self.model: dict[int, int] = {}

    keys = Bundle("keys")

    @rule(target=keys, k=st.integers(0, 2**40))
    def add_key(self, k):
        return k

    @rule(k=keys, v=st.integers())
    def put(self, k, v):
        self.table.put(k, v)
        self.model[k] = v

    @rule(k=keys)
    def get(self, k):
        assert self.table.get(k, None) == self.model.get(k, None)

    @rule(k=keys)
    def remove(self, k):
        if k in self.model:
            assert self.table.remove(k) == self.model.pop(k)
        else:
            with pytest.raises(KeyError):
                self.table.remove(k)

    @invariant()
    def sizes_agree(self):
        assert len(self.table) == len(self.model)

    @invariant()
    def structure_sound(self):
        self.table.check_invariants()

    @invariant()
    def contents_agree(self):
        assert dict(self.table.items()) == self.model


TestHashTableStateful = HashTableMachine.TestCase
TestHashTableStateful.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)


# ---------------------------------------------------------------------------
# HDDA ownership under register / unregister / reassign churn
# ---------------------------------------------------------------------------

_TILES = [
    Box((4 * i, 4 * j), (4 * i + 4, 4 * j + 4))
    for i in range(4)
    for j in range(4)
]


class HddaMachine(RuleBasedStateMachine):
    NUM_PROCS = 3

    def __init__(self):
        super().__init__()
        space = HierarchicalIndexSpace(Box((0, 0), (16, 16)), max_levels=2)
        self.hdda = HDDA(space, num_procs=self.NUM_PROCS)
        self.model: dict[int, int] = {}  # tile index -> rank

    @rule(tile=st.integers(0, 15), rank=st.integers(0, NUM_PROCS - 1))
    def register(self, tile, rank):
        box = _TILES[tile]
        if tile in self.model:
            with pytest.raises(HDDAError):
                self.hdda.register_box(box, rank)
        else:
            self.hdda.register_box(box, rank)
            self.model[tile] = rank

    @rule(tile=st.integers(0, 15))
    def unregister(self, tile):
        box = _TILES[tile]
        if tile in self.model:
            self.hdda.unregister_box(box)
            del self.model[tile]
        else:
            with pytest.raises(HDDAError):
                self.hdda.unregister_box(box)

    @rule(data=st.data())
    def reassign_everything(self, data):
        """Full repartition: every registered tile gets a (new) rank."""
        assignment = {}
        for tile in self.model:
            rank = data.draw(
                st.integers(0, self.NUM_PROCS - 1), label=f"rank[{tile}]"
            )
            assignment[_TILES[tile]] = rank
            self.model[tile] = rank
        self.hdda.apply_assignment(assignment)

    @rule(tile=st.integers(0, 15))
    def lookup(self, tile):
        box = _TILES[tile]
        if tile in self.model:
            assert self.hdda.owner_of(box) == self.model[tile]
        else:
            with pytest.raises(HDDAError):
                self.hdda.owner_of(box)

    @invariant()
    def block_count_agrees(self):
        assert self.hdda.total_blocks == len(self.model)

    @invariant()
    def structure_sound(self):
        self.hdda.check_invariants()


TestHddaStateful = HddaMachine.TestCase
TestHddaStateful.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
