"""Tests for the hierarchical index space."""

from __future__ import annotations

import pytest

from repro.hdda.index import HierarchicalIndexSpace
from repro.util.errors import HDDAError
from repro.util.geometry import Box


@pytest.fixture
def space2d() -> HierarchicalIndexSpace:
    return HierarchicalIndexSpace(Box((0, 0), (16, 16)), max_levels=3)


class TestConstruction:
    def test_domain_must_be_level0_at_origin(self):
        with pytest.raises(HDDAError):
            HierarchicalIndexSpace(Box((0, 0), (8, 8), level=1))
        with pytest.raises(HDDAError):
            HierarchicalIndexSpace(Box((2, 0), (8, 8)))

    def test_bad_params_rejected(self):
        dom = Box((0, 0), (8, 8))
        with pytest.raises(HDDAError):
            HierarchicalIndexSpace(dom, max_levels=0)
        with pytest.raises(HDDAError):
            HierarchicalIndexSpace(dom, refine_factor=1)
        with pytest.raises(HDDAError):
            HierarchicalIndexSpace(dom, curve="peano")

    def test_capacity_guard(self):
        # 3D with enormous refinement depth must refuse 62-bit overflow.
        with pytest.raises(HDDAError):
            HierarchicalIndexSpace(
                Box((0, 0, 0), (1024, 1024, 1024)), max_levels=12
            )

    def test_bits_cover_finest_level(self, space2d):
        # 16 cells at level 0, x4 at level 2 -> 64 cells -> 6 bits.
        assert space2d.bits_per_axis == 6


class TestKeys:
    def test_distinct_keys_per_level(self, space2d):
        k0 = space2d.key_for_point((3, 3), 0)
        k1 = space2d.key_for_point((6, 6), 1)  # same physical location
        k2 = space2d.key_for_point((12, 12), 2)
        assert len({k0, k1, k2}) == 3
        assert space2d.level_of_key(k0) == 0
        assert space2d.level_of_key(k1) == 1
        assert space2d.level_of_key(k2) == 2

    def test_colocated_levels_are_curve_adjacent(self, space2d):
        """Same physical point on different levels differs only in level bits."""
        k0 = space2d.key_for_point((3, 3), 0)
        k1 = space2d.key_for_point((6, 6), 1)
        assert k0 >> 2 == k1 >> 2  # level_bits == 2 for 3 levels

    def test_key_for_box_uses_lower_corner(self, space2d):
        b = Box((4, 4), (8, 8), 0)
        assert space2d.key_for_box(b) == space2d.key_for_point((4, 4), 0)

    def test_invalid_level_rejected(self, space2d):
        with pytest.raises(HDDAError):
            space2d.key_for_point((0, 0), 3)
        with pytest.raises(HDDAError):
            space2d.key_for_box(Box((0, 0), (2, 2), level=5))

    def test_out_of_domain_point_rejected(self, space2d):
        with pytest.raises(HDDAError):
            space2d.key_for_point((-1, 0), 0)

    def test_level_of_key_guards(self, space2d):
        with pytest.raises(HDDAError):
            space2d.level_of_key(-1)
        with pytest.raises(HDDAError):
            space2d.level_of_key(3)  # level bits say 3, invalid

    def test_keys_unique_over_small_domain(self):
        space = HierarchicalIndexSpace(Box((0, 0), (4, 4)), max_levels=2)
        keys = set()
        for level, extent in ((0, 4), (1, 8)):
            for x in range(extent):
                for y in range(extent):
                    keys.add(space.key_for_point((x, y), level))
        assert len(keys) == 4 * 4 + 8 * 8


class TestOrdering:
    def test_order_boxes_locality(self, space2d):
        quads = [
            Box((8, 8), (16, 16)),
            Box((0, 0), (8, 8)),
            Box((8, 0), (16, 8)),
            Box((0, 8), (8, 16)),
        ]
        ordered = list(space2d.order_boxes(quads))
        lowers = [b.lower for b in ordered]
        assert lowers == [(0, 0), (0, 8), (8, 8), (8, 0)]  # Hilbert tour

    def test_span_for_boxes(self, space2d):
        boxes = [Box((0, 0), (4, 4)), Box((8, 8), (12, 12))]
        lo, hi = space2d.span_for_boxes(boxes)
        assert lo == space2d.key_for_box(boxes[0])
        assert hi == space2d.key_for_box(boxes[1])
        assert lo < hi

    def test_span_empty_rejected(self, space2d):
        with pytest.raises(HDDAError):
            space2d.span_for_boxes([])

    def test_morton_space(self):
        space = HierarchicalIndexSpace(
            Box((0, 0), (8, 8)), max_levels=1, curve="morton"
        )
        assert space.key_for_point((0, 0), 0) == 0
