"""Tests for the HDDA block store."""

from __future__ import annotations

import pytest

from repro.hdda.storage import Block, BlockStore
from repro.util.errors import HDDAError
from repro.util.geometry import Box


def make_block(key: int, side: int = 4) -> Block:
    box = Box((0,) * 2, (side, side))
    return Block(key=key, box=box, payload=f"data-{key}", nbytes=side * side * 8)


class TestBlock:
    def test_negative_size_rejected(self):
        with pytest.raises(HDDAError):
            Block(key=0, box=Box((0,), (1,)), nbytes=-1)


class TestBlockStore:
    def test_put_get_pop(self):
        s = BlockStore()
        s.put(make_block(10))
        assert s.get(10).payload == "data-10"
        assert 10 in s
        blk = s.pop(10)
        assert blk.key == 10
        assert 10 not in s and len(s) == 0

    def test_get_missing_raises(self):
        s = BlockStore()
        with pytest.raises(HDDAError):
            s.get(99)
        with pytest.raises(HDDAError):
            s.pop(99)

    def test_replace_under_same_key(self):
        s = BlockStore()
        s.put(make_block(5, side=2))
        s.put(make_block(5, side=8))
        assert len(s) == 1
        assert s.get(5).box.shape == (8, 8)

    def test_totals(self):
        s = BlockStore()
        for k in range(10):
            s.put(make_block(k, side=2))
        assert s.total_cells == 10 * 4
        assert s.total_bytes == 10 * 4 * 8

    def test_iteration(self):
        s = BlockStore()
        for k in (3, 1, 7):
            s.put(make_block(k))
        assert sorted(s.keys()) == [1, 3, 7]
        assert sorted(b.key for b in s.blocks()) == [1, 3, 7]

    def test_map_payloads(self):
        s = BlockStore()
        for k in range(5):
            s.put(make_block(k))
        s.map_payloads(lambda blk: blk.key * 2)
        assert sorted(b.payload for b in s.blocks()) == [0, 2, 4, 6, 8]

    def test_grows_past_bucket_capacity(self):
        s = BlockStore(bucket_capacity=2)
        for k in range(100):
            s.put(make_block(k))
        assert len(s) == 100
        s.check_invariants()
        stats = s.stats()
        assert stats["num_items"] == 100
        assert stats["total_bytes"] == 100 * 16 * 8

    def test_invariant_detects_key_mismatch(self):
        s = BlockStore()
        blk = make_block(4)
        s.put(blk)
        blk.key = 5  # corrupt it
        with pytest.raises(HDDAError):
            s.check_invariants()
