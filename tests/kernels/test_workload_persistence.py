"""Tests for workload JSON round-tripping."""

from __future__ import annotations

import pytest

from repro.kernels.workloads import SyntheticWorkload, paper_rm3d_trace
from repro.util.errors import GeometryError


class TestPersistence:
    def test_roundtrip_identity(self, tmp_path):
        w = paper_rm3d_trace(num_regrids=4)
        path = tmp_path / "trace.json"
        w.to_json(path)
        back = SyntheticWorkload.from_json(path)
        assert back.name == w.name
        assert back.domain == w.domain
        assert back.refine_factor == w.refine_factor
        assert back.num_regrids == w.num_regrids
        for a, b in zip(w, back):
            assert a == b

    def test_work_preserved(self, tmp_path):
        w = paper_rm3d_trace(num_regrids=3)
        path = tmp_path / "trace.json"
        w.to_json(path)
        back = SyntheticWorkload.from_json(path)
        for r in range(w.num_regrids):
            assert back.work_of(r) == w.work_of(r)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises((GeometryError, OSError)):
            SyntheticWorkload.from_json(tmp_path / "nope.json")

    def test_corrupt_file_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(GeometryError):
            SyntheticWorkload.from_json(path)

    def test_wrong_schema_raises(self, tmp_path):
        path = tmp_path / "schema.json"
        path.write_text('{"name": "x"}')
        with pytest.raises(GeometryError):
            SyntheticWorkload.from_json(path)
