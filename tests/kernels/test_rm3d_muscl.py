"""Tests for the second-order MUSCL-Hancock RM3D path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.amr.ghost import GhostFiller
from repro.amr.hierarchy import GridHierarchy
from repro.amr.integrator import BergerOligerIntegrator
from repro.kernels.rm3d import RM3DKernel
from repro.util.errors import KernelError
from repro.util.geometry import Box

SMALL = (16, 8, 8)


class TestConstruction:
    def test_order2_widens_ghosts(self):
        assert RM3DKernel(domain_shape=SMALL, order=1).ghost_width == 1
        assert RM3DKernel(domain_shape=SMALL, order=2).ghost_width == 2

    def test_bad_order(self):
        with pytest.raises(KernelError):
            RM3DKernel(order=3)


class TestNumerics:
    def test_uniform_state_fixed_point(self):
        k = RM3DKernel(domain_shape=(8, 8, 8), order=2)
        u = np.zeros((5, 8, 8, 8))
        u[0] = 1.0
        u[4] = 2.5
        np.testing.assert_allclose(k.step(u, 0.1, 1.0), u, atol=1e-13)

    def test_conservation_periodic(self):
        k = RM3DKernel(domain_shape=(8, 8, 8), order=2)
        rng = np.random.default_rng(0)
        u = np.zeros((5, 8, 8, 8))
        u[0] = 1.0 + 0.1 * rng.random((8, 8, 8))
        u[4] = 2.5 + 0.1 * rng.random((8, 8, 8))
        sums = u.sum(axis=(1, 2, 3))
        dt = k.stable_dt(u, 1.0, 0.3)
        for _ in range(3):
            u = k.step(u, dt, 1.0)
        np.testing.assert_allclose(
            u.sum(axis=(1, 2, 3)), sums, rtol=1e-12, atol=1e-12
        )

    def test_positivity_through_shock(self):
        k = RM3DKernel(domain_shape=SMALL, order=2)
        u = k.initial_condition(Box((0, 0, 0), SMALL), 1.0)
        for _ in range(12):
            dt = k.stable_dt(u, 1.0, 0.3)
            u = k.step(u, dt, 1.0)
        rho, _, p = k._primitives(u)
        assert rho.min() > 0 and p.min() > 0

    def test_second_order_resolves_smooth_wave_better(self):
        """A smooth acoustic density perturbation advects with less
        amplitude loss at order 2 than at order 1."""

        def run(order: int) -> float:
            k = RM3DKernel(domain_shape=(32, 4, 4), order=order)
            x = (np.arange(32) + 0.5) / 32
            u = np.zeros((5, 32, 4, 4))
            rho = 1.0 + 0.2 * np.sin(2 * np.pi * x)[:, None, None]
            vel = 1.0
            p = 1.0
            u[0] = rho
            u[1] = rho * vel
            u[4] = p / (k.gamma - 1) + 0.5 * rho * vel**2
            amp0 = u[0].max() - u[0].min()
            for _ in range(30):
                dt = k.stable_dt(u, 1.0 / 32, 0.3)
                u = k.step(u, dt, 1.0 / 32)
            return (u[0].max() - u[0].min()) / amp0

        assert run(2) > run(1) + 0.05  # clearly less diffusive

    def test_minmod_limiter_zero_at_extrema(self):
        u = np.zeros((5, 4, 4, 4))
        u[0] = 1.0
        u[0, 2, 2, 2] = 5.0  # isolated extremum
        slopes = RM3DKernel._minmod_slopes(u)
        for s in slopes:
            assert s[0, 2, 2, 2] == 0.0  # limiter kills the slope there


class TestAmrIntegration:
    def test_ghost_width_two_through_the_hierarchy(self):
        """The AMR machinery handles the wider stencil end to end."""
        k = RM3DKernel(domain_shape=SMALL, order=2)
        h = GridHierarchy(Box((0, 0, 0), SMALL), k, max_levels=2)
        integ = BergerOligerIntegrator(h, regrid_interval=2, cfl=0.3)
        integ.setup()
        integ.run(4)
        assert h.proper_nesting_ok()
        for level in h.levels:
            for patch in level:
                assert patch.ghost_width == 2
                rho = patch.interior[0]
                assert rho.min() > 0

    def test_partition_invariance_order2(self):
        """Bitwise layout independence holds for the wide stencil too."""
        from repro.cluster import Cluster
        from repro.partition import ACEHeterogeneous
        from repro.runtime.distributed import (
            DistributedAmrRun,
            DistributedRunConfig,
        )

        def make():
            return GridHierarchy(
                Box((0, 0, 0), SMALL),
                RM3DKernel(domain_shape=SMALL, order=2),
                max_levels=2,
            )

        h_seq = make()
        integ = BergerOligerIntegrator(h_seq, regrid_interval=2, cfl=0.3)
        integ.setup()
        for _ in range(4):
            integ.advance()
        h_dist = make()
        DistributedAmrRun(
            h_dist,
            Cluster.paper_four_node(),
            ACEHeterogeneous(),
            config=DistributedRunConfig(steps=4, regrid_interval=2, cfl=0.3),
        ).run()
        np.testing.assert_array_equal(
            GhostFiller(h_seq).fetch(h_seq.domain, 0),
            GhostFiller(h_dist).fetch(h_dist.domain, 0),
        )
