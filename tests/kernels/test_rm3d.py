"""Tests for the RM3D compressible Euler kernel."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels.rm3d import PAPER_BASE_SHAPE, RM3DKernel
from repro.util.errors import KernelError
from repro.util.geometry import Box

SMALL = (16, 8, 8)


@pytest.fixture
def kernel() -> RM3DKernel:
    return RM3DKernel(domain_shape=SMALL)


class TestConstruction:
    def test_paper_defaults(self):
        k = RM3DKernel()
        assert k.domain_shape == PAPER_BASE_SHAPE == (128, 32, 32)
        assert k.num_fields == 5
        assert k.ndim == 3

    def test_bad_params(self):
        with pytest.raises(KernelError):
            RM3DKernel(gamma=1.0)
        with pytest.raises(KernelError):
            RM3DKernel(density_ratio=0.0)
        with pytest.raises(KernelError):
            RM3DKernel(shock_mach=0.9)


class TestInitialCondition:
    def test_three_zones(self, kernel):
        box = Box((0, 0, 0), SMALL)
        u = kernel.initial_condition(box, 1.0)
        assert u.shape == (5, *SMALL)
        rho = u[0]
        # Post-shock (x < 0.2*16=3.2), light (middle), heavy (x > ~6.4).
        assert rho[0, 0, 0] > 1.0  # shocked, compressed
        assert rho[4, 0, 0] == pytest.approx(1.0)  # quiescent light gas
        assert rho[-1, 0, 0] == pytest.approx(3.0)  # heavy gas

    def test_shocked_region_moves(self, kernel):
        u = kernel.initial_condition(Box((0, 0, 0), SMALL), 1.0)
        mom = u[1]
        assert mom[0, 0, 0] > 0.0  # post-shock gas streams +x
        assert mom[-1, 0, 0] == pytest.approx(0.0)

    def test_interface_is_perturbed(self):
        k = RM3DKernel(domain_shape=(32, 16, 16), perturb_amplitude=3.0)
        u = k.initial_condition(Box((0, 0, 0), (32, 16, 16)), 1.0)
        rho = u[0]
        # Interface x-position varies with (y, z): the first heavy cell
        # index along x is not constant across the transverse plane.
        first_heavy = (rho > 2.0).argmax(axis=0)
        assert first_heavy.min() != first_heavy.max()

    def test_refined_box_consistent(self, kernel):
        """A level-1 box over the same physical region sees the same zones."""
        coarse = kernel.initial_condition(Box((0, 0, 0), SMALL), 1.0)
        fine = kernel.initial_condition(
            Box((0, 0, 0), tuple(2 * s for s in SMALL), level=1), 0.5
        )
        assert fine[0, -1, 0, 0] == pytest.approx(coarse[0, -1, 0, 0])
        assert fine[0, 0, 0, 0] == pytest.approx(coarse[0, 0, 0, 0])


class TestStep:
    def test_positivity_preserved(self, kernel):
        u = kernel.initial_condition(Box((0, 0, 0), SMALL), 1.0)
        dt = kernel.stable_dt(u, dx=1.0, cfl=0.3)
        for _ in range(5):
            u = kernel.step(u, dt, 1.0)
        rho, vel, p = kernel._primitives(u)
        assert rho.min() > 0
        assert p.min() > 0

    def test_conservation_periodic_sanity(self):
        """On a fully periodic array (np.roll), mass/momentum/energy sums
        are conserved exactly by the flux-difference form."""
        k = RM3DKernel(domain_shape=(8, 8, 8))
        rng = np.random.default_rng(0)
        u = np.zeros((5, 8, 8, 8))
        u[0] = 1.0 + 0.1 * rng.random((8, 8, 8))
        u[4] = 2.5 + 0.1 * rng.random((8, 8, 8))
        sums = u.sum(axis=(1, 2, 3))
        dt = k.stable_dt(u, 1.0, 0.3)
        for _ in range(3):
            u = k.step(u, dt, 1.0)
        np.testing.assert_allclose(
            u.sum(axis=(1, 2, 3)), sums, rtol=1e-12, atol=1e-12
        )

    def test_uniform_state_is_fixed_point(self):
        k = RM3DKernel(domain_shape=(8, 8, 8))
        u = np.zeros((5, 8, 8, 8))
        u[0] = 1.0
        u[4] = 2.5
        out = k.step(u, 0.1, 1.0)
        np.testing.assert_allclose(out, u, atol=1e-14)

    def test_shock_propagates(self, kernel):
        """The shock front moves in +x over time."""
        u = kernel.initial_condition(Box((0, 0, 0), SMALL), 1.0)

        def shock_pos(field):
            p = kernel._primitives(field)[2]
            return int(np.argmin(np.abs(p[:, 0, 0] - 2.0)))

        x0 = shock_pos(u)
        for _ in range(10):
            dt = kernel.stable_dt(u, 1.0, 0.3)
            u = kernel.step(u, dt, 1.0)
        assert shock_pos(u) > x0

    def test_bad_dt(self, kernel):
        u = kernel.initial_condition(Box((0, 0, 0), SMALL), 1.0)
        with pytest.raises(KernelError):
            kernel.step(u, -0.1, 1.0)


class TestIndicator:
    def test_flags_interface_and_shock(self, kernel):
        u = kernel.initial_condition(Box((0, 0, 0), SMALL), 1.0)
        ind = kernel.error_indicator(u, 1.0)
        assert ind.shape == SMALL
        line = ind[:, 0, 0]
        # Quiescent zones are quiet; the interface neighbourhood is loud.
        assert line[4] < 0.05
        assert line.max() > 0.2

    def test_max_wave_speed_positive(self, kernel):
        u = kernel.initial_condition(Box((0, 0, 0), SMALL), 1.0)
        c = kernel.max_wave_speed(u)
        # At least the post-shock speed plus its sound speed.
        assert c > 1.0
