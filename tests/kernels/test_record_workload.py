"""Tests for trace capture from real AMR runs."""

from __future__ import annotations

import numpy as np

from repro.amr.hierarchy import GridHierarchy
from repro.amr.integrator import BergerOligerIntegrator
from repro.cluster import Cluster
from repro.kernels.advection import AdvectionKernel
from repro.kernels.workloads import record_workload
from repro.partition import ACEHeterogeneous
from repro.runtime import RuntimeConfig, SamrRuntime
from repro.util.geometry import Box


def make_integrator(regrid_interval: int = 3) -> BergerOligerIntegrator:
    k = AdvectionKernel(
        velocity=(1.0, 0.5), pulse_center=(8.0, 8.0), pulse_width=2.0
    )
    h = GridHierarchy(Box((0, 0), (32, 32)), k, max_levels=3)
    return BergerOligerIntegrator(h, regrid_interval=regrid_interval)


class TestRecordWorkload:
    def test_epochs_match_regrids(self):
        integ = make_integrator(regrid_interval=3)
        w = record_workload(integ, num_steps=9)
        # Setup regrid + regrids at steps 3 and 6 (9 never happens:
        # advance() regrids before stepping, step 9 is not taken).
        assert w.num_regrids == 3
        assert w.name == "recorded-AdvectionKernel"
        assert w.domain == Box((0, 0), (32, 32))

    def test_epochs_are_real_hierarchies(self):
        w = record_workload(make_integrator(), num_steps=6)
        for bl in w:
            assert bl.is_disjoint()
            assert 0 in bl.levels  # level 0 always present
            assert bl.total_cells > 0

    def test_trace_moves_with_the_feature(self):
        w = record_workload(make_integrator(), num_steps=12)
        first = w.epoch(0).at_level(2).bounding_box()
        last = w.epoch(w.num_regrids - 1).at_level(2).bounding_box()
        assert last.lower[0] > first.lower[0]  # pulse advected +x

    def test_recorded_trace_replays_in_runtime(self):
        """The captured trace drives the partitioning runtime end to end."""
        w = record_workload(make_integrator(), num_steps=9)
        rt = SamrRuntime(
            w,
            Cluster.paper_four_node(),
            ACEHeterogeneous(),
            config=RuntimeConfig(iterations=9, regrid_interval=3),
        )
        result = rt.run()
        assert result.iterations == 9
        shares = result.regrids[0].loads / result.regrids[0].loads.sum()
        np.testing.assert_allclose(
            shares, result.regrids[0].capacities, atol=0.06
        )

    def test_hook_preserved(self):
        integ = make_integrator()
        seen = []
        integ.on_regrid = lambda h: seen.append(h.num_levels)
        record_workload(integ, num_steps=3)
        assert seen  # user's hook still fired
        assert integ.on_regrid is not None  # restored

    def test_already_setup_integrator(self):
        integ = make_integrator()
        integ.setup()
        w = record_workload(integ, num_steps=6)
        assert w.num_regrids >= 2
        assert w.epoch(0).total_cells > 0
