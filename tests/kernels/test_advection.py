"""Tests for the advection kernel."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels.advection import AdvectionKernel
from repro.util.errors import KernelError
from repro.util.geometry import Box


class TestConstruction:
    def test_ndim_follows_velocity(self):
        assert AdvectionKernel(velocity=(1.0,)).ndim == 1
        assert AdvectionKernel(velocity=(1.0, 0.0, 0.0)).ndim == 3

    def test_bad_params(self):
        with pytest.raises(KernelError):
            AdvectionKernel(velocity=())
        with pytest.raises(KernelError):
            AdvectionKernel(velocity=(1, 2, 3, 4))
        with pytest.raises(KernelError):
            AdvectionKernel(velocity=(1.0,), pulse_width=0.0)
        with pytest.raises(ValueError):
            AdvectionKernel(velocity=(1.0,), boundary="reflecting")


class TestInitialCondition:
    def test_gaussian_peak_at_center(self):
        k = AdvectionKernel(velocity=(1.0, 0.0), pulse_center=(4.0, 4.0))
        u = k.initial_condition(Box((0, 0), (8, 8)), dx=1.0)
        assert u.shape == (1, 8, 8)
        peak = np.unravel_index(np.argmax(u[0]), (8, 8))
        assert peak in ((3, 3), (4, 4), (3, 4), (4, 3))
        assert u.max() <= 1.0

    def test_refined_box_samples_same_profile(self):
        k = AdvectionKernel(velocity=(1.0, 0.0), pulse_center=(4.0, 4.0))
        # dx halves on level 1 and coordinates double.
        coarse = k.initial_condition(Box((0, 0), (8, 8)), 1.0)
        fine = k.initial_condition(Box((0, 0), (16, 16), 1), 0.5)
        # Fine cell (7, 7) center = 3.75 in coarse units: near the peak.
        assert fine[0, 7, 7] == pytest.approx(1.0, abs=0.05)
        assert coarse.max() == pytest.approx(fine.max(), abs=0.05)


class TestStep:
    def test_translation_speed(self):
        """A pulse on a periodic array moves v*dt/dx cells per step."""
        k = AdvectionKernel(velocity=(1.0, 0.0))
        u = np.zeros((1, 32, 4))
        u[0, 8, :] = 1.0
        for _ in range(8):
            u = k.step(u, dt=0.5, dx=1.0)
        # After 8 steps of CFL 0.5 the (diffused) peak is 4 cells along.
        peak = int(np.argmax(u[0, :, 0]))
        assert peak == 12

    def test_negative_velocity_upwinds_other_way(self):
        k = AdvectionKernel(velocity=(-1.0, 0.0))
        u = np.zeros((1, 32, 4))
        u[0, 16, :] = 1.0
        for _ in range(8):
            u = k.step(u, dt=0.5, dx=1.0)
        assert int(np.argmax(u[0, :, 0])) == 12

    def test_max_principle(self):
        """Upwind at CFL <= 1 creates no new extrema."""
        rng = np.random.default_rng(0)
        k = AdvectionKernel(velocity=(0.7, -0.3))
        u = rng.random((1, 16, 16))
        lo, hi = u.min(), u.max()
        for _ in range(5):
            u = k.step(u, dt=0.5, dx=1.0)
        assert u.min() >= lo - 1e-12
        assert u.max() <= hi + 1e-12

    def test_conservation_on_torus(self):
        k = AdvectionKernel(velocity=(1.0, 0.5))
        rng = np.random.default_rng(1)
        u = rng.random((1, 12, 12))
        total = u.sum()
        for _ in range(10):
            u = k.step(u, dt=0.3, dx=1.0)
        assert u.sum() == pytest.approx(total)

    def test_bad_dt(self):
        k = AdvectionKernel(velocity=(1.0, 0.0))
        with pytest.raises(KernelError):
            k.step(np.zeros((1, 4, 4)), dt=0.0, dx=1.0)


class TestIndicatorsAndSpeeds:
    def test_indicator_peaks_at_edge(self):
        k = AdvectionKernel(velocity=(1.0, 0.0))
        u = np.zeros((1, 16, 4))
        u[0, :8] = 1.0
        ind = k.error_indicator(u, dx=1.0)
        assert ind.shape == (16, 4)
        assert int(np.argmax(ind[:, 0])) in (7, 8)

    def test_max_wave_speed(self):
        k = AdvectionKernel(velocity=(2.0, -3.0))
        assert k.max_wave_speed(np.zeros((1, 2, 2))) == 3.0

    def test_stable_dt(self):
        k = AdvectionKernel(velocity=(2.0, 0.0))
        dt = k.stable_dt(np.zeros((1, 2, 2)), dx=1.0, cfl=0.5)
        assert dt == pytest.approx(0.25)
