"""Tests for synthetic workload traces."""

from __future__ import annotations

import pytest

from repro.kernels.workloads import (
    SyntheticWorkload,
    moving_blob_trace,
    paper_rm3d_trace,
)
from repro.util.errors import GeometryError
from repro.util.geometry import Box, BoxList


def assert_valid_hierarchy_epoch(bl: BoxList, domain: Box, factor: int) -> None:
    """Structural invariants a real regrid would satisfy."""
    assert bl.is_disjoint()
    for b in bl:
        dom = domain
        for _ in range(b.level):
            dom = dom.refine(factor)
        assert dom.contains_box(b), f"{b} outside {dom}"
    # Proper nesting: each level-l box coarsened must intersect only
    # regions covered by level-(l-1) boxes.
    for level in bl.levels:
        if level == 0:
            continue
        parents = list(bl.at_level(level - 1))
        for b in bl.at_level(level):
            coarse = b.coarsen(factor)
            remaining = [coarse]
            for p in parents:
                nxt = []
                for r in remaining:
                    nxt.extend(r.difference(p))
                remaining = nxt
            assert not remaining, f"{b} not nested in level {level - 1}"


class TestSyntheticWorkload:
    def test_empty_epochs_rejected(self):
        with pytest.raises(GeometryError):
            SyntheticWorkload("x", Box((0,), (4,)), 2, box_lists=())
        with pytest.raises(GeometryError):
            SyntheticWorkload("x", Box((0,), (4,)), 2, box_lists=(BoxList(),))

    def test_iteration_and_epoch_access(self):
        w = moving_blob_trace(num_regrids=4)
        assert w.num_regrids == 4
        assert len(list(w)) == 4
        assert w.epoch(0) == w.box_lists[0]

    def test_work_weights_subcycling(self):
        w = moving_blob_trace(domain_shape=(16, 16), num_regrids=1, max_levels=2)
        bl = w.epoch(0)
        manual = sum(b.num_cells * 2**b.level for b in bl)
        assert w.work_of(0) == manual


class TestMovingBlob:
    def test_epochs_are_valid_hierarchies(self):
        w = moving_blob_trace(domain_shape=(64, 64), num_regrids=6, max_levels=3)
        for bl in w:
            assert_valid_hierarchy_epoch(bl, w.domain, w.refine_factor)

    def test_blob_moves(self):
        w = moving_blob_trace(domain_shape=(64, 64), num_regrids=5, max_levels=2)
        centers = []
        for bl in w:
            fine = bl.at_level(1)
            frame = fine.bounding_box()
            centers.append((frame.lower[0] + frame.upper[0]) / 2)
        assert centers[-1] > centers[0]

    def test_3d_works(self):
        w = moving_blob_trace(domain_shape=(16, 16, 16), num_regrids=3, max_levels=2)
        for bl in w:
            assert_valid_hierarchy_epoch(bl, w.domain, 2)

    def test_bad_params(self):
        with pytest.raises(GeometryError):
            moving_blob_trace(num_regrids=0)


class TestPaperTrace:
    def test_paper_scale_defaults(self):
        w = paper_rm3d_trace()
        assert w.domain == Box((0, 0, 0), (128, 32, 32))
        assert w.num_regrids == 8

    def test_epochs_are_valid_hierarchies(self):
        w = paper_rm3d_trace(num_regrids=6)
        for bl in w:
            assert_valid_hierarchy_epoch(bl, w.domain, w.refine_factor)

    def test_three_levels_present(self):
        w = paper_rm3d_trace(num_regrids=4)
        for bl in w:
            assert bl.levels == (0, 1, 2)

    def test_work_grows_with_instability(self):
        """Later epochs refine more cells (growing mixing zone)."""
        w = paper_rm3d_trace(num_regrids=8)
        assert w.work_of(w.num_regrids - 1) > w.work_of(0)

    def test_interface_slab_moves(self):
        w = paper_rm3d_trace(num_regrids=5)
        slab_x = []
        for bl in w:
            frame = bl.at_level(1).bounding_box()
            slab_x.append((frame.lower[0] + frame.upper[0]) / 2)
        assert slab_x == sorted(slab_x)
        assert slab_x[-1] > slab_x[0]

    def test_multiple_boxes_per_epoch(self):
        """The partitioner needs multiple assignable units."""
        w = paper_rm3d_trace(num_regrids=4)
        for bl in w:
            assert len(bl) >= 5

    def test_bad_params(self):
        with pytest.raises(GeometryError):
            paper_rm3d_trace(num_regrids=0)
        with pytest.raises(GeometryError):
            paper_rm3d_trace(max_levels=0)
