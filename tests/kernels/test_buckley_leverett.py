"""Tests for the Buckley-Leverett reservoir kernel."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels.buckley_leverett import BuckleyLeverettKernel
from repro.util.errors import KernelError
from repro.util.geometry import Box


@pytest.fixture
def kernel() -> BuckleyLeverettKernel:
    return BuckleyLeverettKernel(domain_shape=(32, 16), velocity=(1.0, 0.0))


class TestFractionalFlow:
    def test_endpoints(self, kernel):
        assert kernel.fractional_flow(np.array(0.0)) == pytest.approx(0.0)
        assert kernel.fractional_flow(np.array(1.0)) == pytest.approx(1.0)

    def test_monotone(self, kernel):
        s = np.linspace(0, 1, 101)
        f = kernel.fractional_flow(s)
        assert (np.diff(f) >= -1e-12).all()

    def test_s_shape(self, kernel):
        """f has an inflection: convex near 0, concave near 1."""
        f = kernel.fractional_flow(np.array([0.1, 0.5, 0.9]))
        assert f[0] < 0.1       # slow start
        assert f[2] > 0.9       # saturated finish

    def test_clipping(self, kernel):
        assert kernel.fractional_flow(np.array(-0.5)) == pytest.approx(0.0)
        assert kernel.fractional_flow(np.array(1.5)) == pytest.approx(1.0)


class TestConstruction:
    def test_bad_params(self):
        with pytest.raises(KernelError):
            BuckleyLeverettKernel(mobility_ratio=0.0)
        with pytest.raises(KernelError):
            BuckleyLeverettKernel(front_position=0.0)
        with pytest.raises(KernelError):
            BuckleyLeverettKernel(front_position=1.0)


class TestInitialCondition:
    def test_front_profile(self, kernel):
        u = kernel.initial_condition(Box((0, 0), (32, 16)), 1.0)
        s = u[0]
        assert s.shape == (32, 16)
        assert s[0, 0] == pytest.approx(1.0, abs=0.01)   # flooded inlet
        assert s[-1, 0] == pytest.approx(0.0, abs=0.01)  # virgin oil zone
        # Monotone decreasing along x.
        assert (np.diff(s[:, 0]) <= 1e-12).all()


class TestStep:
    def test_saturation_bounds(self, kernel):
        u = kernel.initial_condition(Box((0, 0), (32, 16)), 1.0)
        dt = kernel.stable_dt(u, 1.0, cfl=0.4)
        for _ in range(20):
            u = kernel.step(u, dt, 1.0)
        assert u.min() >= 0.0
        assert u.max() <= 1.0

    def test_front_advances(self, kernel):
        u = kernel.initial_condition(Box((0, 0), (32, 16)), 1.0)

        def front(s):
            return int(np.argmin(np.abs(s[:, 0] - 0.5)))

        x0 = front(u[0])
        dt = kernel.stable_dt(u, 1.0, cfl=0.4)
        for _ in range(20):
            u = kernel.step(u, dt, 1.0)
        assert front(u[0]) > x0

    def test_bad_dt(self, kernel):
        with pytest.raises(KernelError):
            kernel.step(np.zeros((1, 4, 4)), 0.0, 1.0)


class TestIndicatorSpeed:
    def test_indicator_peaks_at_front(self, kernel):
        u = kernel.initial_condition(Box((0, 0), (32, 16)), 1.0)
        ind = kernel.error_indicator(u, 1.0)
        front = int(np.argmin(np.abs(u[0][:, 0] - 0.5)))
        assert abs(int(np.argmax(ind[:, 0])) - front) <= 2

    def test_wave_speed_bounds_df(self, kernel):
        c = kernel.max_wave_speed(np.zeros((1, 2, 2)))
        # For M=2 the BL flux has max slope > 1 (front shock speed).
        assert c > 1.0
