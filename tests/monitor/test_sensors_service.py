"""Tests for sensors and the ResourceMonitor facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import Cluster, SyntheticLoadGenerator
from repro.monitor import MetricSensor, ResourceMonitor
from repro.util.errors import MonitorError


class TestMetricSensor:
    def test_exact_reading_without_noise(self):
        c = Cluster.homogeneous(2)
        s = MetricSensor(c, "cpu")
        r = s.probe(0)
        assert r.value == pytest.approx(0.97)
        assert r.metric == "cpu"
        assert r.node == 0

    def test_noise_perturbs_but_clamps(self):
        c = Cluster.homogeneous(1)
        s = MetricSensor(c, "cpu", noise=0.5, seed=1)
        values = [s.probe(0).value for _ in range(100)]
        assert all(0.0 <= v <= 1.0 for v in values)
        assert len(set(values)) > 1

    def test_unknown_metric_rejected(self):
        with pytest.raises(MonitorError):
            MetricSensor(Cluster.homogeneous(1), "disk")

    def test_bad_params_rejected(self):
        c = Cluster.homogeneous(1)
        with pytest.raises(MonitorError):
            MetricSensor(c, "cpu", noise=-0.1)
        with pytest.raises(MonitorError):
            MetricSensor(c, "cpu", failure_rate=1.0)

    def test_unknown_node_raises_monitor_error(self):
        s = MetricSensor(Cluster.homogeneous(1), "cpu")
        with pytest.raises(MonitorError):
            s.probe(9)

    def test_injected_failures(self):
        c = Cluster.homogeneous(1)
        s = MetricSensor(c, "cpu", failure_rate=0.5, seed=0)
        outcomes = []
        for _ in range(100):
            try:
                s.probe(0)
                outcomes.append(True)
            except MonitorError:
                outcomes.append(False)
        assert 20 < sum(outcomes) < 80  # roughly half fail


class TestResourceMonitor:
    def test_snapshot_shapes_and_overhead(self):
        c = Cluster.homogeneous(4)
        mon = ResourceMonitor(c)
        snap = mon.probe_all()
        assert snap.num_nodes == 4
        assert snap.cpu.shape == (4,)
        # Concurrent probes: one probe latency + per-node aggregation.
        assert snap.overhead_seconds == pytest.approx(0.5 + 0.02 * 4)
        assert snap.stale_nodes == ()

    def test_probe_reflects_load_dynamics(self):
        c = Cluster.homogeneous(2)
        c.add_load_generator(
            SyntheticLoadGenerator(node=0, ramp_rate=0.1, target_level=1.0)
        )
        mon = ResourceMonitor(c)
        before = mon.probe_all(t=0.0)
        after = mon.probe_all(t=10.0)
        assert after.cpu[0] < before.cpu[0]
        assert after.cpu[1] == pytest.approx(before.cpu[1])

    def test_forecast_before_probe_rejected(self):
        mon = ResourceMonitor(Cluster.homogeneous(1))
        with pytest.raises(MonitorError):
            mon.forecast_all()

    def test_forecast_last_matches_probe(self):
        c = Cluster.homogeneous(3)
        mon = ResourceMonitor(c, forecaster="last")
        snap = mon.probe_all()
        fc = mon.forecast_all()
        np.testing.assert_allclose(fc.cpu, snap.cpu)
        np.testing.assert_allclose(fc.memory_mb, snap.memory_mb)
        assert fc.overhead_seconds == 0.0

    def test_forecast_mean_smooths(self):
        c = Cluster.homogeneous(1)
        mon = ResourceMonitor(c, forecaster="mean", noise=0.2, seed=3)
        for t in range(20):
            mon.probe_all(t=float(t))
        fc = mon.forecast_all()
        assert 0.8 <= fc.cpu[0] <= 1.0  # noise averaged out around 0.97

    def test_failed_probes_fall_back_to_last_value(self):
        c = Cluster.homogeneous(2)
        mon = ResourceMonitor(c, failure_rate=0.95, seed=5)
        first = mon.probe_all(t=0.0)  # some probes fail -> defaults used
        c.add_load_generator(
            SyntheticLoadGenerator(node=0, ramp_rate=10.0, target_level=3.0)
        )
        snap = mon.probe_all(t=100.0)
        # With near-certain failure, values barely track the new load and
        # stale_nodes is populated.
        assert snap.stale_nodes != ()
        assert snap.cpu.shape == (2,)
        assert np.all(snap.cpu >= 0)
        assert first.num_nodes == 2

    def test_negative_overhead_rejected(self):
        with pytest.raises(MonitorError):
            ResourceMonitor(Cluster.homogeneous(1), probe_overhead_s=-1.0)

    def test_probe_counter(self):
        mon = ResourceMonitor(Cluster.homogeneous(1))
        assert mon.num_probes == 0
        mon.probe_all()
        mon.probe_all()
        assert mon.num_probes == 2

    def test_custom_overhead(self):
        mon = ResourceMonitor(
            Cluster.homogeneous(3),
            probe_overhead_s=0.1,
            aggregation_s_per_node=0.01,
        )
        assert mon.probe_all().overhead_seconds == pytest.approx(0.13)
        with pytest.raises(MonitorError):
            ResourceMonitor(Cluster.homogeneous(1), aggregation_s_per_node=-1)
