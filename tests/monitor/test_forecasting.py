"""Tests for the NWS-style forecaster suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.monitor.forecasting import (
    AdaptiveEnsembleForecaster,
    ARForecaster,
    LastValueForecaster,
    ModelBackedForecaster,
    SlidingMeanForecaster,
    SlidingMedianForecaster,
    make_forecaster,
)
from repro.telemetry.spans import Tracer, activate
from repro.util.errors import MonitorError

ALL_KINDS = ["last", "mean", "median", "ar", "adaptive", "model"]


@pytest.mark.parametrize("kind", ALL_KINDS)
class TestCommonContract:
    def test_empty_history_raises(self, kind):
        with pytest.raises(MonitorError):
            make_forecaster(kind).forecast()

    def test_single_value_echoed(self, kind):
        f = make_forecaster(kind)
        f.update(0.42)
        assert f.forecast() == pytest.approx(0.42)

    def test_constant_series_predicted_exactly(self, kind):
        f = make_forecaster(kind)
        for _ in range(30):
            f.update(7.5)
        assert f.forecast() == pytest.approx(7.5)


class TestLastValue:
    def test_tracks_latest(self):
        f = LastValueForecaster()
        for v in (1.0, 5.0, 2.0):
            f.update(v)
        assert f.forecast() == 2.0


class TestSlidingMean:
    def test_window_limits_memory(self):
        f = SlidingMeanForecaster(window=3)
        for v in (100.0, 1.0, 2.0, 3.0):
            f.update(v)
        assert f.forecast() == pytest.approx(2.0)

    def test_bad_window(self):
        with pytest.raises(MonitorError):
            SlidingMeanForecaster(0)


class TestSlidingMedian:
    def test_robust_to_spike(self):
        f = SlidingMedianForecaster(window=5)
        for v in (1.0, 1.0, 50.0, 1.0, 1.0):
            f.update(v)
        assert f.forecast() == 1.0

    def test_bad_window(self):
        with pytest.raises(MonitorError):
            SlidingMedianForecaster(-1)


class TestAR:
    def test_mean_reversion_prediction(self):
        """An alternating series has rho ~ -1: forecast flips toward mean."""
        f = ARForecaster(window=20)
        for i in range(20):
            f.update(1.0 if i % 2 == 0 else -1.0)
        # Last value was -1 (i=19); AR(1) with rho=-1 predicts +1.
        assert f.forecast() == pytest.approx(1.0, abs=0.15)

    def test_trending_series_follows(self):
        f = ARForecaster(window=10)
        for v in np.linspace(0, 1, 10):
            f.update(float(v))
        assert f.forecast() > 0.5

    def test_bad_window(self):
        with pytest.raises(MonitorError):
            ARForecaster(window=2)


class TestAdaptiveEnsemble:
    def test_picks_last_value_for_random_walk(self):
        """On a random walk, last-value has the lowest one-step error."""
        rng = np.random.default_rng(0)
        f = AdaptiveEnsembleForecaster()
        x = 0.0
        for _ in range(200):
            x += float(rng.normal(0, 1))
            f.update(x)
        assert isinstance(f.members[f.best_member_index()], LastValueForecaster)

    def test_picks_robust_member_for_spiky_series(self):
        """Occasional huge spikes favour the median over last-value."""
        rng = np.random.default_rng(1)
        f = AdaptiveEnsembleForecaster()
        for i in range(300):
            v = 1.0 + float(rng.normal(0, 0.01))
            if rng.random() < 0.1:
                v = 100.0
            f.update(v)
        best = f.members[f.best_member_index()]
        assert isinstance(best, SlidingMedianForecaster)

    def test_member_mae_reported(self):
        f = AdaptiveEnsembleForecaster()
        for v in (1.0, 2.0, 3.0):
            f.update(v)
        maes = f.member_mae()
        assert len(maes) == 4
        assert all(m >= 0 for m in maes)

    def test_empty_members_rejected(self):
        with pytest.raises(MonitorError):
            AdaptiveEnsembleForecaster(members=[])


class TestModelBacked:
    def test_tracks_linear_ramp(self):
        f = ModelBackedForecaster(window=10)
        for v in np.linspace(0.1, 1.0, 10):
            f.update(float(v))
        # Extrapolates the fitted trend one step past the last value.
        assert f.forecast() > 1.0

    def test_cold_degrades_to_last_value(self):
        f = ModelBackedForecaster(min_points=4)
        f.update(0.3)
        f.update(0.7)
        assert f.forecast() == pytest.approx(0.7)

    def test_cold_degrade_emits_event(self):
        tracer = Tracer()
        f = ModelBackedForecaster(min_points=4)
        f.update(0.5)
        with activate(tracer):
            f.forecast()
        cold = [e for e in tracer.events if e.name == "forecast.cold"]
        assert len(cold) == 1
        assert cold[0].attributes["forecaster"] == "ModelBackedForecaster"
        assert cold[0].attributes["have"] == 1

    def test_warm_forecast_emits_nothing(self):
        tracer = Tracer()
        f = ModelBackedForecaster()
        for v in np.linspace(0.1, 1.0, 10):
            f.update(float(v))
        with activate(tracer):
            f.forecast()
        assert not any(e.name == "forecast.cold" for e in tracer.events)

    def test_interval_brackets_forecast(self):
        rng = np.random.default_rng(5)
        f = ModelBackedForecaster(window=20)
        for i in range(20):
            f.update(0.2 + 0.01 * i + float(rng.normal(0, 0.005)))
        lo, hi = f.forecast_interval()
        assert lo < f.forecast() < hi

    def test_bad_params(self):
        with pytest.raises(MonitorError):
            ModelBackedForecaster(window=2)
        with pytest.raises(MonitorError):
            ModelBackedForecaster(min_points=2)

    def test_empty_still_raises(self):
        with pytest.raises(MonitorError):
            ModelBackedForecaster().forecast()


def test_unknown_kind_rejected():
    with pytest.raises(MonitorError):
        make_forecaster("oracle")


@pytest.mark.parametrize("kind", ALL_KINDS)
@settings(max_examples=100)
@given(values=st.lists(st.floats(0.0, 1.0), min_size=1, max_size=50))
def test_forecast_stays_near_observed_range(kind, values):
    """Forecasts stay within (for averaging predictors) or near (for the
    AR extrapolator) the observed range -- the bound that keeps capacity
    fractions well-formed downstream."""
    f = make_forecaster(kind)
    for v in values:
        f.update(v)
    pred = f.forecast()
    lo, hi = min(values), max(values)
    if kind in ("last", "mean", "median"):
        assert lo - 1e-9 <= pred <= hi + 1e-9
    else:
        # AR(1) may extrapolate past the extremes, but never further than
        # one range-width (|forecast - mean| <= |last - mean| <= range).
        span = hi - lo
        assert lo - span - 1e-9 <= pred <= hi + span + 1e-9
