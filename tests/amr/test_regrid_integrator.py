"""Integration tests: regridding and Berger-Oliger time stepping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.amr.hierarchy import GridHierarchy
from repro.amr.integrator import BergerOligerIntegrator
from repro.amr.regrid import build_initial_hierarchy, regrid_hierarchy
from repro.kernels.advection import AdvectionKernel
from repro.util.errors import KernelError
from repro.util.geometry import Box


def make_hierarchy(max_levels: int = 3, size: int = 32) -> GridHierarchy:
    k = AdvectionKernel(
        velocity=(1.0, 0.5), pulse_center=(8.0, 8.0), pulse_width=2.0
    )
    return GridHierarchy(Box((0, 0), (size, size)), k, max_levels=max_levels)


class TestRegrid:
    def test_build_initial_hierarchy_reaches_max_levels(self):
        h = make_hierarchy()
        build_initial_hierarchy(h)
        assert h.num_levels == 3
        assert h.proper_nesting_ok()
        # Refined levels hug the pulse at (8, 8).
        for lvl in h.levels[1:]:
            frame = lvl.boxes.bounding_box()
            scale = 2**lvl.level
            center = tuple((l + u) / (2 * scale) for l, u in zip(frame.lower, frame.upper))
            assert abs(center[0] - 8) < 6 and abs(center[1] - 8) < 6

    def test_regrid_tracks_feature(self):
        """After overwriting the solution with a pulse elsewhere, regrid
        moves the fine levels to the new location."""
        h = make_hierarchy()
        build_initial_hierarchy(h)
        k = h.kernel
        # Overwrite level-0 with a pulse at (24, 24) and regrid.
        k2 = AdvectionKernel(
            velocity=(1.0, 0.5), pulse_center=(24.0, 24.0), pulse_width=2.0
        )
        h.levels[0].patches[0].interior = k2.initial_condition(h.domain, 1.0)
        # Clear fine data too so old flags vanish.
        for lvl in h.levels[1:]:
            for p in lvl:
                p.interior = np.zeros_like(p.interior)
        regrid_hierarchy(h)
        assert h.proper_nesting_ok()
        frame = h.levels[1].boxes.bounding_box()
        center_x = (frame.lower[0] + frame.upper[0]) / 4  # /2 for level scale
        assert center_x > 16  # moved toward (24, 24)

    def test_no_flags_removes_fine_levels(self):
        h = make_hierarchy()
        build_initial_hierarchy(h)
        assert h.num_levels > 1
        # Flatten the solution: nothing left to refine.
        h.levels[0].patches[0].interior = np.zeros((1, 32, 32))
        for lvl in h.levels[1:]:
            for p in lvl:
                p.interior = np.zeros_like(p.interior)
        regrid_hierarchy(h)
        assert h.num_levels == 1

    def test_max_levels_respected(self):
        h = make_hierarchy(max_levels=2)
        build_initial_hierarchy(h)
        assert h.num_levels <= 2


class TestIntegrator:
    def test_setup_fires_regrid_hook(self):
        h = make_hierarchy()
        seen = []
        integ = BergerOligerIntegrator(h, on_regrid=lambda hh: seen.append(hh.num_levels))
        integ.setup()
        assert seen and seen[-1] == h.num_levels

    def test_param_guards(self):
        h = make_hierarchy()
        with pytest.raises(KernelError):
            BergerOligerIntegrator(h, cfl=0.0)
        with pytest.raises(KernelError):
            BergerOligerIntegrator(h, cfl=1.5)
        with pytest.raises(KernelError):
            BergerOligerIntegrator(h, regrid_interval=-1)

    def test_advance_before_setup_rejected(self):
        integ = BergerOligerIntegrator(make_hierarchy())
        with pytest.raises(KernelError):
            integ.advance()

    def test_stable_dt_respects_finest_level(self):
        h = make_hierarchy()
        integ = BergerOligerIntegrator(h)
        integ.setup()
        dt = integ.stable_dt()
        # Finest level (2) has dx = 0.25; with speed 1 and cfl 0.4 its local
        # limit is 0.1, times subcycle scale 4 -> 0.4 at level 0.
        assert dt == pytest.approx(0.4)

    def test_steps_advance_time_and_counters(self):
        h = make_hierarchy()
        integ = BergerOligerIntegrator(h, regrid_interval=2)
        integ.setup()
        regrids_before = integ.num_regrids
        integ.run(5)
        assert h.step_count == 5
        assert h.time == pytest.approx(5 * 0.4)
        assert integ.num_regrids == regrids_before + 2  # at steps 2 and 4

    def test_pulse_advects_and_peak_survives(self):
        """The refined pulse moves at the right speed and AMR keeps its
        amplitude better than the coarse-only run (the point of refining)."""
        h = make_hierarchy()
        integ = BergerOligerIntegrator(h, regrid_interval=2)
        integ.setup()
        for _ in range(10):
            integ.advance()
        t = h.time
        expect = (8.0 + 1.0 * t, 8.0 + 0.5 * t)
        # Locate the maximum on the composite grid via level 0.
        u0 = h.levels[0].patches[0].interior[0]
        peak = np.unravel_index(np.argmax(u0), u0.shape)
        assert abs(peak[0] + 0.5 - expect[0]) <= 2.0
        assert abs(peak[1] + 0.5 - expect[1]) <= 2.0
        assert u0.max() > 0.35  # first-order coarse-only decays much harder

    def test_regrid_disabled(self):
        h = make_hierarchy()
        integ = BergerOligerIntegrator(h, regrid_interval=0)
        integ.setup()
        n = integ.num_regrids
        integ.run(4)
        assert integ.num_regrids == n

    def test_mass_conservation_periodic(self):
        """Total level-0 'mass' is conserved under periodic advection
        (upwind + restriction are conservative on the torus)."""
        h = make_hierarchy()
        integ = BergerOligerIntegrator(h, regrid_interval=3)
        integ.setup()
        m0 = h.levels[0].patches[0].interior.sum()
        integ.run(6)
        m1 = h.levels[0].patches[0].interior.sum()
        assert m1 == pytest.approx(m0, rel=0.02)
