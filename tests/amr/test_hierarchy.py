"""Tests for GridHierarchy: setup, nesting, work accounting, level rebuild."""

from __future__ import annotations

import numpy as np
import pytest

from repro.amr.hierarchy import GridHierarchy
from repro.kernels.advection import AdvectionKernel
from repro.util.errors import GeometryError
from repro.util.geometry import Box, BoxList


def make_hierarchy(max_levels: int = 3) -> GridHierarchy:
    k = AdvectionKernel(velocity=(1.0, 0.5), pulse_center=(8.0, 8.0))
    h = GridHierarchy(Box((0, 0), (16, 16)), k, max_levels=max_levels)
    h.initialize()
    return h


class TestConstruction:
    def test_domain_validation(self):
        k = AdvectionKernel(velocity=(1.0, 0.0))
        with pytest.raises(GeometryError):
            GridHierarchy(Box((1, 0), (4, 4)), k)  # not at origin
        with pytest.raises(GeometryError):
            GridHierarchy(Box((0, 0), (4, 4), level=1), k)

    def test_ndim_mismatch(self):
        k = AdvectionKernel(velocity=(1.0, 0.0, 0.0))
        with pytest.raises(GeometryError):
            GridHierarchy(Box((0, 0), (4, 4)), k)

    def test_param_guards(self):
        k = AdvectionKernel(velocity=(1.0, 0.0))
        dom = Box((0, 0), (4, 4))
        with pytest.raises(GeometryError):
            GridHierarchy(dom, k, max_levels=0)
        with pytest.raises(GeometryError):
            GridHierarchy(dom, k, refine_factor=1)
        with pytest.raises(GeometryError):
            GridHierarchy(dom, k, dx0=0.0)

    def test_initialize_creates_level0(self):
        h = make_hierarchy()
        assert h.num_levels == 1
        assert h.levels[0].total_cells == 256
        assert h.time == 0.0
        ic = h.levels[0].patches[0].interior
        assert ic.max() == pytest.approx(1.0, abs=0.05)  # pulse peak


class TestGeometry:
    def test_cell_width_halves_per_level(self):
        h = make_hierarchy()
        assert h.cell_width(0) == 1.0
        assert h.cell_width(2) == 0.25

    def test_domain_at(self):
        h = make_hierarchy()
        assert h.domain_at(0) == Box((0, 0), (16, 16))
        assert h.domain_at(2) == Box((0, 0), (64, 64), level=2)

    def test_subcycles(self):
        h = make_hierarchy()
        assert [h.subcycles(l) for l in range(3)] == [1, 2, 4]

    def test_work_accounting(self):
        h = make_hierarchy()
        h.set_level_boxes(1, BoxList([Box((4, 4), (12, 12), 1)]))
        np.testing.assert_array_equal(h.work_by_level(), [256, 128])
        assert h.total_work() == 384
        assert h.work_of_box(Box((4, 4), (12, 12), 1)) == 128


class TestSetLevelBoxes:
    def test_level0_immutable(self):
        h = make_hierarchy()
        with pytest.raises(GeometryError):
            h.set_level_boxes(0, BoxList([Box((0, 0), (16, 16))]))

    def test_cannot_skip_levels(self):
        h = make_hierarchy()
        with pytest.raises(GeometryError):
            h.set_level_boxes(2, BoxList([Box((0, 0), (8, 8), 2)]))

    def test_max_levels_enforced(self):
        h = make_hierarchy(max_levels=2)
        h.set_level_boxes(1, BoxList([Box((0, 0), (8, 8), 1)]))
        with pytest.raises(GeometryError):
            h.set_level_boxes(2, BoxList([Box((0, 0), (8, 8), 2)]))

    def test_wrong_level_boxes_rejected(self):
        h = make_hierarchy()
        with pytest.raises(GeometryError):
            h.set_level_boxes(1, BoxList([Box((0, 0), (8, 8), 2)]))

    def test_outside_domain_rejected(self):
        h = make_hierarchy()
        with pytest.raises(GeometryError):
            h.set_level_boxes(1, BoxList([Box((0, 0), (40, 40), 1)]))

    def test_new_level_filled_by_prolongation(self):
        h = make_hierarchy()
        h.levels[0].patches[0].interior = np.full((1, 16, 16), 3.5)
        h.set_level_boxes(1, BoxList([Box((4, 4), (12, 12), 1)]))
        fine = h.levels[1].patches[0].interior
        assert fine.shape == (1, 8, 8)
        np.testing.assert_allclose(fine, 3.5)

    def test_old_data_copied_on_overlap(self):
        h = make_hierarchy()
        h.set_level_boxes(1, BoxList([Box((4, 4), (12, 12), 1)]))
        h.levels[1].patches[0].interior = np.full((1, 8, 8), 9.0)
        # New footprint overlaps [6,6)-(12,12) region of the old box.
        h.set_level_boxes(1, BoxList([Box((6, 6), (14, 14), 1)]))
        fine = h.levels[1].patches[0].interior
        # Overlapping part keeps the old fine value 9.0.
        assert fine[0, 0, 0] == 9.0  # (6,6) was inside old box
        # Fresh part comes from prolonged coarse data (pulse values < 9).
        assert fine[0, -1, -1] != 9.0

    def test_empty_boxlist_removes_trailing_level(self):
        h = make_hierarchy()
        h.set_level_boxes(1, BoxList([Box((4, 4), (12, 12), 1)]))
        assert h.num_levels == 2
        h.set_level_boxes(1, BoxList())
        assert h.num_levels == 1


class TestNesting:
    def test_nesting_holds_for_contained_fine_level(self):
        h = make_hierarchy()
        h.set_level_boxes(1, BoxList([Box((4, 4), (12, 12), 1)]))
        assert h.proper_nesting_ok()

    def test_nesting_fails_for_orphan_fine_box(self):
        h = make_hierarchy()
        h.set_level_boxes(1, BoxList([Box((0, 0), (8, 8), 1)]))
        h.set_level_boxes(2, BoxList([Box((0, 0), (8, 8), 2)]))
        assert h.proper_nesting_ok()
        # Move level 2 out from under level 1's footprint.
        h.set_level_boxes(2, BoxList([Box((24, 24), (32, 32), 2)]))
        assert not h.proper_nesting_ok()


class TestRestrictLevel:
    def test_fine_average_lands_on_coarse(self):
        h = make_hierarchy()
        h.set_level_boxes(1, BoxList([Box((4, 4), (8, 8), 1)]))
        h.levels[1].patches[0].interior = np.full((1, 4, 4), 10.0)
        h.restrict_level(1)
        coarse = h.levels[0].patches[0].interior
        # Fine box covers coarse cells (2,2)-(4,4).
        np.testing.assert_allclose(coarse[0, 2:4, 2:4], 10.0)
        assert coarse[0, 0, 0] != 10.0

    def test_misaligned_box_restricts_aligned_core_only(self):
        h = make_hierarchy()
        h.set_level_boxes(1, BoxList([Box((5, 4), (9, 8), 1)]))  # odd x-lo
        h.levels[1].patches[0].interior = np.full((1, 4, 4), 10.0)
        before = h.levels[0].patches[0].interior.copy()
        h.restrict_level(1)
        coarse = h.levels[0].patches[0].interior
        # Aligned core is x in [6, 8) fine = coarse cell 3.
        np.testing.assert_allclose(coarse[0, 3, 2:4], 10.0)
        # Cells under the misaligned fringe (coarse x=2) stay untouched.
        np.testing.assert_allclose(coarse[0, 2, :], before[0, 2, :])

    def test_no_fine_level_rejected(self):
        h = make_hierarchy()
        with pytest.raises(GeometryError):
            h.restrict_level(1)
