"""Tests for GridPatch and GridLevel."""

from __future__ import annotations

import numpy as np
import pytest

from repro.amr.level import GridLevel
from repro.amr.patch import GridPatch
from repro.util.errors import GeometryError
from repro.util.geometry import Box


class TestGridPatch:
    def test_allocation_shape(self):
        p = GridPatch(Box((0, 0), (4, 6)), num_fields=2, ghost_width=1)
        assert p.data.shape == (2, 6, 8)
        assert p.interior.shape == (2, 4, 6)
        assert p.work == 24

    def test_zero_ghost(self):
        p = GridPatch(Box((0, 0), (4, 4)), ghost_width=0)
        assert p.data.shape == (1, 4, 4)
        assert p.interior is p.data
        assert p.ghost_box() == p.box

    def test_interior_setter(self):
        p = GridPatch(Box((0, 0), (2, 2)))
        p.interior = np.ones((1, 2, 2))
        assert p.data.sum() == 4.0  # ghosts untouched (zero)

    def test_ghost_box(self):
        p = GridPatch(Box((2, 2), (4, 4)), ghost_width=2)
        assert p.ghost_box() == Box((0, 0), (6, 6))

    def test_existing_data_validated(self):
        with pytest.raises(GeometryError):
            GridPatch(Box((0,), (4,)), data=np.zeros((1, 4)))  # missing ghosts
        ok = GridPatch(Box((0,), (4,)), data=np.arange(6, dtype=float).reshape(1, 6))
        assert ok.interior.tolist() == [[1.0, 2.0, 3.0, 4.0]]

    def test_bad_params(self):
        with pytest.raises(GeometryError):
            GridPatch(Box((0,), (2,)), num_fields=0)
        with pytest.raises(GeometryError):
            GridPatch(Box((0,), (2,)), ghost_width=-1)

    def test_view_for_region_in_ghost_frame(self):
        p = GridPatch(Box((4, 4), (8, 8)), ghost_width=1)
        view = p.view_for(Box((3, 4), (4, 8)))  # left ghost column
        assert view.shape == (1, 1, 4)
        view[...] = 7.0
        assert p.data[0, 0, 1:5].tolist() == [7.0] * 4

    def test_view_for_outside_rejected(self):
        p = GridPatch(Box((4, 4), (8, 8)), ghost_width=1)
        with pytest.raises(GeometryError):
            p.view_for(Box((0, 0), (2, 2)))

    def test_copy_region_from(self):
        src = GridPatch(Box((0, 0), (4, 4)), ghost_width=1)
        src.interior = np.arange(16, dtype=float).reshape(1, 4, 4)
        dst = GridPatch(Box((4, 0), (8, 4)), ghost_width=1)
        region = Box((3, 0), (4, 4))  # src's last column = dst's ghost col
        dst.copy_region_from(src, region)
        np.testing.assert_array_equal(
            dst.data[0, 0, 1:5], src.interior[0, 3, :]
        )

    def test_copy_region_source_must_cover(self):
        src = GridPatch(Box((0, 0), (4, 4)), ghost_width=1)
        dst = GridPatch(Box((4, 0), (8, 4)), ghost_width=1)
        with pytest.raises(GeometryError):
            dst.copy_region_from(src, Box((3, 0), (5, 4)))  # exceeds src box


class TestGridLevel:
    def test_add_and_measure(self):
        lvl = GridLevel(1)
        lvl.add_patch(GridPatch(Box((0, 0), (4, 4), 1)))
        lvl.add_patch(GridPatch(Box((8, 0), (12, 4), 1)))
        assert len(lvl) == 2
        assert lvl.total_cells == 32
        assert len(lvl.boxes) == 2

    def test_level_mismatch_rejected(self):
        lvl = GridLevel(1)
        with pytest.raises(GeometryError):
            lvl.add_patch(GridPatch(Box((0, 0), (4, 4), 0)))

    def test_overlap_rejected(self):
        lvl = GridLevel(0)
        lvl.add_patch(GridPatch(Box((0, 0), (4, 4))))
        with pytest.raises(GeometryError):
            lvl.add_patch(GridPatch(Box((2, 2), (6, 6))))

    def test_negative_level_rejected(self):
        with pytest.raises(GeometryError):
            GridLevel(-1)

    def test_patch_containing(self):
        lvl = GridLevel(0)
        p = GridPatch(Box((0, 0), (4, 4)))
        lvl.add_patch(p)
        assert lvl.patch_containing((1, 1)) is p
        assert lvl.patch_containing((9, 9)) is None

    def test_covers(self):
        lvl = GridLevel(0)
        lvl.add_patch(GridPatch(Box((0, 0), (4, 4))))
        lvl.add_patch(GridPatch(Box((4, 0), (8, 4))))
        assert lvl.covers(Box((0, 0), (8, 4)))
        assert lvl.covers(Box((2, 1), (6, 3)))
        assert not lvl.covers(Box((0, 0), (8, 5)))
