"""Tests for ghost filling and exchange-volume planning."""

from __future__ import annotations

import numpy as np
import pytest

from repro.amr.ghost import GhostFiller, plan_exchange_volumes
from repro.amr.hierarchy import GridHierarchy
from repro.kernels.advection import AdvectionKernel
from repro.util.errors import GeometryError
from repro.util.geometry import Box, BoxList


def make_hierarchy(boundary: str = "periodic") -> GridHierarchy:
    k = AdvectionKernel(velocity=(1.0, 0.5), boundary=boundary)
    h = GridHierarchy(Box((0, 0), (8, 8)), k, max_levels=3)
    h.initialize()
    # Deterministic, recognizable level-0 field: value = 10*i + j.
    i, j = np.meshgrid(np.arange(8), np.arange(8), indexing="ij")
    h.levels[0].patches[0].interior = (10.0 * i + j)[np.newaxis]
    return h


class TestFetch:
    def test_level0_read(self):
        h = make_hierarchy()
        f = GhostFiller(h)
        out = f.fetch(Box((2, 3), (4, 5)), 0)
        np.testing.assert_array_equal(out[0], [[23.0, 24.0], [33.0, 34.0]])

    def test_fetch_outside_domain_rejected(self):
        h = make_hierarchy()
        with pytest.raises(GeometryError):
            GhostFiller(h).fetch(Box((-1, 0), (2, 2)), 0)

    def test_fine_fetch_prolongs_coarse(self):
        h = make_hierarchy()
        f = GhostFiller(h)
        out = f.fetch(Box((4, 4), (6, 6), 1), 1)  # no level-1 patches yet...
        # hierarchy has only level 0; fetching level-1 data falls back to
        # prolonged coarse values: fine (4,4) sits in coarse cell (2,2)=22.
        assert h.num_levels == 1
        np.testing.assert_allclose(out[0], 22.0)

    def test_fine_fetch_prefers_fine_truth(self):
        h = make_hierarchy()
        h.set_level_boxes(1, BoxList([Box((4, 4), (8, 8), 1)]))
        h.levels[1].patches[0].interior = np.full((1, 4, 4), -5.0)
        out = GhostFiller(h).fetch(Box((4, 4), (8, 8), 1), 1)
        np.testing.assert_allclose(out, -5.0)


class TestPeriodicGhosts:
    def test_interior_patch_unaffected_by_wrap(self):
        h = make_hierarchy()
        h.set_level_boxes(1, BoxList([Box((4, 4), (10, 10), 1)]))
        filler = GhostFiller(h)
        patch = h.levels[1].patches[0]
        filler.fill_patch_ghosts(patch, 1)
        # Ghost column left of the patch = prolonged coarse data at fine
        # coords (3, 4..10) -> coarse (1, 2..5) -> values 12,12,13,13,14,14.
        got = patch.data[0, 0, 1:-1]
        np.testing.assert_array_equal(got, [12, 12, 13, 13, 14, 14])

    def test_domain_edge_wraps(self):
        h = make_hierarchy()
        filler = GhostFiller(h)
        patch = h.levels[0].patches[0]
        filler.fill_patch_ghosts(patch, 0)
        # Left ghost column (i=-1) wraps to i=7 row: values 70..77.
        np.testing.assert_array_equal(
            patch.data[0, 0, 1:-1], [70, 71, 72, 73, 74, 75, 76, 77]
        )
        # Corner ghost (-1,-1) wraps to (7,7)=77.
        assert patch.data[0, 0, 0] == 77.0

    def test_outflow_replicates_edges(self):
        h = make_hierarchy(boundary="outflow")
        filler = GhostFiller(h)
        patch = h.levels[0].patches[0]
        filler.fill_patch_ghosts(patch, 0)
        # Left ghost column replicates row i=0: 0..7.
        np.testing.assert_array_equal(
            patch.data[0, 0, 1:-1], [0, 1, 2, 3, 4, 5, 6, 7]
        )
        # Corner replicates the corner cell.
        assert patch.data[0, 0, 0] == 0.0
        assert patch.data[0, -1, -1] == 77.0

    def test_sibling_fill_beats_prolongation(self):
        h = make_hierarchy()
        h.set_level_boxes(
            1, BoxList([Box((4, 4), (8, 8), 1), Box((8, 4), (12, 8), 1)])
        )
        left, right = h.levels[1].patches
        left.interior = np.full((1, 4, 4), 1.0)
        right.interior = np.full((1, 4, 4), 2.0)
        GhostFiller(h).fill_patch_ghosts(left, 1)
        # Left patch's right ghost column must hold the sibling's value 2.
        np.testing.assert_allclose(left.data[0, -1, 1:-1], 2.0)


class TestExchangeVolumes:
    def test_two_rank_halves_share_one_face(self):
        a = Box((0, 0), (4, 8))
        b = Box((4, 0), (8, 8))
        vols = plan_exchange_volumes(
            BoxList([a, b]), {a: 0, b: 1}, ghost_width=1, bytes_per_cell=8
        )
        # Each box needs the facing column of the other: 8 cells * 8 B.
        assert vols[(0, 1)] == 64.0
        assert vols[(1, 0)] == 64.0

    def test_same_owner_no_traffic(self):
        a = Box((0, 0), (4, 8))
        b = Box((4, 0), (8, 8))
        vols = plan_exchange_volumes(BoxList([a, b]), {a: 0, b: 0})
        assert vols == {}

    def test_disjoint_far_boxes_no_traffic(self):
        a = Box((0, 0), (2, 2))
        b = Box((6, 6), (8, 8))
        vols = plan_exchange_volumes(BoxList([a, b]), {a: 0, b: 1})
        assert vols == {}

    def test_interlevel_prolongation_traffic(self):
        coarse = Box((0, 0), (8, 8), 0)
        fine = Box((4, 4), (12, 12), 1)
        vols = plan_exchange_volumes(
            BoxList([coarse, fine]),
            {coarse: 0, fine: 1},
            ghost_width=1,
            bytes_per_cell=8.0,
        )
        # Fine ghost footprint coarsened: ((3,3),(13,13))->coarse (1,1)-(7,7)
        # intersect coarse box = 36 cells.
        assert vols[(0, 1)] == 36 * 8.0
        assert (1, 0) not in vols

    def test_missing_owner_rejected(self):
        a = Box((0, 0), (2, 2))
        with pytest.raises(GeometryError):
            plan_exchange_volumes(BoxList([a]), {})

    def test_negative_ghost_rejected(self):
        a = Box((0, 0), (2, 2))
        with pytest.raises(GeometryError):
            plan_exchange_volumes(BoxList([a]), {a: 0}, ghost_width=-1)

    def test_zero_ghost_only_interlevel(self):
        a = Box((0, 0), (4, 8))
        b = Box((4, 0), (8, 8))
        vols = plan_exchange_volumes(BoxList([a, b]), {a: 0, b: 1}, ghost_width=0)
        assert vols == {}
