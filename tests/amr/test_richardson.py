"""Tests for the Richardson-extrapolation refinement criterion."""

from __future__ import annotations

import numpy as np
import pytest

from repro.amr.flagging import richardson_indicator
from repro.amr.hierarchy import GridHierarchy
from repro.amr.integrator import BergerOligerIntegrator
from repro.amr.regrid import RegridParams, build_initial_hierarchy
from repro.kernels.advection import AdvectionKernel
from repro.util.errors import GeometryError
from repro.util.geometry import Box


@pytest.fixture
def kernel() -> AdvectionKernel:
    return AdvectionKernel(
        velocity=(1.0, 0.0), pulse_center=(16.0, 8.0), pulse_width=2.0
    )


class TestRichardsonIndicator:
    def test_smooth_field_low_error(self, kernel):
        """A constant field has zero truncation error everywhere."""
        u = np.full((1, 16, 16), 3.0)
        ind = richardson_indicator(kernel, u, dx=1.0)
        np.testing.assert_allclose(ind, 0.0, atol=1e-14)

    def test_sharp_feature_flagged(self, kernel):
        """A discontinuity produces a localized error spike."""
        u = np.zeros((1, 32, 8))
        u[0, :16] = 1.0
        ind = richardson_indicator(kernel, u, dx=1.0)
        assert ind.shape == (32, 8)
        edge = ind[14:18, :].max()
        far = ind[4:8, :].max()
        assert edge > 10 * max(far, 1e-12)

    def test_static_field_zero(self):
        k = AdvectionKernel(velocity=(0.0, 0.0))
        u = np.random.default_rng(0).random((1, 8, 8))
        ind = richardson_indicator(k, u, dx=1.0)
        np.testing.assert_allclose(ind, 0.0, atol=1e-14)

    def test_tiny_array_returns_zeros(self, kernel):
        ind = richardson_indicator(kernel, np.ones((1, 1, 1)), dx=1.0)
        np.testing.assert_array_equal(ind, 0.0)

    def test_odd_extent_fringe_padded(self, kernel):
        u = np.zeros((1, 9, 9))
        u[0, :4] = 1.0
        ind = richardson_indicator(kernel, u, dx=1.0)
        assert ind.shape == (9, 9)  # fringe included via edge padding

    def test_bad_shape_rejected(self, kernel):
        with pytest.raises(GeometryError):
            richardson_indicator(kernel, np.ones(8), dx=1.0)


class TestRichardsonRegrid:
    def test_hierarchy_refines_moving_pulse(self, kernel):
        h = GridHierarchy(Box((0, 0), (32, 16)), kernel, max_levels=2)
        params = RegridParams(flag_threshold=1e-4, criterion="richardson")
        build_initial_hierarchy(h, params)
        assert h.num_levels == 2
        assert h.proper_nesting_ok()
        # Refinement hugs the pulse at x=16.
        frame = h.levels[1].boxes.bounding_box()
        center_x = (frame.lower[0] + frame.upper[0]) / 4
        assert 10 < center_x < 22

    def test_integration_runs_under_richardson(self, kernel):
        h = GridHierarchy(Box((0, 0), (32, 16)), kernel, max_levels=2)
        integ = BergerOligerIntegrator(
            h,
            regrid_interval=3,
            regrid_params=RegridParams(
                flag_threshold=1e-4, criterion="richardson"
            ),
        )
        integ.setup()
        integ.run(6)
        assert h.proper_nesting_ok()
        assert h.num_levels == 2

    def test_unknown_criterion_rejected(self):
        with pytest.raises(ValueError):
            RegridParams(criterion="psychic")
