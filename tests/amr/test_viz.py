"""Tests for the text hierarchy renderer."""

from __future__ import annotations

import pytest

from repro.amr.viz import render_levels, render_owners
from repro.util.errors import GeometryError
from repro.util.geometry import Box, BoxList


class TestRenderLevels:
    def test_2d_levels(self):
        domain = Box((0, 0), (8, 4))
        # Fine box over base cells x in [4, 8): the right half.
        boxes = BoxList([domain, Box((8, 0), (16, 8), 1)])
        out = render_levels(boxes, domain)
        rows = out.splitlines()
        assert len(rows) == 4
        assert all(len(r) == 8 for r in rows)
        assert rows[0] == "....1111"
        assert rows[-1] == "....1111"

    def test_level2_digit(self):
        domain = Box((0, 0), (4, 4))
        boxes = BoxList(
            [domain, Box((0, 0), (8, 8), 1), Box((0, 0), (4, 4), 2)]
        )
        out = render_levels(boxes, domain)
        # Bottom-left base cell is covered by level 2 (printed row-major
        # with y upward: last row, first char).
        assert out.splitlines()[-1][0] == "2"

    def test_3d_slice(self):
        domain = Box((0, 0, 0), (4, 4, 4))
        fine = Box((0, 0, 0), (4, 4, 2), 1)  # only z in [0,1)
        boxes = BoxList([domain, fine])
        hit = render_levels(boxes, domain, slice_axis=2, slice_index=0)
        miss = render_levels(boxes, domain, slice_axis=2, slice_index=3)
        assert "1" in hit
        assert "1" not in miss

    def test_1d_rejected(self):
        with pytest.raises(GeometryError):
            render_levels(BoxList([Box((0,), (4,))]), Box((0,), (4,)))


class TestRenderOwners:
    def test_2d_ownership(self):
        domain = Box((0, 0), (4, 2))
        left, right = domain.halve(axis=0)
        out = render_owners({left: 0, right: 1}, domain)
        rows = out.splitlines()
        assert rows[0] == "aabb"
        assert rows[1] == "aabb"

    def test_uncovered_cells_blank(self):
        domain = Box((0, 0), (4, 2))
        fine = Box((0, 0), (4, 4), 1)  # covers left half of base
        out = render_owners({fine: 2}, domain, level=1)
        assert out.splitlines()[0] == "cc  "

    def test_list_input(self):
        domain = Box((0, 0), (2, 2))
        out = render_owners([(domain, 0)], domain)
        assert out == "aa\naa"
