"""Tests for prolongation/restriction and flagging."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amr.flagging import buffer_flags, flag_patch
from repro.amr.intergrid import prolong, restrict
from repro.kernels.advection import AdvectionKernel
from repro.util.errors import GeometryError


class TestProlong:
    def test_shape_and_values_2d(self):
        coarse = np.arange(4, dtype=float).reshape(1, 2, 2)
        fine = prolong(coarse, 2)
        assert fine.shape == (1, 4, 4)
        assert fine[0, 0, 0] == fine[0, 1, 1] == 0.0
        assert fine[0, 2, 2] == fine[0, 3, 3] == 3.0

    def test_3d_factor_3(self):
        coarse = np.ones((2, 2, 2, 2))
        fine = prolong(coarse, 3)
        assert fine.shape == (2, 6, 6, 6)
        assert (fine == 1.0).all()

    def test_guards(self):
        with pytest.raises(GeometryError):
            prolong(np.ones((1, 2)), 1)
        with pytest.raises(GeometryError):
            prolong(np.ones(4), 2)


class TestRestrict:
    def test_mean_of_children(self):
        fine = np.zeros((1, 2, 2))
        fine[0] = [[1.0, 2.0], [3.0, 4.0]]
        coarse = restrict(fine, 2)
        assert coarse.shape == (1, 1, 1)
        assert coarse[0, 0, 0] == pytest.approx(2.5)

    def test_indivisible_rejected(self):
        with pytest.raises(GeometryError):
            restrict(np.ones((1, 3, 4)), 2)

    def test_guards(self):
        with pytest.raises(GeometryError):
            restrict(np.ones((1, 4)), 0)
        with pytest.raises(GeometryError):
            restrict(np.ones(4), 2)


@settings(max_examples=60)
@given(
    st.integers(1, 3),
    st.integers(1, 4),
    st.integers(1, 4),
    st.sampled_from([2, 3]),
)
def test_restrict_prolong_adjoint_conserves(nf, a, b, factor):
    """restrict(prolong(x)) == x and both conserve the integral."""
    rng = np.random.default_rng(a * 100 + b)
    coarse = rng.random((nf, a, b))
    fine = prolong(coarse, factor)
    np.testing.assert_allclose(restrict(fine, factor), coarse)
    # Conservation: fine integral (with cell volume 1/factor^ndim) matches.
    assert fine.sum() / factor**2 == pytest.approx(coarse.sum())


class TestFlagging:
    def test_flag_patch_thresholds_gradient(self):
        k = AdvectionKernel(velocity=(1.0, 0.0))
        u = np.zeros((1, 8, 8))
        u[0, :, :4] = 1.0  # sharp edge at column 4
        flags = flag_patch(k, u, dx=1.0, threshold=0.25)
        assert flags.shape == (8, 8)
        assert flags[:, 3:5].all()
        assert not flags[:, 0].any() and not flags[:, 7].any()

    def test_negative_threshold_rejected(self):
        k = AdvectionKernel(velocity=(1.0, 0.0))
        with pytest.raises(GeometryError):
            flag_patch(k, np.zeros((1, 4, 4)), 1.0, -0.1)

    def test_buffer_dilates(self):
        flags = np.zeros((9, 9), dtype=bool)
        flags[4, 4] = True
        out = buffer_flags(flags, 2)
        assert out[2:7, 2:7].all()
        assert out.sum() == 25
        assert not out[0, 0]

    def test_buffer_zero_identity(self):
        flags = np.zeros((4, 4), dtype=bool)
        flags[1, 1] = True
        assert buffer_flags(flags, 0) is flags

    def test_buffer_negative_rejected(self):
        with pytest.raises(GeometryError):
            buffer_flags(np.zeros((2, 2), dtype=bool), -1)
