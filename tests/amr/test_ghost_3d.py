"""3-D ghost-filling coverage: periodic corners/edges and fine repatching."""

from __future__ import annotations

import numpy as np

from repro.amr.ghost import GhostFiller
from repro.amr.hierarchy import GridHierarchy
from repro.kernels.advection import AdvectionKernel
from repro.util.geometry import Box, BoxList


def make_hierarchy(boundary: str = "periodic") -> GridHierarchy:
    k = AdvectionKernel(velocity=(1.0, 0.5, 0.25), boundary=boundary)
    h = GridHierarchy(Box((0, 0, 0), (4, 4, 4)), k, max_levels=2)
    h.initialize()
    i, j, l = np.meshgrid(*(np.arange(4),) * 3, indexing="ij")
    h.levels[0].patches[0].interior = (100 * i + 10 * j + l)[np.newaxis].astype(
        float
    )
    return h


class TestPeriodic3D:
    def test_corner_wraps_all_axes(self):
        h = make_hierarchy()
        patch = h.levels[0].patches[0]
        GhostFiller(h).fill_patch_ghosts(patch, 0)
        # Ghost at (-1,-1,-1) wraps to (3,3,3) = 333.
        assert patch.data[0, 0, 0, 0] == 333.0
        # Ghost at (4,4,4) wraps to (0,0,0) = 0.
        assert patch.data[0, -1, -1, -1] == 0.0

    def test_edge_wraps_two_axes(self):
        h = make_hierarchy()
        patch = h.levels[0].patches[0]
        GhostFiller(h).fill_patch_ghosts(patch, 0)
        # Ghost at (-1, -1, 1) wraps x and y only -> (3, 3, 1) = 331.
        assert patch.data[0, 0, 0, 2] == 331.0

    def test_outflow_corner_replicates(self):
        h = make_hierarchy(boundary="outflow")
        patch = h.levels[0].patches[0]
        GhostFiller(h).fill_patch_ghosts(patch, 0)
        assert patch.data[0, 0, 0, 0] == 0.0  # replicates cell (0,0,0)
        assert patch.data[0, -1, -1, -1] == 333.0


class TestRepatchFineLevel:
    def test_repatch_level_one_preserves_data(self):
        h = make_hierarchy()
        h.set_level_boxes(1, BoxList([Box((0, 0, 0), (4, 4, 4), 1)]))
        h.levels[1].patches[0].interior = np.arange(64, dtype=float).reshape(
            1, 4, 4, 4
        )
        before = GhostFiller(h).fetch(Box((0, 0, 0), (4, 4, 4), 1), 1).copy()
        halves = Box((0, 0, 0), (4, 4, 4), 1).halve(axis=0)
        h.repatch_level(1, BoxList(halves))
        assert len(h.levels[1]) == 2
        after = GhostFiller(h).fetch(Box((0, 0, 0), (4, 4, 4), 1), 1)
        np.testing.assert_array_equal(before, after)
        assert h.proper_nesting_ok()
