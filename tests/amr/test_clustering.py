"""Tests for Berger-Rigoutsos clustering."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.amr.clustering import berger_rigoutsos
from repro.util.errors import GeometryError
from repro.util.geometry import Box


def coverage_ok(mask: np.ndarray, boxes, origin=(0, 0)) -> bool:
    """Every flagged cell is inside some box."""
    covered = np.zeros_like(mask)
    for b in boxes:
        sl = tuple(
            slice(lo - o, hi - o)
            for lo, hi, o in zip(b.lower, b.upper, origin)
        )
        covered[sl] = True
    return bool((covered | ~mask).all())


class TestBasics:
    def test_empty_mask_gives_no_boxes(self):
        mask = np.zeros((8, 8), dtype=bool)
        assert len(berger_rigoutsos(mask)) == 0

    def test_single_cluster_tight_bounding(self):
        mask = np.zeros((16, 16), dtype=bool)
        mask[4:8, 5:9] = True
        boxes = berger_rigoutsos(mask)
        assert len(boxes) == 1
        assert boxes[0] == Box((4, 5), (8, 9))

    def test_two_separated_clusters_split(self):
        mask = np.zeros((32, 8), dtype=bool)
        mask[2:5, 2:5] = True
        mask[25:29, 2:5] = True
        boxes = berger_rigoutsos(mask, efficiency=0.8)
        assert len(boxes) == 2
        assert coverage_ok(mask, boxes)
        for b in boxes:
            assert b.num_cells <= 4 * 4  # tight, not the joint hull

    def test_efficiency_respected_or_atomic(self):
        rng = np.random.default_rng(0)
        mask = rng.random((32, 32)) < 0.15
        boxes = berger_rigoutsos(mask, efficiency=0.5, min_size=2)
        assert coverage_ok(mask, boxes)
        for b in boxes:
            sl = tuple(slice(lo, hi) for lo, hi in zip(b.lower, b.upper))
            eff = mask[sl].sum() / b.num_cells
            small = all(s <= 2 for s in b.shape)
            # Each accepted box met the target or could not shrink further.
            assert eff >= 0.5 or small or b.shortest_side <= 2

    def test_origin_offsets_boxes(self):
        mask = np.zeros((8, 8), dtype=bool)
        mask[0:2, 0:2] = True
        boxes = berger_rigoutsos(mask, origin=(10, 20))
        assert boxes[0] == Box((10, 20), (12, 22))

    def test_level_carried(self):
        mask = np.ones((4, 4), dtype=bool)
        boxes = berger_rigoutsos(mask, level=2)
        assert boxes[0].level == 2

    def test_3d_mask(self):
        mask = np.zeros((8, 8, 8), dtype=bool)
        mask[1:3, 1:3, 1:3] = True
        mask[5:8, 5:8, 5:8] = True
        boxes = berger_rigoutsos(mask, efficiency=0.9)
        assert coverage_ok(mask, boxes, origin=(0, 0, 0))
        assert len(boxes) == 2

    def test_l_shape_splits(self):
        """An L-shaped flag set is clustered into >1 box at high efficiency."""
        mask = np.zeros((16, 16), dtype=bool)
        mask[0:16, 0:4] = True
        mask[0:4, 0:16] = True
        boxes = berger_rigoutsos(mask, efficiency=0.85)
        assert len(boxes) >= 2
        assert coverage_ok(mask, boxes)
        total = sum(b.num_cells for b in boxes)
        flags = int(mask.sum())
        assert total <= 2 * flags  # far better than the 256-cell hull


class TestValidation:
    def test_non_bool_rejected(self):
        with pytest.raises(GeometryError):
            berger_rigoutsos(np.zeros((4, 4)))

    def test_bad_efficiency(self):
        mask = np.ones((4, 4), dtype=bool)
        with pytest.raises(GeometryError):
            berger_rigoutsos(mask, efficiency=0.0)
        with pytest.raises(GeometryError):
            berger_rigoutsos(mask, efficiency=1.5)

    def test_bad_min_size(self):
        with pytest.raises(GeometryError):
            berger_rigoutsos(np.ones((4, 4), dtype=bool), min_size=0)

    def test_bad_origin(self):
        with pytest.raises(GeometryError):
            berger_rigoutsos(np.ones((4, 4), dtype=bool), origin=(0,))


@settings(max_examples=80, deadline=None)
@given(
    arrays(bool, st.tuples(st.integers(1, 24), st.integers(1, 24))),
    st.sampled_from([0.5, 0.7, 0.9]),
)
def test_clustering_invariants(mask, efficiency):
    """Coverage, disjointness and containment hold for arbitrary masks."""
    boxes = berger_rigoutsos(mask, efficiency=efficiency, min_size=2)
    if not mask.any():
        assert len(boxes) == 0
        return
    assert coverage_ok(mask, boxes)
    assert boxes.is_disjoint()
    frame = Box((0, 0), mask.shape)
    for b in boxes:
        assert frame.contains_box(b)
