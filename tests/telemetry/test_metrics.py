"""Tests for the metrics registry."""

from __future__ import annotations

import pytest

from repro.telemetry import (
    NULL_REGISTRY,
    MetricsRegistry,
    openmetrics_selfcheck,
)
from repro.telemetry.metrics import HISTOGRAM_SAMPLE_CAP
from repro.util.errors import TelemetryError


class TestCounter:
    def test_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("migration_bytes").inc(100)
        reg.counter("migration_bytes").inc(50)
        assert reg.counter("migration_bytes").value == 150.0

    def test_default_increment_is_one(self):
        reg = MetricsRegistry()
        reg.counter("num_sensings").inc()
        assert reg.counter("num_sensings").value == 1.0

    def test_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(TelemetryError):
            reg.counter("c").inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("node_utilization", node=3)
        gauge.set(0.5)
        gauge.set(0.9)
        assert gauge.value == 0.9
        assert gauge.num_updates == 2

    def test_labels_separate_series(self):
        reg = MetricsRegistry()
        reg.gauge("u", node=0).set(1.0)
        reg.gauge("u", node=1).set(2.0)
        assert reg.gauge("u", node=0).value == 1.0
        assert reg.gauge("u", node=1).value == 2.0
        assert len(reg) == 2


class TestHistogram:
    def test_running_stats(self):
        reg = MetricsRegistry()
        hist = reg.histogram("iteration_seconds")
        for v in (1.0, 2.0, 3.0, 4.0):
            hist.observe(v)
        assert hist.count == 4
        assert hist.total == 10.0
        assert hist.min == 1.0
        assert hist.max == 4.0
        assert hist.mean == 2.5
        assert hist.percentile(50) == 2.0
        assert hist.percentile(100) == 4.0

    def test_sample_cap_keeps_aggregates_exact(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h")
        for i in range(HISTOGRAM_SAMPLE_CAP + 10):
            hist.observe(float(i))
        assert hist.count == HISTOGRAM_SAMPLE_CAP + 10
        assert hist.max == float(HISTOGRAM_SAMPLE_CAP + 9)

    def test_percentile_bounds(self):
        reg = MetricsRegistry()
        with pytest.raises(TelemetryError):
            reg.histogram("h").percentile(101)

    def test_empty_snapshot(self):
        reg = MetricsRegistry()
        assert reg.histogram("h").snapshot() == {"count": 0, "sum": 0.0}


class TestRegistry:
    def test_same_instrument_returned(self):
        reg = MetricsRegistry()
        assert reg.counter("c") is reg.counter("c")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TelemetryError):
            reg.gauge("x")

    def test_summary_shape(self):
        reg = MetricsRegistry()
        reg.counter("bytes").inc(7)
        reg.gauge("util", node=1).set(0.5)
        summary = reg.summary()
        assert summary["bytes"]["kind"] == "counter"
        assert summary["bytes"]["series"][0]["value"] == 7.0
        assert summary["util"]["series"][0]["labels"] == {"node": 1}

    def test_rows_are_flat(self):
        reg = MetricsRegistry()
        reg.counter("bytes").inc(7)
        reg.histogram("h").observe(2.0)
        rows = reg.rows()
        assert {r["name"] for r in rows} == {"bytes", "h"}
        for row in rows:
            assert "kind" in row


class TestNullRegistry:
    def test_all_accessors_share_instrument(self):
        a = NULL_REGISTRY.counter("a")
        b = NULL_REGISTRY.histogram("b", node=2)
        assert a is b
        a.inc()
        b.observe(1.0)
        assert len(NULL_REGISTRY) == 0
        assert NULL_REGISTRY.rows() == []


class TestHistogramPercentileEdgeCases:
    def test_empty_histogram_percentile_is_zero(self):
        h = MetricsRegistry().histogram("h")
        for q in (0.0, 50.0, 100.0):
            assert h.percentile(q) == 0.0
        assert h.snapshot() == {"count": 0, "sum": 0.0}

    def test_single_sample_dominates_every_quantile(self):
        h = MetricsRegistry().histogram("h")
        h.observe(3.5)
        for q in (0.0, 1.0, 50.0, 99.0, 100.0):
            assert h.percentile(q) == 3.5
        snap = h.snapshot()
        assert snap["p50"] == snap["p95"] == 3.5
        assert snap["min"] == snap["max"] == 3.5

    def test_out_of_range_quantile_raises(self):
        h = MetricsRegistry().histogram("h")
        h.observe(1.0)
        with pytest.raises(TelemetryError):
            h.percentile(-0.1)
        with pytest.raises(TelemetryError):
            h.percentile(100.1)

    def test_values_accessor_returns_retained_samples(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        assert h.values() == ()
        h.observe(2.0)
        h.observe(1.0)
        assert h.values() == (2.0, 1.0)

    def test_series_lookup_is_readonly(self):
        reg = MetricsRegistry()
        reg.gauge("util", node=0).set(0.5)
        reg.gauge("util", node=1).set(0.9)
        assert len(reg.series("util")) == 2
        assert reg.series("missing") == []
        assert len(reg) == 2  # lookup created nothing

    def test_null_registry_values_and_series(self):
        assert NULL_REGISTRY.histogram("h").values() == ()
        assert NULL_REGISTRY.series("h") == []


class TestOpenMetrics:
    def build(self):
        registry = MetricsRegistry()
        registry.counter("comm.bytes_total").inc(4096)
        registry.counter("migration_bytes").inc(100)
        registry.gauge("node_utilization", node=0).set(0.75)
        registry.gauge("node_utilization", node=1).set(0.5)
        h = registry.histogram("iteration_seconds")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        return registry

    def test_exposition_passes_selfcheck(self):
        problems = openmetrics_selfcheck(self.build().to_openmetrics())
        assert problems == []

    def test_counter_samples_end_in_total(self):
        text = self.build().to_openmetrics()
        assert "# TYPE comm_bytes counter" in text
        assert "comm_bytes_total 4096" in text
        # Dots sanitized, no double _total suffix.
        assert "comm.bytes" not in text
        assert "_total_total" not in text

    def test_gauges_carry_labels(self):
        text = self.build().to_openmetrics()
        assert 'node_utilization{node="0"} 0.75' in text
        assert 'node_utilization{node="1"} 0.5' in text

    def test_histogram_as_summary_with_quantiles(self):
        text = self.build().to_openmetrics()
        assert "# TYPE iteration_seconds summary" in text
        assert "iteration_seconds_count 3" in text
        assert "iteration_seconds_sum 6" in text
        assert 'quantile="0.5"' in text

    def test_ends_with_eof(self):
        assert self.build().to_openmetrics().endswith("# EOF\n")
        assert NULL_REGISTRY.to_openmetrics() == "# EOF\n"

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total", tag='quo"te\nnl').inc()
        text = registry.to_openmetrics()
        assert '\\"' in text and "\\n" in text
        assert openmetrics_selfcheck(text) == []

    def test_selfcheck_flags_missing_eof(self):
        problems = openmetrics_selfcheck("# TYPE a counter\na_total 1\n")
        assert any("EOF" in p for p in problems)

    def test_selfcheck_flags_counter_without_total_suffix(self):
        text = "# TYPE a counter\na 1\n# EOF\n"
        assert openmetrics_selfcheck(text)

    def test_selfcheck_flags_bad_sample_line(self):
        text = "# TYPE a gauge\nnot a sample line at all ???\n# EOF\n"
        assert openmetrics_selfcheck(text)

    def test_selfcheck_flags_duplicate_type(self):
        text = "# TYPE a gauge\n# TYPE a gauge\na 1\n# EOF\n"
        problems = openmetrics_selfcheck(text)
        assert any("duplicate" in p.lower() for p in problems)
