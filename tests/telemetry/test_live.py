"""Tests for live campaign observability primitives."""

from __future__ import annotations

import json

import pytest

from repro.runtime.experiment import campaign_cell
from repro.telemetry.live import (
    ARTIFACT_FILES,
    LiveProgress,
    ProgressLog,
    TelemetryDigest,
    deterministic_tracer,
    digest_from_record,
    format_sse,
    registry_from_progress,
    write_cell_bundle,
)
from repro.telemetry.metrics import openmetrics_selfcheck


def run_cell(seed: int = 1):
    """One small traced cell; returns (record, tracer)."""
    tracer = deterministic_tracer()
    record = campaign_cell(
        "paper-four-node", "greedy", seed, {"iterations": 3}, tracer=tracer
    )
    return record, tracer


class TestDeterministicTracer:
    def test_wall_fields_pinned_to_zero(self):
        _, tracer = run_cell()
        assert tracer.spans  # the cell actually traced something
        for span in tracer.spans:
            assert span.to_dict()["start_wall"] == 0.0
            assert span.to_dict()["end_wall"] == 0.0


class TestCellBundle:
    def test_bundle_files_and_manifest(self, tmp_path):
        _, tracer = run_cell()
        manifest = write_cell_bundle(tracer, tmp_path / "cell", cell_key="k")
        assert set(manifest["files"]) == set(ARTIFACT_FILES)
        for kind, name in ARTIFACT_FILES.items():
            path = tmp_path / "cell" / name
            assert path.is_file()
            assert manifest["files"][kind]["bytes"] == path.stat().st_size
        assert manifest["total_bytes"] == sum(
            f["bytes"] for f in manifest["files"].values()
        )

    def test_profile_json_contents(self, tmp_path):
        _, tracer = run_cell()
        write_cell_bundle(tracer, tmp_path / "cell", cell_key="k")
        doc = json.loads(
            (tmp_path / "cell" / "profile.json").read_text(encoding="utf-8")
        )
        assert doc["cell_key"] == "k"
        assert doc["critical_path"]
        assert doc["phases"]
        assert "metrics" in doc

    def test_bundle_byte_identical_across_reruns(self, tmp_path):
        for directory in (tmp_path / "a", tmp_path / "b"):
            _, tracer = run_cell(seed=3)
            write_cell_bundle(tracer, directory, cell_key="k")
        for name in ARTIFACT_FILES.values():
            assert (tmp_path / "a" / name).read_bytes() == (
                tmp_path / "b" / name
            ).read_bytes(), name

    def test_no_tmp_files_left_behind(self, tmp_path):
        _, tracer = run_cell()
        write_cell_bundle(tracer, tmp_path / "cell")
        leftovers = list((tmp_path / "cell").glob("*.tmp"))
        assert leftovers == []


class TestTelemetryDigest:
    def test_round_trip(self):
        digest = TelemetryDigest(
            cell_key="k",
            scenario="s",
            partitioner="p",
            seed=7,
            sim_seconds=1.5,
            phases={"compute": 1.0},
            health={"num_events": 2},
            metrics={"total_seconds": 1.5},
            artifacts={"total_bytes": 10, "files": {}},
        )
        assert TelemetryDigest.from_dict(digest.to_dict()) == digest

    def test_digest_from_record(self):
        record, _ = run_cell()
        record["cell_key"] = "k"
        digest = digest_from_record(record, {"total_bytes": 3, "files": {}})
        assert digest.cell_key == "k"
        assert digest.sim_seconds > 0
        assert digest.artifacts["total_bytes"] == 3


class TestProgressLog:
    def test_append_and_read(self, tmp_path):
        log = ProgressLog(tmp_path / "events.jsonl")
        log.append("live.cell_started", cell_key="a")
        log.append("live.cell_finished", cell_key="a", completed=1)
        records = log.read()
        assert [r["name"] for r in records] == [
            "live.cell_started",
            "live.cell_finished",
        ]
        assert records[1]["attributes"]["completed"] == 1

    def test_read_from_is_incremental(self, tmp_path):
        log = ProgressLog(tmp_path / "events.jsonl")
        log.append("live.cell_started", cell_key="a")
        records, offset = log.read_from(0)
        assert len(records) == 1
        log.append("live.cell_finished", cell_key="a")
        more, offset2 = log.read_from(offset)
        assert [r["name"] for r in more] == ["live.cell_finished"]
        assert offset2 > offset

    def test_torn_tail_left_unconsumed(self, tmp_path):
        log = ProgressLog(tmp_path / "events.jsonl")
        log.append("live.cell_started", cell_key="a")
        with open(log.path, "a", encoding="utf-8") as fh:
            fh.write('{"name": "live.cell_fin')  # writer mid-append
        records, offset = log.read_from(0)
        assert len(records) == 1
        with open(log.path, "a", encoding="utf-8") as fh:
            fh.write('ished", "attributes": {}}\n')
        more, _ = log.read_from(offset)
        assert [r["name"] for r in more] == ["live.cell_finished"]

    def test_foreign_lines_skipped(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text("not json\n[1,2]\n\n", encoding="utf-8")
        assert ProgressLog(path).read() == []

    def test_missing_file_reads_empty(self, tmp_path):
        records, offset = ProgressLog(tmp_path / "nope.jsonl").read_from(0)
        assert records == []
        assert offset == 0


class TestConcurrentReaders:
    """Two independent consumers of one events.jsonl.

    The serving layer runs exactly this shape: the SSE tailer and the
    metrics/decision reconciler each hold their own ``ProgressLog``
    instance over the same file.  Offsets are per-reader cursors, not
    shared state -- one reader's progress must never advance or stall
    the other's.
    """

    def test_readers_hold_independent_offsets(self, tmp_path):
        path = tmp_path / "events.jsonl"
        writer = ProgressLog(path)
        tailer, reconciler = ProgressLog(path), ProgressLog(path)
        writer.append("live.cell_started", cell_key="a")
        writer.append("live.cell_finished", cell_key="a")

        seen_tail, tail_off = tailer.read_from(0)
        assert len(seen_tail) == 2
        # The reconciler starting later still sees everything.
        seen_rec, rec_off = reconciler.read_from(0)
        assert [r["name"] for r in seen_rec] == [
            r["name"] for r in seen_tail
        ]
        assert rec_off == tail_off

        writer.append("live.cell_started", cell_key="b")
        # The tailer consuming the new record does not move the
        # reconciler's cursor: a fresh read from its own offset sees
        # the same record once.
        new_tail, _ = tailer.read_from(tail_off)
        assert [r["name"] for r in new_tail] == ["live.cell_started"]
        new_rec, _ = reconciler.read_from(rec_off)
        assert [r["name"] for r in new_rec] == ["live.cell_started"]

    def test_torn_tail_unconsumed_by_both_readers(self, tmp_path):
        path = tmp_path / "events.jsonl"
        writer = ProgressLog(path)
        writer.append("live.cell_started", cell_key="a")
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"name": "live.cell_fin')  # writer mid-append
        tailer, reconciler = ProgressLog(path), ProgressLog(path)
        tail_records, tail_off = tailer.read_from(0)
        rec_records, rec_off = reconciler.read_from(0)
        # Both stop at the last complete line: same view, same offset.
        assert len(tail_records) == len(rec_records) == 1
        assert tail_off == rec_off
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('ished", "attributes": {}}\n')
        # Once the writer completes the line, each reader consumes it
        # exactly once from its own cursor.
        for reader, offset in ((tailer, tail_off), (reconciler, rec_off)):
            more, after = reader.read_from(offset)
            assert [r["name"] for r in more] == ["live.cell_finished"]
            again, _ = reader.read_from(after)
            assert again == []

    def test_interleaved_consumption_sees_every_record_once(self, tmp_path):
        path = tmp_path / "events.jsonl"
        writer = ProgressLog(path)
        tailer, reconciler = ProgressLog(path), ProgressLog(path)
        tail_off = rec_off = 0
        tail_seen: list[str] = []
        rec_seen: list[str] = []
        for i in range(9):
            writer.append("live.cell_finished", cell_key=f"c{i}")
            # The tailer polls every append; the reconciler only every
            # third -- batched catch-up must not skip or duplicate.
            records, tail_off = tailer.read_from(tail_off)
            tail_seen += [r["attributes"]["cell_key"] for r in records]
            if i % 3 == 2:
                records, rec_off = reconciler.read_from(rec_off)
                rec_seen += [r["attributes"]["cell_key"] for r in records]
        expected = [f"c{i}" for i in range(9)]
        assert tail_seen == expected
        assert rec_seen == expected


def event(name: str, wall: float = 0.0, **attrs) -> dict:
    return {"name": name, "wall": wall, "attributes": attrs}


class TestLiveProgress:
    def test_folds_lifecycle_events(self):
        p = LiveProgress()
        assert p.observe(event("campaign.started", num_cells=4, completed=0))
        p.observe(event("live.cell_started", cell_key="a"))
        assert p.running == 1
        p.observe(event("live.cell_finished", wall=1.0, completed=1))
        assert p.completed == 1
        assert p.running == 0
        assert not p.complete

    def test_non_live_records_ignored(self):
        p = LiveProgress()
        assert not p.observe(event("iteration"))
        assert not p.observe(event("campaign.cell_failed"))

    def test_complete_on_completed_event(self):
        p = LiveProgress()
        p.observe(event("campaign.completed", num_cells=2, completed=2))
        assert p.complete

    def test_complete_when_count_reaches_grid(self):
        p = LiveProgress(num_cells=2)
        p.observe(event("live.cell_finished", completed=2))
        assert p.complete

    def test_throughput_and_eta(self):
        p = LiveProgress()
        p.observe(event("campaign.started", wall=0.0, num_cells=4))
        p.observe(event("live.cell_finished", wall=1.0, completed=1))
        p.observe(event("live.cell_finished", wall=2.0, completed=2))
        assert p.throughput == pytest.approx(1.0)
        assert p.eta_seconds == pytest.approx(2.0)

    def test_failed_cells_tracked(self):
        p = LiveProgress(num_cells=2)
        p.observe(event("live.cell_failed", completed=0, failed=1))
        assert p.failed == 1
        assert "1 failed" in p.render_line()

    def test_render_line_bar(self):
        p = LiveProgress(num_cells=4)
        p.observe(event("live.cell_finished", completed=2))
        line = p.render_line()
        assert "2/4 cells" in line
        assert line.startswith("[")


class TestRegistryFromProgress:
    def records(self):
        return [
            event("campaign.started", wall=0.0, num_cells=2, completed=0),
            event("live.cell_started", cell_key="a"),
            event(
                "live.cell_finished",
                wall=1.0,
                completed=1,
                wall_seconds=1.0,
                sim_seconds=5.0,
            ),
            event("live.cell_failed", wall=2.0, completed=1, failed=1),
        ]

    def test_gauges_and_histograms(self):
        registry = registry_from_progress(self.records(), campaign="c")
        summary = {
            (m.name, tuple(sorted(m.labels.items()))): m
            for m in registry
        }
        gauge = summary[("campaign.cells_completed", (("campaign", "c"),))]
        assert gauge.value == 1.0
        failed = summary[("campaign.cells_failed", (("campaign", "c"),))]
        assert failed.value == 1.0
        hist = summary[("campaign.cell_sim_seconds", (("campaign", "c"),))]
        assert hist.count == 1

    def test_exposition_passes_selfcheck(self):
        registry = registry_from_progress(self.records(), campaign="c")
        assert openmetrics_selfcheck(registry.to_openmetrics()) == []


class TestFormatSse:
    def test_frame_shape(self):
        frame = format_sse("live.cell_finished", {"completed": 1})
        assert frame.startswith(b"event: live.cell_finished\n")
        assert frame.endswith(b"\n\n")
        data_line = frame.decode("utf-8").splitlines()[1]
        assert json.loads(data_line[len("data: "):]) == {"completed": 1}
