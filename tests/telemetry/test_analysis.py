"""Tests for runtime health analysis: the span-close observer hook, the
health monitor's per-iteration snapshots, the anomaly detectors, and the
offline (JSONL replay) analysis path.

The load-bearing properties: a live :class:`HealthMonitor` feed and an
offline :func:`analyze_records` replay of the exported trace must agree
exactly, and attaching a monitor must never perturb simulation results.
"""

from __future__ import annotations

import pytest

from repro.cluster import Cluster
from repro.kernels.workloads import moving_blob_trace
from repro.partition import ACEHeterogeneous
from repro.runtime import RuntimeConfig, SamrRuntime
from repro.telemetry import (
    NULL_TRACER,
    PAPER_IMBALANCE_BOUND_PCT,
    HealthMonitor,
    HealthSnapshot,
    RollingZScore,
    ThresholdRule,
    Tracer,
    analyze_records,
    default_detectors,
    load_trace_records,
    write_jsonl,
)


def make_snapshot(iteration=0, duration_s=1.0, epoch=0, **overrides):
    base = dict(
        pid=1,
        run_label="synthetic",
        iteration=iteration,
        start_sim=float(iteration),
        end_sim=float(iteration) + duration_s,
        duration_s=duration_s,
        epoch=epoch,
    )
    base.update(overrides)
    return HealthSnapshot(**base)


def make_runtime(tracer=None, iterations=12):
    return SamrRuntime(
        moving_blob_trace(domain_shape=(32, 32), num_regrids=4, max_levels=2),
        Cluster.paper_linux_cluster(4, seed=7),
        ACEHeterogeneous(),
        config=RuntimeConfig(iterations=iterations, sensing_interval=4),
        tracer=tracer,
    )


def emit_synthetic_run(tracer, imbalances=(10.0, 20.0, 30.0)):
    """One hand-built run: sense, then one iteration per imbalance value."""
    pid = tracer.begin_run("synthetic")
    tracer.add_span(
        "sense", 0.0, 0.5, overhead_seconds=0.5, capacities=(0.5, 0.5)
    )
    t = 0.5
    for i, imb in enumerate(imbalances):
        tracer.add_span("compute", t, t + 0.8, rank=0)
        tracer.add_span("compute", t, t + 0.6, rank=1)
        tracer.add_span("sync", t + 0.8, t + 1.0)
        tracer.add_span(
            "iteration", t, t + 1.0, iteration=i, epoch=0, imbalance_pct=imb
        )
        t += 1.0
    tracer.add_span("run", 0.0, t)
    return pid


class TestObserverHook:
    def test_observer_sees_spans_as_they_close(self):
        tracer = Tracer()
        seen = []
        tracer.add_observer(seen.append)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        tracer.add_span("compute", 0.0, 1.0, rank=0)
        assert [s.name for s in seen] == ["inner", "outer", "compute"]
        assert all(s.end_wall is not None for s in seen)

    def test_remove_observer_stops_delivery(self):
        tracer = Tracer()
        seen = []
        tracer.add_observer(seen.append)
        tracer.add_span("a", 0.0, 1.0)
        tracer.remove_observer(seen.append)
        tracer.add_span("b", 0.0, 1.0)
        assert [s.name for s in seen] == ["a"]

    def test_duplicate_registration_delivers_once(self):
        tracer = Tracer()
        seen = []

        def cb(span):
            seen.append(span)

        tracer.add_observer(cb)
        tracer.add_observer(cb)
        tracer.add_span("x", 0.0, 1.0)
        assert len(seen) == 1

    def test_removing_unknown_observer_is_harmless(self):
        Tracer().remove_observer(lambda s: None)

    def test_no_observers_by_default(self):
        assert Tracer()._observers == []

    def test_null_tracer_accepts_and_ignores_observers(self):
        NULL_TRACER.add_observer(lambda s: None)
        NULL_TRACER.remove_observer(lambda s: None)


class TestThresholdRule:
    def test_fires_above_threshold(self):
        rule = ThresholdRule("imbalance_pct", 40.0, kind="imbalance_bound")
        (event,) = rule.observe(make_snapshot(imbalance_pct=55.0))
        assert event.kind == "imbalance_bound"
        assert event.attributes["value"] == 55.0
        assert event.attributes["threshold"] == 40.0

    def test_quiet_at_or_below_threshold(self):
        rule = ThresholdRule("imbalance_pct", 40.0, kind="k")
        assert rule.observe(make_snapshot(imbalance_pct=40.0)) == []
        assert rule.observe(make_snapshot(imbalance_pct=12.0)) == []

    def test_none_valued_field_never_fires(self):
        rule = ThresholdRule("imbalance_pct", 40.0, kind="k")
        assert rule.observe(make_snapshot(imbalance_pct=None)) == []

    def test_below_mode(self):
        rule = ThresholdRule("duration_s", 0.5, kind="k", above=False)
        assert rule.observe(make_snapshot(duration_s=0.1))
        assert rule.observe(make_snapshot(duration_s=0.9)) == []

    def test_warmup_suppresses_early_iterations(self):
        rule = ThresholdRule(
            "probe_overhead_fraction", 0.15, kind="k", warmup=5
        )
        early = make_snapshot(iteration=2, probe_overhead_fraction=0.9)
        late = make_snapshot(iteration=5, probe_overhead_fraction=0.9)
        assert rule.observe(early) == []
        assert rule.observe(late)


class TestRollingZScore:
    def test_spike_fires_after_min_history(self):
        det = RollingZScore(min_history=3)
        det.reset()
        events = []
        for i, v in enumerate([1.0, 1.01, 0.99, 1.0, 5.0]):
            events += det.observe(make_snapshot(iteration=i, duration_s=v))
        assert [e.iteration for e in events] == [4]
        assert events[0].kind == "duration_s_spike"
        assert events[0].attributes["zscore"] > 3.0

    def test_zero_variance_wiggle_stays_quiet(self):
        # A deterministic simulation produces identical iterations; the
        # rel_floor sigma guard must keep sub-percent wiggles from scoring
        # astronomic z values against a zero-variance window.
        det = RollingZScore(min_history=3, rel_floor=0.05)
        events = []
        for i, v in enumerate([1.0, 1.0, 1.0, 1.0, 1.02]):
            events += det.observe(make_snapshot(iteration=i, duration_s=v))
        assert events == []

    def test_epoch_change_resets_window(self):
        # A regrid legitimately shifts iteration cost; the detector must
        # not flag the shift itself.
        det = RollingZScore(min_history=3)
        events = []
        for i in range(4):
            events += det.observe(
                make_snapshot(iteration=i, duration_s=1.0, epoch=0)
            )
        for i in range(4, 8):
            events += det.observe(
                make_snapshot(iteration=i, duration_s=5.0, epoch=1)
            )
        assert events == []

    def test_without_epoch_reset_the_shift_fires(self):
        det = RollingZScore(min_history=3, reset_on_epoch=False)
        events = []
        for i in range(4):
            events += det.observe(
                make_snapshot(iteration=i, duration_s=1.0, epoch=0)
            )
        events += det.observe(
            make_snapshot(iteration=4, duration_s=5.0, epoch=1)
        )
        assert [e.iteration for e in events] == [4]

    def test_window_is_bounded(self):
        det = RollingZScore(window=3, min_history=2)
        for i in range(10):
            det.observe(make_snapshot(iteration=i, duration_s=float(i)))
        assert len(det._history) == 3

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RollingZScore(window=1)
        with pytest.raises(ValueError):
            RollingZScore(min_history=1)


class TestHealthMonitorSynthetic:
    def test_one_snapshot_per_iteration(self):
        tracer = Tracer()
        monitor = HealthMonitor().attach(tracer)
        emit_synthetic_run(tracer, imbalances=(10.0, 20.0, 30.0))
        assert [s.iteration for s in monitor.snapshots] == [0, 1, 2]
        assert [s.imbalance_pct for s in monitor.snapshots] == [
            10.0, 20.0, 30.0,
        ]
        assert monitor.snapshots[0].run_label == "synthetic"

    def test_phase_breakdown_and_probe_fraction(self):
        tracer = Tracer()
        monitor = HealthMonitor().attach(tracer)
        emit_synthetic_run(tracer)
        first = monitor.snapshots[0]
        assert first.phase_seconds["compute"] == pytest.approx(1.4)
        assert first.phase_seconds["sync"] == pytest.approx(0.2)
        assert first.sensing_seconds_total == pytest.approx(0.5)
        assert first.probe_overhead_fraction == pytest.approx(0.5 / 1.5)
        assert first.capacities == (0.5, 0.5)
        # Staleness falls back to sim-time since the last sense closed.
        assert first.staleness_s == pytest.approx(1.0)

    def test_anomalies_reach_monitor_and_trace(self):
        tracer = Tracer()
        monitor = HealthMonitor().attach(tracer)
        emit_synthetic_run(tracer, imbalances=(10.0, 80.0, 15.0))
        kinds = {e.kind for e in monitor.events}
        assert "imbalance_bound" in kinds
        traced = [e for e in tracer.events if e.name == "health.imbalance_bound"]
        assert len(traced) == 1
        assert traced[0].attributes["severity"] == "critical"
        assert traced[0].attributes["iteration"] == 1

    def test_worst_imbalance_and_summary(self):
        tracer = Tracer()
        monitor = HealthMonitor().attach(tracer)
        emit_synthetic_run(tracer, imbalances=(10.0, 80.0, 15.0))
        assert monitor.worst_imbalance() == 80.0
        summary = monitor.summary()
        assert summary["num_snapshots"] == 3
        assert summary["imbalance_bound_pct"] == PAPER_IMBALANCE_BOUND_PCT
        assert summary["events_by_severity"].get("critical", 0) >= 1

    def test_finish_drains_unclosed_runs(self):
        tracer = Tracer()
        monitor = HealthMonitor().attach(tracer)
        tracer.begin_run("crashed")
        tracer.add_span("iteration", 0.0, 1.0, iteration=0)
        assert monitor.snapshots == []  # no run span closed yet
        monitor.finish()
        assert len(monitor.snapshots) == 1

    def test_detach_stops_observing(self):
        tracer = Tracer()
        monitor = HealthMonitor().attach(tracer)
        monitor.detach()
        emit_synthetic_run(tracer)
        assert monitor.snapshots == []

    def test_attach_to_null_tracer_is_a_noop(self):
        monitor = HealthMonitor().attach(NULL_TRACER)
        assert monitor.snapshots == []
        monitor.detach()

    def test_custom_detector_suite(self):
        tracer = Tracer()
        monitor = HealthMonitor(
            detectors=[ThresholdRule("imbalance_pct", 5.0, kind="tight")]
        ).attach(tracer)
        emit_synthetic_run(tracer, imbalances=(10.0, 20.0, 30.0))
        assert {e.kind for e in monitor.events} == {"tight"}
        assert len(monitor.events) == 3


class TestHealthMonitorLive:
    def test_snapshots_cover_every_iteration(self):
        tracer = Tracer()
        monitor = HealthMonitor().attach(tracer)
        result = make_runtime(tracer).run()
        assert len(monitor.snapshots) == result.iterations
        # After the first regrid the engine stamps health attributes.
        tail = monitor.snapshots[-1]
        assert tail.imbalance_pct is not None
        assert tail.staleness_s is not None
        assert tail.epoch is not None
        assert tail.phase_seconds.get("compute", 0.0) > 0.0

    def test_monitor_does_not_perturb_results(self):
        baseline = make_runtime(tracer=NULL_TRACER).run()
        tracer = Tracer()
        HealthMonitor().attach(tracer)
        observed = make_runtime(tracer).run()
        assert observed.total_seconds == baseline.total_seconds
        assert observed.iteration_times == baseline.iteration_times
        assert observed.migration_seconds == baseline.migration_seconds
        assert observed.sensing_seconds == baseline.sensing_seconds

    def test_offline_replay_matches_live_feed(self, tmp_path):
        tracer = Tracer()
        monitor = HealthMonitor().attach(tracer)
        make_runtime(tracer).run()

        path = tmp_path / "run.events.jsonl"
        write_jsonl(tracer, path)
        snapshots, events = analyze_records(
            load_trace_records(path), run_labels=tracer.run_labels
        )
        assert [s.to_dict() for s in snapshots] == [
            s.to_dict() for s in monitor.snapshots
        ]
        assert [e.to_dict() for e in events] == [
            e.to_dict() for e in monitor.events
        ]


class TestAnalyzeRecords:
    def test_empty_input(self):
        assert analyze_records([]) == ([], [])

    def test_non_span_records_are_skipped(self):
        records = [
            {"type": "event", "name": "cluster"},
            {
                "type": "span", "name": "iteration", "pid": 1,
                "start_sim": 0.0, "end_sim": 1.0,
                "attributes": {"iteration": 0},
            },
        ]
        snapshots, _ = analyze_records(records)
        assert len(snapshots) == 1

    def test_run_label_falls_back_to_partitioner_attribute(self):
        records = [
            {
                "type": "span", "name": "iteration", "pid": 1,
                "start_sim": 0.0, "end_sim": 1.0, "attributes": {},
            },
            {
                "type": "span", "name": "run", "pid": 1,
                "start_sim": 0.0, "end_sim": 1.0,
                "attributes": {"partitioner": "ACEHeterogeneous"},
            },
        ]
        snapshots, _ = analyze_records(records)
        assert snapshots[0].run_label == "ACEHeterogeneous"

    def test_detector_factory_gets_fresh_state_per_call(self):
        tracer = Tracer()
        emit_synthetic_run(tracer, imbalances=(80.0,))
        records = [s.to_dict() for s in tracer.spans]
        for _ in range(2):
            _, events = analyze_records(records, detectors=default_detectors)
            assert len([e for e in events if e.kind == "imbalance_bound"]) == 1
