"""Tests for the span/event name registry and its lint predicate."""

from __future__ import annotations

from repro.telemetry import EVENT_NAMES, EVENT_PREFIXES, SPAN_NAMES
from repro.telemetry.names import is_known_event, is_known_span


class TestRegistry:
    def test_core_pipeline_spans_registered(self):
        assert {
            "run", "iteration", "sense", "partition", "migrate",
            "compute", "ghost-exchange", "sync",
        } <= SPAN_NAMES

    def test_span_predicate(self):
        assert is_known_span("compute")
        assert not is_known_span("computee")

    def test_event_predicate_exact_and_prefix(self):
        assert is_known_event("cluster")
        assert is_known_event("comm.exchange")  # via the comm. prefix
        assert is_known_event("health.imbalance")
        assert not is_known_event("made.up.event")

    def test_prefixes_end_with_dot(self):
        # A prefix without the dot would match unrelated names
        # ("commission" under "comm").
        assert all(p.endswith(".") for p in EVENT_PREFIXES)

    def test_registries_disjoint_enough(self):
        # "split" is deliberately both (span in the partitioner wrapper,
        # event when boxes split); nothing else may overlap silently.
        assert SPAN_NAMES & EVENT_NAMES <= {"split"}


class TestLintTool:
    def test_src_tree_is_clean(self):
        """The committed tree must pass its own span-name lint."""
        import subprocess
        import sys
        from pathlib import Path

        repo = Path(__file__).resolve().parents[2]
        proc = subprocess.run(
            [sys.executable, str(repo / "tools" / "check_span_names.py")],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
