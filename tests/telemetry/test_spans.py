"""Tests for the tracer and span model."""

from __future__ import annotations

import pytest

from repro.telemetry import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    activate,
    get_active_tracer,
)


class FakeClock:
    """Deterministic wall/sim clock for span assertions."""

    def __init__(self):
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def tick(self, dt: float = 1.0) -> None:
        self.t += dt


class TestSpans:
    def test_span_records_both_clocks(self):
        wall, sim = FakeClock(), FakeClock()
        tracer = Tracer(sim_clock=sim, wall_clock=wall)
        with tracer.span("sense") as span:
            wall.tick(0.25)
            sim.tick(2.0)
        assert span.wall_duration == pytest.approx(0.25)
        assert span.sim_duration == pytest.approx(2.0)
        assert tracer.spans == [span]

    def test_nesting_sets_parent_ids(self):
        tracer = Tracer()
        with tracer.span("run") as run:
            with tracer.span("sense") as sense:
                with tracer.span("capacity") as cap:
                    pass
            with tracer.span("partition") as part:
                pass
        assert run.parent_id is None
        assert sense.parent_id == run.span_id
        assert cap.parent_id == sense.span_id
        assert part.parent_id == run.span_id
        # Finished innermost-first.
        assert [s.name for s in tracer.spans] == [
            "capacity", "sense", "partition", "run",
        ]

    def test_attributes_and_set(self):
        tracer = Tracer()
        with tracer.span("migrate", epoch=3) as span:
            span.set(bytes=1024, node=2)
        assert span.attributes == {"epoch": 3, "bytes": 1024, "node": 2}

    def test_exception_marks_span_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("partition"):
                raise ValueError("boom")
        (span,) = tracer.spans
        assert span.attributes["error"] == "ValueError"
        assert span.end_wall is not None

    def test_add_span_records_simulated_interval(self):
        tracer = Tracer()
        span = tracer.add_span("compute", 10.0, 12.5, rank=3, iteration=7)
        assert span.sim_duration == pytest.approx(2.5)
        assert span.rank == 3
        assert span.wall_duration == 0.0

    def test_events(self):
        sim = FakeClock()
        tracer = Tracer(sim_clock=sim)
        sim.tick(5.0)
        tracer.event("load_generator", node=1, target_level=2.0)
        (event,) = tracer.events
        assert event.sim == pytest.approx(5.0)
        assert event.attributes["node"] == 1

    def test_begin_run_partitions_pids(self):
        tracer = Tracer()
        assert tracer.begin_run("first") == 1
        tracer.add_span("a", 0.0, 1.0)
        assert tracer.begin_run("second") == 2
        tracer.add_span("b", 0.0, 1.0)
        by_name = {s.name: s.pid for s in tracer.spans}
        assert by_name == {"a": 1, "b": 2}
        assert tracer.run_labels == {1: "first", 2: "second"}

    def test_bind_sim_clock(self):
        tracer = Tracer()
        assert tracer.add_span("x", 0, 0).start_sim == 0.0
        sim = FakeClock()
        sim.tick(9.0)
        tracer.bind_sim_clock(sim)
        with tracer.span("y") as span:
            pass
        assert span.start_sim == pytest.approx(9.0)


class TestNullTracer:
    def test_span_returns_shared_singleton(self):
        a = NULL_TRACER.span("sense", rank=1, epoch=2)
        b = NULL_TRACER.span("compute")
        assert a is b  # no allocation per call
        with a as span:
            span.set(bytes=1)  # no-op, no error

    def test_records_nothing(self):
        tracer = NullTracer()
        tracer.event("x")
        tracer.add_span("y", 0.0, 1.0)
        assert len(tracer) == 0
        assert list(tracer.spans_named("y")) == []
        assert not tracer.enabled
        assert tracer.begin_run("label") == 0

    def test_null_metrics_are_noops(self):
        NULL_TRACER.metrics.counter("c").inc(5)
        NULL_TRACER.metrics.gauge("g", node=1).set(2.0)
        NULL_TRACER.metrics.histogram("h").observe(1.0)
        assert NULL_TRACER.metrics.summary() == {}


class TestActivation:
    def test_default_is_null(self):
        assert get_active_tracer() is NULL_TRACER

    def test_activate_scopes_the_tracer(self):
        tracer = Tracer()
        with activate(tracer) as active:
            assert active is tracer
            assert get_active_tracer() is tracer
            inner = Tracer()
            with activate(inner):
                assert get_active_tracer() is inner
            assert get_active_tracer() is tracer
        assert get_active_tracer() is NULL_TRACER

    def test_activation_pops_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with activate(tracer):
                raise RuntimeError
        assert get_active_tracer() is NULL_TRACER


class TestObservers:
    def test_observer_sees_closed_span(self):
        tracer = Tracer()
        seen = []
        tracer.add_observer(lambda s: seen.append((s.name, s.end_wall)))
        with tracer.span("sense"):
            pass
        assert seen and seen[0][0] == "sense"
        assert seen[0][1] is not None  # delivered after end stamped

    def test_duplicate_registration_is_ignored(self):
        tracer = Tracer()
        seen = []

        def cb(span):
            seen.append(span.name)

        tracer.add_observer(cb)
        tracer.add_observer(cb)
        tracer.add_span("compute", 0.0, 1.0)
        assert seen == ["compute"]  # once per span, not per registration

    def test_remove_unknown_observer_is_ignored(self):
        Tracer().remove_observer(lambda s: None)

    def test_observer_unsubscribing_itself_mid_notify(self):
        # A one-shot observer must not make its *successor* miss the
        # span it was registered for: _notify iterates a snapshot.
        tracer = Tracer()
        seen_first, seen_second = [], []

        def one_shot(span):
            seen_first.append(span.name)
            tracer.remove_observer(one_shot)

        def second(span):
            seen_second.append(span.name)

        tracer.add_observer(one_shot)
        tracer.add_observer(second)
        tracer.add_span("compute", 0.0, 1.0)
        tracer.add_span("sync", 1.0, 2.0)
        assert seen_first == ["compute"]  # fired once, then gone
        assert seen_second == ["compute", "sync"]  # missed nothing

    def test_observer_removing_a_peer_mid_notify(self):
        tracer = Tracer()
        calls = []

        def assassin(span):
            calls.append("assassin")
            tracer.remove_observer(victim)

        def victim(span):
            calls.append("victim")

        tracer.add_observer(assassin)
        tracer.add_observer(victim)
        tracer.add_span("compute", 0.0, 1.0)
        # The victim still sees the span whose notify already started.
        assert calls == ["assassin", "victim"]
        tracer.add_span("sync", 1.0, 2.0)
        assert calls == ["assassin", "victim", "assassin"]


class TestNullSpan:
    def test_attribute_surface_matches_real_span(self):
        span = NULL_TRACER.span("anything")
        assert span.name == "null"
        assert span.span_id == 0
        assert span.parent_id is None
        assert span.pid == 0
        assert span.rank is None
        assert span.attributes == {}
        assert span.wall_duration == 0.0
        assert span.sim_duration == 0.0

    def test_set_is_a_noop_and_leaks_nothing(self):
        span = NULL_TRACER.span("a")
        span.set(bytes=123, iteration=7)
        assert span.attributes == {}  # shared dict must stay empty
        # The singleton is shared: a second handle must be unaffected.
        assert NULL_TRACER.add_span("b", 0.0, 1.0).attributes == {}

    def test_context_manager_reraises(self):
        with pytest.raises(KeyError):
            with NULL_TRACER.span("x"):
                raise KeyError("propagates through the null span")
