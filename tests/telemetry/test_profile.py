"""Tests for performance introspection (repro.telemetry.profile).

The critical-path identity is the load-bearing invariant: for every
priced iteration the reconstructed path length must equal the iteration
span's simulated duration to 1e-9 -- the analyzer claims to *explain*
the wall time, so any residual means a phase was dropped or
double-counted.
"""

from __future__ import annotations

import json

import pytest

from repro.cluster import Cluster
from repro.kernels.workloads import paper_rm3d_trace
from repro.partition import ACEHeterogeneous
from repro.runtime import RuntimeConfig, SamrRuntime
from repro.telemetry import (
    Tracer,
    analyze_critical_path,
    comm_profile,
    flamegraph_collapsed,
    format_critical_path_report,
    openmetrics_selfcheck,
    registry_from_records,
    speedscope_document,
)
from repro.telemetry.export import write_jsonl
from repro.telemetry.profile import CommMatrix, LiveTop


@pytest.fixture(scope="module")
def traced_run():
    """One fig10-style instrumented run shared by the module's tests."""
    tracer = Tracer()
    SamrRuntime(
        paper_rm3d_trace(num_regrids=4),
        Cluster.paper_four_node(),
        ACEHeterogeneous(),
        config=RuntimeConfig(
            iterations=20, regrid_interval=5, sensing_interval=0
        ),
        tracer=tracer,
    ).run()
    return tracer


class TestCriticalPath:
    def test_path_length_equals_iteration_duration(self, traced_run):
        runs = analyze_critical_path(traced_run)
        assert runs and runs[0].iterations
        for it in runs[0].iterations:
            assert it.path_length_s == pytest.approx(
                it.duration_s, abs=1e-9
            ), f"iteration {it.iteration} path does not explain its time"

    def test_phase_decomposition_sums_to_total(self, traced_run):
        cp = analyze_critical_path(traced_run)[0]
        parts = cp.compute_s + cp.comm_s + cp.sync_s + cp.barrier_s
        assert parts == pytest.approx(cp.total_s, rel=1e-9)

    def test_critical_rank_matches_pipeline_attribution(self, traced_run):
        # The pipeline stamps critical_rank on every iteration span; the
        # analyzer must agree with it (it is the argmax of busy time).
        stamped = [
            s.attributes.get("critical_rank")
            for s in traced_run.spans
            if s.name == "iteration"
        ]
        analyzed = [
            it.critical_rank
            for it in analyze_critical_path(traced_run)[0].iterations
        ]
        assert analyzed == stamped

    def test_slack_nonnegative_and_zero_for_critical_rank(self, traced_run):
        cp = analyze_critical_path(traced_run)[0]
        for it in cp.iterations:
            slack = it.slack_per_rank
            assert all(v >= -1e-12 for v in slack.values())
            if it.critical_rank is not None:
                assert slack[it.critical_rank] == pytest.approx(0.0)

    def test_headroom_bounded_by_busy_spread(self, traced_run):
        cp = analyze_critical_path(traced_run)[0]
        for it in cp.iterations:
            busy = list(it.busy_per_rank.values())
            assert it.balance_headroom_s <= max(busy) - min(busy) + 1e-12

    def test_offline_equals_live(self, traced_run, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_jsonl(traced_run, path)
        live = analyze_critical_path(traced_run)[0].to_dict()
        offline = analyze_critical_path(path)[0].to_dict()
        # Labels come from the run registry live and the run span offline.
        live.pop("label"), offline.pop("label")
        assert offline == live

    def test_report_is_textual(self, traced_run):
        text = format_critical_path_report(analyze_critical_path(traced_run))
        assert "critical path" in text.lower()
        assert "compute" in text and "rank" in text

    def test_empty_source(self):
        assert analyze_critical_path([]) == []


class TestCommProfile:
    def test_matrix_totals_match_event_sums(self, traced_run):
        profiles = comm_profile(traced_run)
        assert profiles and profiles[0].events > 0
        total_bytes = sum(
            e.attributes["bytes"]
            for e in traced_run.events
            if e.name == "comm.exchange"
        )
        assert profiles[0].total.bytes_total == pytest.approx(total_bytes)

    def test_phases_split_exchange_vs_migration(self, traced_run):
        profile = comm_profile(traced_run)[0]
        assert "ghost-exchange" in profile.phases
        phase_bytes = sum(
            m.bytes_total for m in profile.phases.values()
        )
        assert phase_bytes == pytest.approx(profile.total.bytes_total)

    def test_no_self_traffic(self, traced_run):
        matrix = comm_profile(traced_run)[0].total
        for r in range(matrix.size):
            assert matrix.bytes[r][r] == 0.0

    def test_matrix_grow_preserves_counts(self):
        m = CommMatrix.zeros(2)
        m.add(0, 1, 100.0, 0.5, False)
        m.add(3, 0, 50.0, 0.2, True)  # grows to 4x4
        assert m.size == 4
        assert m.bytes_total == pytest.approx(150.0)
        assert m.derated_bytes_total == pytest.approx(50.0)
        assert m.messages[3][0] == 1

    def test_top_pairs_sorted_by_time(self, traced_run):
        pairs = comm_profile(traced_run)[0].total.top_pairs(5)
        times = [p["seconds"] for p in pairs]
        assert times == sorted(times, reverse=True)


class TestFlamegraph:
    def test_collapsed_stacks_rooted_at_run(self, traced_run):
        lines = flamegraph_collapsed(traced_run).splitlines()
        assert lines
        for line in lines:
            stack, weight = line.rsplit(" ", 1)
            assert stack.startswith("run: ")
            assert int(weight) > 0

    def test_collapsed_weight_bounded_by_run_duration(self, traced_run):
        run_span = next(s for s in traced_run.spans if s.name == "run")
        run_us = run_span.sim_duration * 1e6
        lines = flamegraph_collapsed(traced_run).splitlines()
        # Self time partitions the tree: runtime-track stacks (no rank
        # frames) can never sum past the run span itself.
        runtime_total = sum(
            int(line.rsplit(" ", 1)[1])
            for line in lines
            if "(rank " not in line
        )
        assert runtime_total <= run_us * 1.001 + 1

    def test_speedscope_well_nested(self, traced_run):
        doc = speedscope_document(traced_run)
        assert "schema.json" in doc["$schema"]
        assert doc["profiles"]
        for prof in doc["profiles"]:
            assert prof["type"] == "evented"
            stack, last_at = [], 0
            for ev in prof["events"]:
                assert ev["at"] >= last_at, "time went backwards"
                last_at = ev["at"]
                if ev["type"] == "O":
                    stack.append(ev["frame"])
                else:
                    assert stack and stack[-1] == ev["frame"], (
                        "C event does not match the open frame"
                    )
                    stack.pop()
            assert not stack, "unclosed frames"

    def test_speedscope_json_serializable(self, traced_run):
        text = json.dumps(speedscope_document(traced_run))
        assert "ghost-exchange" in text


class TestOfflineRegistry:
    def test_rebuilt_registry_passes_selfcheck(self, traced_run, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_jsonl(traced_run, path)
        registry = registry_from_records(path)
        problems = openmetrics_selfcheck(registry.to_openmetrics())
        assert problems == []

    def test_rebuilt_comm_counters_match_live(self, traced_run, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_jsonl(traced_run, path)
        rebuilt = registry_from_records(path)
        live_bytes = next(
            m.value
            for m in traced_run.metrics
            if m.name == "comm.bytes_total"
        )
        rebuilt_bytes = next(
            m.value for m in rebuilt if m.name == "comm.bytes_total"
        )
        assert rebuilt_bytes == pytest.approx(live_bytes)


class TestLiveTop:
    def test_renders_after_spans(self, traced_run):
        top = LiveTop()
        for span in traced_run.spans:
            top.on_span_close(span)
        text = top.render()
        assert "iteration" in text and "rank" in text
        assert "critical" in text
