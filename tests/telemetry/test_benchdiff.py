"""Tests for BENCH_*.json diffing (`repro bench-diff`)."""

from __future__ import annotations

import json

import pytest

from repro.telemetry import diff_bench, diff_bench_files, flatten_bench, format_diff
from repro.util.errors import TelemetryError

BASE = {
    "schema_version": 1,
    "python": "3.12.0",
    "results": [
        {
            "partitioner": "ACEHeterogeneous",
            "wall_seconds": 1.0,
            "total_sim_seconds": 10.0,
            "config": {"iterations": 30},
        },
        {
            "partitioner": "SFCHybrid",
            "wall_seconds": 2.0,
            "total_sim_seconds": 12.0,
        },
    ],
    "metrics": {"migration_bytes": 4096.0},
}


def clone():
    return json.loads(json.dumps(BASE))


class TestFlatten:
    def test_lists_keyed_by_partitioner_not_position(self):
        reordered = clone()
        reordered["results"].reverse()
        assert flatten_bench(BASE) == flatten_bench(reordered)

    def test_config_and_provenance_keys_dropped(self):
        flat = flatten_bench(BASE)
        assert not any(".config." in k for k in flat)
        assert not any(k.startswith(("schema_version", "python")) for k in flat)
        assert "results.ACEHeterogeneous.wall_seconds" in flat


class TestDiff:
    def test_identical_inputs_are_clean(self):
        cmp = diff_bench(BASE, clone())
        assert cmp.ok
        assert cmp.regressions == []
        assert cmp.improvements == []
        assert cmp.drifts == []

    def test_injected_slowdown_is_flagged(self):
        slow = clone()
        slow["results"][0]["wall_seconds"] = 1.30  # +30% > 20% tolerance
        cmp = diff_bench(BASE, slow)
        assert not cmp.ok
        (reg,) = cmp.regressions
        assert "ACEHeterogeneous" in reg.key
        assert reg.ratio == pytest.approx(1.30)

    def test_slowdown_at_tolerance_is_not_flagged(self):
        edge = clone()
        edge["results"][0]["wall_seconds"] = 1.20
        assert diff_bench(BASE, edge).ok

    def test_speedup_is_an_improvement(self):
        fast = clone()
        fast["results"][0]["wall_seconds"] = 0.5
        cmp = diff_bench(BASE, fast)
        assert cmp.ok
        assert len(cmp.improvements) == 1

    def test_absolute_floor_mutes_micro_noise(self):
        # 10x relative change, but well under the absolute floor: noise.
        tiny_old, tiny_new = clone(), clone()
        tiny_old["results"][0]["wall_seconds"] = 1e-6
        tiny_new["results"][0]["wall_seconds"] = 1e-5
        assert diff_bench(tiny_old, tiny_new).ok

    def test_simulated_change_is_drift_not_regression(self):
        moved = clone()
        moved["results"][0]["total_sim_seconds"] = 10.5
        cmp = diff_bench(BASE, moved)
        assert cmp.ok  # drift never fails the comparison
        (drift,) = cmp.drifts
        assert "total_sim_seconds" in drift.key

    def test_added_and_removed_keys(self):
        grown = clone()
        grown["metrics"]["num_splits"] = 3.0
        deltas = {d.status for d in diff_bench(BASE, grown).deltas}
        assert "added" in deltas
        deltas = {d.status for d in diff_bench(grown, BASE).deltas}
        assert "removed" in deltas

    def test_custom_tolerance(self):
        slow = clone()
        slow["results"][0]["wall_seconds"] = 1.30
        assert diff_bench(BASE, slow, tolerance=0.5).ok
        assert not diff_bench(BASE, slow, tolerance=0.1).ok

    def test_invalid_tolerance_raises(self):
        with pytest.raises(TelemetryError):
            diff_bench(BASE, clone(), tolerance=0.0)


class TestRateKeys:
    """Throughput keys (`*per_wall_second*`, `*wall_speedup*`): higher
    is better, so the regression/improvement directions invert."""

    @staticmethod
    def with_rates(throughput: float, speedup: float) -> dict:
        bench = clone()
        bench["results"][0]["boxes_per_wall_second"] = throughput
        bench["results"][0]["wall_speedup"] = speedup
        return bench

    def test_throughput_drop_is_a_regression(self):
        old = self.with_rates(1000.0, 4.0)
        new = self.with_rates(700.0, 4.0)  # -30% > 20% tolerance
        cmp = diff_bench(old, new)
        assert not cmp.ok
        (reg,) = cmp.regressions
        assert "boxes_per_wall_second" in reg.key

    def test_throughput_rise_is_an_improvement(self):
        old = self.with_rates(1000.0, 4.0)
        new = self.with_rates(1500.0, 4.0)
        cmp = diff_bench(old, new)
        assert cmp.ok
        (imp,) = cmp.improvements
        assert "boxes_per_wall_second" in imp.key

    def test_rate_change_within_tolerance_is_ok(self):
        old = self.with_rates(1000.0, 4.0)
        new = self.with_rates(900.0, 4.0)  # -10% < 20% tolerance
        cmp = diff_bench(old, new)
        assert cmp.ok and not cmp.improvements and not cmp.drifts

    def test_speedup_drop_is_a_regression(self):
        old = self.with_rates(1000.0, 4.0)
        new = self.with_rates(1000.0, 2.0)
        cmp = diff_bench(old, new)
        assert not cmp.ok
        (reg,) = cmp.regressions
        assert "wall_speedup" in reg.key

    def test_no_absolute_floor_on_rates(self):
        # Tiny absolute values still count: rates are already normalized.
        old = self.with_rates(1e-6, 4.0)
        new = self.with_rates(1e-7, 4.0)
        assert not diff_bench(old, new).ok


class TestFilesAndFormat:
    def test_diff_bench_files(self, tmp_path):
        old, new = tmp_path / "old.json", tmp_path / "new.json"
        old.write_text(json.dumps(BASE))
        slow = clone()
        slow["results"][1]["wall_seconds"] = 3.0
        new.write_text(json.dumps(slow))
        cmp = diff_bench_files(old, new)
        assert len(cmp.regressions) == 1

    def test_format_mentions_regressions(self):
        slow = clone()
        slow["results"][0]["wall_seconds"] = 1.5
        text = format_diff(diff_bench(BASE, slow))
        assert "REGRESSIONS" in text
        assert "ACEHeterogeneous" in text
        assert "+50.0%" in text

    def test_format_clean_run(self):
        text = format_diff(diff_bench(BASE, clone()))
        assert "no wall-clock regressions" in text

    def test_verbose_lists_added_keys(self):
        grown = clone()
        grown["metrics"]["num_splits"] = 3.0
        text = format_diff(diff_bench(BASE, grown), verbose=True)
        assert "added" in text and "num_splits" in text


class TestCriticalPathGating:
    """Wall regressions off the critical path must not fail builds."""

    def with_path(self):
        bench = clone()
        bench["runtime"] = {
            "critical_path": {
                "total_s": 100.0,
                "compute_s": 90.0,
                "comm_s": 9.0,
                "sync_s": 1.0,
                "barrier_s": 0.0,
            },
            "comm": {"bytes_total": 1e6, "derated_bytes_total": 0.0},
        }
        return bench

    def test_micro_bench_regression_downgraded_to_offpath(self):
        old = self.with_path()
        new = json.loads(json.dumps(old))
        new["results"][0]["wall_seconds"] = 2.0  # partitioner micro-bench
        cmp = diff_bench(old, new)
        assert cmp.ok
        assert [d.key for d in cmp.offpath_regressions] == [
            "results.ACEHeterogeneous.wall_seconds"
        ]
        assert "off the critical path" in format_diff(cmp)

    def test_onpath_phase_regression_still_fails(self):
        old = self.with_path()
        old["runtime"]["compute_wall_seconds"] = 1.0
        new = json.loads(json.dumps(old))
        new["runtime"]["compute_wall_seconds"] = 2.0
        cmp = diff_bench(old, new)
        assert not cmp.ok  # compute carries 90% of the path
        assert cmp.regressions[0].key == "runtime.compute_wall_seconds"

    def test_insignificant_phase_is_offpath(self):
        old = self.with_path()
        old["runtime"]["sync_wall_seconds"] = 1.0
        new = json.loads(json.dumps(old))
        new["runtime"]["sync_wall_seconds"] = 2.0
        cmp = diff_bench(old, new)  # sync is 1% < ONPATH_MIN_SHARE
        assert cmp.ok and len(cmp.offpath_regressions) == 1

    def test_total_keys_always_onpath(self):
        old = self.with_path()
        old["runtime"]["total_wall_seconds"] = 10.0
        new = json.loads(json.dumps(old))
        new["runtime"]["total_wall_seconds"] = 20.0
        assert not diff_bench(old, new).ok

    def test_no_path_section_keeps_strict_behaviour(self):
        old = clone()
        new = clone()
        new["results"][0]["wall_seconds"] = 2.0
        cmp = diff_bench(old, new)
        assert not cmp.ok and len(cmp.regressions) == 1

    def test_comm_volume_drift_reported(self):
        old = self.with_path()
        new = json.loads(json.dumps(old))
        new["runtime"]["comm"]["bytes_total"] = 2e6
        cmp = diff_bench(old, new)
        assert cmp.ok  # volume change is behaviour drift, not a perf fail
        assert any(
            d.key == "runtime.comm.bytes_total" for d in cmp.drifts
        )


class TestRegisteredRateKeys:
    """The explicit RATE_KEYS registry: BENCH_learn / BENCH_explain
    throughputs gate with inverted direction even if a rename were to
    lose the generic `per_wall_second` substring."""

    def test_registry_names_learn_and_explain_keys(self):
        from repro.telemetry.benchdiff import RATE_KEYS

        assert "history.appends_per_wall_second" in RATE_KEYS
        assert "gate.gate_decisions_per_wall_second" in RATE_KEYS
        assert "ledger.appends_per_wall_second" in RATE_KEYS
        assert "reconcile.decisions_per_wall_second" in RATE_KEYS
        assert "oracle.replays_per_wall_second" in RATE_KEYS

    def test_every_registered_key_gates_on_drop(self):
        from repro.telemetry.benchdiff import RATE_KEYS

        for key in sorted(RATE_KEYS):
            section, metric = key.split(".", 1)
            old = {section: {metric: 1000.0}}
            new = {section: {metric: 700.0}}  # -30% > 20% tolerance
            comparison = diff_bench(old, new)
            assert [d.key for d in comparison.regressions] == [key], key
            # And the inverse direction is an improvement, never drift.
            comparison = diff_bench(new, old)
            assert [d.key for d in comparison.improvements] == [key], key
            assert not comparison.drifts

    def test_committed_learn_artifact_keys_classified_as_rates(self):
        """Every *_per_wall_second key in BENCH_learn.json is a rate."""
        import json
        from pathlib import Path

        from repro.telemetry.benchdiff import _is_rate_key, flatten_bench

        repo = Path(__file__).resolve().parents[2]
        for name in ("BENCH_learn.json", "BENCH_explain.json"):
            flat = flatten_bench(json.loads((repo / name).read_text()))
            rates = {k for k in flat if "per_wall_second" in k}
            assert rates, name
            for key in rates:
                assert _is_rate_key(key), key
