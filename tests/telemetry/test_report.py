"""Tests for the self-contained HTML health dashboard."""

from __future__ import annotations

import re

from repro.cluster import Cluster
from repro.kernels.workloads import moving_blob_trace
from repro.partition import ACEHeterogeneous
from repro.runtime import RuntimeConfig, SamrRuntime
from repro.telemetry import (
    Tracer,
    load_trace_records,
    render_dashboard,
    write_dashboard,
    write_jsonl,
)


def traced_run(iterations=10):
    tracer = Tracer()
    SamrRuntime(
        moving_blob_trace(domain_shape=(32, 32), num_regrids=4, max_levels=2),
        Cluster.paper_linux_cluster(4, seed=7),
        ACEHeterogeneous(),
        config=RuntimeConfig(iterations=iterations, sensing_interval=4),
        tracer=tracer,
    ).run()
    return tracer


def synthetic_tracer(imbalances=(10.0, 80.0, 15.0)):
    tracer = Tracer()
    tracer.begin_run("synthetic")
    tracer.add_span(
        "sense", 0.0, 0.5, overhead_seconds=0.5, capacities=(0.5, 0.5)
    )
    t = 0.5
    for i, imb in enumerate(imbalances):
        tracer.add_span("compute", t, t + 0.8, rank=0)
        tracer.add_span("compute", t, t + 0.6, rank=1)
        tracer.add_span(
            "iteration", t, t + 1.0, iteration=i, epoch=0, imbalance_pct=imb
        )
        t += 1.0
    tracer.add_span("run", 0.0, t)
    return tracer


class TestSelfContainment:
    def test_no_external_resources(self):
        html = render_dashboard(traced_run())
        lowered = html.lower()
        assert "<script src" not in lowered
        assert "<link" not in lowered
        assert "cdn." not in lowered
        assert "@import" not in lowered
        assert "fetch(" not in lowered
        # The only URL allowed is the SVG namespace identifier, which
        # browsers never fetch.
        urls = re.findall(r"https?://[^\s'\"<>]+", html)
        assert set(urls) <= {"http://www.w3.org/2000/svg"}

    def test_single_document(self):
        html = render_dashboard(traced_run())
        assert html.lstrip().lower().startswith("<!doctype html>")
        assert html.count("<html") == 1
        assert "</html>" in html


class TestDashboardContent:
    def test_required_charts_present(self):
        html = render_dashboard(traced_run())
        assert "<svg" in html
        assert "Per-rank phase timeline" in html
        assert "rank 0" in html and "rank 3" in html
        assert "Imbalance trajectory" in html or "imbalance" in html.lower()
        assert "40% paper bound" in html
        assert "Capacity evolution" in html or "capacit" in html.lower()

    def test_phase_legend_and_tooltips(self):
        html = render_dashboard(traced_run())
        for phase in ("compute", "ghost-exchange", "sync", "sense", "migrate"):
            assert phase in html
        assert "<title>" in html  # native SVG tooltips

    def test_table_views_exist(self):
        # The palette validator WARNs on light-surface contrast for some
        # series colors; relief is visible labels plus a table view.
        html = render_dashboard(traced_run())
        assert "<table" in html

    def test_dark_mode_is_selected_not_flipped(self):
        html = render_dashboard(traced_run())
        assert "prefers-color-scheme: dark" in html

    def test_anomaly_markers_and_event_rows(self):
        html = render_dashboard(synthetic_tracer(imbalances=(10.0, 80.0, 15.0)))
        assert "imbalance_bound" in html
        assert "critical" in html
        # A healthy run renders no anomaly rows.
        healthy = render_dashboard(synthetic_tracer(imbalances=(5.0, 6.0)))
        assert "imbalance_bound" not in healthy

    def test_multiple_runs_render_separate_sections(self):
        tracer = synthetic_tracer()
        tracer.begin_run("second")
        tracer.add_span("iteration", 0.0, 1.0, iteration=0)
        tracer.add_span("run", 0.0, 1.0)
        html = render_dashboard(tracer)
        assert "Run 1" in html and "Run 2" in html


class TestSources:
    def test_write_dashboard_from_tracer(self, tmp_path):
        path = tmp_path / "dash.html"
        write_dashboard(traced_run(), path)
        assert path.exists() and path.stat().st_size > 1000

    def test_render_from_jsonl_file(self, tmp_path):
        tracer = traced_run()
        trace_path = tmp_path / "run.events.jsonl"
        write_jsonl(tracer, trace_path)
        from_file = render_dashboard(trace_path)
        assert "Per-rank phase timeline" in from_file
        assert "rank 0" in from_file

    def test_render_from_parsed_records(self, tmp_path):
        tracer = synthetic_tracer()
        trace_path = tmp_path / "run.events.jsonl"
        write_jsonl(tracer, trace_path)
        records = load_trace_records(trace_path)
        assert render_dashboard(records).count("<svg") >= 1

    def test_empty_trace_renders_placeholder(self):
        html = render_dashboard(Tracer())
        assert "<html" in html  # degrades gracefully, no crash


class TestProfilingPanels:
    """Comm heatmap + critical-path panel added by the profiling PR."""

    def test_heatmap_and_critical_panel_render(self):
        html = render_dashboard(traced_run())
        assert "Communication matrix" in html
        assert "Critical path" in html
        # At least one shaded heatmap cell with a src->dst tooltip.
        assert re.search(r"class='hm[ '][^>]*fill-opacity", html)
        assert "rank 0 -&gt; rank" in html or "rank 0 -> rank" in html

    def test_critical_path_spans_highlighted_on_timeline(self):
        html = render_dashboard(traced_run())
        crit_rects = re.findall(r"class='ph-[\w-]+ crit'", html)
        assert crit_rects, "no timeline rects carry the critical outline"
        assert "[critical path]" in html  # tooltip marks them textually
        assert "critical path</span>" in html  # legend chip

    def test_headroom_note_present(self):
        html = render_dashboard(traced_run())
        assert "Perfect rebalancing headroom" in html

    def test_offline_render_matches_live_highlighting(self, tmp_path):
        tracer = traced_run()
        live = render_dashboard(tracer)
        path = tmp_path / "trace.jsonl"
        write_jsonl(tracer, path)
        offline = render_dashboard(load_trace_records(path))
        n = len(re.findall(r"class='ph-[\w-]+ crit'", live))
        assert len(re.findall(r"class='ph-[\w-]+ crit'", offline)) == n

    def test_trace_without_comm_events_degrades_gracefully(self):
        html = render_dashboard(synthetic_tracer())
        assert "no communication events" in html
        # Synthetic add_span traces carry no critical_rank attrs either;
        # the analyzer falls back to argmax-busy attribution.
        assert "Critical path" in html


def learned_traced_run(tmp_path, iterations=30):
    """A traced run with a learning controller and a decision ledger."""
    from repro.learn import DecisionLedger, LearnConfig, LearnController

    tracer = Tracer()
    ledger = DecisionLedger(tmp_path / "ledger")
    SamrRuntime(
        moving_blob_trace(domain_shape=(32, 32), num_regrids=4, max_levels=2),
        Cluster.paper_linux_cluster(4, seed=7, dynamic=True, horizon_s=40.0),
        ACEHeterogeneous(),
        config=RuntimeConfig(
            iterations=iterations, regrid_interval=7, sensing_interval=4
        ),
        learn=LearnController(LearnConfig(), ledger=ledger),
        tracer=tracer,
    ).run()
    return tracer, ledger


class TestDecisionPanel:
    def test_panel_renders_from_ledgered_run(self, tmp_path):
        tracer, ledger = learned_traced_run(tmp_path)
        assert len(ledger) > 0
        html = render_dashboard(tracer)
        assert "Decision provenance" in html
        assert "Repartition gate timeline" in html
        assert "Prediction calibration" in html
        assert "decision records" in html
        # The gate table draws payoff-vs-cost bars and oracle verdicts.
        assert "bar-cost" in html
        assert "hindsight oracle" in html

    def test_panel_numbers_match_reconcile(self, tmp_path):
        from repro.learn.audit import load_ledger_rows, reconcile

        tracer, _ = learned_traced_run(tmp_path)
        report = reconcile(load_ledger_rows(tmp_path / "ledger"))
        html = render_dashboard(tracer)
        gate = report["gate"]
        assert (
            f"{gate['decisions']} gate decisions "
            f"({gate['accepts']} accepts, {gate['skips']} skips)"
        ) in html
        cal = report["calibration"]
        if cal["coverage"] is not None:
            assert f"{cal['coverage']:.1%}" in html

    def test_panel_absent_without_learner(self):
        html = render_dashboard(traced_run())
        assert "Decision provenance" not in html

    def test_panel_survives_jsonl_round_trip(self, tmp_path):
        tracer, _ = learned_traced_run(tmp_path)
        path = tmp_path / "trace.jsonl"
        write_jsonl(tracer, path)
        html = render_dashboard(str(path))
        assert "Decision provenance" in html
        assert "Prediction calibration" in html
