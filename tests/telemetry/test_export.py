"""Tests for the trace/metrics exporters."""

from __future__ import annotations

import csv
import io
import json

import numpy as np

from repro.telemetry import (
    Tracer,
    aggregate_phases,
    chrome_trace_events,
    metrics_csv,
    metrics_summary,
    write_chrome_trace,
    write_jsonl,
    write_metrics_csv,
    write_metrics_json,
)


def sample_tracer() -> Tracer:
    tracer = Tracer()
    tracer.begin_run("sample")
    with tracer.span("run", partitioner="ACEHeterogeneous"):
        with tracer.span("sense") as span:
            span.set(capacities=np.array([0.25, 0.75]))
        tracer.add_span("compute", 1.0, 3.0, rank=0)
        tracer.add_span("compute", 1.0, 2.0, rank=1)
        tracer.event("split", count=int(np.int64(2)))
    tracer.metrics.counter("migration_bytes").inc(4096)
    tracer.metrics.gauge("node_utilization", node=0).set(0.9)
    tracer.metrics.histogram("iteration_seconds").observe(2.0)
    return tracer


class TestChromeTrace:
    def test_event_fields(self):
        events = chrome_trace_events(sample_tracer())
        complete = [e for e in events if e["ph"] == "X"]
        assert complete, "no complete events exported"
        for event in complete:
            assert {"name", "ph", "ts", "dur", "pid", "tid"} <= set(event)

    def test_one_tid_per_rank(self):
        events = chrome_trace_events(sample_tracer())
        by_name = {
            e["name"]: e["tid"] for e in events if e["ph"] == "X"
        }
        assert by_name["run"] == 0  # runtime control track
        ranks = {
            e["tid"] for e in events
            if e["ph"] == "X" and e["name"] == "compute"
        }
        assert ranks == {1, 2}  # rank k -> tid k+1

    def test_metadata_names_tracks(self):
        events = chrome_trace_events(sample_tracer())
        meta = [e for e in events if e["ph"] == "M"]
        names = {
            (e["name"], e["args"]["name"]) for e in meta
        }
        assert ("thread_name", "runtime") in names
        assert ("thread_name", "rank 0") in names
        assert any(n == "process_name" for n, _ in names)

    def test_sim_microsecond_timestamps(self):
        events = chrome_trace_events(sample_tracer())
        compute = [
            e for e in events if e["ph"] == "X" and e["name"] == "compute"
        ]
        assert {e["ts"] for e in compute} == {1e6}
        assert {e["dur"] for e in compute} == {2e6, 1e6}

    def test_file_is_valid_json(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(sample_tracer(), path)
        events = json.loads(path.read_text())
        assert isinstance(events, list) and events

    def test_numpy_attributes_serialized(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(sample_tracer(), path)
        events = json.loads(path.read_text())
        (sense,) = [e for e in events if e.get("name") == "sense"]
        assert sense["args"]["capacities"] == [0.25, 0.75]


class TestJsonl:
    def test_one_record_per_line(self, tmp_path):
        tracer = sample_tracer()
        path = tmp_path / "events.jsonl"
        write_jsonl(tracer, path)
        lines = path.read_text().splitlines()
        assert len(lines) == len(tracer.spans) + len(tracer.events)
        records = [json.loads(line) for line in lines]
        assert {r["type"] for r in records} == {"span", "event"}

    def test_ordered_by_sim_time(self, tmp_path):
        path = tmp_path / "events.jsonl"
        write_jsonl(sample_tracer(), path)
        spans = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        starts = [
            r["start_sim"] for r in spans if r["type"] == "span"
        ]
        assert starts == sorted(starts)


class TestAggregation:
    def test_phase_totals(self):
        phases = aggregate_phases(sample_tracer())
        assert phases["compute"]["count"] == 2
        assert phases["compute"]["sim_seconds"] == 3.0
        assert phases["sense"]["count"] == 1

    def test_metrics_summary_from_tracer(self):
        summary = metrics_summary(sample_tracer())
        assert summary["num_runs"] == 1
        assert summary["num_events"] == 1
        assert "compute" in summary["phases"]
        assert (
            summary["metrics"]["migration_bytes"]["series"][0]["value"]
            == 4096.0
        )

    def test_metrics_json_file(self, tmp_path):
        path = tmp_path / "metrics.json"
        write_metrics_json(sample_tracer(), path)
        data = json.loads(path.read_text())
        assert data["num_spans"] == 4


class TestCsv:
    def test_csv_round_trips(self, tmp_path):
        tracer = sample_tracer()
        path = tmp_path / "metrics.csv"
        write_metrics_csv(tracer.metrics, path)
        with open(path, newline="") as fh:
            rows = list(csv.DictReader(fh))
        names = {row["name"] for row in rows}
        assert names == {
            "migration_bytes", "node_utilization", "iteration_seconds",
        }

    def test_csv_text_has_union_header(self):
        text = metrics_csv(sample_tracer().metrics)
        header = text.splitlines()[0].split(",")
        assert "label_node" in header and "value" in header

    def test_label_values_with_commas_quotes_newlines_round_trip(self):
        from repro.telemetry import MetricsRegistry

        nasty = 'a,b "quoted"\nsecond line'
        registry = MetricsRegistry()
        registry.counter("c", tag=nasty).inc(2)
        text = metrics_csv(registry)
        (row,) = list(csv.DictReader(io.StringIO(text)))
        assert row["label_tag"] == nasty
        assert float(row["value"]) == 2.0

    def test_csv_file_round_trips_nasty_labels(self, tmp_path):
        from repro.telemetry import MetricsRegistry

        registry = MetricsRegistry()
        registry.gauge("g", path='x,"y"').set(1.5)
        registry.gauge("g", path="plain").set(2.5)
        path = tmp_path / "metrics.csv"
        write_metrics_csv(registry, path)
        with open(path, newline="") as fh:
            rows = {r["label_path"]: float(r["value"]) for r in csv.DictReader(fh)}
        assert rows == {'x,"y"': 1.5, "plain": 2.5}
