"""Integration tests: telemetry wired through the runtime layers.

Two properties matter most: an *enabled* tracer observes every phase of
the sense -> capacity -> partition -> migrate -> execute loop, and the
*default no-op* tracer changes nothing -- results stay bitwise identical
and the hot path pays (sub-microsecond) no-op calls only.
"""

from __future__ import annotations

import time

import numpy as np

from repro.cluster import Cluster
from repro.kernels.advection import AdvectionKernel
from repro.amr.hierarchy import GridHierarchy
from repro.kernels.workloads import moving_blob_trace
from repro.monitor import ResourceMonitor
from repro.partition import ACEHeterogeneous, LevelPartitioner
from repro.runtime import RuntimeConfig, SamrRuntime
from repro.runtime.distributed import DistributedAmrRun, DistributedRunConfig
from repro.telemetry import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    activate,
    chrome_trace_events,
)
from repro.util.geometry import Box


def small_workload():
    return moving_blob_trace(domain_shape=(32, 32), num_regrids=4, max_levels=2)


def make_runtime(tracer=None, iterations=10):
    return SamrRuntime(
        small_workload(),
        Cluster.paper_linux_cluster(4, seed=7),
        ACEHeterogeneous(),
        config=RuntimeConfig(iterations=iterations, sensing_interval=4),
        tracer=tracer,
    )


class TestSamrRuntimeInstrumentation:
    def test_phases_recorded(self):
        tracer = Tracer()
        make_runtime(tracer).run()
        names = {s.name for s in tracer.spans}
        assert {
            "run", "sense", "capacity", "probe", "partition", "migrate",
            "iteration", "compute", "sync",
        } <= names

    def test_spans_nested_under_run(self):
        tracer = Tracer()
        make_runtime(tracer).run()
        (run_span,) = tracer.spans_named("run")
        for sense in tracer.spans_named("sense"):
            assert sense.parent_id == run_span.span_id

    def test_simulated_durations_match_result(self):
        tracer = Tracer()
        result = make_runtime(tracer).run()
        (run_span,) = tracer.spans_named("run")
        assert run_span.sim_duration == result.total_seconds
        iteration_sim = sum(
            s.sim_duration for s in tracer.spans_named("iteration")
        )
        assert np.isclose(iteration_sim, sum(result.iteration_times))
        migrate_sim = sum(
            s.sim_duration for s in tracer.spans_named("migrate")
        )
        assert np.isclose(migrate_sim, result.migration_seconds)

    def test_metrics_track_result(self):
        tracer = Tracer()
        result = make_runtime(tracer).run()
        metrics = tracer.metrics
        assert metrics.counter("num_sensings").value == result.num_sensings
        assert metrics.counter("migration_bytes").value == sum(
            r.migration_bytes for r in result.regrids
        )
        assert (
            metrics.histogram("iteration_seconds").count == result.iterations
        )
        assert metrics.gauge("node_utilization", node=0).num_updates > 0

    def test_one_tid_per_rank_in_chrome_export(self):
        tracer = Tracer()
        runtime = make_runtime(tracer)
        runtime.run()
        events = chrome_trace_events(tracer)
        compute_tids = {
            e["tid"] for e in events
            if e["ph"] == "X" and e["name"] == "compute"
        }
        assert compute_tids == set(
            range(1, runtime.cluster.num_nodes + 1)
        )

    def test_ambient_tracer_via_activate(self):
        tracer = Tracer()
        with activate(tracer):
            make_runtime().run()  # no explicit tracer argument
        assert len(tracer.spans) > 0

    def test_cluster_and_monitor_events(self):
        tracer = Tracer()
        make_runtime(tracer).run()
        event_names = {e.name for e in tracer.events}
        assert "cluster" in event_names
        assert "load_generator" in event_names
        assert len(list(tracer.spans_named("probe"))) >= 1

    def test_nested_partitioners_share_tracer(self):
        tracer = Tracer()
        runtime = SamrRuntime(
            small_workload(),
            Cluster.homogeneous(2),
            LevelPartitioner(ACEHeterogeneous()),
            config=RuntimeConfig(iterations=4),
            tracer=tracer,
        )
        runtime.run()
        partitioners = {
            s.attributes["partitioner"]
            for s in tracer.spans_named("partition")
        }
        assert len(partitioners) >= 2  # outer levelwise + inner per-level


class TestDistributedInstrumentation:
    def test_phases_recorded(self):
        kernel = AdvectionKernel(
            velocity=(1.0, 0.5), pulse_center=(8.0, 8.0), pulse_width=2.0
        )
        hierarchy = GridHierarchy(Box((0, 0), (32, 32)), kernel, max_levels=2)
        tracer = Tracer()
        run = DistributedAmrRun(
            hierarchy,
            Cluster.homogeneous(2),
            ACEHeterogeneous(),
            config=DistributedRunConfig(steps=4, regrid_interval=2),
            tracer=tracer,
        )
        result = run.run()
        names = {s.name for s in tracer.spans}
        assert {
            "run", "sense", "partition", "migrate", "advance", "iteration",
        } <= names
        (run_span,) = tracer.spans_named("run")
        assert run_span.sim_duration == result.total_seconds
        # Real numerics executed under the advance spans: wall time > 0.
        assert sum(
            s.wall_duration for s in tracer.spans_named("advance")
        ) > 0.0


class TestNoopIsFree:
    def test_results_bitwise_identical_with_and_without_tracer(self):
        baseline = make_runtime(tracer=NULL_TRACER).run()
        traced = make_runtime(tracer=Tracer()).run()
        assert traced.total_seconds == baseline.total_seconds
        assert traced.iteration_times == baseline.iteration_times
        assert traced.compute_seconds == baseline.compute_seconds
        assert traced.comm_seconds == baseline.comm_seconds
        assert traced.migration_seconds == baseline.migration_seconds
        assert traced.sensing_seconds == baseline.sensing_seconds
        assert len(traced.regrids) == len(baseline.regrids)
        for a, b in zip(traced.regrids, baseline.regrids):
            assert np.array_equal(a.loads, b.loads)
            assert np.array_equal(a.imbalance, b.imbalance)
            assert a.migration_bytes == b.migration_bytes

    def test_default_tracer_is_the_shared_noop(self):
        runtime = make_runtime()
        assert runtime.tracer is NULL_TRACER
        assert ResourceMonitor(Cluster.homogeneous(2)).tracer is NULL_TRACER
        assert ACEHeterogeneous().tracer is NULL_TRACER

    def test_noop_span_overhead_is_negligible(self):
        # 100k no-op span enter/exits in well under a second: the shared
        # null span means instrumented hot paths cost one method call and
        # zero allocations per span when telemetry is off.
        calls = 100_000
        start = time.perf_counter()
        for _ in range(calls):
            with NULL_TRACER.span("compute"):
                pass
            NULL_TRACER.metrics.counter("c").inc()
        elapsed = time.perf_counter() - start
        assert elapsed < 2.0, f"no-op telemetry too slow: {elapsed:.3f}s"

    def test_noop_tracer_adds_no_measurable_runtime_cost(self):
        # Bound the disabled-telemetry tax directly: count every no-op
        # tracer call a run makes, price one call from a microbenchmark,
        # and require the product to be a negligible slice of the run's
        # wall time.  (A disabled run makes O(iterations) tracer calls,
        # not O(iterations * ranks) -- the per-rank emission is gated on
        # `tracer.enabled`.)
        class CountingNullTracer(NullTracer):
            def __init__(self):
                self.calls = 0

            def span(self, name, rank=None, **attrs):
                self.calls += 1
                return super().span(name, rank, **attrs)

        counting = CountingNullTracer()
        runtime = make_runtime(tracer=counting, iterations=20)
        start = time.perf_counter()
        runtime.run()
        run_seconds = time.perf_counter() - start

        reps = 50_000
        start = time.perf_counter()
        for _ in range(reps):
            with NULL_TRACER.span("x"):
                pass
        per_call = (time.perf_counter() - start) / reps

        assert counting.calls <= 10 * 20 + 50  # O(iterations) call sites
        overhead = counting.calls * per_call
        assert overhead < 0.05 * run_seconds + 0.005, (
            f"no-op telemetry overhead {overhead * 1e3:.3f} ms is not "
            f"negligible against a {run_seconds * 1e3:.0f} ms run"
        )
