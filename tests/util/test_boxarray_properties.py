"""Property suite: the columnar BoxArray is equivalent to per-box objects.

Every query the partitioners and the SFC ordering run over the columns must
agree exactly with the same query phrased over ``Box`` objects -- these
properties are the migration contract of the struct-of-arrays refactor.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.geometry import Box, BoxArray, BoxList
from repro.util.sfc import (
    hilbert_encode_many,
    morton_encode_many,
    sfc_keys_array,
    sfc_order_boxes,
    sfc_sort_order,
)

from tests.conftest import boxes


def box_lists(min_size: int = 0, max_size: int = 16):
    """Lists of boxes sharing one dimensionality (a BoxArray invariant)."""
    return st.integers(1, 3).flatmap(
        lambda d: st.lists(boxes(ndim=d), min_size=min_size, max_size=max_size)
    )


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(box_lists(min_size=1))
    def test_boxes_to_columns_to_boxes(self, bs):
        arr = BoxArray.from_boxes(bs)
        assert len(arr) == len(bs)
        assert arr.ndim == bs[0].ndim
        assert list(arr.to_boxes()) == bs
        for i, b in enumerate(bs):
            assert arr.box(i) == b
            assert arr.row(i) == (b.lower, b.upper, b.level)

    @settings(max_examples=60, deadline=None)
    @given(box_lists(min_size=1))
    def test_cell_and_level_queries_match_objects(self, bs):
        arr = BoxArray.from_boxes(bs)
        assert arr.num_cells().tolist() == [b.num_cells for b in bs]
        assert arr.total_cells() == sum(b.num_cells for b in bs)
        assert arr.unique_levels().tolist() == sorted({b.level for b in bs})
        by_level: dict[int, int] = {}
        for b in bs:
            by_level[b.level] = by_level.get(b.level, 0) + b.num_cells
        assert arr.cells_by_level() == by_level

    @settings(max_examples=60, deadline=None)
    @given(box_lists(min_size=1), st.data())
    def test_take_matches_object_indexing(self, bs, data):
        arr = BoxArray.from_boxes(bs)
        idx = data.draw(
            st.lists(st.integers(0, len(bs) - 1), max_size=2 * len(bs))
        )
        assert list(arr.take(np.array(idx, dtype=np.intp)).to_boxes()) == [
            bs[i] for i in idx
        ]

    @settings(max_examples=60, deadline=None)
    @given(box_lists(min_size=1), st.data())
    def test_concatenate_matches_list_concat(self, bs, data):
        cut = data.draw(st.integers(0, len(bs)))
        merged = BoxArray.concatenate(
            [BoxArray.from_boxes(bs[:cut]), BoxArray.from_boxes(bs[cut:])]
        )
        assert list(merged.to_boxes()) == bs

    @settings(max_examples=60, deadline=None)
    @given(box_lists(min_size=1))
    def test_columns_are_frozen(self, bs):
        arr = BoxArray.from_boxes(bs)
        for col in (arr.lower, arr.upper, arr.level):
            with pytest.raises(ValueError):
                col[...] = 0


class TestOrderingEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(box_lists(min_size=1))
    def test_corner_lexsort_matches_sorted_by_corner_key(self, bs):
        arr = BoxArray.from_boxes(bs)
        order = arr.corner_lexsort()
        assert [bs[i] for i in order.tolist()] == sorted(
            bs, key=Box.corner_key
        )

    @settings(max_examples=60, deadline=None)
    @given(box_lists(min_size=1), st.data())
    def test_corner_lexsort_with_primary_matches_object_sort(self, bs, data):
        primary = np.array(
            data.draw(
                st.lists(
                    st.integers(-5, 5),
                    min_size=len(bs),
                    max_size=len(bs),
                )
            ),
            dtype=np.int64,
        )
        arr = BoxArray.from_boxes(bs)
        order = arr.corner_lexsort(primary=primary)
        expected = sorted(
            range(len(bs)),
            key=lambda i: (primary[i], *bs[i].corner_key()),
        )
        assert order.tolist() == expected

    @settings(max_examples=40, deadline=None)
    @given(box_lists(min_size=1, max_size=12), st.sampled_from(["hilbert", "morton"]))
    def test_sfc_keys_match_per_box_promotion(self, bs, curve):
        """Array-sliced keys equal the per-box corner-promotion walk."""
        arr = BoxArray.from_boxes(bs)
        keys = sfc_keys_array(arr, curve=curve)
        max_level = max(b.level for b in bs)
        corners = np.array(
            [
                [c * 2 ** (max_level - b.level) for c in b.lower]
                for b in bs
            ],
            dtype=np.int64,
        )
        bits = max(int(corners.max(initial=0)), 1).bit_length()
        encode = hilbert_encode_many if curve == "hilbert" else morton_encode_many
        assert keys.tolist() == encode(corners, bits).tolist()
        order = sfc_sort_order(arr, curve=curve)
        expected = np.lexsort((arr.level, keys))
        assert order.tolist() == expected.tolist()
        assert list(sfc_order_boxes(BoxList(bs), curve=curve)) == [
            bs[i] for i in order.tolist()
        ]

    @settings(max_examples=60, deadline=None)
    @given(box_lists())
    def test_is_disjoint_matches_pairwise_objects(self, bs):
        expected = all(
            not a.intersects(b)
            for i, a in enumerate(bs)
            for b in bs[i + 1 :]
            if a.level == b.level
        )
        assert BoxList(bs).is_disjoint() == expected

    def test_is_disjoint_sweep_path_matches_objects(self, rng):
        """Exercise the >32-box sweep-line branch against the O(n^2) walk."""
        for trial in range(5):
            bs = []
            for _ in range(120):
                lo = tuple(int(x) for x in rng.integers(0, 200, size=2))
                side = tuple(int(x) for x in rng.integers(1, 6, size=2))
                lvl = int(rng.integers(0, 3))
                bs.append(
                    Box(lo, tuple(a + b for a, b in zip(lo, side)), lvl)
                )
            expected = all(
                not a.intersects(b)
                for i, a in enumerate(bs)
                for b in bs[i + 1 :]
                if a.level == b.level
            )
            assert BoxList(bs).is_disjoint() == expected


class TestBoxListViewContract:
    """Lazy (columnar) and materialized BoxLists are interchangeable."""

    @settings(max_examples=60, deadline=None)
    @given(box_lists(min_size=1))
    def test_lazy_view_equals_object_list(self, bs):
        eager = BoxList(bs)
        lazy = BoxList.from_array(BoxArray.from_boxes(bs))
        assert not lazy.is_materialized
        assert lazy == eager
        assert hash(lazy) == hash(eager)
        assert list(lazy) == bs
        assert [lazy[i] for i in range(len(lazy))] == bs
        assert lazy[1:] == eager[1:]
        assert lazy.total_cells == eager.total_cells
        assert lazy.levels == eager.levels
        assert lazy.cells_by_level() == eager.cells_by_level()
        for level in eager.levels:
            assert lazy.at_level(level) == eager.at_level(level)
        assert lazy.sorted_canonical() == eager.sorted_canonical()
        for reverse in (False, True):
            assert lazy.sorted_by_cells(reverse=reverse) == (
                eager.sorted_by_cells(reverse=reverse)
            )

    @settings(max_examples=40, deadline=None)
    @given(box_lists(min_size=1), st.data())
    def test_take_preserves_contents_both_paths(self, bs, data):
        idx = data.draw(st.lists(st.integers(0, len(bs) - 1), max_size=8))
        eager = BoxList(bs)
        lazy = BoxList.from_array(BoxArray.from_boxes(bs))
        assert eager.take(idx) == lazy.take(idx) == BoxList(bs[i] for i in idx)
