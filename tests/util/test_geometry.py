"""Unit and property tests for Box / BoxList geometry."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.errors import GeometryError
from repro.util.geometry import Box, BoxList
from tests.conftest import boxes


class TestBoxConstruction:
    def test_basic_shape_and_cells(self):
        b = Box((0, 0, 0), (4, 2, 8))
        assert b.shape == (4, 2, 8)
        assert b.num_cells == 64
        assert b.ndim == 3
        assert b.level == 0

    def test_negative_coordinates_allowed(self):
        b = Box((-4, -2), (0, 2))
        assert b.shape == (4, 4)

    def test_empty_box_rejected(self):
        with pytest.raises(GeometryError):
            Box((0, 0), (0, 4))

    def test_inverted_box_rejected(self):
        with pytest.raises(GeometryError):
            Box((5,), (2,))

    def test_dim_mismatch_rejected(self):
        with pytest.raises(GeometryError):
            Box((0, 0), (4,))

    def test_zero_dim_rejected(self):
        with pytest.raises(GeometryError):
            Box((), ())

    def test_negative_level_rejected(self):
        with pytest.raises(GeometryError):
            Box((0,), (1,), level=-1)

    def test_non_integral_coordinate_rejected(self):
        with pytest.raises(GeometryError):
            Box((0.5, 0), (4, 4))

    def test_numpy_ints_coerced(self):
        import numpy as np

        b = Box(np.array([0, 0]), np.array([4, 4]))
        assert b.lower == (0, 0)
        assert isinstance(b.lower[0], int)

    def test_immutability(self):
        b = Box((0,), (4,))
        with pytest.raises(AttributeError):
            b.level = 3  # type: ignore[misc]

    def test_equality_and_hash(self):
        a = Box((0, 0), (4, 4), 1)
        b = Box((0, 0), (4, 4), 1)
        c = Box((0, 0), (4, 4), 2)
        assert a == b and hash(a) == hash(b)
        assert a != c


class TestBoxMeasures:
    def test_longest_axis_tie_breaks_low(self):
        assert Box((0, 0), (4, 4)).longest_axis == 0
        assert Box((0, 0), (2, 4)).longest_axis == 1

    def test_aspect_ratio(self):
        assert Box((0, 0), (8, 2)).aspect_ratio == 4.0
        assert Box((0, 0, 0), (4, 4, 4)).aspect_ratio == 1.0

    def test_contains_point(self):
        b = Box((0, 0), (4, 4))
        assert (0, 0) in b
        assert (3, 3) in b
        assert (4, 0) not in b
        assert (0,) not in b  # wrong arity


class TestBoxSetOps:
    def test_intersection_overlap(self):
        a = Box((0, 0), (4, 4))
        b = Box((2, 2), (6, 6))
        i = a.intersection(b)
        assert i == Box((2, 2), (4, 4))

    def test_intersection_disjoint(self):
        a = Box((0, 0), (4, 4))
        b = Box((4, 0), (8, 4))  # touching faces share no cell
        assert a.intersection(b) is None
        assert not a.intersects(b)

    def test_level_mismatch_raises(self):
        a = Box((0,), (4,), 0)
        b = Box((0,), (4,), 1)
        with pytest.raises(GeometryError):
            a.intersection(b)

    def test_contains_box(self):
        outer = Box((0, 0), (10, 10))
        inner = Box((2, 2), (5, 5))
        assert outer.contains_box(inner)
        assert not inner.contains_box(outer)

    def test_bounding_union(self):
        a = Box((0, 0), (2, 2))
        b = Box((5, 5), (6, 7))
        u = a.bounding_union(b)
        assert u == Box((0, 0), (6, 7))

    def test_difference_disjoint_returns_self(self):
        a = Box((0, 0), (2, 2))
        b = Box((10, 10), (12, 12))
        d = a.difference(b)
        assert len(d) == 1 and d[0] == a

    def test_difference_covers_exactly(self):
        a = Box((0, 0), (6, 6))
        b = Box((2, 2), (4, 4))
        d = a.difference(b)
        assert d.is_disjoint()
        assert d.total_cells == a.num_cells - b.num_cells
        for piece in d:
            assert a.contains_box(piece)
            assert piece.intersection(b) is None

    def test_difference_full_overlap_is_empty(self):
        a = Box((1, 1), (3, 3))
        cover = Box((0, 0), (4, 4))
        assert len(a.difference(cover)) == 0


class TestBoxSplit:
    def test_split_partitions_cells(self):
        b = Box((0, 0), (10, 4))
        lo, hi = b.split(0, 3)
        assert lo.num_cells + hi.num_cells == b.num_cells
        assert lo.intersection(hi) is None
        assert lo.bounding_union(hi) == b

    def test_split_bad_axis(self):
        with pytest.raises(GeometryError):
            Box((0,), (4,)).split(1, 2)

    def test_split_at_boundary_rejected(self):
        b = Box((0,), (4,))
        with pytest.raises(GeometryError):
            b.split(0, 0)
        with pytest.raises(GeometryError):
            b.split(0, 4)

    def test_halve_default_longest_axis(self):
        b = Box((0, 0), (4, 16))
        lo, hi = b.halve()
        assert lo.shape == (4, 8) and hi.shape == (4, 8)

    def test_halve_unit_extent_rejected(self):
        with pytest.raises(GeometryError):
            Box((0, 0), (1, 8)).halve(axis=0)


class TestBoxLevelOps:
    def test_refine_roundtrip(self):
        b = Box((1, 2), (3, 5), level=0)
        r = b.refine(2)
        assert r == Box((2, 4), (6, 10), level=1)
        assert r.coarsen(2) == b

    def test_coarsen_rounds_outward(self):
        b = Box((1,), (3,), level=1)
        c = b.coarsen(2)
        assert c == Box((0,), (2,), level=0)

    def test_coarsen_level0_rejected(self):
        with pytest.raises(GeometryError):
            Box((0,), (2,), level=0).coarsen()

    def test_refine_factor_below_two_rejected(self):
        with pytest.raises(GeometryError):
            Box((0,), (2,)).refine(1)

    def test_grow_and_shrink(self):
        b = Box((2, 2), (4, 4))
        g = b.grow(1)
        assert g == Box((1, 1), (5, 5))
        assert g.grow(-1) == b

    def test_grow_to_empty_rejected(self):
        with pytest.raises(GeometryError):
            Box((0, 0), (2, 2)).grow(-1)

    def test_translate(self):
        b = Box((0, 0), (2, 2)).translate((5, -1))
        assert b == Box((5, -1), (7, 1))

    def test_slices_local_and_global(self):
        b = Box((2, 4), (5, 6))
        assert b.slices() == (slice(0, 3), slice(0, 2))
        assert b.slices(origin=(0, 0)) == (slice(2, 5), slice(4, 6))

    def test_cell_centers_count(self):
        b = Box((0, 0), (3, 2))
        assert len(list(b.cell_centers())) == 6


class TestBoxList:
    def test_total_cells_and_levels(self):
        bl = BoxList([Box((0,), (4,), 0), Box((0,), (8,), 1)])
        assert bl.total_cells == 12
        assert bl.levels == (0, 1)
        assert bl.at_level(1).total_cells == 8

    def test_empty(self):
        bl = BoxList()
        assert len(bl) == 0
        assert bl.total_cells == 0
        assert bl.is_disjoint()
        with pytest.raises(GeometryError):
            bl.bounding_box()

    def test_mixed_ndim_rejected(self):
        with pytest.raises(GeometryError):
            BoxList([Box((0,), (4,)), Box((0, 0), (4, 4))])

    def test_non_box_rejected(self):
        with pytest.raises(GeometryError):
            BoxList(["not a box"])  # type: ignore[list-item]

    def test_sorted_by_cells(self):
        big = Box((0, 0), (8, 8))
        small = Box((20, 20), (21, 21))
        bl = BoxList([big, small]).sorted_by_cells()
        assert bl[0] == small and bl[1] == big
        desc = BoxList([small, big]).sorted_by_cells(reverse=True)
        assert desc[0] == big

    def test_is_disjoint_cross_level_ok(self):
        # Same footprint on different levels is fine.
        bl = BoxList([Box((0,), (4,), 0), Box((0,), (4,), 1)])
        assert bl.is_disjoint()

    def test_is_disjoint_detects_overlap(self):
        bl = BoxList([Box((0,), (4,)), Box((3,), (6,))])
        assert not bl.is_disjoint()

    def test_append_extend_immutably(self):
        bl = BoxList([Box((0,), (1,))])
        bl2 = bl.append(Box((2,), (3,)))
        assert len(bl) == 1 and len(bl2) == 2
        bl3 = bl.extend([Box((4,), (5,)), Box((6,), (7,))])
        assert len(bl3) == 3

    def test_slicing_returns_boxlist(self):
        bl = BoxList([Box((i,), (i + 1,)) for i in range(5)])
        assert isinstance(bl[1:3], BoxList)
        assert len(bl[1:3]) == 2


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------
@settings(max_examples=200)
@given(boxes())
def test_halve_conserves_cells(b: Box):
    if b.longest_side < 2:
        return
    lo, hi = b.halve()
    assert lo.num_cells + hi.num_cells == b.num_cells
    assert lo.intersection(hi) is None
    assert b.contains_box(lo) and b.contains_box(hi)


@settings(max_examples=200)
@given(boxes(), st.data())
def test_split_conserves_cells_any_position(b: Box, data):
    axis = data.draw(st.integers(0, b.ndim - 1))
    if b.shape[axis] < 2:
        return
    pos = data.draw(st.integers(b.lower[axis] + 1, b.upper[axis] - 1))
    lo, hi = b.split(axis, pos)
    assert lo.num_cells + hi.num_cells == b.num_cells
    assert lo.bounding_union(hi) == b


@settings(max_examples=200)
@given(boxes(ndim=2), boxes(ndim=2))
def test_intersection_symmetric_and_contained(a: Box, b: Box):
    b = Box(b.lower, b.upper, a.level)  # force level compatibility
    iab = a.intersection(b)
    iba = b.intersection(a)
    assert iab == iba
    if iab is not None:
        assert a.contains_box(iab) and b.contains_box(iab)
        assert iab.num_cells <= min(a.num_cells, b.num_cells)


@settings(max_examples=200)
@given(boxes(ndim=3), boxes(ndim=3))
def test_difference_partition_property(a: Box, b: Box):
    b = Box(b.lower, b.upper, a.level)
    diff = a.difference(b)
    inter = a.intersection(b)
    inter_cells = inter.num_cells if inter else 0
    assert diff.total_cells == a.num_cells - inter_cells
    assert diff.is_disjoint()
    for piece in diff:
        assert a.contains_box(piece)
        if inter:
            assert piece.intersection(inter) is None


@settings(max_examples=200)
@given(boxes(), st.integers(2, 4))
def test_refine_coarsen_roundtrip(b: Box, factor: int):
    assert b.refine(factor).coarsen(factor) == b
    assert b.refine(factor).num_cells == b.num_cells * factor**b.ndim


@settings(max_examples=100)
@given(boxes(), st.integers(2, 4))
def test_coarsen_refine_covers(b: Box, factor: int):
    """Coarsening then refining yields a (possibly larger) cover of b."""
    if b.level == 0:
        return
    cover = b.coarsen(factor).refine(factor)
    cover = Box(cover.lower, cover.upper, b.level)
    assert cover.contains_box(b)
