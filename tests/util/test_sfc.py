"""Tests for space-filling curves (Morton + Hilbert)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.errors import GeometryError
from repro.util.geometry import Box
from repro.util.sfc import (
    hilbert_decode,
    hilbert_encode,
    hilbert_encode_many,
    morton_decode,
    morton_encode,
    morton_encode_many,
    sfc_order_boxes,
)


class TestMorton:
    def test_known_2d_values(self):
        # Z-order in 2D: (0,0)=0 (1,0)=1 (0,1)=2 (1,1)=3
        assert morton_encode((0, 0), 1) == 0
        assert morton_encode((1, 0), 1) == 1
        assert morton_encode((0, 1), 1) == 2
        assert morton_encode((1, 1), 1) == 3

    def test_roundtrip_3d(self):
        for coords in [(0, 0, 0), (5, 3, 7), (7, 7, 7), (1, 0, 6)]:
            key = morton_encode(coords, 3)
            assert morton_decode(key, 3, 3) == coords

    def test_out_of_range_rejected(self):
        with pytest.raises(GeometryError):
            morton_encode((8,), 3)
        with pytest.raises(GeometryError):
            morton_encode((-1,), 3)
        with pytest.raises(GeometryError):
            morton_decode(-1, 2, 3)

    def test_bits_bounds(self):
        with pytest.raises(GeometryError):
            morton_encode((0,), 0)
        with pytest.raises(GeometryError):
            morton_encode((0,), 63)

    def test_vectorized_matches_scalar(self):
        rng = np.random.default_rng(0)
        coords = rng.integers(0, 16, size=(50, 3))
        keys = morton_encode_many(coords, 4)
        for row, key in zip(coords, keys):
            assert morton_encode(tuple(row), 4) == key

    def test_vectorized_capacity_guard(self):
        with pytest.raises(GeometryError):
            morton_encode_many(np.zeros((1, 3), dtype=int), 21)

    def test_vectorized_shape_guard(self):
        with pytest.raises(GeometryError):
            morton_encode_many(np.zeros(5, dtype=int), 4)


class TestHilbert:
    def test_known_2d_order_bits1(self):
        # First-order 2D Hilbert visits (0,0),(0,1),(1,1),(1,0).
        order = sorted(
            [(0, 0), (0, 1), (1, 0), (1, 1)],
            key=lambda c: hilbert_encode(c, 1),
        )
        assert order == [(0, 0), (0, 1), (1, 1), (1, 0)]

    def test_bijective_2d(self):
        bits = 3
        seen = set()
        for x in range(8):
            for y in range(8):
                k = hilbert_encode((x, y), bits)
                assert 0 <= k < 64
                assert hilbert_decode(k, 2, bits) == (x, y)
                seen.add(k)
        assert len(seen) == 64

    def test_bijective_3d(self):
        bits = 2
        seen = set()
        for x in range(4):
            for y in range(4):
                for z in range(4):
                    k = hilbert_encode((x, y, z), bits)
                    assert hilbert_decode(k, 3, bits) == (x, y, z)
                    seen.add(k)
        assert len(seen) == 64

    def test_adjacency_2d(self):
        """Consecutive Hilbert indices are unit-distance neighbours."""
        bits = 4
        pts = [hilbert_decode(k, 2, bits) for k in range(1 << (2 * bits))]
        for a, b in zip(pts, pts[1:]):
            dist = abs(a[0] - b[0]) + abs(a[1] - b[1])
            assert dist == 1

    def test_adjacency_3d(self):
        bits = 2
        pts = [hilbert_decode(k, 3, bits) for k in range(1 << (3 * bits))]
        for a, b in zip(pts, pts[1:]):
            dist = sum(abs(x - y) for x, y in zip(a, b))
            assert dist == 1

    def test_1d_identity(self):
        assert hilbert_encode((5,), 4) == 5
        assert hilbert_decode(5, 1, 4) == (5,)

    def test_decode_out_of_range(self):
        with pytest.raises(GeometryError):
            hilbert_decode(64, 2, 3)

    def test_vectorized_matches_scalar(self):
        rng = np.random.default_rng(1)
        coords = rng.integers(0, 32, size=(100, 2))
        keys = hilbert_encode_many(coords, 5)
        for row, key in zip(coords, keys):
            assert hilbert_encode(tuple(row), 5) == key

    def test_vectorized_3d_matches_scalar(self):
        rng = np.random.default_rng(2)
        coords = rng.integers(0, 8, size=(60, 3))
        keys = hilbert_encode_many(coords, 3)
        for row, key in zip(coords, keys):
            assert hilbert_encode(tuple(row), 3) == key


@settings(max_examples=150)
@given(
    st.integers(1, 3),
    st.integers(1, 6),
    st.data(),
)
def test_hilbert_roundtrip_property(ndim, bits, data):
    coords = tuple(
        data.draw(st.integers(0, (1 << bits) - 1)) for _ in range(ndim)
    )
    key = hilbert_encode(coords, bits)
    assert hilbert_decode(key, ndim, bits) == coords


@settings(max_examples=150)
@given(st.integers(1, 3), st.integers(1, 6), st.data())
def test_morton_roundtrip_property(ndim, bits, data):
    coords = tuple(
        data.draw(st.integers(0, (1 << bits) - 1)) for _ in range(ndim)
    )
    key = morton_encode(coords, bits)
    assert morton_decode(key, ndim, bits) == coords


class TestSfcOrderBoxes:
    def test_empty(self):
        assert len(sfc_order_boxes([])) == 0

    def test_preserves_membership(self):
        boxes = [
            Box((0, 0), (4, 4), 0),
            Box((8, 8), (12, 12), 0),
            Box((0, 8), (4, 12), 0),
            Box((8, 0), (12, 4), 0),
        ]
        out = sfc_order_boxes(boxes)
        assert sorted(b.corner_key() for b in out) == sorted(
            b.corner_key() for b in boxes
        )

    def test_hilbert_order_is_locality_preserving(self):
        """Adjacent quadrant boxes must be adjacent on the curve."""
        boxes = [
            Box((0, 0), (4, 4), 0),
            Box((4, 0), (8, 4), 0),
            Box((0, 4), (4, 8), 0),
            Box((4, 4), (8, 8), 0),
        ]
        out = list(sfc_order_boxes(boxes, curve="hilbert"))
        lowers = [b.lower for b in out]
        assert lowers == [(0, 0), (0, 4), (4, 4), (4, 0)]

    def test_multi_level_interleaving(self):
        coarse = Box((0, 0), (8, 8), 0)
        fine = Box((0, 0), (8, 8), 1)  # overlays lower-left quadrant
        out = list(sfc_order_boxes([fine, coarse]))
        # Same promoted corner: coarse first (lower level tie-break).
        assert out[0].level == 0 and out[1].level == 1

    def test_morton_curve_option(self):
        boxes = [Box((2, 2), (3, 3)), Box((0, 0), (1, 1))]
        out = list(sfc_order_boxes(boxes, curve="morton"))
        assert out[0].lower == (0, 0)

    def test_unknown_curve_rejected(self):
        with pytest.raises(GeometryError):
            sfc_order_boxes([Box((0,), (1,))], curve="peano")

    def test_deterministic(self):
        rng = np.random.default_rng(3)
        boxes = [
            Box(tuple(lo), tuple(lo + 1), 0)
            for lo in rng.integers(0, 50, size=(30, 2))
        ]
        a = list(sfc_order_boxes(boxes))
        b = list(sfc_order_boxes(boxes))
        assert a == b
