"""Tests for extendible hashing."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.errors import HDDAError
from repro.util.hashing import ExtendibleHashTable


class TestBasicOps:
    def test_put_get(self):
        t = ExtendibleHashTable(bucket_capacity=2)
        t.put(1, "a")
        t.put(2, "b")
        assert t.get(1) == "a"
        assert t[2] == "b"
        assert t.get(99) is None
        assert t.get(99, "dflt") == "dflt"

    def test_len_and_contains(self):
        t = ExtendibleHashTable()
        for k in range(10):
            t[k] = k * k
        assert len(t) == 10
        assert 5 in t and 10 not in t

    def test_overwrite_does_not_grow(self):
        t = ExtendibleHashTable()
        t.put(7, "x")
        t.put(7, "y")
        assert len(t) == 1
        assert t[7] == "y"

    def test_missing_getitem_raises(self):
        t = ExtendibleHashTable()
        with pytest.raises(KeyError):
            t[3]

    def test_remove(self):
        t = ExtendibleHashTable()
        t[4] = "v"
        assert t.remove(4) == "v"
        assert len(t) == 0
        with pytest.raises(KeyError):
            t.remove(4)

    def test_negative_key_rejected(self):
        t = ExtendibleHashTable()
        with pytest.raises(HDDAError):
            t.put(-1, "x")
        with pytest.raises(HDDAError):
            t.get(-5)

    def test_bad_capacity_rejected(self):
        with pytest.raises(HDDAError):
            ExtendibleHashTable(bucket_capacity=0)


class TestGrowth:
    def test_directory_doubles_under_load(self):
        t = ExtendibleHashTable(bucket_capacity=2)
        for k in range(64):
            t[k] = k
        s = t.stats()
        assert s["global_depth"] > 1
        assert s["num_items"] == 64
        t.check_invariants()
        for k in range(64):
            assert t[k] == k

    def test_sequential_and_sparse_keys(self):
        t = ExtendibleHashTable(bucket_capacity=4)
        keys = [i * 1_000_003 for i in range(200)]
        for k in keys:
            t[k] = -k
        t.check_invariants()
        assert all(t[k] == -k for k in keys)

    def test_iteration_covers_all(self):
        t = ExtendibleHashTable(bucket_capacity=3)
        for k in range(40):
            t[k] = str(k)
        assert sorted(t.keys()) == list(range(40))
        assert dict(t.items()) == {k: str(k) for k in range(40)}

    def test_max_depth_guard(self):
        # Two keys whose hashes agree in the single discriminating bit force
        # a doubling beyond max_global_depth=1.
        from repro.util.hashing import mix64

        same_bit = [k for k in range(64) if mix64(k) & 1 == 0][:2]
        t = ExtendibleHashTable(bucket_capacity=1, max_global_depth=1)
        with pytest.raises(HDDAError):
            for k in same_bit:
                t.put(k, k)

    def test_mix64_is_deterministic_and_64bit(self):
        from repro.util.hashing import mix64

        assert mix64(12345) == mix64(12345)
        assert 0 <= mix64(0) < 2**64
        # Low-bit-identical keys should land in different slots with high
        # probability once mixed.
        slots = {mix64(i << 40) & 0xFF for i in range(64)}
        assert len(slots) > 32

    def test_invariants_after_removals(self):
        t = ExtendibleHashTable(bucket_capacity=2)
        for k in range(32):
            t[k] = k
        for k in range(0, 32, 2):
            t.remove(k)
        t.check_invariants()
        assert len(t) == 16
        assert sorted(t.keys()) == list(range(1, 32, 2))


@settings(max_examples=100)
@given(
    st.lists(
        st.tuples(st.integers(0, 2**40), st.integers()),
        max_size=200,
    ),
    st.integers(1, 8),
)
def test_table_matches_dict_semantics(pairs, capacity):
    """Extendible hash table behaves exactly like a dict under put/overwrite."""
    t = ExtendibleHashTable(bucket_capacity=capacity)
    ref: dict[int, int] = {}
    for k, v in pairs:
        t.put(k, v)
        ref[k] = v
    assert len(t) == len(ref)
    assert dict(t.items()) == ref
    t.check_invariants()


@settings(max_examples=50)
@given(st.sets(st.integers(0, 2**30), max_size=120), st.integers(1, 4))
def test_insert_then_remove_all(keys, capacity):
    t = ExtendibleHashTable(bucket_capacity=capacity)
    for k in keys:
        t[k] = k
    for k in keys:
        assert t.remove(k) == k
    assert len(t) == 0
    t.check_invariants()
