"""Cross-partitioner properties of the vectorized work-model path.

Every partitioner must (a) conserve total work, (b) cover its input
exactly, and (c) produce *identical* assignments whether it is handed a
:class:`WorkModel`, the equivalent legacy per-box callable, or nothing at
all -- the vectorization is a pure performance change.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.workloads import paper_rm3d_trace
from repro.partition import (
    ACEComposite,
    ACEHeterogeneous,
    GraphPartitioner,
    GreedyLPT,
    LevelPartitioner,
    SFCHybrid,
)
from repro.partition.base import default_work
from repro.partition.workmodel import WorkModel
from repro.util.geometry import BoxList

PAPER_CAPS = np.array([0.16, 0.19, 0.31, 0.34])


def epoch(i: int = 3) -> BoxList:
    return paper_rm3d_trace(num_regrids=8).epoch(i)


def make_partitioners():
    return [
        ACEHeterogeneous(),
        ACEComposite(),
        GreedyLPT(),
        SFCHybrid(),
        GraphPartitioner(),
        LevelPartitioner(ACEHeterogeneous()),
        LevelPartitioner(ACEComposite()),
    ]


@pytest.mark.parametrize(
    "p", make_partitioners(), ids=lambda p: p.name
)
class TestCrossPartitionerProperties:
    def test_conserves_total_work(self, p):
        model = WorkModel()
        r = p.partition(epoch(), PAPER_CAPS, model)
        # Splitting preserves cells, so realized work sums to the input's.
        assert r.loads().sum() == pytest.approx(
            model.total(epoch()), rel=1e-12
        )

    def test_covers_input_exactly(self, p):
        r = p.partition(epoch(), PAPER_CAPS, WorkModel())
        r.validate_covers(epoch())

    def test_assignment_identical_model_vs_callable(self, p):
        with_model = p.partition(epoch(), PAPER_CAPS, WorkModel())
        with_callable = p.partition(epoch(), PAPER_CAPS, default_work)
        with_default = p.partition(epoch(), PAPER_CAPS)
        assert with_model.assignment == with_callable.assignment
        assert with_model.assignment == with_default.assignment

    def test_loads_identical_model_vs_callable(self, p):
        with_model = p.partition(epoch(), PAPER_CAPS, WorkModel())
        with_callable = p.partition(epoch(), PAPER_CAPS, default_work)
        # Same loads whether derived from the stamped model's cached
        # vector or recomputed through the legacy callable.
        np.testing.assert_array_equal(
            with_model.loads(), with_callable.loads(default_work)
        )

    def test_work_vector_aligned_with_assignment(self, p):
        r = p.partition(epoch(), PAPER_CAPS, WorkModel())
        expected = [default_work(b) for b, _ in r.assignment]
        assert r.work_vector().tolist() == expected

    def test_loads_match_legacy_per_box_loop(self, p):
        r = p.partition(epoch(), PAPER_CAPS, WorkModel())
        loop = np.zeros(r.num_ranks)
        for box, rank in r.assignment:
            loop[rank] += default_work(box)
        np.testing.assert_array_equal(r.loads(), loop)


@settings(max_examples=25, deadline=None)
@given(
    caps=st.lists(
        st.floats(min_value=0.05, max_value=1.0), min_size=2, max_size=6
    ),
    epoch_idx=st.integers(min_value=0, max_value=5),
)
def test_heterogeneous_conservation_any_capacities(caps, epoch_idx):
    boxes = paper_rm3d_trace(num_regrids=6).epoch(epoch_idx)
    model = WorkModel()
    r = ACEHeterogeneous().partition(boxes, caps, model)
    assert r.loads().sum() == pytest.approx(model.total(boxes), rel=1e-12)
    r.validate_covers(boxes)
