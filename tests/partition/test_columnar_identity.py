"""Golden byte-identity: columnar partitioners vs the object-path walks.

Each partitioner now consumes ``(work vector, SFC order, level)`` array
slices and emits its assignment through ``PartitionResult.set_columns``.
These tests pin the columnar implementations against verbatim copies of
the per-box object algorithms they replaced: identical ``(box, rank)``
pairs in identical order, identical float loads, identical split counts.
The reference code is intentionally the *old* implementation, not a
re-derivation -- any drift in ordering, tie-breaking or float accumulation
fails here before it can silently change an experiment.
"""

from __future__ import annotations

import heapq

import networkx as nx
import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.kernels.workloads import moving_blob_trace
from repro.monitor.service import MonitorSnapshot
from repro.partition.base import PartitionResult, Partitioner, as_work_model
from repro.partition.capacity import CapacityCalculator
from repro.partition.composite import ACEComposite, assign_curve_spans
from repro.partition.graphpart import GraphPartitioner, _grow_part, build_box_graph
from repro.partition.greedy import GreedyLPT
from repro.partition.heterogeneous import ACEHeterogeneous
from repro.partition.hybrid import SFCHybrid
from repro.partition.levelwise import LevelPartitioner
from repro.partition.metrics import (
    redistribution_volume,
    redistribution_volume_columns,
)
from repro.partition.splitting import SplitConstraints, split_to_target
from repro.util.geometry import Box, BoxList
from repro.util.sfc import sfc_order_boxes


# ---------------------------------------------------------------------------
# Reference implementations: the pre-columnar object-path algorithms.
# ---------------------------------------------------------------------------
def reference_greedy(boxes: BoxList, capacities, model) -> PartitionResult:
    caps = Partitioner._check_inputs(boxes, capacities)
    works = model.vector(boxes).tolist()
    targets = caps * model.total(boxes)
    result = PartitionResult(targets=targets, work_model=model)
    num_ranks = len(caps)
    loads = [0.0] * num_ranks
    safe_caps = [c if c > 0 else 1e-12 for c in caps.tolist()]
    rank_range = range(num_ranks)
    order = sorted(
        range(len(boxes)),
        key=lambda i: (-works[i], boxes[i].corner_key()),
    )
    for i in order:
        w = works[i]
        rank = min(rank_range, key=lambda r: (loads[r] + w) / safe_caps[r])
        result.assignment.append((boxes[i], rank))
        loads[rank] += w
    return result


def reference_heterogeneous(
    boxes: BoxList, capacities, model, constraints, fill_tolerance=0.05
) -> PartitionResult:
    caps = Partitioner._check_inputs(boxes, capacities)
    works = model.vector(boxes).tolist()
    targets = caps * model.total(boxes)
    result = PartitionResult(targets=targets, work_model=model)
    queue: list[tuple[float, int, Box]] = []
    for seq, i in enumerate(
        sorted(
            range(len(boxes)),
            key=lambda j: (works[j], boxes[j].corner_key()),
        )
    ):
        queue.append((works[i], seq, boxes[i]))
    heapq.heapify(queue)
    seq = len(queue)
    rank_order = np.argsort(caps, kind="stable")
    for idx, rank in enumerate(rank_order):
        rank = int(rank)
        remaining = targets[rank]
        last_rank = idx == len(rank_order) - 1
        while queue:
            if last_rank:
                _, _, box = heapq.heappop(queue)
                result.assignment.append((box, rank))
                continue
            w, _, box = queue[0]
            if w <= remaining + fill_tolerance * w:
                heapq.heappop(queue)
                result.assignment.append((box, rank))
                remaining -= w
                continue
            if remaining <= 0:
                break
            split = split_to_target(box, remaining, model, constraints)
            if split is None:
                break
            heapq.heappop(queue)
            piece, rest = split
            result.num_splits += len(rest)
            result.assignment.append((piece, rank))
            remaining -= model.work(piece)
            for r in rest:
                heapq.heappush(queue, (model.work(r), seq, r))
                seq += 1
            if remaining <= 0:
                break
    return result


def reference_curve(
    boxes: BoxList, capacities, model, constraints, equal_targets: bool
) -> PartitionResult:
    """Object-path ACEComposite (equal targets) / SFCHybrid (capacity)."""
    caps = Partitioner._check_inputs(boxes, capacities)
    total = model.total(boxes)
    if equal_targets:
        targets = np.full(len(caps), total / len(caps))
    else:
        targets = caps * total
    result = PartitionResult(targets=targets, work_model=model)
    ordered = list(sfc_order_boxes(boxes, curve="hilbert"))
    assign_curve_spans(ordered, targets, model, constraints, result)
    return result


def reference_build_box_graph(
    boxes: BoxList, model, ghost_width=1, refine_factor=2
) -> nx.Graph:
    g = nx.Graph()
    box_list = list(boxes)
    works = model.vector(boxes).tolist()
    for i, b in enumerate(box_list):
        g.add_node(i, box=b, work=works[i])
    by_level: dict[int, list[tuple[int, Box]]] = {}
    for i, b in enumerate(box_list):
        by_level.setdefault(b.level, []).append((i, b))

    def bump(i: int, j: int, cells: int) -> None:
        if cells <= 0 or i == j:
            return
        if g.has_edge(i, j):
            g[i][j]["volume"] += cells
        else:
            g.add_edge(i, j, volume=cells)

    for level, members in by_level.items():
        for ai in range(len(members)):
            i, a = members[ai]
            grown = a.grow(ghost_width) if ghost_width else a
            for bj in range(ai + 1, len(members)):
                j, b = members[bj]
                inter = grown.intersection(b)
                if inter is not None:
                    bump(i, j, 2 * inter.num_cells)
        parents = by_level.get(level - 1, ()) if level > 0 else ()
        if not parents:
            continue
        for i, fine in members:
            footprint = (
                fine.grow(ghost_width) if ghost_width else fine
            ).coarsen(refine_factor)
            for j, parent in parents:
                inter = parent.intersection(footprint)
                if inter is not None:
                    bump(i, j, inter.num_cells)
    return g


def reference_graph_partition(boxes: BoxList, capacities, model) -> PartitionResult:
    caps = Partitioner._check_inputs(boxes, capacities)
    targets = caps * model.total(boxes)
    result = PartitionResult(targets=targets, work_model=model)
    g = reference_build_box_graph(boxes, model)
    assignment: dict[int, int] = {}

    def bisect(nodes: list[int], ranks: list[int]) -> None:
        if not nodes:
            return
        if len(ranks) == 1:
            for n in nodes:
                assignment[n] = ranks[0]
            return
        half = len(ranks) // 2
        left_ranks, right_ranks = ranks[:half], ranks[half:]
        cap_left = float(sum(caps[r] for r in left_ranks))
        cap_right = float(sum(caps[r] for r in right_ranks))
        work_here = sum(g.nodes[n]["work"] for n in nodes)
        share = cap_left / max(cap_left + cap_right, 1e-300)
        left, right = _grow_part(g, nodes, share * work_here)
        bisect(left, left_ranks)
        bisect(right, right_ranks)

    rank_order = sorted(range(len(caps)), key=lambda r: -caps[r])
    bisect(sorted(g.nodes), rank_order)
    for n, rank in sorted(assignment.items()):
        result.assignment.append((g.nodes[n]["box"], rank))
    return result


def reference_levelwise(boxes: BoxList, capacities, model) -> PartitionResult:
    caps = Partitioner._check_inputs(boxes, capacities)
    targets = caps * model.total(boxes)
    result = PartitionResult(targets=targets, work_model=model)
    for level in boxes.levels:
        sub = reference_greedy(boxes.at_level(level), caps, model)
        result.assignment.extend(sub.assignment)
        result.num_splits += sub.num_splits
    return result


def reference_redistribution(prev, new, bytes_per_cell=8.0):
    volumes: dict[tuple[int, int], float] = {}
    prev_by_level: dict[int, list[tuple]] = {}
    for box, rank in prev:
        prev_by_level.setdefault(box.level, []).append((box, rank))
    for box, new_rank in new:
        for old_box, old_rank in prev_by_level.get(box.level, ()):
            if old_rank == new_rank:
                continue
            inter = box.intersection(old_box)
            if inter is not None:
                key = (old_rank, new_rank)
                volumes[key] = (
                    volumes.get(key, 0.0) + inter.num_cells * bytes_per_cell
                )
    return volumes


# ---------------------------------------------------------------------------
# Scenarios: realistic multi-level hierarchies x capacity profiles.
# ---------------------------------------------------------------------------
def _paper_capacities() -> np.ndarray:
    """Capacity vector through the real CapacityCalculator path."""
    cluster = Cluster.paper_four_node()
    states = cluster.states(t=5.0)
    snapshot = MonitorSnapshot(
        time=5.0,
        cpu=np.array([s.cpu_available for s in states]),
        memory_mb=np.array([s.free_memory_mb for s in states]),
        bandwidth_mbps=np.array([s.bandwidth_mbps for s in states]),
        overhead_seconds=0.0,
    )
    return CapacityCalculator().relative_capacities(snapshot)


EPOCHS = list(moving_blob_trace(num_regrids=4, chop_pieces=3).box_lists)
CAPACITY_VECTORS = [
    ("equal4", np.full(4, 0.25)),
    ("skewed3", np.array([0.1, 0.3, 0.6])),
    ("paper4", _paper_capacities()),
    ("single", np.array([1.0])),
]


def _assert_identical(result: PartitionResult, reference: PartitionResult):
    assert result.assignment == reference.assignment
    assert result.num_splits == reference.num_splits
    assert np.array_equal(result.targets, reference.targets)
    loads = result.loads()
    ref_loads = reference.loads(result.work_model)
    assert loads.tolist() == ref_loads.tolist()


@pytest.mark.parametrize("epoch", range(len(EPOCHS)))
@pytest.mark.parametrize("cap_name,caps", CAPACITY_VECTORS, ids=lambda v: v if isinstance(v, str) else "")
class TestColumnarByteIdentity:
    def test_greedy(self, epoch, cap_name, caps):
        boxes = EPOCHS[epoch]
        model = as_work_model(None)
        _assert_identical(
            GreedyLPT().partition(boxes, caps, model),
            reference_greedy(boxes, caps, model),
        )

    def test_heterogeneous(self, epoch, cap_name, caps):
        boxes = EPOCHS[epoch]
        model = as_work_model(None)
        _assert_identical(
            ACEHeterogeneous().partition(boxes, caps, model),
            reference_heterogeneous(
                boxes, caps, model, SplitConstraints()
            ),
        )

    def test_composite(self, epoch, cap_name, caps):
        boxes = EPOCHS[epoch]
        model = as_work_model(None)
        _assert_identical(
            ACEComposite().partition(boxes, caps, model),
            reference_curve(
                boxes, caps, model, SplitConstraints(), equal_targets=True
            ),
        )

    def test_hybrid(self, epoch, cap_name, caps):
        boxes = EPOCHS[epoch]
        model = as_work_model(None)
        _assert_identical(
            SFCHybrid().partition(boxes, caps, model),
            reference_curve(
                boxes, caps, model, SplitConstraints(), equal_targets=False
            ),
        )

    def test_levelwise(self, epoch, cap_name, caps):
        boxes = EPOCHS[epoch]
        model = as_work_model(None)
        _assert_identical(
            LevelPartitioner(GreedyLPT()).partition(boxes, caps, model),
            reference_levelwise(boxes, caps, model),
        )

    def test_graph(self, epoch, cap_name, caps):
        boxes = EPOCHS[epoch]
        model = as_work_model(None)
        _assert_identical(
            GraphPartitioner().partition(boxes, caps, model),
            reference_graph_partition(boxes, caps, model),
        )


class TestBoxGraphIdentity:
    @pytest.mark.parametrize("epoch", range(len(EPOCHS)))
    def test_vectorized_graph_matches_object_graph(self, epoch):
        boxes = EPOCHS[epoch]
        model = as_work_model(None)
        got = build_box_graph(boxes, model)
        want = reference_build_box_graph(boxes, model)
        assert sorted(got.nodes) == sorted(want.nodes)
        for n in want.nodes:
            assert got.nodes[n]["work"] == want.nodes[n]["work"]
        got_edges = {
            (min(u, v), max(u, v)): d["volume"]
            for u, v, d in got.edges(data=True)
        }
        want_edges = {
            (min(u, v), max(u, v)): d["volume"]
            for u, v, d in want.edges(data=True)
        }
        assert got_edges == want_edges


class TestRedistributionIdentity:
    @pytest.mark.parametrize("caps", [np.full(4, 0.25), np.array([0.1, 0.9])])
    def test_columns_match_object_walk_across_epochs(self, caps):
        """Same dict values AND the same key insertion order (the comm
        model's per-rank accumulation iterates it)."""
        model = as_work_model(None)
        prev_pairs: list[tuple[Box, int]] = []
        prev_result = None
        for boxes in EPOCHS:
            part = ACEHeterogeneous().partition(boxes, caps, model)
            want = reference_redistribution(
                prev_pairs, part.assignment, bytes_per_cell=40.0
            )
            got = redistribution_volume_columns(
                None if prev_result is None else prev_result.boxes(),
                None if prev_result is None else prev_result.rank_vector(),
                part.boxes(),
                part.rank_vector(),
                bytes_per_cell=40.0,
            )
            assert got == want
            assert list(got) == list(want)
            assert [got[k] for k in got] == [want[k] for k in want]
            # The pair-based entry point routes through the same columns.
            assert (
                redistribution_volume(
                    prev_pairs, part.assignment, bytes_per_cell=40.0
                )
                == want
            )
            prev_pairs = part.assignment
            prev_result = part
