"""Tests for the per-level decomposition wrapper."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels.workloads import paper_rm3d_trace
from repro.partition import (
    ACEComposite,
    ACEHeterogeneous,
    LevelPartitioner,
)
from repro.partition.base import default_work
from repro.util.geometry import BoxList

PAPER_CAPS = np.array([0.16, 0.19, 0.31, 0.34])


def epoch():
    return paper_rm3d_trace(num_regrids=8).epoch(4)


class TestLevelPartitioner:
    def test_name_reflects_inner(self):
        p = LevelPartitioner(ACEHeterogeneous())
        assert p.name == "LevelWise[ACEHeterogeneous]"

    def test_covers_input(self):
        p = LevelPartitioner(ACEHeterogeneous())
        r = p.partition(epoch(), PAPER_CAPS)
        r.validate_covers(epoch())

    def test_every_level_balanced_separately(self):
        """Each level's work lands on every rank in ~capacity proportion --
        the defining property of level-based decomposition."""
        p = LevelPartitioner(ACEHeterogeneous())
        r = p.partition(epoch(), PAPER_CAPS)
        owners = r.owners()
        for level in epoch().levels:
            per_rank = np.zeros(4)
            for box, rank in owners.items():
                if box.level == level:
                    per_rank[rank] += default_work(box)
            shares = per_rank / per_rank.sum()
            np.testing.assert_allclose(shares, PAPER_CAPS, atol=0.08)

    def test_composite_does_not_balance_levels(self):
        """The composite scheme balances the total, not each level -- the
        contrast that motivates level-wise decomposition."""
        r = ACEHeterogeneous().partition(epoch(), PAPER_CAPS)
        owners = r.owners()
        worst = 0.0
        for level in epoch().levels:
            per_rank = np.zeros(4)
            for box, rank in owners.items():
                if box.level == level:
                    per_rank[rank] += default_work(box)
            if per_rank.sum() == 0:
                continue
            shares = per_rank / per_rank.sum()
            worst = max(worst, float(np.abs(shares - PAPER_CAPS).max()))
        assert worst > 0.1  # some level is badly skewed per-rank

    def test_total_loads_also_proportional(self):
        p = LevelPartitioner(ACEHeterogeneous())
        r = p.partition(epoch(), PAPER_CAPS)
        shares = r.loads() / r.loads().sum()
        np.testing.assert_allclose(shares, PAPER_CAPS, atol=0.05)

    def test_more_comm_than_composite(self):
        """Level-wise pays in inter-level communication volume."""
        from repro.amr.ghost import plan_exchange_volumes

        comp = ACEComposite().partition(epoch(), PAPER_CAPS)
        lvl = LevelPartitioner(ACEComposite()).partition(epoch(), PAPER_CAPS)
        v_comp = sum(
            plan_exchange_volumes(comp.boxes(), comp.owners()).values()
        )
        v_lvl = sum(plan_exchange_volumes(lvl.boxes(), lvl.owners()).values())
        assert v_lvl >= v_comp

    def test_empty(self):
        p = LevelPartitioner(ACEHeterogeneous())
        assert p.partition(BoxList(), PAPER_CAPS).assignment == []

    def test_input_guards(self):
        p = LevelPartitioner(ACEHeterogeneous())
        from repro.util.errors import PartitionError

        with pytest.raises(PartitionError):
            p.partition(epoch(), [])
