"""Unit tests for the vectorized work model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels.workloads import paper_rm3d_trace
from repro.partition.base import default_work
from repro.partition.workmodel import (
    CallableWorkModel,
    WorkModel,
    as_work_model,
)
from repro.util.errors import PartitionError
from repro.util.geometry import Box, BoxList


def boxes() -> BoxList:
    return paper_rm3d_trace(num_regrids=6).epoch(3)


class TestWorkModel:
    def test_vector_matches_per_box_default_work(self):
        model = WorkModel()
        vec = model.vector(boxes())
        expected = [default_work(b) for b in boxes()]
        assert vec.tolist() == expected

    def test_vector_respects_refine_factor(self):
        model = WorkModel(refine_factor=4)
        vec = model.vector(boxes())
        expected = [default_work(b, refine_factor=4) for b in boxes()]
        assert vec.tolist() == expected

    def test_vector_is_cached_by_identity(self):
        model = WorkModel()
        bl = boxes()
        assert model.vector(bl) is model.vector(bl)

    def test_vector_is_read_only(self):
        vec = WorkModel().vector(boxes())
        with pytest.raises(ValueError):
            vec[0] = 1.0

    def test_list_cache_is_bounded(self):
        model = WorkModel()
        lists = [boxes() for _ in range(40)]
        for bl in lists:
            model.vector(bl)
        assert len(model._list_cache) <= 32

    def test_total_is_sequential_sum(self):
        model = WorkModel()
        bl = boxes()
        # Bit-identical to the legacy sum(work_of(b) for b in boxes).
        assert model.total(bl) == sum(default_work(b) for b in bl)

    def test_single_box_work_memoized_and_callable(self):
        model = WorkModel()
        b = Box((0, 0), (8, 4), level=2)
        assert model.work(b) == default_work(b)
        assert model(b) == model.work(b)  # a WorkModel is a WorkFunction
        assert b in model._box_cache

    def test_empty_sequence(self):
        model = WorkModel()
        assert model.vector(BoxList()).shape == (0,)
        assert model.total(BoxList()) == 0.0

    def test_clear_cache(self):
        model = WorkModel()
        bl = boxes()
        model.vector(bl)
        model.work(bl[0])
        model.clear_cache()
        assert not model._list_cache and not model._box_cache

    def test_invalid_refine_factor(self):
        with pytest.raises(PartitionError):
            WorkModel(refine_factor=0)

    def test_custom_subclass_compute(self):
        class CellsOnly(WorkModel):
            def compute(self, bxs):
                return np.array(
                    [float(b.num_cells) for b in bxs], dtype=np.float64
                )

            def _work_one(self, box):
                return float(box.num_cells)

        model = CellsOnly()
        vec = model.vector(boxes())
        assert vec.tolist() == [float(b.num_cells) for b in boxes()]
        assert model.work(boxes()[0]) == float(boxes()[0].num_cells)


class TestCallableWorkModel:
    def test_wraps_in_sequence_order(self):
        seen = []

        def fn(b):
            seen.append(b)
            return 2.0 * b.num_cells

        model = CallableWorkModel(fn)
        bl = boxes()
        vec = model.vector(bl)
        assert seen == list(bl)
        assert vec.tolist() == [2.0 * b.num_cells for b in bl]

    def test_single_box_goes_through_fn(self):
        model = CallableWorkModel(lambda b: 7.0)
        assert model.work(Box((0, 0), (2, 2))) == 7.0

    def test_name_comes_from_fn(self):
        assert CallableWorkModel(default_work).name == "default_work"


class TestAsWorkModel:
    def test_none_gives_default_model(self):
        model = as_work_model(None, refine_factor=3)
        assert isinstance(model, WorkModel)
        assert model.refine_factor == 3

    def test_model_passes_through_preserving_caches(self):
        model = WorkModel()
        bl = boxes()
        vec = model.vector(bl)
        assert as_work_model(model) is model
        assert as_work_model(model).vector(bl) is vec

    def test_callable_is_wrapped(self):
        model = as_work_model(default_work)
        assert isinstance(model, CallableWorkModel)

    def test_non_callable_rejected(self):
        with pytest.raises(PartitionError):
            as_work_model(42)
