"""Tests for constrained box splitting."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partition.base import default_work
from repro.partition.splitting import SplitConstraints, split_to_target
from repro.util.errors import PartitionError
from repro.util.geometry import Box
from tests.conftest import boxes


class TestConstraints:
    def test_defaults(self):
        c = SplitConstraints()
        assert c.min_box_size == 2
        assert c.snap == 2
        assert not c.allow_multi_axis

    def test_guards(self):
        with pytest.raises(PartitionError):
            SplitConstraints(min_box_size=0)
        with pytest.raises(PartitionError):
            SplitConstraints(snap=0)


class TestSplitToTarget:
    def test_splits_along_longest_axis(self):
        box = Box((0, 0), (16, 4))
        out = split_to_target(box, 32.0, default_work)
        assert out is not None
        lo, rest = out
        (hi,) = rest
        assert lo.shape[1] == 4 and hi.shape[1] == 4  # y untouched
        assert lo.num_cells + hi.num_cells == box.num_cells

    def test_piece_work_near_target(self):
        box = Box((0, 0), (16, 4))
        out = split_to_target(box, 24.0, default_work)
        lo, _ = out
        # 24 work = 6 planes, snapped to 6 -> 24 exactly.
        assert default_work(lo) == pytest.approx(24.0)

    def test_snap_respected(self):
        box = Box((0, 0), (16, 4))
        out = split_to_target(
            box, 20.0, default_work, SplitConstraints(snap=4)
        )
        lo, (hi,) = out
        assert lo.upper[0] % 4 == 0

    def test_min_size_enforced_both_sides(self):
        box = Box((0, 0), (8, 4))
        c = SplitConstraints(min_box_size=3, snap=1)
        out = split_to_target(box, 1.0, default_work, c)  # tiny target
        lo, (hi,) = out
        assert lo.shape[0] >= 3 and hi.shape[0] >= 3

    def test_unsplittable_returns_none(self):
        box = Box((0, 0), (3, 3))
        assert split_to_target(box, 1.0, default_work, SplitConstraints(2, 1)) is None

    def test_aspect_ratio_does_not_grow_much(self):
        """Cutting the longest axis keeps the result's aspect ratio bounded
        by max(original ratio, 2x-ish)."""
        box = Box((0, 0, 0), (32, 8, 8))
        out = split_to_target(box, 1024.0, default_work)
        lo, (hi,) = out
        assert lo.aspect_ratio <= box.aspect_ratio
        assert hi.aspect_ratio <= box.aspect_ratio

    def test_level_weighted_work(self):
        """Work functions weighting level are honoured (fine boxes split at
        positions reflecting subcycled work)."""
        box = Box((0, 0), (16, 4), level=1)
        out = split_to_target(box, 64.0, default_work)  # work = cells * 2
        lo, _ = out
        assert default_work(lo) == pytest.approx(64.0)

    def test_multi_axis_reaches_sub_plane_targets(self):
        """Recursive multi-axis cuts produce pieces smaller than a single
        snapped plane of the longest axis -- the 'finer granularity' of the
        paper's future-work note."""
        box = Box((0, 0), (16, 16))
        c_single = SplitConstraints(min_box_size=2, snap=2)
        c_multi = SplitConstraints(min_box_size=2, snap=2, allow_multi_axis=True)
        target = 8.0  # half of one 2-cell-wide snapped slab (32 cells)
        lo_s, rest_s = split_to_target(box, target, default_work, c_single)
        lo_m, rest_m = split_to_target(box, target, default_work, c_multi)
        assert default_work(lo_s) > target  # single cut cannot get there
        assert abs(default_work(lo_m) - target) < abs(default_work(lo_s) - target)
        # Everything still tiles the box exactly.
        assert lo_m.num_cells + sum(b.num_cells for b in rest_m) == box.num_cells
        assert len(rest_m) >= 2

    def test_negative_target_rejected(self):
        with pytest.raises(PartitionError):
            split_to_target(Box((0,), (8,)), -1.0, default_work)


@settings(max_examples=200)
@given(boxes(max_side=64), st.floats(0.01, 1.0))
def test_split_invariants(box: Box, frac: float):
    """Any successful split partitions the box, respects min sizes and
    keeps both pieces inside the original."""
    c = SplitConstraints(min_box_size=2, snap=2)
    target = frac * default_work(box)
    out = split_to_target(box, target, default_work, c)
    if out is None:
        # Only legitimate when every admissible cut is blocked.
        assert box.shape[box.longest_axis] < 2 * c.min_box_size or (
            c.snap > 1
        )
        return
    lo, rest = out
    pieces = [lo, *rest]
    assert sum(b.num_cells for b in pieces) == box.num_cells
    for b in pieces:
        assert box.contains_box(b)
        assert min(b.shape) >= min(c.min_box_size, min(box.shape))
    from repro.util.geometry import BoxList
    assert BoxList(pieces).is_disjoint()


@settings(max_examples=200)
@given(boxes(max_side=64), st.floats(0.01, 1.0))
def test_multi_axis_split_invariants(box: Box, frac: float):
    """Recursive multi-axis splitting still tiles the box exactly with
    min-size-respecting disjoint pieces, and its piece is never further
    from the target than the single-cut piece."""
    from repro.util.geometry import BoxList

    c1 = SplitConstraints(min_box_size=2, snap=2)
    cm = SplitConstraints(min_box_size=2, snap=2, allow_multi_axis=True)
    target = frac * default_work(box)
    single = split_to_target(box, target, default_work, c1)
    multi = split_to_target(box, target, default_work, cm)
    assert (single is None) == (multi is None)
    if multi is None:
        return
    lo_m, rest_m = multi
    pieces = [lo_m, *rest_m]
    assert sum(b.num_cells for b in pieces) == box.num_cells
    assert BoxList(pieces).is_disjoint()
    for b in pieces:
        assert box.contains_box(b)
        assert min(b.shape) >= min(cm.min_box_size, min(box.shape))
    lo_s, _ = single
    err_m = abs(default_work(lo_m) - target)
    err_s = abs(default_work(lo_s) - target)
    assert err_m <= err_s + 1e-9
