"""Tests for the relative-capacity metric (paper section 5.2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster
from repro.monitor import ResourceMonitor
from repro.monitor.service import MonitorSnapshot
from repro.partition.capacity import CapacityCalculator, CapacityWeights
from repro.util.errors import PartitionError


def snap(cpu, mem, bw) -> MonitorSnapshot:
    return MonitorSnapshot(
        time=0.0,
        cpu=np.asarray(cpu, float),
        memory_mb=np.asarray(mem, float),
        bandwidth_mbps=np.asarray(bw, float),
        overhead_seconds=0.0,
    )


class TestWeights:
    def test_equal_is_third_each(self):
        w = CapacityWeights.equal()
        assert w.w_p == w.w_m == w.w_b == pytest.approx(1 / 3)

    def test_sum_enforced(self):
        with pytest.raises(PartitionError):
            CapacityWeights(0.5, 0.5, 0.5)

    def test_negative_rejected(self):
        with pytest.raises(PartitionError):
            CapacityWeights(-0.2, 0.6, 0.6)

    def test_profiles_valid(self):
        for w in (
            CapacityWeights.compute_bound(),
            CapacityWeights.memory_bound(),
            CapacityWeights.comm_bound(),
        ):
            assert w.w_p + w.w_m + w.w_b == pytest.approx(1.0)


class TestCapacityCalculator:
    def test_homogeneous_cluster_equal_shares(self):
        calc = CapacityCalculator()
        c = calc.relative_capacities(snap([0.9] * 4, [400] * 4, [100] * 4))
        np.testing.assert_allclose(c, 0.25)

    def test_sums_to_one(self):
        calc = CapacityCalculator()
        c = calc.relative_capacities(
            snap([0.1, 0.9], [100, 800], [10, 100])
        )
        assert c.sum() == pytest.approx(1.0)
        assert c[1] > c[0]

    def test_paper_worked_example(self):
        """Section 6.1.3: loaded 4-node cluster -> C ~ (16, 19, 31, 34) %."""
        cluster = Cluster.paper_four_node()
        cluster.clock.advance(5.0)
        snapshot = ResourceMonitor(cluster).probe_all()
        c = CapacityCalculator(CapacityWeights.equal()).relative_capacities(
            snapshot
        )
        np.testing.assert_allclose(c, [0.16, 0.19, 0.31, 0.34], atol=0.01)

    def test_weight_skew_changes_ranking(self):
        """A memory-rich but CPU-poor node gains under memory weighting."""
        s = snap([0.2, 0.8], [900, 100], [100, 100])
        cpu_heavy = CapacityCalculator(CapacityWeights.compute_bound())
        mem_heavy = CapacityCalculator(CapacityWeights.memory_bound())
        assert cpu_heavy.relative_capacities(s)[0] < 0.5
        assert mem_heavy.relative_capacities(s)[0] > 0.5

    def test_zero_total_metric_spreads_evenly(self):
        """All-zero free memory carries no signal: fall back to uniform."""
        c = CapacityCalculator().relative_capacities(
            snap([0.5, 1.0], [0, 0], [100, 100])
        )
        assert c.sum() == pytest.approx(1.0)
        assert c[1] > c[0]  # CPU still differentiates

    def test_negative_availability_rejected(self):
        with pytest.raises(PartitionError):
            CapacityCalculator().relative_capacities(
                snap([-0.1, 0.5], [1, 1], [1, 1])
            )

    def test_work_targets(self):
        calc = CapacityCalculator()
        t = calc.work_targets(snap([1, 1], [1, 1], [1, 1]), 1000.0)
        np.testing.assert_allclose(t, [500.0, 500.0])
        with pytest.raises(PartitionError):
            calc.work_targets(snap([1], [1], [1]), -5.0)


@settings(max_examples=100)
@given(
    st.lists(
        st.tuples(
            st.floats(0.01, 1.0), st.floats(1.0, 1024.0), st.floats(1.0, 1000.0)
        ),
        min_size=1,
        max_size=32,
    ),
    st.tuples(st.floats(0, 1), st.floats(0, 1), st.floats(0, 1)),
)
def test_capacity_properties(nodes, raw_weights):
    """Sum-to-one, non-negativity and resource monotonicity hold for any
    cluster state and any valid weight vector."""
    total = sum(raw_weights)
    if total <= 0:
        return
    w = CapacityWeights(*(x / total for x in raw_weights))
    calc = CapacityCalculator(w)
    cpu = [n[0] for n in nodes]
    mem = [n[1] for n in nodes]
    bw = [n[2] for n in nodes]
    c = calc.relative_capacities(snap(cpu, mem, bw))
    assert c.sum() == pytest.approx(1.0)
    assert (c >= 0).all()
    # Monotonicity: doubling node 0's CPU cannot lower its capacity.
    boosted = calc.relative_capacities(snap([cpu[0] * 2] + cpu[1:], mem, bw))
    assert boosted[0] >= c[0] - 1e-12
