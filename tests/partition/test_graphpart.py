"""Tests for the graph-based partitioner and the box connectivity graph."""

from __future__ import annotations

import numpy as np

from repro.kernels.workloads import moving_blob_trace, paper_rm3d_trace
from repro.partition import GraphPartitioner, build_box_graph
from repro.partition.base import default_work
from repro.util.geometry import Box, BoxList

PAPER_CAPS = np.array([0.16, 0.19, 0.31, 0.34])


class TestBoxGraph:
    def test_adjacent_boxes_connected(self):
        a = Box((0, 0), (4, 8))
        b = Box((4, 0), (8, 8))
        g = build_box_graph(BoxList([a, b]), default_work)
        assert g.number_of_nodes() == 2
        assert g.has_edge(0, 1)
        # Shared face: 8 cells each direction -> volume 16.
        assert g[0][1]["volume"] == 16

    def test_distant_boxes_disconnected(self):
        a = Box((0, 0), (2, 2))
        b = Box((10, 10), (12, 12))
        g = build_box_graph(BoxList([a, b]), default_work)
        assert g.number_of_edges() == 0

    def test_interlevel_edge(self):
        coarse = Box((0, 0), (8, 8), 0)
        fine = Box((2, 2), (6, 6), 1)
        g = build_box_graph(BoxList([coarse, fine]), default_work)
        assert g.has_edge(0, 1)

    def test_node_weights_are_work(self):
        b = Box((0, 0), (4, 4), level=1)
        g = build_box_graph(BoxList([b]), default_work)
        assert g.nodes[0]["work"] == default_work(b)

    def test_paper_trace_graph_connected(self):
        """The RM3D hierarchy's graph is a single connected component
        (slab chunks touch; fingers nest inside the slab)."""
        import networkx as nx

        bl = paper_rm3d_trace(num_regrids=4).epoch(2)
        g = build_box_graph(bl, default_work)
        assert nx.is_connected(g)


class TestGraphPartitioner:
    def test_covers_and_ranks(self):
        bl = paper_rm3d_trace(num_regrids=8).epoch(3)
        r = GraphPartitioner().partition(bl, PAPER_CAPS)
        r.validate_covers(bl)
        assert len(r.assignment) == len(bl)  # no splitting
        assert r.num_splits == 0

    def test_shares_track_capacity_coarsely(self):
        bl = paper_rm3d_trace(num_regrids=8).epoch(5)
        r = GraphPartitioner().partition(bl, PAPER_CAPS)
        shares = r.loads() / r.loads().sum()
        # Whole-box granularity: looser tolerance than the splitters.
        assert shares[3] + shares[2] > shares[0] + shares[1]
        np.testing.assert_allclose(shares, PAPER_CAPS, atol=0.12)

    def test_single_rank(self):
        bl = moving_blob_trace(num_regrids=2).epoch(0)
        r = GraphPartitioner().partition(bl, [1.0])
        assert all(rank == 0 for _, rank in r.assignment)

    def test_empty(self):
        r = GraphPartitioner().partition(BoxList(), PAPER_CAPS)
        assert r.assignment == []

    def test_deterministic(self):
        bl = paper_rm3d_trace(num_regrids=6).epoch(4)
        a = GraphPartitioner().partition(bl, PAPER_CAPS)
        b = GraphPartitioner().partition(bl, PAPER_CAPS)
        assert a.assignment == b.assignment

    def test_locality_cut_beats_random(self):
        """The grown parts should cut less exchange volume than a random
        assignment of whole boxes."""
        from repro.amr.ghost import plan_exchange_volumes

        bl = moving_blob_trace(
            domain_shape=(64, 64), num_regrids=6, max_levels=3,
            chop_pieces=4,
        ).epoch(3)
        caps = [0.25] * 4
        graph_owners = GraphPartitioner().partition(bl, caps).owners()
        rng = np.random.default_rng(0)
        cuts = []
        for owners in (
            graph_owners,
            {b: int(rng.integers(0, 4)) for b in bl},
        ):
            vols = plan_exchange_volumes(bl, owners)
            cuts.append(sum(vols.values()))
        assert cuts[0] <= cuts[1]
