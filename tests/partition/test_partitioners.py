"""Tests for ACEHeterogeneous, ACEComposite and GreedyLPT."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.workloads import moving_blob_trace, paper_rm3d_trace
from repro.partition import (
    ACEComposite,
    ACEHeterogeneous,
    GreedyLPT,
    SFCHybrid,
    SplitConstraints,
    load_imbalance,
    makespan_estimate,
)
from repro.partition.base import default_work
from repro.util.errors import PartitionError
from repro.util.geometry import BoxList

PAPER_CAPS = np.array([0.16, 0.19, 0.31, 0.34])


def epoch(i: int = 3) -> BoxList:
    return paper_rm3d_trace(num_regrids=8).epoch(i)


ALL_PARTITIONERS = [
    ACEHeterogeneous(),
    ACEComposite(),
    GreedyLPT(),
    SFCHybrid(),
]


@pytest.mark.parametrize("p", ALL_PARTITIONERS, ids=lambda p: p.name)
class TestCommonContract:
    def test_covers_input_exactly(self, p):
        r = p.partition(epoch(), PAPER_CAPS)
        r.validate_covers(epoch())

    def test_all_ranks_in_range(self, p):
        r = p.partition(epoch(), PAPER_CAPS)
        ranks = {rank for _, rank in r.assignment}
        assert ranks <= set(range(4))

    def test_empty_boxlist(self, p):
        r = p.partition(BoxList(), PAPER_CAPS)
        assert r.assignment == []

    def test_single_rank_gets_everything(self, p):
        r = p.partition(epoch(), [1.0])
        assert all(rank == 0 for _, rank in r.assignment)
        assert r.loads()[0] == pytest.approx(
            sum(default_work(b) for b in epoch())
        )

    def test_deterministic(self, p):
        a = p.partition(epoch(), PAPER_CAPS)
        b = p.partition(epoch(), PAPER_CAPS)
        assert a.assignment == b.assignment

    def test_input_guards(self, p):
        with pytest.raises(PartitionError):
            p.partition(epoch(), [])
        with pytest.raises(PartitionError):
            p.partition(epoch(), [-0.5, 1.5])
        with pytest.raises(PartitionError):
            p.partition(epoch(), [0.0, 0.0])


class TestACEHeterogeneous:
    def test_loads_proportional_to_capacity(self):
        r = ACEHeterogeneous().partition(epoch(), PAPER_CAPS)
        shares = r.loads() / r.loads().sum()
        np.testing.assert_allclose(shares, PAPER_CAPS, atol=0.04)

    def test_imbalance_below_paper_bound(self):
        """Paper: residual imbalance < 40 % from splitting constraints."""
        for i in range(8):
            r = ACEHeterogeneous().partition(epoch(i), PAPER_CAPS)
            assert load_imbalance(r).max() < 40.0

    def test_extreme_capacities(self):
        caps = [0.01, 0.01, 0.98]
        r = ACEHeterogeneous().partition(epoch(), caps)
        loads = r.loads()
        assert loads[2] > 10 * loads[0]

    def test_splits_reported(self):
        r = ACEHeterogeneous().partition(epoch(), PAPER_CAPS)
        assert r.num_splits > 0

    def test_sorting_limits_splits(self):
        """Smallest-box-to-smallest-rank ordering keeps splits modest:
        far fewer splits than boxes."""
        bl = epoch()
        r = ACEHeterogeneous().partition(bl, PAPER_CAPS)
        assert r.num_splits <= len(bl)

    def test_respects_min_box_size(self):
        c = SplitConstraints(min_box_size=4, snap=1)
        r = ACEHeterogeneous(constraints=c).partition(epoch(), PAPER_CAPS)
        original_min = min(min(b.shape) for b in epoch())
        for box, _ in r.assignment:
            assert min(box.shape) >= min(4, original_min)

    def test_homogeneous_capacities_near_equal_loads(self):
        r = ACEHeterogeneous().partition(epoch(), [0.25] * 4)
        shares = r.loads() / r.loads().sum()
        np.testing.assert_allclose(shares, 0.25, atol=0.05)


class TestACEComposite:
    def test_equal_loads_regardless_of_capacity(self):
        r = ACEComposite().partition(epoch(), PAPER_CAPS)
        shares = r.loads() / r.loads().sum()
        np.testing.assert_allclose(shares, 0.25, atol=0.05)

    def test_imbalance_against_capacity_targets_is_large(self):
        """The paper's fig. 10 effect: judged against capacity-proportional
        targets, the equal-share baseline is badly imbalanced."""
        r = ACEComposite().partition(epoch(), PAPER_CAPS)
        total = r.loads().sum()
        imb = load_imbalance(r, targets=PAPER_CAPS * total)
        assert imb.max() > 25.0

    def test_contiguous_spans_preserve_locality(self):
        """Each rank's level-0 boxes form a contiguous region (few owner
        changes along the curve)."""
        from repro.util.sfc import sfc_order_boxes

        bl = epoch()
        r = ACEComposite().partition(bl, PAPER_CAPS)
        owners = r.owners()
        ordered = sfc_order_boxes(r.boxes())
        ranks = [owners[b] for b in ordered]
        changes = sum(1 for a, b in zip(ranks, ranks[1:]) if a != b)
        assert changes <= 2 * len(PAPER_CAPS) + len(bl.levels) * 2


class TestSFCHybrid:
    def test_loads_proportional_to_capacity(self):
        r = SFCHybrid().partition(epoch(), PAPER_CAPS)
        shares = r.loads() / r.loads().sum()
        np.testing.assert_allclose(shares, PAPER_CAPS, atol=0.05)

    def test_contiguous_spans(self):
        """Hybrid keeps the curve-span locality of the default scheme."""
        from repro.util.sfc import sfc_order_boxes

        bl = epoch()
        r = SFCHybrid().partition(bl, PAPER_CAPS)
        owners = r.owners()
        ordered = sfc_order_boxes(r.boxes())
        ranks = [owners[b] for b in ordered]
        changes = sum(1 for a, b in zip(ranks, ranks[1:]) if a != b)
        assert changes <= 2 * len(PAPER_CAPS) + len(bl.levels) * 2

    def test_equal_capacities_match_composite_loads(self):
        bl = epoch()
        hybrid = SFCHybrid().partition(bl, [0.25] * 4)
        comp = ACEComposite().partition(bl, PAPER_CAPS)
        np.testing.assert_allclose(hybrid.loads(), comp.loads())


class TestGreedyLPT:
    def test_no_splits_ever(self):
        r = GreedyLPT().partition(epoch(), PAPER_CAPS)
        assert r.num_splits == 0
        assert len(r.assignment) == len(epoch())

    def test_roughly_tracks_capacity(self):
        r = GreedyLPT().partition(epoch(), PAPER_CAPS)
        shares = r.loads() / r.loads().sum()
        assert shares[3] > shares[0]


class TestMetrics:
    def test_makespan_prefers_capacity_aware_on_loaded_cluster(self):
        """The headline effect: with heterogeneous effective speeds, the
        system-sensitive partitioner's makespan beats the default's."""
        speeds = PAPER_CAPS * 4.0  # speeds proportional to capacity
        bl = epoch()
        het = ACEHeterogeneous().partition(bl, PAPER_CAPS)
        comp = ACEComposite().partition(bl, PAPER_CAPS)
        assert makespan_estimate(het, speeds) < makespan_estimate(comp, speeds)

    def test_makespan_guards(self):
        r = ACEHeterogeneous().partition(epoch(), PAPER_CAPS)
        with pytest.raises(PartitionError):
            makespan_estimate(r, [1.0])
        with pytest.raises(PartitionError):
            makespan_estimate(r, [0.0, 1, 1, 1])

    def test_imbalance_infinite_for_loaded_zero_target(self):
        r = GreedyLPT().partition(epoch(), [0.5, 0.5])
        imb = load_imbalance(r, targets=[0.0, r.loads().sum()])
        assert imb[0] == float("inf")

    def test_imbalance_wrong_length_targets(self):
        r = GreedyLPT().partition(epoch(), [0.5, 0.5])
        with pytest.raises(PartitionError):
            load_imbalance(r, targets=[1.0])


@settings(max_examples=40, deadline=None)
@given(
    st.integers(0, 7),
    st.lists(st.floats(0.05, 1.0), min_size=2, max_size=8),
    st.sampled_from(["het", "comp", "lpt", "hybrid"]),
)
def test_partition_properties(epoch_idx, raw_caps, which):
    """All work assigned exactly once, all loads non-negative, targets sum
    to the total work -- for any epoch, capacity vector and partitioner."""
    p = {
        "het": ACEHeterogeneous(),
        "comp": ACEComposite(),
        "lpt": GreedyLPT(),
        "hybrid": SFCHybrid(),
    }[which]
    bl = moving_blob_trace(
        domain_shape=(64, 64), num_regrids=8, max_levels=3
    ).epoch(epoch_idx)
    r = p.partition(bl, raw_caps)
    r.validate_covers(bl)
    total = sum(default_work(b) for b in bl)
    assert r.loads().sum() == pytest.approx(total)
    assert r.targets.sum() == pytest.approx(total)
    assert (r.loads() >= 0).all()
