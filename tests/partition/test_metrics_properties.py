"""Property tests for partition metrics: redistribution volume and
exchange planning."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amr.ghost import plan_exchange_volumes
from repro.kernels.workloads import moving_blob_trace
from repro.partition import ACEHeterogeneous, ACEComposite
from repro.partition.base import PartitionResult, default_work
from repro.partition.metrics import load_imbalance, redistribution_volume
from repro.util.errors import PartitionError
from repro.util.geometry import Box


def tiles(n: int) -> list[Box]:
    return [Box((2 * i, 0), (2 * i + 2, 2)) for i in range(n)]


class TestRedistributionVolume:
    def test_identity_assignment_moves_nothing(self):
        ts = tiles(6)
        a = [(b, i % 3) for i, b in enumerate(ts)]
        assert redistribution_volume(a, a) == {}

    def test_full_swap_moves_everything(self):
        ts = tiles(4)
        before = [(b, 0) for b in ts]
        after = [(b, 1) for b in ts]
        moved = redistribution_volume(before, after, bytes_per_cell=8.0)
        assert moved == {(0, 1): 4 * 4 * 8.0}

    def test_resplit_counts_only_changed_cells(self):
        """A box re-split differently but with the same owner moves zero;
        split across owners moves exactly the foreign part."""
        big = Box((0, 0), (8, 4))
        before = [(big, 0)]
        left, right = big.halve(axis=0)
        assert redistribution_volume(before, [(left, 0), (right, 0)]) == {}
        moved = redistribution_volume(
            before, [(left, 0), (right, 1)], bytes_per_cell=1.0
        )
        assert moved == {(0, 1): right.num_cells * 1.0}

    def test_new_regions_free(self):
        """Cells with no previous owner (fresh refinement) cost nothing."""
        moved = redistribution_volume([], [(Box((0, 0), (4, 4)), 2)])
        assert moved == {}


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(0, 3), min_size=1, max_size=10),
    st.lists(st.integers(0, 3), min_size=1, max_size=10),
)
def test_redistribution_conservation(first, second):
    """Total bytes moved equals bytes of cells whose owner changed --
    independent of direction bookkeeping."""
    ts = tiles(max(len(first), len(second)))
    a = [(ts[i], r) for i, r in enumerate(first)]
    b = [(ts[i], r) for i, r in enumerate(second)]
    moved = redistribution_volume(a, b, bytes_per_cell=1.0)
    expected = sum(
        ts[i].num_cells
        for i in range(min(len(first), len(second)))
        if first[i] != second[i]
    )
    assert sum(moved.values()) == expected
    for (src, dst), v in moved.items():
        assert src != dst and v > 0


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 5), st.sampled_from(["het", "comp"]))
def test_exchange_volume_nonnegative_and_self_free(epoch_idx, which):
    """Exchange plans never charge a rank for talking to itself, and a
    one-rank cluster exchanges nothing."""
    bl = moving_blob_trace(
        domain_shape=(64, 64), num_regrids=6, max_levels=3
    ).epoch(epoch_idx)
    part = {"het": ACEHeterogeneous(), "comp": ACEComposite()}[which]
    result = part.partition(bl, [0.25] * 4, default_work)
    vols = plan_exchange_volumes(result.boxes(), result.owners())
    for (src, dst), v in vols.items():
        assert src != dst
        assert v > 0
    solo = part.partition(bl, [1.0], default_work)
    assert plan_exchange_volumes(solo.boxes(), solo.owners()) == {}


class TestLoadImbalanceEdgeCases:
    def test_no_targets_raises(self):
        result = PartitionResult(assignment=[], targets=np.zeros(0))
        with pytest.raises(PartitionError, match="no targets"):
            load_imbalance(result)

    def test_target_count_mismatch_raises(self):
        box = Box((0, 0), (2, 2))
        result = PartitionResult(
            assignment=[(box, 0)], targets=np.array([2.0, 2.0])
        )
        with pytest.raises(PartitionError, match="targets for"):
            load_imbalance(result, targets=[4.0])

    def test_single_node_perfect_balance(self):
        box = Box((0, 0), (2, 2))
        result = PartitionResult(
            assignment=[(box, 0)], targets=np.array([float(box.num_cells)])
        )
        assert load_imbalance(result).tolist() == [0.0]

    def test_zero_total_load_scores_full_imbalance(self):
        # Nothing assigned but positive targets: every rank missed its
        # ideal share entirely -- 100% off, not a division error.
        result = PartitionResult(
            assignment=[], targets=np.array([3.0, 5.0])
        )
        assert load_imbalance(result).tolist() == [100.0, 100.0]

    def test_zero_capacity_rank_balanced_only_when_idle(self):
        box = Box((0, 0), (2, 2))
        idle = PartitionResult(
            assignment=[(box, 0)],
            targets=np.array([float(box.num_cells), 0.0]),
        )
        imb = load_imbalance(idle)
        assert imb.tolist() == [0.0, 0.0]
        loaded = PartitionResult(
            assignment=[(box, 1)],
            targets=np.array([float(box.num_cells), 0.0]),
        )
        imb = load_imbalance(loaded)
        assert imb[1] == float("inf")


class TestRedistributionVolumeEdgeCases:
    def test_both_empty(self):
        assert redistribution_volume([], []) == {}

    def test_empty_previous_assignment_is_free(self):
        # Newly refined regions have no prior owner; their data is
        # prolonged locally, never migrated.
        new = [(Box((0, 0), (4, 4)), 1)]
        assert redistribution_volume([], new) == {}

    def test_empty_new_assignment(self):
        prev = [(Box((0, 0), (4, 4)), 0)]
        assert redistribution_volume(prev, []) == {}

    def test_single_node_never_moves(self):
        boxes = [Box((0, 0), (4, 4)), Box((4, 0), (8, 4))]
        prev = [(b, 0) for b in boxes]
        new = [(b, 0) for b in reversed(boxes)]
        assert redistribution_volume(prev, new) == {}

    def test_disjoint_levels_do_not_interact(self):
        coarse = Box((0, 0), (4, 4), level=0)
        fine = Box((0, 0), (4, 4), level=1)
        assert redistribution_volume([(coarse, 0)], [(fine, 1)]) == {}
