"""Directory-store corruption drills: every failure mode fails closed.

A corrupted newest snapshot must never be silently restored, and must
never strand the previous intact snapshot: ``latest()`` raises,
``latest_valid()`` falls back.
"""

from __future__ import annotations

import pickle

import pytest

from repro.resilience.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    Checkpoint,
    DirectoryCheckpointStore,
)
from repro.util.errors import CheckpointError
from repro.util.hashing import checksum_bytes


def make_ckpt(step: int, tag: str = "x") -> Checkpoint:
    payload = pickle.dumps({"step": step, "tag": tag}, protocol=4)
    return Checkpoint(
        version=CHECKPOINT_FORMAT_VERSION,
        step=step,
        sim_time=float(step),
        clock_time=float(step),
        payload=payload,
        checksum=checksum_bytes(payload),
    )


@pytest.fixture
def store(tmp_path):
    store = DirectoryCheckpointStore(tmp_path, keep_last=3)
    store.save(make_ckpt(1))
    store.save(make_ckpt(2))
    return store


def newest_file(store):
    return sorted(store.directory.glob("ckpt_*.rpck"))[-1]


class TestTruncatedPayload:
    def test_latest_fails_closed(self, store):
        path = newest_file(store)
        blob = path.read_bytes()
        path.write_bytes(blob[:-7])  # drop the payload tail
        with pytest.raises(CheckpointError, match="truncated"):
            store.latest()

    def test_header_only_fails_closed(self, store):
        newest_file(store).write_bytes(b"RPCK")
        with pytest.raises(CheckpointError, match="truncated"):
            store.latest()

    def test_previous_checkpoint_restorable(self, store):
        path = newest_file(store)
        path.write_bytes(path.read_bytes()[:-7])
        ckpt = store.latest_valid()
        assert ckpt is not None
        assert ckpt.step == 1
        assert ckpt.state()["step"] == 1


class TestChecksumMismatch:
    def flip_payload_byte(self, store):
        path = newest_file(store)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF  # corrupt payload, header stays plausible
        path.write_bytes(bytes(blob))

    def test_latest_fails_closed(self, store):
        self.flip_payload_byte(store)
        with pytest.raises(CheckpointError, match="integrity"):
            store.latest()

    def test_previous_checkpoint_restorable(self, store):
        self.flip_payload_byte(store)
        ckpt = store.latest_valid()
        assert ckpt is not None and ckpt.step == 1

    def test_bad_magic_fails_closed(self, store):
        path = newest_file(store)
        blob = bytearray(path.read_bytes())
        blob[:4] = b"JUNK"
        path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointError, match="magic"):
            store.latest()


class TestPartialWriteTmpFile:
    def test_stale_tmp_never_restored(self, store):
        # A crash between write and rename leaves ckpt_*.tmp behind; it
        # must be invisible to every restore path.
        tmp = store.directory / "ckpt_00000099.tmp"
        tmp.write_bytes(b"RPCK garbage from a torn write")
        assert store.latest().step == 2
        assert store.latest_valid().step == 2
        assert store.steps() == (1, 2)

    def test_stale_tmp_swept_on_next_save(self, store):
        tmp = store.directory / "ckpt_00000099.tmp"
        tmp.write_bytes(b"torn")
        store.save(make_ckpt(3))
        assert not tmp.exists()
        assert store.latest().step == 3


class TestAllCorrupt:
    def test_latest_valid_returns_none(self, tmp_path):
        store = DirectoryCheckpointStore(tmp_path, keep_last=3)
        store.save(make_ckpt(1))
        for path in tmp_path.glob("ckpt_*.rpck"):
            path.write_bytes(b"RPCK")
        assert store.latest_valid() is None
