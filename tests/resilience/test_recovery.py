"""Failure-aware repartitioning and the chaos-invariance acceptance test.

The centerpiece is *partition invariance under fire*: a distributed run
that loses 2 of 8 nodes mid-run (and gets them back later) restores the
latest checkpoint, repartitions over the survivors, replays the lost
steps, and still finishes bitwise identical to the sequential run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.amr.ghost import GhostFiller
from repro.amr.hierarchy import GridHierarchy
from repro.amr.integrator import BergerOligerIntegrator
from repro.cluster import Cluster
from repro.kernels.advection import AdvectionKernel
from repro.monitor.service import ResourceMonitor
from repro.partition import ACEHeterogeneous
from repro.partition.capacity import CapacityCalculator
from repro.resilience.checkpoint import MemoryCheckpointStore, ResilienceConfig
from repro.runtime.distributed import DistributedAmrRun, DistributedRunConfig
from repro.runtime.experiment import chaos_experiment
from repro.runtime.pipeline import RepartitionPipeline
from repro.runtime.timemodel import TimeModel
from repro.telemetry import Tracer, fault_summary
from repro.telemetry.spans import NULL_TRACER
from repro.util.errors import ExperimentError, ResilienceError
from repro.util.geometry import Box, BoxList


def make_pipeline(num_nodes: int = 4) -> RepartitionPipeline:
    cluster = Cluster.homogeneous(num_nodes)
    monitor = ResourceMonitor(cluster)
    return RepartitionPipeline(
        cluster=cluster,
        partitioner=ACEHeterogeneous(),
        monitor=monitor,
        capacity=CapacityCalculator(),
        time_model=TimeModel(cluster),
        tracer=NULL_TRACER,
    )


def strip_boxes(n: int = 8) -> BoxList:
    width = 32 // n
    return BoxList(
        [Box((k * width, 0), ((k + 1) * width, 32)) for k in range(n)]
    )


def uniform(num_nodes: int) -> np.ndarray:
    return np.full(num_nodes, 1.0 / num_nodes)


class TestPipelineRecovery:
    def test_needs_recovery_tracks_dead_owners(self):
        pipe = make_pipeline(4)
        assert not pipe.needs_recovery()  # nothing assigned yet
        pipe.repartition(strip_boxes(), uniform(4))
        assert not pipe.needs_recovery()
        pipe.cluster.mark_down(1)
        assert pipe.dead_owner_ranks() == (1,)
        assert pipe.needs_recovery()
        # A down node that owns nothing is not a recovery condition.
        pipe.cluster.mark_up(1)
        pipe.cluster.mark_down(3)
        owned = {rank for _, rank in pipe.prev_assignment}
        if 3 not in owned:
            assert not pipe.needs_recovery()

    def test_recover_assigns_only_to_live_ranks(self):
        pipe = make_pipeline(4)
        pipe.repartition(strip_boxes(), uniform(4))
        pipe.cluster.mark_down(0)
        pipe.cluster.mark_down(2)
        out = pipe.recover(strip_boxes(), uniform(4))
        assert set(out.owners.values()) <= {1, 3}
        # Targets stay num_nodes-sized with zeros at the dead ranks.
        assert out.targets.shape == (4,)
        assert out.targets[0] == 0.0
        assert out.targets[2] == 0.0
        assert out.targets.sum() == pytest.approx(out.loads.sum())
        assert out.loads[0] == 0.0 and out.loads[2] == 0.0
        assert not pipe.needs_recovery()  # dead ranks evacuated

    def test_recover_charges_evacuation_to_storage(self):
        """Orphaned cells read from checkpoint storage, not the dead NIC."""
        slow = make_pipeline(2)
        fast = make_pipeline(2)
        for pipe in (slow, fast):
            pipe.repartition(strip_boxes(), uniform(2))
            pipe.cluster.mark_down(0)
        t0 = slow.cluster.clock.now
        out = slow.recover(
            strip_boxes(), uniform(2), storage_bandwidth_mbps=1.0
        )
        slow_seconds = slow.cluster.clock.now - t0
        fast.recover(strip_boxes(), uniform(2), storage_bandwidth_mbps=1e6)
        assert out.migration_bytes > 0
        assert out.migration_seconds > 0
        assert slow_seconds == pytest.approx(out.migration_seconds)
        assert out.migration_seconds > fast.last.migration_seconds

    def test_recover_grows_back_over_recovered_nodes(self):
        pipe = make_pipeline(4)
        pipe.repartition(strip_boxes(), uniform(4))
        pipe.cluster.mark_down(1)
        pipe.recover(strip_boxes(), uniform(4))
        pipe.cluster.mark_up(1)
        out = pipe.recover(strip_boxes(), uniform(4))
        assert 1 in set(out.owners.values())
        assert (out.targets > 0).all()

    def test_recover_with_no_survivors_raises(self):
        pipe = make_pipeline(2)
        pipe.repartition(strip_boxes(), uniform(2))
        pipe.cluster.mark_down(0)
        pipe.cluster.mark_down(1)
        with pytest.raises(ResilienceError):
            pipe.recover(strip_boxes(), uniform(2))


def advection_hierarchy() -> GridHierarchy:
    k = AdvectionKernel(
        velocity=(1.0, 0.5), pulse_center=(8.0, 8.0), pulse_width=2.0
    )
    return GridHierarchy(Box((0, 0), (32, 32)), k, max_levels=3)


def sequential_solution(steps: int) -> np.ndarray:
    h = advection_hierarchy()
    integ = BergerOligerIntegrator(h, regrid_interval=3)
    integ.setup()
    for _ in range(steps):
        integ.advance()
    return GhostFiller(h).fetch(h.domain, 0)


class TestResilientDistributedRun:
    def test_resilience_without_faults_is_inert(self):
        """Checkpointing on, faults off: same bits, zero recoveries."""
        ref = sequential_solution(steps=6)
        h = advection_hierarchy()
        run = DistributedAmrRun(
            h,
            Cluster.homogeneous(4),
            ACEHeterogeneous(),
            config=DistributedRunConfig(steps=6, regrid_interval=3),
            resilience=ResilienceConfig(checkpoint_interval=2),
        )
        result = run.run()
        np.testing.assert_array_equal(GhostFiller(h).fetch(h.domain, 0), ref)
        assert result.num_recoveries == 0
        assert result.num_restores == 0
        assert result.replayed_steps == 0
        assert result.num_checkpoints >= 2  # initial + cadence saves

    def test_checkpoint_io_lands_on_the_clock(self):
        def total(charge_io: bool) -> float:
            h = advection_hierarchy()
            run = DistributedAmrRun(
                h,
                Cluster.homogeneous(4),
                ACEHeterogeneous(),
                config=DistributedRunConfig(steps=4, regrid_interval=3),
                resilience=ResilienceConfig(
                    checkpoint_interval=1,
                    store=MemoryCheckpointStore(),
                    charge_io_time=charge_io,
                ),
            )
            result = run.run()
            if charge_io:
                assert result.checkpoint_seconds > 0
            return result.total_seconds

        assert total(True) > total(False)


class TestChaosInvariance:
    """The acceptance test: kill 2 of 8 nodes mid-run, recover, verify."""

    def test_kill_and_recover_is_bitwise_identical(self):
        tracer = Tracer()
        stats = chaos_experiment(
            num_nodes=8, steps=12, kill=2, seed=7, tracer=tracer
        )
        assert stats["bitwise_identical"]
        assert stats["killed_nodes"] == [0, 1]
        assert stats["num_checkpoints"] >= 1
        assert stats["num_restores"] >= 1
        assert stats["num_recoveries"] >= 1
        assert stats["replayed_steps"] >= 1
        # Every planned fault was applied.
        assert len(stats["applied_events"]) == stats["plan_events"]
        # Time-to-recover is measured and positive.
        assert stats["mean_time_to_recover_s"] is not None
        assert stats["mean_time_to_recover_s"] > 0
        # The fault/recovery stream landed in telemetry.
        summary = fault_summary(tracer.events)
        assert summary["counts"]["fault.node_crash"] == 2
        assert summary["counts"]["recovery.node_up"] == 2
        assert summary["num_recovery_events"] >= 1

    def test_chaos_stats_replay_identically(self):
        keys = (
            "outage_at_s",
            "outage_duration_s",
            "chaos_seconds",
            "recovery_seconds",
            "replayed_steps",
            "num_restores",
        )
        a = chaos_experiment(num_nodes=4, steps=9, kill=1, seed=3)
        b = chaos_experiment(num_nodes=4, steps=9, kill=1, seed=3)
        assert a["bitwise_identical"] and b["bitwise_identical"]
        for key in keys:
            assert a[key] == b[key], key

    def test_kill_count_guard(self):
        with pytest.raises(ExperimentError):
            chaos_experiment(num_nodes=4, kill=0)
        with pytest.raises(ExperimentError):
            chaos_experiment(num_nodes=4, kill=4)
