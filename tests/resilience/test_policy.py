"""Tests for probe retry/backoff and the failure-escalation ladder."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster
from repro.monitor.service import ResourceMonitor
from repro.resilience.policy import (
    BackoffPolicy,
    EscalationPolicy,
    NodeProbeStatus,
    ProbeRetryPolicy,
)
from repro.telemetry import Tracer
from repro.util.errors import ResilienceError


class TestBackoffPolicy:
    def test_guards(self):
        with pytest.raises(ResilienceError):
            BackoffPolicy(base_s=0.0)
        with pytest.raises(ResilienceError):
            BackoffPolicy(factor=0.5)
        with pytest.raises(ResilienceError):
            BackoffPolicy(base_s=1.0, max_s=0.5)
        with pytest.raises(ResilienceError):
            BackoffPolicy(jitter=1.0)
        with pytest.raises(ResilienceError):
            BackoffPolicy().delay(0, 0)

    def test_deterministic(self):
        """Same (node, attempt, seed) -> bit-identical delay; no RNG state."""
        p = BackoffPolicy(seed=42)
        q = BackoffPolicy(seed=42)
        for node in range(4):
            for attempt in (1, 2, 3):
                assert p.delay(node, attempt) == q.delay(node, attempt)

    def test_seed_and_node_vary_jitter(self):
        p = BackoffPolicy(seed=0)
        assert p.delay(0, 1) != BackoffPolicy(seed=1).delay(0, 1)
        assert p.delay(0, 1) != p.delay(1, 1)

    def test_exponential_growth_capped(self):
        p = BackoffPolicy(base_s=0.1, factor=2.0, max_s=0.5, jitter=0.0)
        assert p.delay(0, 1) == pytest.approx(0.1)
        assert p.delay(0, 2) == pytest.approx(0.2)
        assert p.delay(0, 3) == pytest.approx(0.4)
        assert p.delay(0, 4) == pytest.approx(0.5)  # capped
        assert p.delay(0, 9) == pytest.approx(0.5)

    def test_jitter_bounds(self):
        p = BackoffPolicy(base_s=0.1, factor=2.0, max_s=2.0, jitter=0.25)
        for node in range(8):
            for attempt in (1, 2, 3, 4):
                raw = min(0.1 * 2.0 ** (attempt - 1), 2.0)
                d = p.delay(node, attempt)
                assert raw * 0.75 <= d <= raw * 1.25


class TestEscalationPolicy:
    def test_threshold_guard(self):
        with pytest.raises(ResilienceError):
            EscalationPolicy(stale_after=0)
        with pytest.raises(ResilienceError):
            EscalationPolicy(stale_after=4, suspect_after=3)
        with pytest.raises(ResilienceError):
            EscalationPolicy(suspect_after=7, evict_after=6)

    def test_ladder(self):
        esc = EscalationPolicy(stale_after=1, suspect_after=3, evict_after=6)
        assert esc.classify(0) is NodeProbeStatus.HEALTHY
        assert esc.classify(1) is NodeProbeStatus.STALE
        assert esc.classify(2) is NodeProbeStatus.STALE
        assert esc.classify(3) is NodeProbeStatus.SUSPECT
        assert esc.classify(5) is NodeProbeStatus.SUSPECT
        assert esc.classify(6) is NodeProbeStatus.EVICTED
        assert esc.classify(100) is NodeProbeStatus.EVICTED

    def test_retry_policy_guard(self):
        with pytest.raises(ResilienceError):
            ProbeRetryPolicy(max_retries=-1)


def _retry_monitor(cluster: Cluster, tracer=None) -> ResourceMonitor:
    policy = ProbeRetryPolicy(
        backoff=BackoffPolicy(jitter=0.0),
        escalation=EscalationPolicy(
            stale_after=1, suspect_after=2, evict_after=3
        ),
        max_retries=1,
    )
    kwargs = {"retry_policy": policy}
    if tracer is not None:
        kwargs["tracer"] = tracer
    return ResourceMonitor(cluster, **kwargs)


class TestMonitorEscalation:
    """The ladder wired through real probe sweeps."""

    def test_failure_counts_accumulate_and_reset(self):
        cluster = Cluster.homogeneous(3)
        mon = _retry_monitor(cluster)
        mon.blackout_sensor(1)
        snap = mon.probe_all()
        assert snap.stale_nodes == (1,)
        assert snap.failure_counts == (0, 1, 0)
        snap = mon.probe_all()
        assert snap.failure_counts == (0, 2, 0)
        mon.restore_sensor(1)
        snap = mon.probe_all()
        assert snap.stale_nodes == ()
        assert snap.failure_counts == (0, 0, 0)

    def test_escalates_to_evicted_and_recovers(self):
        cluster = Cluster.homogeneous(3)
        tracer = Tracer()
        mon = _retry_monitor(cluster, tracer=tracer)
        mon.blackout_sensor(2)
        mon.probe_all()
        assert mon.node_status(2) is NodeProbeStatus.STALE
        mon.probe_all()
        assert mon.node_status(2) is NodeProbeStatus.SUSPECT
        mon.probe_all()
        assert mon.node_status(2) is NodeProbeStatus.EVICTED
        assert mon.evicted_nodes == (2,)
        assert list(mon.trusted_mask()) == [True, True, False]
        names = [e.name for e in tracer.events]
        assert "fault.probe_suspect" in names
        assert "fault.probe_evicted" in names
        # One good sweep resets the ladder -- eviction is not a ban.
        mon.restore_sensor(2)
        mon.probe_all()
        assert mon.node_status(2) is NodeProbeStatus.HEALTHY
        assert mon.evicted_nodes == ()
        assert bool(mon.trusted_mask().all())
        assert "recovery.probe_healthy" in [e.name for e in tracer.events]

    def test_retry_delays_charged_to_overhead(self):
        cluster = Cluster.homogeneous(2)
        mon = _retry_monitor(cluster)
        base = mon.sweep_overhead_seconds()
        assert mon.probe_all().overhead_seconds == pytest.approx(base)
        mon.blackout_sensor(0)
        # 3 metrics x 1 retry x 0.05 s base backoff on the dark node.
        snap = mon.probe_all()
        assert snap.overhead_seconds == pytest.approx(base + 3 * 0.05)

    def test_down_node_probes_fail(self):
        cluster = Cluster.homogeneous(2)
        mon = _retry_monitor(cluster)
        mon.probe_all()
        cluster.mark_down(1)
        snap = mon.probe_all()
        assert snap.stale_nodes == (1,)
        assert snap.failure_counts == (0, 1)

    def test_no_policy_keeps_carry_forward_only(self):
        cluster = Cluster.homogeneous(2)
        mon = ResourceMonitor(cluster)
        mon.blackout_sensor(0)
        for _ in range(10):
            snap = mon.probe_all()
        assert snap.failure_counts == (10, 0)
        # Without a retry policy nothing escalates.
        assert mon.node_status(0) is NodeProbeStatus.HEALTHY
        assert bool(mon.trusted_mask().all())
