"""Tests for declarative, seeded fault injection."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster
from repro.monitor.service import ResourceMonitor
from repro.resilience.chaos import FaultEvent, FaultInjector, FaultPlan
from repro.telemetry import Tracer
from repro.util.errors import ResilienceError


class TestFaultEvent:
    def test_validation(self):
        with pytest.raises(ResilienceError):
            FaultEvent(time=1.0, kind="meteor_strike", node=0)
        with pytest.raises(ResilienceError):
            FaultEvent(time=-1.0, kind="node_crash", node=0)
        with pytest.raises(ResilienceError):
            FaultEvent(time=1.0, kind="node_crash", node=-1)
        with pytest.raises(ResilienceError):
            FaultEvent(time=1.0, kind="link_degrade", node=0, factor=0.0)
        with pytest.raises(ResilienceError):
            FaultEvent(time=1.0, kind="link_degrade", node=0, factor=1.5)
        # Valid events construct fine.
        FaultEvent(time=0.0, kind="node_crash", node=0)
        FaultEvent(time=1.0, kind="link_degrade", node=1, factor=0.5)


class TestFaultPlan:
    def test_validate_against_cluster_size(self):
        plan = FaultPlan(
            events=(FaultEvent(time=1.0, kind="node_crash", node=7),)
        )
        plan.validate(num_nodes=8)
        with pytest.raises(ResilienceError):
            plan.validate(num_nodes=4)

    def test_horizon_and_kinds(self):
        plan = FaultPlan.node_outage([0, 1], at=2.0, duration=3.0)
        assert plan.horizon == 5.0
        assert plan.kinds() == {"node_crash": 2, "node_recover": 2}
        assert FaultPlan(events=()).horizon == 0.0

    def test_node_outage_builder(self):
        plan = FaultPlan.node_outage([3], at=1.0, duration=2.0, seed=9)
        assert plan.seed == 9
        assert [(e.time, e.kind, e.node) for e in plan.events] == [
            (1.0, "node_crash", 3),
            (3.0, "node_recover", 3),
        ]
        # duration=None means the nodes never come back.
        forever = FaultPlan.node_outage([0, 1], at=1.0)
        assert forever.kinds() == {"node_crash": 2}
        with pytest.raises(ResilienceError):
            FaultPlan.node_outage([0], at=1.0, duration=0.0)

    def test_random_plan_is_seeded(self):
        a = FaultPlan.random(num_nodes=8, horizon_s=100.0, seed=3)
        b = FaultPlan.random(num_nodes=8, horizon_s=100.0, seed=3)
        c = FaultPlan.random(num_nodes=8, horizon_s=100.0, seed=4)
        assert a.events == b.events
        assert a.events != c.events

    def test_random_plan_leaves_a_survivor(self):
        plan = FaultPlan.random(
            num_nodes=4, horizon_s=10.0, seed=0, num_crashes=99
        )
        crashed = {e.node for e in plan.events if e.kind == "node_crash"}
        assert len(crashed) <= 3
        plan.validate(num_nodes=4)
        assert plan.horizon <= 10.0

    def test_random_plan_guards(self):
        with pytest.raises(ResilienceError):
            FaultPlan.random(num_nodes=0, horizon_s=10.0)
        with pytest.raises(ResilienceError):
            FaultPlan.random(num_nodes=4, horizon_s=0.0)


def _run_plan(plan: FaultPlan, horizon: float = 20.0):
    """Arm ``plan`` on a fresh 4-node cluster and play it to ``horizon``."""
    cluster = Cluster.homogeneous(4)
    monitor = ResourceMonitor(cluster)
    tracer = Tracer()
    inj = FaultInjector(cluster, monitor=monitor, tracer=tracer)
    inj.arm(plan)
    cluster.clock.advance_to(horizon)
    return cluster, monitor, inj, tracer


class TestFaultInjector:
    def test_applies_crash_and_recovery_in_order(self):
        plan = FaultPlan.node_outage([1, 2], at=2.0, duration=3.0)
        cluster, _, inj, _ = _run_plan(plan)
        assert inj.applied == [
            (2.0, "node_crash", 1),
            (2.0, "node_crash", 2),
            (5.0, "node_recover", 1),
            (5.0, "node_recover", 2),
        ]
        assert cluster.down_nodes == ()

    def test_crash_takes_effect_at_event_time(self):
        plan = FaultPlan.node_outage([0], at=2.0, duration=3.0)
        cluster = Cluster.homogeneous(2)
        FaultInjector(cluster).arm(plan)
        cluster.clock.advance_to(3.0)
        assert not cluster.is_up(0)
        assert cluster.down_since(0) == 2.0
        assert cluster.state_of(0).cpu_available == 0.0
        cluster.clock.advance_to(6.0)
        assert cluster.is_up(0)

    def test_sensor_and_link_faults(self):
        plan = FaultPlan(
            events=(
                FaultEvent(time=1.0, kind="sensor_blackout", node=0),
                FaultEvent(
                    time=1.0, kind="link_degrade", node=1, factor=0.25
                ),
                FaultEvent(time=4.0, kind="sensor_restore", node=0),
                FaultEvent(time=4.0, kind="link_restore", node=1),
            )
        )
        cluster, monitor, _, _ = _run_plan(plan, horizon=2.0)
        assert monitor.blacked_out_nodes == (0,)
        assert cluster.link_derate(1) == 0.25
        cluster.clock.advance_to(10.0)
        assert monitor.blacked_out_nodes == ()
        assert cluster.link_derate(1) == 1.0

    def test_double_arm_rejected(self):
        cluster = Cluster.homogeneous(2)
        inj = FaultInjector(cluster)
        inj.arm(FaultPlan(events=()))
        with pytest.raises(ResilienceError):
            inj.arm(FaultPlan(events=()))

    def test_past_event_rejected(self):
        cluster = Cluster.homogeneous(2)
        cluster.clock.advance(5.0)
        inj = FaultInjector(cluster)
        with pytest.raises(ResilienceError):
            inj.arm(FaultPlan.node_outage([0], at=1.0))

    def test_plan_must_fit_cluster(self):
        inj = FaultInjector(Cluster.homogeneous(2))
        with pytest.raises(ResilienceError):
            inj.arm(FaultPlan.node_outage([5], at=1.0))

    def test_replay_is_bit_for_bit(self):
        """Same plan, fresh cluster -> identical applied + telemetry streams."""
        plan = FaultPlan.random(
            num_nodes=4, horizon_s=15.0, seed=11, num_crashes=2
        )
        runs = [_run_plan(plan) for _ in range(2)]
        applied_a, applied_b = runs[0][2].applied, runs[1][2].applied
        assert applied_a == applied_b
        streams = [
            [(e.name, dict(e.attributes), e.sim) for e in tracer.events]
            for _, _, _, tracer in runs
        ]
        assert streams[0] == streams[1]
        assert len(applied_a) == len(plan.events)

    def test_telemetry_event_names_and_attrs(self):
        plan = FaultPlan(
            events=(
                FaultEvent(time=1.0, kind="node_crash", node=2),
                FaultEvent(
                    time=2.0, kind="link_degrade", node=0, factor=0.5
                ),
            ),
            seed=13,
        )
        _, _, _, tracer = _run_plan(plan, horizon=5.0)
        named = {e.name: e.attributes for e in tracer.events}
        assert named["fault.node_crash"]["node"] == 2
        assert named["fault.node_crash"]["plan_seed"] == 13
        assert named["fault.link_degraded"]["factor"] == 0.5
