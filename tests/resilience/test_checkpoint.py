"""Tests for versioned, checksummed checkpoint/restart."""

from __future__ import annotations

import numpy as np
import pytest

from repro.amr.ghost import GhostFiller
from repro.amr.hierarchy import GridHierarchy
from repro.amr.integrator import BergerOligerIntegrator
from repro.kernels.advection import AdvectionKernel
from repro.resilience.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    Checkpoint,
    CheckpointManager,
    DirectoryCheckpointStore,
    MemoryCheckpointStore,
    ResilienceConfig,
    hierarchy_state,
    restore_hierarchy_state,
)
from repro.telemetry import Tracer
from repro.util.errors import CheckpointError
from repro.util.geometry import Box
from repro.util.hashing import checksum_bytes


def small_hierarchy() -> GridHierarchy:
    k = AdvectionKernel(
        velocity=(1.0, 0.5), pulse_center=(8.0, 8.0), pulse_width=2.0
    )
    return GridHierarchy(Box((0, 0), (32, 32)), k, max_levels=3)


def stepped(steps: int = 4) -> tuple[GridHierarchy, BergerOligerIntegrator]:
    h = small_hierarchy()
    integ = BergerOligerIntegrator(h, regrid_interval=3)
    integ.setup()
    for _ in range(steps):
        integ.advance()
    return h, integ


class TestHierarchyState:
    def test_roundtrip_is_bitwise(self):
        h, integ = stepped(4)
        state = hierarchy_state(h)
        saved = GhostFiller(h).fetch(h.domain, 0).copy()
        saved_time, saved_steps = h.time, h.step_count
        # Keep stepping: the live hierarchy diverges from the snapshot.
        integ.advance()
        integ.advance()
        assert h.step_count == saved_steps + 2
        restore_hierarchy_state(h, state)
        assert h.time == saved_time
        assert h.step_count == saved_steps
        np.testing.assert_array_equal(GhostFiller(h).fetch(h.domain, 0), saved)

    def test_restored_run_replays_identically(self):
        """Restore + replay-forward reproduces the undisturbed solution."""
        h_ref, integ_ref = stepped(8)
        ref = GhostFiller(h_ref).fetch(h_ref.domain, 0)

        h, integ = stepped(4)
        state = hierarchy_state(h)
        integ.advance()  # lose a step, then rewind past it
        restore_hierarchy_state(h, state)
        for _ in range(4):
            integ.advance()
        np.testing.assert_array_equal(GhostFiller(h).fetch(h.domain, 0), ref)


class TestCheckpointBlob:
    def _ckpt(self, payload: bytes = b"hello world") -> Checkpoint:
        return Checkpoint(
            version=CHECKPOINT_FORMAT_VERSION,
            step=7,
            sim_time=1.25,
            clock_time=9.5,
            payload=payload,
            checksum=checksum_bytes(payload),
        )

    def test_bytes_roundtrip(self):
        ckpt = self._ckpt()
        back = Checkpoint.from_bytes(ckpt.to_bytes())
        assert back == ckpt
        assert back.nbytes == len(b"hello world")

    def test_truncated_blob_rejected(self):
        blob = self._ckpt().to_bytes()
        with pytest.raises(CheckpointError):
            Checkpoint.from_bytes(blob[:10])  # shorter than the header
        with pytest.raises(CheckpointError):
            Checkpoint.from_bytes(blob[:-3])  # payload shorter than promised

    def test_bad_magic_rejected(self):
        blob = bytearray(self._ckpt().to_bytes())
        blob[0:4] = b"XXXX"
        with pytest.raises(CheckpointError):
            Checkpoint.from_bytes(bytes(blob))

    def test_corrupted_payload_fails_integrity(self):
        ckpt = self._ckpt()
        corrupted = Checkpoint(
            version=ckpt.version,
            step=ckpt.step,
            sim_time=ckpt.sim_time,
            clock_time=ckpt.clock_time,
            payload=b"hello WORLD",
            checksum=ckpt.checksum,
        )
        with pytest.raises(CheckpointError):
            corrupted.verify()
        with pytest.raises(CheckpointError):
            corrupted.state()

    def test_wrong_version_rejected(self):
        payload = b"x"
        bad = Checkpoint(
            version=CHECKPOINT_FORMAT_VERSION + 1,
            step=0,
            sim_time=0.0,
            clock_time=0.0,
            payload=payload,
            checksum=checksum_bytes(payload),
        )
        with pytest.raises(CheckpointError):
            bad.verify()


def _dummy(step: int) -> Checkpoint:
    payload = f"snapshot-{step}".encode()
    return Checkpoint(
        version=CHECKPOINT_FORMAT_VERSION,
        step=step,
        sim_time=float(step),
        clock_time=float(step),
        payload=payload,
        checksum=checksum_bytes(payload),
    )


class TestStores:
    def test_memory_ring_keeps_last(self):
        store = MemoryCheckpointStore(keep_last=2)
        assert store.latest() is None
        for step in (1, 2, 3, 4):
            store.save(_dummy(step))
        assert store.steps() == (3, 4)
        assert store.latest().step == 4

    def test_memory_guard(self):
        with pytest.raises(CheckpointError):
            MemoryCheckpointStore(keep_last=0)

    def test_directory_store_roundtrip_and_prune(self, tmp_path):
        store = DirectoryCheckpointStore(tmp_path / "ckpts", keep_last=2)
        assert store.latest() is None
        for step in (1, 2, 3):
            store.save(_dummy(step))
        assert store.steps() == (2, 3)
        latest = store.latest()
        assert latest.step == 3
        latest.verify()  # integrity survives the disk roundtrip
        # No temp files survive the atomic publish.
        assert not list((tmp_path / "ckpts").glob("*.tmp"))
        # A fresh store over the same directory sees the same snapshots.
        again = DirectoryCheckpointStore(tmp_path / "ckpts", keep_last=2)
        assert again.steps() == (2, 3)

    def test_directory_guard(self, tmp_path):
        with pytest.raises(CheckpointError):
            DirectoryCheckpointStore(tmp_path, keep_last=0)


class TestResilienceConfig:
    def test_guards(self):
        with pytest.raises(CheckpointError):
            ResilienceConfig(checkpoint_interval=0)
        with pytest.raises(CheckpointError):
            ResilienceConfig(storage_bandwidth_mbps=0.0)


class TestCheckpointManager:
    def test_due_cadence(self):
        mgr = CheckpointManager(ResilienceConfig(checkpoint_interval=3))
        assert [s for s in range(10) if mgr.due(s)] == [3, 6, 9]

    def test_io_seconds(self):
        mgr = CheckpointManager(
            ResilienceConfig(storage_bandwidth_mbps=400.0)
        )
        # 400 Mbit/s = 50 MB/s; 50 MB takes 1 s.
        assert mgr.io_seconds(50_000_000) == pytest.approx(1.0)

    def test_save_restore_roundtrip(self):
        h, integ = stepped(4)
        assignment = [(box, k % 3) for k, box in enumerate(h.box_list())]
        tracer = Tracer()
        mgr = CheckpointManager(ResilienceConfig(), tracer=tracer)
        ckpt = mgr.save(h, assignment, clock_time=2.5)
        assert ckpt.step == h.step_count
        saved = GhostFiller(h).fetch(h.domain, 0).copy()
        integ.advance()
        back, restored_assignment = mgr.restore_latest(h)
        assert back.step == ckpt.step
        assert restored_assignment == assignment
        np.testing.assert_array_equal(GhostFiller(h).fetch(h.domain, 0), saved)
        assert mgr.num_saves == 1
        assert mgr.num_restores == 1
        names = [e.name for e in tracer.events]
        assert "checkpoint.save" in names
        assert "recovery.restore" in names

    def test_none_assignment_roundtrips(self):
        h, _ = stepped(2)
        mgr = CheckpointManager(ResilienceConfig())
        mgr.save(h, None, clock_time=0.0)
        _, assignment = mgr.restore_latest(h)
        assert assignment is None

    def test_restore_from_empty_store_raises(self):
        h, _ = stepped(1)
        mgr = CheckpointManager(ResilienceConfig())
        with pytest.raises(CheckpointError):
            mgr.restore_latest(h)
