"""Policy tests: adaptive sensing, payoff gate, LearnController."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.learn import (
    AdaptiveSensingPolicy,
    ExecutionHistoryStore,
    LearnConfig,
    LearnController,
    NULL_LEARNER,
    RepartitionGate,
)
from repro.runtime.timemodel import IterationCost
from repro.util.errors import ExperimentError


def cost(compute, sync: float = 0.1) -> IterationCost:
    compute = np.asarray(compute, dtype=float)
    comm = np.zeros_like(compute)
    return IterationCost(
        compute=compute,
        comm=comm,
        sync=sync,
        total=float(compute.max()) + sync,
    )


class TestConfig:
    def test_defaults_valid(self):
        cfg = LearnConfig()
        assert cfg.fallback_interval == 20

    @pytest.mark.parametrize(
        "kw",
        [
            {"fallback_interval": 0},
            {"min_interval": 0},
            {"max_interval": 1, "min_interval": 5},
            {"drift_tolerance": 0.0},
            {"gate_safety": -1.0},
            {"forecast_lead": -0.5},
        ],
    )
    def test_bad_values_rejected(self, kw):
        with pytest.raises(ExperimentError):
            LearnConfig(**kw)


class TestSensingPolicy:
    def test_cold_falls_back_to_paper_f(self):
        policy = AdaptiveSensingPolicy(LearnConfig(fallback_interval=20))
        assert policy.interval(0.0, 1.0) == (20, False)
        assert policy.interval(0.01, 0.0) == (20, False)

    def test_fast_drift_shortens_interval(self):
        cfg = LearnConfig(drift_tolerance=0.02)
        policy = AdaptiveSensingPolicy(cfg)
        slow, fitted_a = policy.interval(1e-4, 1.0)
        fast, fitted_b = policy.interval(1e-2, 1.0)
        assert fitted_a and fitted_b
        assert fast < slow
        assert cfg.min_interval <= fast <= slow <= cfg.max_interval

    def test_clamped_to_bounds(self):
        cfg = LearnConfig(min_interval=2, max_interval=40)
        policy = AdaptiveSensingPolicy(cfg)
        assert policy.interval(1e3, 1.0)[0] == 2
        assert policy.interval(1e-12, 1.0)[0] == 40

    def test_deterministic(self):
        policy = AdaptiveSensingPolicy(LearnConfig())
        assert policy.interval(0.003, 0.7) == policy.interval(0.003, 0.7)


class TestGate:
    def test_cold_always_repartitions(self):
        gate = RepartitionGate(LearnConfig())
        d = gate.decide(
            loads=np.array([1.0, 5.0]),
            capacities=np.array([0.5, 0.5]),
            horizon_iters=5,
            beta=None,
            migration_seconds=None,
        )
        assert d.repartition and d.reason == "cold"

    def test_balanced_load_skips(self):
        gate = RepartitionGate(LearnConfig())
        d = gate.decide(
            loads=np.array([5.0, 5.0]),
            capacities=np.array([0.5, 0.5]),
            horizon_iters=10,
            beta=1.0,
            migration_seconds=0.5,
        )
        assert not d.repartition and d.reason == "skip"
        assert d.payoff_seconds == pytest.approx(0.0)

    def test_imbalance_beyond_cost_repartitions(self):
        gate = RepartitionGate(LearnConfig())
        # Bottleneck 8/0.5 = 16 vs total 10: 6 excess work units.
        d = gate.decide(
            loads=np.array([8.0, 2.0]),
            capacities=np.array([0.5, 0.5]),
            horizon_iters=10,
            beta=0.1,
            migration_seconds=0.5,
        )
        assert d.repartition and d.reason == "payoff"
        assert d.payoff_seconds == pytest.approx(6.0)
        assert d.cost_seconds == pytest.approx(0.5)

    def test_cold_gate_event_round_trips_infinite_payoff(self):
        """The learn.gate event keeps inf via the "inf" sentinel.

        Regression test: the old ``math.isfinite`` special-case dropped
        a cold gate's infinite payoff to null in the trace, so a trace
        reader could not tell a cold accept from a zero-payoff one.
        """
        import json

        from repro.learn import decode_float
        from repro.telemetry.spans import Tracer

        tracer = Tracer()
        learn = LearnController(LearnConfig())
        learn.bind(tracer, 2)
        d = learn.repartition_decision(
            np.array([1.0, 5.0]), np.array([0.5, 0.5]), 5
        )
        assert d.reason == "cold" and math.isinf(d.payoff_seconds)
        (event,) = [e for e in tracer.events if e.name == "learn.gate"]
        # Through a JSON round trip -- the trace file is the contract.
        attrs = json.loads(json.dumps(event.attributes))
        assert attrs["payoff_seconds"] == "inf"
        assert decode_float(attrs["payoff_seconds"]) == math.inf
        assert decode_float(attrs["cost_seconds"]) == 0.0

    def test_safety_factor_scales_cost(self):
        loose = RepartitionGate(LearnConfig(gate_safety=1.0))
        strict = RepartitionGate(LearnConfig(gate_safety=100.0))
        kwargs = dict(
            loads=np.array([8.0, 2.0]),
            capacities=np.array([0.5, 0.5]),
            horizon_iters=10,
            beta=0.1,
            migration_seconds=0.5,
        )
        assert loose.decide(**kwargs).repartition
        assert not strict.decide(**kwargs).repartition


class TestController:
    def make_warm(self, history=None) -> LearnController:
        learn = LearnController(history=history)
        learn.bind(None, 2)
        for it in range(8):
            loads = np.array([10.0 + it, 10.0 - it])
            caps = np.array([0.5, 0.5])
            learn.observe_sense(float(it), caps, 0.2)
            learn.observe_iteration(
                it, float(it), loads, caps, cost([1.0 + 0.1 * it, 1.0])
            )
            learn.observe_repartition(float(it), 0.3, 1024)
        return learn

    def test_cold_controller_uses_fallback_everywhere(self):
        learn = LearnController()
        learn.bind(None, 4)
        assert learn.sensing_interval() == 20
        d = learn.repartition_decision(
            np.array([1.0, 9.0]), np.array([0.5, 0.5]), 5
        )
        assert d.repartition and d.reason == "cold"
        caps = np.array([0.3, 0.7])
        out = learn.effective_capacities(caps, 0.0)
        assert out is caps  # pass-through while cold

    def test_warm_controller_fits_models(self):
        learn = self.make_warm()
        s = learn.summary()
        assert not s["migration_model"]["cold"]
        assert not s["probe_model"]["cold"]
        assert not s["capacity_model"]["cold"]
        assert s["migration_model"]["mean_seconds"] == pytest.approx(0.3)

    def test_sense_due_respects_interval(self):
        learn = LearnController()
        learn.bind(None, 2)
        assert not learn.sense_due(0, 0)
        assert not learn.sense_due(19, 0)
        assert learn.sense_due(20, 0)

    def test_history_rows_recorded(self, tmp_path):
        store = ExecutionHistoryStore(tmp_path / "h")
        self.make_warm(history=store)
        phases = set(store.phases())
        assert {"sense", "compute", "iteration", "migrate"} <= phases
        reopened = ExecutionHistoryStore(tmp_path / "h")
        assert len(reopened) == len(store)

    def test_warm_start_restores_fit(self, tmp_path):
        store = ExecutionHistoryStore(tmp_path / "h")
        warm = self.make_warm(history=store)
        fresh = LearnController()
        fresh.bind(None, 2)
        counts = fresh.warm_start(ExecutionHistoryStore(tmp_path / "h"))
        assert counts["iteration"] == 8
        assert counts["migrate"] == 8
        assert fresh.iter_model.slope == pytest.approx(
            warm.iter_model.slope
        )
        assert fresh.migration_model.mean == pytest.approx(
            warm.migration_model.mean
        )
        # Capacity transients are deliberately NOT warm-started.
        assert fresh.capacity_model.is_cold

    def test_null_learner_is_inert(self):
        assert not NULL_LEARNER.enabled
        NULL_LEARNER.bind(None, 8)  # must be a no-op, not raise
