"""Least-squares cost/capacity model tests (repro.learn.models)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.learn import (
    AmdahlCostModel,
    OnlineLinearModel,
    OnlineMeanModel,
    TransientCapacityModel,
)
from repro.util.errors import ExperimentError

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestOnlineLinear:
    def test_recovers_exact_line(self):
        m = OnlineLinearModel()
        for x in range(10):
            m.observe(x, 3.0 + 2.0 * x)
        assert not m.is_cold
        assert m.slope == pytest.approx(2.0)
        assert m.intercept == pytest.approx(3.0)
        assert m.predict(20.0) == pytest.approx(43.0)
        assert m.residual_variance() == pytest.approx(0.0, abs=1e-9)

    def test_matches_numpy_polyfit(self, rng):
        xs = rng.uniform(0, 100, size=50)
        ys = 1.5 + 0.25 * xs + rng.normal(0, 0.5, size=50)
        m = OnlineLinearModel()
        for x, y in zip(xs, ys):
            m.observe(x, y)
        slope, intercept = np.polyfit(xs, ys, 1)
        assert m.slope == pytest.approx(slope, rel=1e-9)
        assert m.intercept == pytest.approx(intercept, rel=1e-9)

    def test_cold_below_min_points(self):
        m = OnlineLinearModel(min_points=4)
        for x in range(3):
            m.observe(x, float(x))
        assert m.is_cold
        assert m.predict(99.0) == pytest.approx(1.0)  # running mean
        assert m.predict_interval(99.0) == (-math.inf, math.inf)

    def test_degenerate_x_stays_cold(self):
        m = OnlineLinearModel()
        for _ in range(10):
            m.observe(5.0, 1.0)
        assert m.is_cold

    def test_nonfinite_observation_dropped(self):
        m = OnlineLinearModel()
        m.observe(float("nan"), 1.0)
        m.observe(1.0, float("inf"))
        assert m.n == 0

    def test_interval_covers_truth_on_noisy_fit(self, rng):
        m = OnlineLinearModel()
        for x in range(40):
            m.observe(x, 2.0 + 0.5 * x + rng.normal(0, 0.1))
        lo, hi = m.slope_interval()
        assert lo < 0.5 < hi
        lo, hi = m.predict_interval(10.0)
        assert lo < 2.0 + 5.0 < hi

    def test_min_points_validated(self):
        with pytest.raises(ExperimentError):
            OnlineLinearModel(min_points=2)

    @given(
        points=st.lists(
            st.tuples(finite, finite), min_size=0, max_size=30
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_serialize_roundtrip_identical(self, points):
        """fit -> to_dict -> from_dict -> identical answers, bit-exact."""
        m = OnlineLinearModel()
        for x, y in points:
            m.observe(x, y)
        restored = OnlineLinearModel.from_dict(m.to_dict())
        assert restored.is_cold == m.is_cold
        assert restored.slope == m.slope
        assert restored.intercept == m.intercept
        assert restored.predict(12.5) == m.predict(12.5)
        assert restored.to_dict() == m.to_dict()

    @given(
        points=st.lists(
            st.tuples(finite, finite), min_size=0, max_size=30
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_json_roundtrip_refit_identical(self, points):
        """The dict survives an actual JSON encode/decode unchanged."""
        import json

        m = OnlineLinearModel()
        for x, y in points:
            m.observe(x, y)
        restored = OnlineLinearModel.from_dict(
            json.loads(json.dumps(m.to_dict()))
        )
        assert restored.to_dict() == m.to_dict()
        # Continue fitting both: they must stay in lockstep.
        m.observe(1.0, 2.0)
        restored.observe(1.0, 2.0)
        assert restored.slope == m.slope


class TestOnlineMean:
    def test_mean_and_interval(self):
        m = OnlineMeanModel()
        for v in (1.0, 2.0, 3.0, 4.0):
            m.observe(v)
        assert not m.is_cold
        assert m.mean == pytest.approx(2.5)
        lo, hi = m.interval()
        assert lo < 2.5 < hi

    def test_cold_interval_infinite(self):
        m = OnlineMeanModel(min_points=3)
        m.observe(1.0)
        assert m.is_cold
        assert m.interval() == (-math.inf, math.inf)

    @given(values=st.lists(finite, min_size=0, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_serialize_roundtrip(self, values):
        m = OnlineMeanModel()
        for v in values:
            m.observe(v)
        restored = OnlineMeanModel.from_dict(m.to_dict())
        assert restored.to_dict() == m.to_dict()
        assert restored.mean == m.mean


class TestAmdahl:
    def test_capacity_from_slope(self):
        m = AmdahlCostModel(phase="compute")
        # node 0: t = 1 + w/4  (capacity 4); node 1: t = 0.5 + w/2.
        for w in (10.0, 20.0, 30.0, 40.0):
            m.observe(0, w, 1.0 + w / 4.0)
            m.observe(1, w, 0.5 + w / 2.0)
        assert m.capacity(0) == pytest.approx(4.0)
        assert m.capacity(1) == pytest.approx(2.0)
        assert m.serial_seconds(0) == pytest.approx(1.0)
        assert not m.is_cold(0)
        assert m.is_cold(7)  # never observed

    def test_serialize_roundtrip(self):
        m = AmdahlCostModel(phase="compute")
        for w in range(1, 6):
            m.observe(2, float(w), 0.1 + 0.3 * w)
        restored = AmdahlCostModel.from_dict(m.to_dict())
        assert restored.to_dict() == m.to_dict()
        assert restored.predict(2, 10.0) == m.predict(2, 10.0)


class TestTransientCapacity:
    def test_predicts_linear_drift(self):
        m = TransientCapacityModel(num_nodes=2, window=8)
        # Node 0 ramps down, node 1 up; vectors renormalized on predict.
        for t in range(6):
            m.observe(float(t), [0.6 - 0.02 * t, 0.4 + 0.02 * t])
        assert not m.is_cold
        pred = m.predict(8.0)
        assert pred is not None
        assert pred.sum() == pytest.approx(1.0)
        assert pred[1] > pred[0] - 0.2  # node 1 catching up
        assert m.drift_rate() == pytest.approx(0.02, rel=0.05)

    def test_cold_returns_last_vector(self):
        m = TransientCapacityModel(num_nodes=2, window=8, min_points=4)
        assert m.predict(1.0) is None
        m.observe(0.0, [0.7, 0.3])
        pred = m.predict(5.0)
        assert pred == pytest.approx([0.7, 0.3])
        assert m.is_cold

    def test_floor_prevents_negative_capacity(self):
        m = TransientCapacityModel(num_nodes=2, window=8, floor=1e-3)
        for t in range(6):
            m.observe(float(t), [0.5 - 0.09 * t, 0.5 + 0.09 * t])
        pred = m.predict(50.0)  # extrapolates node 0 far below zero
        assert pred is not None
        assert (pred > 0.0).all()
        assert pred.sum() == pytest.approx(1.0)

    def test_window_evicts_old_observations(self):
        m = TransientCapacityModel(num_nodes=1, window=4)
        for t in range(10):
            m.observe(float(t), [1.0])
        assert len(m) == 4

    def test_serialize_roundtrip(self):
        m = TransientCapacityModel(num_nodes=3, window=6)
        rng = np.random.default_rng(0)
        for t in range(6):
            m.observe(float(t), rng.uniform(0.1, 0.5, size=3))
        restored = TransientCapacityModel.from_dict(m.to_dict())
        assert restored.to_dict() == m.to_dict()
        assert restored.predict(9.0) == pytest.approx(m.predict(9.0))

    def test_bad_shapes_rejected(self):
        m = TransientCapacityModel(num_nodes=2)
        with pytest.raises(ExperimentError):
            m.observe(0.0, [1.0, 2.0, 3.0])
        with pytest.raises(ExperimentError):
            TransientCapacityModel(num_nodes=0)
