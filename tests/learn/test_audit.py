"""Decision-ledger tests: durability, bit-exact replay, reconciliation.

The contract under test: the ledger is a *complete causal account* of
every adaptive decision.  Gate decisions must replay bit-exactly from
recorded inputs alone; prediction rows are captured before the measured
point folds into the model (honest out-of-sample coverage); and the
ledger must be decision-neutral -- attaching one never changes what the
runtime does.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.learn import (
    DecisionLedger,
    LearnConfig,
    LearnController,
    calibration,
    decode_float,
    encode_float,
    load_ledger_rows,
    oracle_replay,
    reconcile,
    replay_decision,
    verify_decision,
)
from repro.learn.audit import LEDGER_NAME, LEDGER_INDEX_NAME, RECORD_KINDS
from repro.runtime.timemodel import IterationCost
from repro.util.errors import ExperimentError


def cost(compute, sync: float = 0.1) -> IterationCost:
    compute = np.asarray(compute, dtype=float)
    return IterationCost(
        compute=compute,
        comm=np.zeros_like(compute),
        sync=sync,
        total=float(compute.max()) + sync,
    )


def drive(learn: LearnController, iters: int = 10, tracer=None) -> None:
    """Feed a controller enough observations to warm every model."""
    learn.bind(tracer, 2)
    for it in range(iters):
        loads = np.array([10.0 + it, 10.0 - it])
        caps = np.array([0.5, 0.5])
        learn.observe_sense(float(it), caps, 0.2)
        learn.observe_iteration(
            it, float(it), loads, caps, cost([1.0 + 0.1 * it, 1.0])
        )
        learn.observe_repartition(float(it), 0.3, 1024)


def canon(rows) -> list[str]:
    return [json.dumps(r, sort_keys=True) for r in rows]


class TestFloatSentinels:
    @pytest.mark.parametrize(
        "value,encoded",
        [
            (1.5, 1.5),
            (math.inf, "inf"),
            (-math.inf, "-inf"),
            (None, None),
        ],
    )
    def test_round_trip(self, value, encoded):
        assert encode_float(value) == encoded
        assert decode_float(encode_float(value)) == value

    def test_nan_round_trip(self):
        assert encode_float(math.nan) == "nan"
        assert math.isnan(decode_float("nan"))

    def test_survives_json(self):
        wire = json.dumps({"payoff": encode_float(math.inf)})
        assert decode_float(json.loads(wire)["payoff"]) == math.inf

    def test_unknown_sentinel_rejected(self):
        with pytest.raises(ExperimentError):
            decode_float("infinity")


class TestLedgerDurability:
    def fill(self, ledger: DecisionLedger, n: int = 8) -> None:
        for i in range(n):
            ledger.record(
                "prediction",
                iteration=i,
                t=float(i),
                x=10.0 * i,
                predicted=1.0,
                lo=0.9,
                hi=1.1,
                actual=1.0,
                cold=False,
            )

    def test_reopen_replays_identical_rows(self, tmp_path):
        ledger = DecisionLedger(tmp_path / "d")
        self.fill(ledger)
        rows = canon(ledger.rows())
        assert canon(DecisionLedger(tmp_path / "d").rows()) == rows

    def test_seq_is_monotonic(self, tmp_path):
        ledger = DecisionLedger(tmp_path / "d")
        self.fill(ledger, 5)
        assert [r["seq"] for r in ledger.rows()] == list(range(5))

    def test_interrupt_resume_byte_identical(self, tmp_path):
        a = DecisionLedger(tmp_path / "a")
        self.fill(a, 8)
        b = DecisionLedger(tmp_path / "b")
        self.fill(b, 4)
        b.checkpoint()
        resumed = DecisionLedger(tmp_path / "b")
        for i in range(4, 8):
            resumed.record(
                "prediction",
                iteration=i,
                t=float(i),
                x=10.0 * i,
                predicted=1.0,
                lo=0.9,
                hi=1.1,
                actual=1.0,
                cold=False,
            )
        assert (
            (tmp_path / "a" / LEDGER_NAME).read_bytes()
            == (tmp_path / "b" / LEDGER_NAME).read_bytes()
        )

    def test_torn_tail_truncated(self, tmp_path):
        ledger = DecisionLedger(tmp_path / "d")
        self.fill(ledger, 6)
        path = tmp_path / "d" / LEDGER_NAME
        path.write_bytes(path.read_bytes() + b'{"seq": 6, "kind": "ga')
        reopened = DecisionLedger(tmp_path / "d")
        assert len(reopened) == 6
        reopened.record("outcome", phase="sense", t=6.0, capacities=[1.0])
        assert [r["seq"] for r in DecisionLedger(tmp_path / "d").rows()] == (
            list(range(7))
        )

    def test_corrupt_index_ignored(self, tmp_path):
        ledger = DecisionLedger(tmp_path / "d")
        self.fill(ledger, 4)
        ledger.checkpoint()
        (tmp_path / "d" / LEDGER_INDEX_NAME).write_text("not json")
        assert len(DecisionLedger(tmp_path / "d")) == 4

    def test_unknown_kind_rejected(self, tmp_path):
        with pytest.raises(ExperimentError):
            DecisionLedger(tmp_path / "d").record("guess", value=1)
        assert "guess" not in RECORD_KINDS

    def test_rows_filter_and_get(self, tmp_path):
        ledger = DecisionLedger(tmp_path / "d")
        self.fill(ledger, 3)
        ledger.record("outcome", phase="migrate", t=9.0, seconds=0.5)
        assert len(ledger.rows("prediction")) == 3
        assert ledger.get(3)["kind"] == "outcome"
        with pytest.raises(ExperimentError):
            ledger.get(99)

    def test_load_ledger_rows_accepts_dir_and_file(self, tmp_path):
        ledger = DecisionLedger(tmp_path / "d")
        self.fill(ledger, 2)
        by_dir = load_ledger_rows(tmp_path / "d")
        by_file = load_ledger_rows(tmp_path / "d" / LEDGER_NAME)
        assert canon(by_dir) == canon(by_file) == canon(ledger.rows())

    def test_load_missing_ledger_raises(self, tmp_path):
        with pytest.raises(ExperimentError):
            load_ledger_rows(tmp_path / "nope")


class TestReplay:
    def warm_with_ledger(self, tmp_path):
        ledger = DecisionLedger(tmp_path / "d")
        learn = LearnController(LearnConfig(), ledger=ledger)
        drive(learn)
        return learn, ledger

    def test_warm_gate_replays_bit_exactly(self, tmp_path):
        learn, ledger = self.warm_with_ledger(tmp_path)
        learn.repartition_decision(
            np.array([30.0, 2.0]),
            np.array([0.5, 0.5]),
            12,
            iteration=10,
            t=10.0,
        )
        (record,) = ledger.rows("gate")
        report = verify_decision(record)
        assert report["match"], report["mismatches"]

    def test_cold_gate_infinite_payoff_replays_through_disk(self, tmp_path):
        """A cold gate's inf payoff survives JSON and replays exactly."""
        ledger = DecisionLedger(tmp_path / "d")
        learn = LearnController(LearnConfig(), ledger=ledger)
        learn.bind(None, 2)
        d = learn.repartition_decision(
            np.array([9.0, 1.0]), np.array([0.5, 0.5]), 5
        )
        assert d.reason == "cold" and math.isinf(d.payoff_seconds)
        (record,) = load_ledger_rows(tmp_path / "d")
        assert record["payoff_seconds"] == "inf"
        report = verify_decision(record)
        assert report["match"]
        assert report["replayed"]["payoff_seconds"] == math.inf

    def test_tampered_record_diverges(self, tmp_path):
        learn, ledger = self.warm_with_ledger(tmp_path)
        learn.repartition_decision(
            np.array([30.0, 2.0]), np.array([0.5, 0.5]), 12
        )
        (record,) = ledger.rows("gate")
        tampered = dict(record)
        tampered["beta"] = float(record["beta"]) * 2.0
        report = verify_decision(tampered)
        assert not report["match"]
        assert "payoff_seconds" in report["mismatches"]

    def test_replay_rejects_non_gate_records(self):
        with pytest.raises(ExperimentError):
            replay_decision({"kind": "prediction", "seq": 0})


class TestControllerLedger:
    def test_prediction_recorded_before_fold(self, tmp_path):
        """Row i's model digest excludes measurement i (out-of-sample)."""
        ledger = DecisionLedger(tmp_path / "d")
        learn = LearnController(LearnConfig(), ledger=ledger)
        drive(learn, iters=6)
        preds = ledger.rows("prediction")
        assert len(preds) == 6
        # The first prediction came from a completely cold model.
        assert preds[0]["cold"] is True
        assert preds[0]["lo"] == "-inf" and preds[0]["hi"] == "inf"
        # Later rows are warm with finite CIs.
        assert preds[-1]["cold"] is False
        assert math.isfinite(decode_float(preds[-1]["lo"]))

    def test_sense_interval_recorded_on_change(self, tmp_path):
        ledger = DecisionLedger(tmp_path / "d")
        learn = LearnController(LearnConfig(), ledger=ledger)
        drive(learn)
        learn.sensing_interval()
        changes = ledger.rows("sense_interval")
        assert changes, "warm drift must move the interval at least once"
        assert {"interval", "drift_rate", "fallback_interval"} <= set(
            changes[0]
        )
        # Re-asking without new evidence records nothing new.
        n = len(ledger)
        learn.sensing_interval()
        assert len(ledger) == n

    def test_migrate_outcome_carries_prefold_prediction(self, tmp_path):
        ledger = DecisionLedger(tmp_path / "d")
        learn = LearnController(LearnConfig(), ledger=ledger)
        learn.bind(None, 2)
        learn.observe_repartition(0.0, 0.5, 10)
        learn.observe_repartition(1.0, 0.7, 10)
        learn.observe_repartition(2.0, 0.9, 10)
        migrates = [
            r for r in ledger.rows("outcome") if r["phase"] == "migrate"
        ]
        # Cold before the second observation folds (min_points=2).
        assert migrates[0]["predicted_seconds"] is None
        assert migrates[1]["predicted_seconds"] is None
        assert migrates[2]["predicted_seconds"] == pytest.approx(0.6)

    def test_recover_records_dead_nodes(self, tmp_path):
        ledger = DecisionLedger(tmp_path / "d")
        learn = LearnController(LearnConfig(), ledger=ledger)
        learn.bind(None, 4)
        learn.observe_recover(5.0, [2, 3], 0.8, 4096, evacuated_bytes=99)
        (row,) = ledger.rows("recover")
        assert row["dead_nodes"] == [2, 3]
        assert row["evacuated_bytes"] == 99
        assert row["predicted_migration_seconds"] is None  # cold model

    def test_no_ledger_records_nothing(self):
        learn = LearnController(LearnConfig())
        drive(learn)
        learn.repartition_decision(
            np.array([30.0, 2.0]), np.array([0.5, 0.5]), 12
        )
        assert learn.ledger is None
        assert learn.summary()["ledger"] is None

    def test_summary_reports_ledger_size(self, tmp_path):
        ledger = DecisionLedger(tmp_path / "d")
        learn = LearnController(LearnConfig(), ledger=ledger)
        drive(learn, iters=3)
        assert learn.summary()["ledger"]["records"] == len(ledger)


class TestCalibration:
    def pred(self, seq, lo, hi, actual, predicted=1.0):
        return {
            "seq": seq,
            "kind": "prediction",
            "lo": lo,
            "hi": hi,
            "predicted": predicted,
            "actual": actual,
        }

    def test_coverage_hand_computed(self):
        rows = [
            self.pred(0, 0.9, 1.1, 1.0),   # covered
            self.pred(1, 0.9, 1.1, 1.05),  # covered
            self.pred(2, 0.9, 1.1, 1.2),   # missed
            self.pred(3, 0.9, 1.1, 0.8),   # missed
        ]
        out = calibration(rows)
        assert out["predictions"] == 4
        assert out["covered"] == 2
        assert out["coverage"] == pytest.approx(0.5)
        assert out["mean_abs_error_seconds"] == pytest.approx(
            (0.0 + 0.05 + 0.2 + 0.2) / 4
        )

    def test_cold_counted_separately(self):
        rows = [
            self.pred(0, "-inf", "inf", 1.0),  # cold: always "covers"
            self.pred(1, 0.9, 1.1, 1.0),
        ]
        out = calibration(rows)
        assert out["predictions"] == 1
        assert out["cold_predictions"] == 1
        assert out["coverage"] == pytest.approx(1.0)

    def test_empty_rows(self):
        out = calibration([])
        assert out["coverage"] is None
        assert out["predictions"] == 0


class TestOracleReplay:
    def gate_row(self, seq, *, beta, migration, repartition, reason,
                 payoff, cost_s, loads=(30.0, 2.0)):
        return {
            "seq": seq,
            "kind": "gate",
            "loads": list(loads),
            "capacities": [0.5, 0.5],
            "horizon_iters": 10,
            "beta": beta,
            "migration_seconds": migration,
            "gate_safety": 1.0,
            "repartition": repartition,
            "reason": reason,
            "payoff_seconds": payoff,
            "cost_seconds": cost_s,
        }

    def test_agreement_yields_zero_regret(self):
        # Oracle models stay cold (no prediction/migrate rows), so the
        # oracle repartitions everywhere -- agreeing with a recorded
        # cold accept.
        rows = [
            self.gate_row(
                0, beta=None, migration=None, repartition=True,
                reason="cold", payoff="inf", cost_s=0.0,
            )
        ]
        out = oracle_replay(rows)
        assert out["decisions"] == 1
        assert out["disagreements"] == 0
        assert out["cumulative_regret_seconds"] == 0.0
        assert out["agreement_rate"] == 1.0

    def test_disagreement_charges_oracle_margin(self):
        # Warm the hindsight models: slope 2.0 s per unit work,
        # migrations measured at 0.1 s.
        rows = [
            {"seq": i, "kind": "prediction", "x": float(i),
             "predicted": 2.0 * i, "lo": 0.0, "hi": 100.0,
             "actual": 2.0 * i}
            for i in range(4)
        ]
        rows += [
            {"seq": 4 + i, "kind": "outcome", "phase": "migrate",
             "seconds": 0.1}
            for i in range(2)
        ]
        # Recorded: a cold-model skip.  Hindsight: loads [30, 2] on
        # equal capacities -> bottleneck 60, total 32, excess 28;
        # payoff = 2.0 * 28 * 10 = 560 s vs cost 0.1 s -> repartition.
        rows.append(
            self.gate_row(
                6, beta=None, migration=0.1, repartition=False,
                reason="skip", payoff=0.0, cost_s=0.1,
            )
        )
        out = oracle_replay(rows)
        assert out["oracle_beta"] == pytest.approx(2.0)
        assert out["oracle_migration_seconds"] == pytest.approx(0.1)
        assert out["disagreements"] == 1
        assert out["cumulative_regret_seconds"] == pytest.approx(
            560.0 - 0.1
        )
        (per,) = out["per_decision"]
        assert per["recorded"] is False and per["oracle"] is True

    def test_no_gates_no_rate(self):
        out = oracle_replay([])
        assert out["agreement_rate"] is None
        assert out["cumulative_regret_seconds"] == 0.0


class TestReconcile:
    def test_counts_and_gate_mix(self, tmp_path):
        ledger = DecisionLedger(tmp_path / "d")
        learn = LearnController(LearnConfig(), ledger=ledger)
        drive(learn)
        learn.repartition_decision(
            np.array([30.0, 2.0]), np.array([0.5, 0.5]), 12
        )
        learn.repartition_decision(
            np.array([5.0, 5.0]), np.array([0.5, 0.5]), 12
        )
        report = reconcile(load_ledger_rows(tmp_path / "d"))
        assert report["records"] == len(ledger)
        assert report["counts"]["gate"] == 2
        assert report["gate"]["decisions"] == 2
        assert (
            report["gate"]["accepts"] + report["gate"]["skips"] == 2
        )
        assert sum(report["gate"]["reasons"].values()) == 2
        assert report["calibration"]["predictions"] >= 1

    def test_trace_events_reconcile_identically(self, tmp_path):
        """Ledger rows and decision.* events give the same numbers."""
        from repro.telemetry.report import _decision_rows, _records_of
        from repro.telemetry.spans import Tracer

        ledger = DecisionLedger(tmp_path / "d")
        tracer = Tracer()
        learn = LearnController(LearnConfig(), ledger=ledger)
        drive(learn, tracer=tracer)
        learn.repartition_decision(
            np.array([30.0, 2.0]), np.array([0.5, 0.5]), 12
        )
        events = [
            r
            for r in _records_of(tracer)
            if r.get("type") == "event"
            and str(r.get("name", "")).startswith("decision.")
        ]
        assert events, "decision.* events must mirror the ledger"
        assert reconcile(_decision_rows(events)) == reconcile(
            load_ledger_rows(tmp_path / "d")
        )


class TestLedgerNeutrality:
    def test_engine_run_identical_with_and_without_ledger(self, tmp_path):
        """Attaching a ledger never changes what the runtime decides."""
        from tests.learn.test_integration import (
            result_fingerprint,
            run_engine,
        )

        plain = run_engine(LearnController(LearnConfig()), iters=20)
        ledgered = run_engine(
            LearnController(
                LearnConfig(), ledger=DecisionLedger(tmp_path / "d")
            ),
            iters=20,
        )
        assert result_fingerprint(plain) == result_fingerprint(ledgered)
        assert len(DecisionLedger(tmp_path / "d")) > 0

    def test_no_decision_events_without_ledger(self):
        from repro.telemetry.report import _records_of
        from repro.telemetry.spans import Tracer

        tracer = Tracer()
        learn = LearnController(LearnConfig())
        drive(learn, tracer=tracer)
        learn.repartition_decision(
            np.array([30.0, 2.0]), np.array([0.5, 0.5]), 12
        )
        names = {
            str(r.get("name", ""))
            for r in _records_of(tracer)
            if r.get("type") == "event"
        }
        assert not any(n.startswith("decision.") for n in names)
