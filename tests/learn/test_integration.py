"""Runtime integration: the learned loop vs the unlearned invariant.

The load-bearing contract: with learning disabled (``learn=None`` or a
:class:`NullLearner`) the runtime must be *identical* to the pre-learn
code -- same simulated seconds, same sensing count, same regrid record
-- because every call site guards on ``learner.enabled``.  The golden
trace tests in tests/runtime/test_pipeline_replay.py pin the telemetry
bytes; these pin the result object and exercise the enabled paths.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.kernels.workloads import paper_rm3d_trace
from repro.learn import LearnConfig, LearnController, NULL_LEARNER
from repro.partition import ACEHeterogeneous
from repro.runtime import RuntimeConfig, SamrRuntime
from repro.runtime.distributed import DistributedAmrRun
from repro.telemetry.spans import Tracer

ITERS = 30
REGRID = 7


def run_engine(learn=None, seed: int = 11, tracer=None, iters: int = ITERS):
    # The load-script horizon is sized to the run (~1.2 sim-seconds per
    # iteration) so the dynamic load actually moves -- with a huge
    # horizon the capacities are flat and the drift model has nothing
    # to fit (learn_ablation calibrates the same way).
    cluster = Cluster.paper_linux_cluster(
        8, seed=seed, dynamic=True, horizon_s=1.2 * iters
    )
    rt = SamrRuntime(
        paper_rm3d_trace(num_regrids=iters // REGRID + 2),
        cluster,
        ACEHeterogeneous(),
        config=RuntimeConfig(
            iterations=iters, regrid_interval=REGRID, sensing_interval=20
        ),
        learn=learn,
        tracer=tracer,
    )
    return rt.run()


def result_fingerprint(r) -> tuple:
    return (
        r.total_seconds,
        r.num_sensings,
        r.sensing_seconds,
        r.migration_seconds,
        tuple((rec.iteration, rec.trigger) for rec in r.regrids),
    )


class TestDisabledIdentity:
    def test_none_and_null_learner_identical(self):
        assert result_fingerprint(run_engine(None)) == result_fingerprint(
            run_engine(NULL_LEARNER)
        )

    def test_all_flags_off_identical_to_disabled(self):
        """An enabled controller with every behavior off only observes."""
        off = LearnController(
            LearnConfig(
                adaptive_sensing=False,
                payoff_gate=False,
                transient_forecast=False,
            )
        )
        assert result_fingerprint(run_engine(None)) == result_fingerprint(
            run_engine(off)
        )

    def test_distributed_disabled_identity(self):
        from repro.kernels.advection import AdvectionKernel
        from repro.runtime.distributed import DistributedRunConfig
        from repro.util.geometry import Box
        from repro.amr.hierarchy import GridHierarchy

        def run(learn):
            k = AdvectionKernel(
                velocity=(1.0, 0.5),
                pulse_center=(8.0, 8.0),
                pulse_width=2.0,
            )
            h = GridHierarchy(Box((0, 0), (32, 32)), k, max_levels=3)
            cluster = Cluster.paper_linux_cluster(
                4, seed=3, dynamic=True, horizon_s=1e9
            )
            run_ = DistributedAmrRun(
                h,
                cluster,
                ACEHeterogeneous(),
                config=DistributedRunConfig(
                    steps=9, regrid_interval=3, sensing_interval=4
                ),
                learn=learn,
            )
            r = run_.run()
            return (r.total_seconds, r.num_sensings, r.migration_seconds)

        assert run(None) == run(NULL_LEARNER)


class TestEnabledLoop:
    def test_learned_run_completes_and_observes(self):
        learn = LearnController()
        r = run_engine(learn)
        assert r.iterations == ITERS
        s = learn.summary()
        assert not s["iter_model"]["cold"]
        assert s["iter_model"]["n"] == ITERS

    def test_adaptive_sensing_changes_cadence(self):
        # 60 iterations: enough sensings (capacity_min_points) for the
        # drift model to warm and the learned interval to engage.
        fixed = run_engine(None, iters=60)
        learn = LearnController(
            LearnConfig(
                adaptive_sensing=True,
                payoff_gate=False,
                transient_forecast=False,
            )
        )
        adaptive = run_engine(learn, iters=60)
        # The learned interval engaged (default would stay at f=20
        # and produce the fixed-count sensing schedule).
        assert learn.summary()["sensing_interval"] != 20
        assert adaptive.num_sensings != fixed.num_sensings

    def test_gate_records_decisions(self):
        learn = LearnController(
            LearnConfig(
                adaptive_sensing=False,
                payoff_gate=True,
                transient_forecast=False,
            )
        )
        run_engine(learn)
        assert learn.summary()["gate"]["decisions"] > 0

    def test_learn_telemetry_emitted_and_registered(self):
        from repro.telemetry.names import is_known_metric

        tracer = Tracer()
        run_engine(LearnController(), tracer=tracer)
        learn_events = {
            e.name for e in tracer.events if e.name.startswith("learn.")
        }
        assert "learn.sense_interval" in learn_events
        assert "learn.gate" in learn_events
        metric_names = {
            m.name for m in tracer.metrics if m.name.startswith("learn.")
        }
        assert "learn.observations" in metric_names
        assert all(is_known_metric(m) for m in metric_names)

    def test_disabled_run_emits_no_learn_telemetry(self):
        tracer = Tracer()
        run_engine(None, tracer=tracer)
        assert not any(
            e.name.startswith("learn.") for e in tracer.events
        )
        assert not any(
            m.name.startswith("learn.") for m in tracer.metrics
        )
