"""Tests for the ``repro learn`` CLI and the ablation-learn entry."""

from __future__ import annotations

import json

from repro.cli import EXPERIMENTS, main


def write_profile(camp, cell: str) -> None:
    d = camp / "artifacts" / cell
    d.mkdir(parents=True)
    (d / "profile.json").write_text(
        json.dumps(
            {
                "schema_version": 1,
                "cell_key": cell,
                "phases": {
                    "compute": {"count": 6, "sim_seconds": 12.0},
                    "migrate": {"count": 2, "sim_seconds": 0.8},
                    "iteration": {"count": 6, "sim_seconds": 14.0},
                },
                "metrics": {"counters": {"total_sim_seconds": 14.0}},
            }
        )
    )


class TestRegistration:
    def test_ablation_learn_listed(self, capsys):
        assert "ablation-learn" in EXPERIMENTS
        assert main(["list"]) == 0
        assert "ablation-learn" in capsys.readouterr().out


class TestLearnCommand:
    def test_no_subcommand_usage(self, capsys):
        assert main(["learn"]) == 2
        assert "usage" in capsys.readouterr().err

    def test_inspect_missing_store(self, tmp_path, capsys):
        assert main(["learn", "inspect", str(tmp_path / "nope")]) == 2
        assert "no history store" in capsys.readouterr().err

    def test_fit_requires_artifacts(self, tmp_path, capsys):
        camp = tmp_path / "camp"
        camp.mkdir()
        assert main(["learn", "fit", str(camp)]) == 2
        assert "artifacts" in capsys.readouterr().err

    def test_fit_then_inspect(self, tmp_path, capsys):
        camp = tmp_path / "camp"
        write_profile(camp, "scen--greedy--s1--abc")
        write_profile(camp, "scen--greedy--s2--abc")
        assert main(["learn", "fit", str(camp)]) == 0
        out = capsys.readouterr().out
        assert "6 rows" in out  # 2 cells x 3 phases
        assert "newly ingested" in out
        assert (camp / "learn" / "history.jsonl").is_file()
        assert (camp / "learn" / "index.json").is_file()

        assert main(["learn", "inspect", str(camp / "learn")]) == 0
        out = capsys.readouterr().out
        assert "scen--greedy--s1--abc" in out
        assert "sensing interval: 20 its" in out  # cold -> paper f

    def test_fit_idempotent(self, tmp_path, capsys):
        camp = tmp_path / "camp"
        write_profile(camp, "scen--greedy--s1--abc")
        assert main(["learn", "fit", str(camp)]) == 0
        capsys.readouterr()
        assert main(["learn", "fit", str(camp)]) == 0
        assert "0 newly ingested" in capsys.readouterr().out

    def test_fit_custom_store_dir(self, tmp_path, capsys):
        camp = tmp_path / "camp"
        write_profile(camp, "scen--greedy--s1--abc")
        store = tmp_path / "elsewhere"
        assert (
            main(["learn", "fit", str(camp), "--store", str(store)]) == 0
        )
        assert (store / "history.jsonl").is_file()


class TestExplainCommand:
    @staticmethod
    def make_ledger(tmp_path):
        import numpy as np

        from repro.learn import DecisionLedger, LearnConfig, LearnController
        from repro.runtime.timemodel import IterationCost

        ledger_dir = tmp_path / "ledger"
        learn = LearnController(
            LearnConfig(), ledger=DecisionLedger(ledger_dir)
        )
        learn.bind(None, 2)
        for it in range(10):
            caps = np.array([0.5, 0.5])
            compute = np.array([1.0 + 0.1 * it, 1.0])
            learn.observe_sense(float(it), caps, 0.2)
            learn.observe_iteration(
                it,
                float(it),
                np.array([10.0 + it, 10.0 - it]),
                caps,
                IterationCost(
                    compute=compute,
                    comm=np.zeros(2),
                    sync=0.1,
                    total=float(compute.max()) + 0.1,
                ),
            )
            learn.observe_repartition(float(it), 0.3, 1024)
        learn.repartition_decision(
            np.array([30.0, 2.0]),
            np.array([0.5, 0.5]),
            12,
            iteration=10,
            t=10.0,
        )
        return ledger_dir

    def test_summary(self, tmp_path, capsys):
        ledger = self.make_ledger(tmp_path)
        assert main(["explain", str(ledger)]) == 0
        out = capsys.readouterr().out
        assert "ledger records" in out
        assert "gate:" in out
        assert "calibration:" in out
        assert "regret:" in out

    def test_calibration_and_regret_detail(self, tmp_path, capsys):
        ledger = self.make_ledger(tmp_path)
        assert main(["explain", str(ledger), "--calibration", "--regret"]) == 0
        out = capsys.readouterr().out
        assert "calibration detail" in out
        assert "regret detail" in out
        assert "coverage" in out

    def test_decision_replay_bit_exact(self, tmp_path, capsys):
        from repro.learn import load_ledger_rows

        ledger = self.make_ledger(tmp_path)
        seq = next(
            r["seq"]
            for r in load_ledger_rows(ledger)
            if r["kind"] == "gate"
        )
        assert main(["explain", str(ledger), "--decision", str(seq)]) == 0
        out = capsys.readouterr().out
        assert "bit-exact" in out
        assert "inputs:" in out

    def test_unknown_decision_exits_2(self, tmp_path, capsys):
        ledger = self.make_ledger(tmp_path)
        assert main(["explain", str(ledger), "--decision", "9999"]) == 2
        assert "no record with seq 9999" in capsys.readouterr().err

    def test_verify_all_gates(self, tmp_path, capsys):
        ledger = self.make_ledger(tmp_path)
        assert main(["explain", str(ledger), "--verify"]) == 0
        assert "replay bit-exactly" in capsys.readouterr().out

    def test_json_output_parses(self, tmp_path, capsys):
        ledger = self.make_ledger(tmp_path)
        assert main(["explain", str(ledger), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["gate"]["decisions"] == 1
        assert payload["calibration"]["predictions"] > 0

    def test_missing_ledger_exits_2(self, tmp_path, capsys):
        assert main(["explain", str(tmp_path / "nope")]) == 2
        assert "no decision ledger" in capsys.readouterr().err

    def test_run_ledger_flag_rejected_off_ablation_learn(self, capsys):
        assert main(["run", "fig10", "--ledger", "/tmp/x", "--quick"]) == 2
        assert "--ledger" in capsys.readouterr().err
