"""Tests for the ``repro learn`` CLI and the ablation-learn entry."""

from __future__ import annotations

import json

from repro.cli import EXPERIMENTS, main


def write_profile(camp, cell: str) -> None:
    d = camp / "artifacts" / cell
    d.mkdir(parents=True)
    (d / "profile.json").write_text(
        json.dumps(
            {
                "schema_version": 1,
                "cell_key": cell,
                "phases": {
                    "compute": {"count": 6, "sim_seconds": 12.0},
                    "migrate": {"count": 2, "sim_seconds": 0.8},
                    "iteration": {"count": 6, "sim_seconds": 14.0},
                },
                "metrics": {"counters": {"total_sim_seconds": 14.0}},
            }
        )
    )


class TestRegistration:
    def test_ablation_learn_listed(self, capsys):
        assert "ablation-learn" in EXPERIMENTS
        assert main(["list"]) == 0
        assert "ablation-learn" in capsys.readouterr().out


class TestLearnCommand:
    def test_no_subcommand_usage(self, capsys):
        assert main(["learn"]) == 2
        assert "usage" in capsys.readouterr().err

    def test_inspect_missing_store(self, tmp_path, capsys):
        assert main(["learn", "inspect", str(tmp_path / "nope")]) == 2
        assert "no history store" in capsys.readouterr().err

    def test_fit_requires_artifacts(self, tmp_path, capsys):
        camp = tmp_path / "camp"
        camp.mkdir()
        assert main(["learn", "fit", str(camp)]) == 2
        assert "artifacts" in capsys.readouterr().err

    def test_fit_then_inspect(self, tmp_path, capsys):
        camp = tmp_path / "camp"
        write_profile(camp, "scen--greedy--s1--abc")
        write_profile(camp, "scen--greedy--s2--abc")
        assert main(["learn", "fit", str(camp)]) == 0
        out = capsys.readouterr().out
        assert "6 rows" in out  # 2 cells x 3 phases
        assert "newly ingested" in out
        assert (camp / "learn" / "history.jsonl").is_file()
        assert (camp / "learn" / "index.json").is_file()

        assert main(["learn", "inspect", str(camp / "learn")]) == 0
        out = capsys.readouterr().out
        assert "scen--greedy--s1--abc" in out
        assert "sensing interval: 20 its" in out  # cold -> paper f

    def test_fit_idempotent(self, tmp_path, capsys):
        camp = tmp_path / "camp"
        write_profile(camp, "scen--greedy--s1--abc")
        assert main(["learn", "fit", str(camp)]) == 0
        capsys.readouterr()
        assert main(["learn", "fit", str(camp)]) == 0
        assert "0 newly ingested" in capsys.readouterr().out

    def test_fit_custom_store_dir(self, tmp_path, capsys):
        camp = tmp_path / "camp"
        write_profile(camp, "scen--greedy--s1--abc")
        store = tmp_path / "elsewhere"
        assert (
            main(["learn", "fit", str(camp), "--store", str(store)]) == 0
        )
        assert (store / "history.jsonl").is_file()
