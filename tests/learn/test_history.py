"""ExecutionHistoryStore durability and ingestion tests.

The store follows the campaign ResultStore discipline: every append is
fsynced, the index is published atomically, and a process killed at any
byte boundary must reload to a prefix of what it wrote -- never to
garbage, never to reordered rows.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.learn import ExecutionHistoryStore
from repro.learn.history import HISTORY_NAME, INDEX_NAME
from repro.util.errors import ExperimentError


def fill(store: ExecutionHistoryStore, n: int = 12) -> None:
    for i in range(n):
        store.record(
            source="t",
            phase=("compute", "iteration", "migrate")[i % 3],
            node=i % 4,
            t=float(i),
            work=10.0 * i,
            seconds=0.5 + 0.1 * i,
        )


def canon(rows) -> list[str]:
    """NaN-tolerant row comparison key (NaN != NaN under dict ==)."""
    return [json.dumps(r, sort_keys=True) for r in rows]


class TestDurability:
    def test_reopen_replays_identical_rows(self, tmp_path):
        store = ExecutionHistoryStore(tmp_path / "h")
        fill(store)
        rows = canon(store.iter_rows())
        reopened = ExecutionHistoryStore(tmp_path / "h")
        assert canon(reopened.iter_rows()) == rows

    def test_interrupt_resume_byte_identical(self, tmp_path):
        """Appending 6+6 rows across a reopen == appending 12 rows."""
        a = ExecutionHistoryStore(tmp_path / "a")
        fill(a, 12)
        b = ExecutionHistoryStore(tmp_path / "b")
        fill(b, 6)
        b.checkpoint()
        resumed = ExecutionHistoryStore(tmp_path / "b")
        for i in range(6, 12):
            resumed.record(
                source="t",
                phase=("compute", "iteration", "migrate")[i % 3],
                node=i % 4,
                t=float(i),
                work=10.0 * i,
                seconds=0.5 + 0.1 * i,
            )
        assert (
            (tmp_path / "a" / HISTORY_NAME).read_bytes()
            == (tmp_path / "b" / HISTORY_NAME).read_bytes()
        )

    def test_torn_tail_dropped_not_fatal(self, tmp_path):
        store = ExecutionHistoryStore(tmp_path / "h")
        fill(store, 8)
        path = tmp_path / "h" / HISTORY_NAME
        data = path.read_bytes()
        # Simulate a crash mid-append: leave half a JSON line behind.
        path.write_bytes(data + b'{"seq": 8, "phase": "comp')
        reopened = ExecutionHistoryStore(tmp_path / "h")
        assert len(reopened) == 8
        # The torn tail must not survive the next append either.
        reopened.record(source="t", phase="sense", seconds=1.0)
        again = ExecutionHistoryStore(tmp_path / "h")
        assert len(again) == 9
        assert [r["seq"] for r in again.iter_rows()] == list(range(9))

    def test_stale_index_revalidated(self, tmp_path):
        """Rows appended after the last checkpoint still load."""
        store = ExecutionHistoryStore(tmp_path / "h")
        fill(store, 5)
        store.checkpoint()
        fill_rows = len(store)
        store.record(source="t", phase="sense", seconds=2.0)
        reopened = ExecutionHistoryStore(tmp_path / "h")
        assert len(reopened) == fill_rows + 1

    def test_corrupt_index_ignored(self, tmp_path):
        store = ExecutionHistoryStore(tmp_path / "h")
        fill(store, 4)
        store.checkpoint()
        (tmp_path / "h" / INDEX_NAME).write_text("not json")
        reopened = ExecutionHistoryStore(tmp_path / "h")
        assert len(reopened) == 4

    def test_empty_phase_rejected(self, tmp_path):
        store = ExecutionHistoryStore(tmp_path / "h")
        with pytest.raises(ExperimentError):
            store.record(source="t", phase="", seconds=1.0)


class TestColumnar:
    def test_query_filters_compose(self, tmp_path):
        store = ExecutionHistoryStore(tmp_path / "h")
        fill(store)
        view = store.query(phase="compute", node=0)
        assert (view["node"] == 0).all()
        assert len(view["seconds"]) == len(
            [
                r
                for r in store.iter_rows()
                if r["phase"] == "compute" and r["node"] == 0
            ]
        )

    def test_column_dtype_numeric(self, tmp_path):
        store = ExecutionHistoryStore(tmp_path / "h")
        fill(store)
        assert store.column("seconds").dtype == np.float64
        assert store.column("node").dtype == np.int64

    def test_work_series_filters_phase_and_node(self, tmp_path):
        store = ExecutionHistoryStore(tmp_path / "h")
        store.record(source="t", phase="compute", node=1, t=5.0,
                     work=2.0, seconds=0.2)
        store.record(source="t", phase="compute", node=2, t=5.0,
                     work=9.0, seconds=0.9)
        store.record(source="t", phase="compute", node=1, t=6.0,
                     work=1.0, seconds=0.1)
        work, seconds = store.work_series("compute", 1)
        assert list(work) == [2.0, 1.0]
        assert list(seconds) == [0.2, 0.1]


class TestIngestion:
    def profile(self, cell: str) -> dict:
        return {
            "schema_version": 1,
            "cell_key": cell,
            "phases": {
                "compute": {"count": 4, "sim_seconds": 8.0},
                "sync": {"count": 4, "sim_seconds": 1.0},
            },
            "metrics": {"counters": {"total_sim_seconds": 9.0}},
        }

    def test_ingest_artifacts_idempotent(self, tmp_path):
        camp = tmp_path / "camp"
        for cell in ("a--s1", "b--s1"):
            d = camp / "artifacts" / cell
            d.mkdir(parents=True)
            (d / "profile.json").write_text(json.dumps(self.profile(cell)))
        store = ExecutionHistoryStore(tmp_path / "h")
        added = store.ingest_artifacts(camp)
        assert added == 4  # 2 cells x 2 phases
        assert store.ingest_artifacts(camp) == 0  # idempotent
        assert sorted(store.sources()) == ["a--s1", "b--s1"]

    def test_ingest_survives_reopen(self, tmp_path):
        camp = tmp_path / "camp"
        d = camp / "artifacts" / "a--s1"
        d.mkdir(parents=True)
        (d / "profile.json").write_text(json.dumps(self.profile("a--s1")))
        store = ExecutionHistoryStore(tmp_path / "h")
        store.ingest_artifacts(camp)
        store.checkpoint()
        reopened = ExecutionHistoryStore(tmp_path / "h")
        assert reopened.ingest_artifacts(camp) == 0
