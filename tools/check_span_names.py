#!/usr/bin/env python
"""Fail if instrumentation emits span/event names outside the registry.

Every span and event name the runtime emits must be declared in
:mod:`repro.telemetry.names` -- the dashboard, the critical-path
analyzer, the health monitor and the flamegraph exporter all dispatch on
those strings, so a typo'd or ad-hoc name silently falls off every
consumer.  This check walks the AST of ``src/`` for calls of the form::

    tracer.span("name", ...)
    tracer.add_span("name", ...)
    tracer.event("name", ...)
    metrics.counter("name", ...)
    metrics.gauge("name", ...)
    metrics.histogram("name", ...)

and fails when a literal first argument is not a registered span/event/
metric name (f-string names must start with a registered
``EVENT_PREFIXES`` family such as ``health.`` or ``comm.``).
Non-literal names cannot be checked statically and are skipped.

Run from the repo root (CI does)::

    python tools/check_span_names.py
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
sys.path.insert(0, str(SRC))

from repro.telemetry.names import (  # noqa: E402
    EVENT_PREFIXES,
    is_known_event,
    is_known_metric,
    is_known_span,
)

#: Method name -> which registry its first argument must satisfy.
EMITTERS = {
    "span": "span",
    "add_span": "span",
    "event": "event",
    # LearnController's private event helpers: `_event` forwards its
    # name argument to tracer.event verbatim (the `decision.*` ledger
    # mirror rides through it), so it obeys the same registry.
    "_event": "event",
    "counter": "metric",
    "gauge": "metric",
    "histogram": "metric",
}


def _first_arg_literal(call: ast.Call) -> tuple[str | None, bool]:
    """(literal text, is_prefix_only) of the call's name argument.

    For f-strings only the leading constant chunk is static; it is
    matched against the registered prefixes instead of the full names.
    """
    if not call.args:
        return None, False
    arg = call.args[0]
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value, False
    if isinstance(arg, ast.JoinedStr) and arg.values:
        head = arg.values[0]
        if isinstance(head, ast.Constant) and isinstance(head.value, str):
            return head.value, True
    return None, False


def check_file(path: Path) -> list[str]:
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    rel = path.relative_to(REPO_ROOT)
    violations = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in EMITTERS:
            continue
        kind = EMITTERS[func.attr]
        text, prefix_only = _first_arg_literal(node)
        if text is None:
            continue  # dynamic name: not statically checkable
        if prefix_only:
            ok = any(text.startswith(p) for p in EVENT_PREFIXES)
        elif kind == "span":
            ok = is_known_span(text)
        elif kind == "metric":
            ok = is_known_metric(text)
        else:
            ok = is_known_event(text)
        if not ok:
            violations.append(
                f"{rel}:{node.lineno}: .{func.attr}({text!r}) -- name not "
                "in repro.telemetry.names; register it there so every "
                "trace consumer sees it"
            )
    return violations


def main() -> int:
    violations: list[str] = []
    for path in sorted((SRC / "repro").rglob("*.py")):
        violations.extend(check_file(path))
    if violations:
        print("unregistered span/event names:")
        for v in violations:
            print(f"  {v}")
        return 1
    print("span/event names: all emissions registered")
    return 0


if __name__ == "__main__":
    sys.exit(main())
