#!/usr/bin/env python
"""Fail if per-box work-summing loops creep back outside the work model.

The vectorized :class:`repro.partition.workmodel.WorkModel` is the single
place allowed to price boxes one at a time; everywhere else must go
through its cached vector (``model.vector`` / ``model.total`` /
``result.loads``).  This check greps ``src/`` for the scalar idioms the
refactor removed, so a reviewer does not have to spot them by eye:

    sum(work_of(b) for b in boxes)        # O(n) Python-level pricing
    out[rank] += work_of(box)             # per-box load accumulation

Run from the repo root (CI does)::

    python tools/check_vectorized_work.py
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

#: Substrings that indicate scalar per-box work pricing.
FORBIDDEN = (
    "sum(work_of(",
    "sum(self._work_of(",
    "work_of(b) for b",
    "work_of(box) for box",
    "+= work_of(",
    "+= self._work_of(",
)

#: The one module allowed to price boxes per-box (it implements the
#: vectorization and the legacy-callable adapter).
ALLOWED = {SRC / "repro" / "partition" / "workmodel.py"}


def main() -> int:
    violations: list[str] = []
    for path in sorted(SRC.rglob("*.py")):
        if path in ALLOWED:
            continue
        for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            stripped = line.strip()
            if stripped.startswith("#"):
                continue
            for pattern in FORBIDDEN:
                if pattern in line:
                    rel = path.relative_to(REPO_ROOT)
                    violations.append(
                        f"{rel}:{lineno}: scalar work loop `{pattern}`"
                        f" -- use WorkModel.vector()/total() instead"
                    )
    if violations:
        print("per-box work pricing outside the work model:")
        for v in violations:
            print(f"  {v}")
        return 1
    print("vectorized-work check: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
