#!/usr/bin/env python
"""Fail if scalar per-box idioms creep back into the columnar core.

Two families of checks, both substring/regex greps so a reviewer does
not have to spot regressions by eye:

**Work pricing** (all of ``src/``): the vectorized
:class:`repro.partition.workmodel.WorkModel` is the single place allowed
to price boxes one at a time; everywhere else must go through its cached
vector (``model.vector`` / ``model.total`` / ``result.loads``).
Forbidden idioms::

    sum(work_of(b) for b in boxes)        # O(n) Python-level pricing
    out[rank] += work_of(box)             # per-box load accumulation

**Box metadata** (``partition/`` and ``amr/`` only): the columnar
refactor moved box metadata -- corners, levels, cell counts, SFC keys --
onto :class:`repro.util.geometry.BoxArray` column slices.  Per-box
Python loops over a ``BoxList``'s metadata in those packages are flagged::

    for b in boxes: ...                   # walk columns, not objects
    sum(b.num_cells for b in boxes)       # BoxArray.num_cells()/total_cells()
    sorted(boxes, key=...corner_key())    # corner_lexsort / sfc_sort_order

Loops that genuinely need per-box *objects* (allocating GridPatch field
storage, indexing a Box-keyed dict) carry a ``# per-box ok: <reason>``
marker on the offending line; the marker is the audit trail, not a
loophole -- new markers should be rare and justified in review.

Run from the repo root (CI does)::

    python tools/check_vectorized_work.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

#: Substrings that indicate scalar per-box work pricing (checked in all
#: of ``src/``).
FORBIDDEN_WORK = (
    "sum(work_of(",
    "sum(self._work_of(",
    "work_of(b) for b",
    "work_of(box) for box",
    "+= work_of(",
    "+= self._work_of(",
)

#: Scalar box-metadata idioms (checked in the columnar core only).
FORBIDDEN_METADATA: tuple[tuple[re.Pattern[str], str], ...] = (
    (
        re.compile(r"for\s+(?:b|box)\s+in\s+boxes\b"),
        "per-box loop over a BoxList -- slice BoxArray columns instead",
    ),
    (
        re.compile(r"\.num_cells\s+for\s+(?:b|box)\s+in\b"),
        "per-box cell counting -- use BoxArray.num_cells()/total_cells()",
    ),
    (
        re.compile(r"sorted\(boxes"),
        "object sort over boxes -- use corner_lexsort()/sfc_sort_order()",
    ),
    (
        re.compile(r"\.corner_key\(\)"),
        "scalar corner key -- lexsort the BoxArray columns instead",
    ),
)

#: Packages holding the columnar hot paths; metadata rules apply here.
METADATA_DIRS = (SRC / "repro" / "partition", SRC / "repro" / "amr")

#: The one module allowed to price boxes per-box (it implements the
#: vectorization and the legacy-callable adapter).
ALLOWED_WORK = {SRC / "repro" / "partition" / "workmodel.py"}

#: Modules exempt from the metadata rules: the work model (it *is* the
#: object-to-column adapter) and diagnostics that render a few dozen
#: boxes to text, where columns buy nothing.
ALLOWED_METADATA = {
    SRC / "repro" / "partition" / "workmodel.py",
    SRC / "repro" / "amr" / "viz.py",
}

#: Inline escape for loops that genuinely need Box objects.
PER_BOX_OK = "# per-box ok"


def main() -> int:
    violations: list[str] = []
    for path in sorted(SRC.rglob("*.py")):
        rel = path.relative_to(REPO_ROOT)
        check_metadata = (
            any(path.is_relative_to(d) for d in METADATA_DIRS)
            and path not in ALLOWED_METADATA
        )
        for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            stripped = line.strip()
            if stripped.startswith("#"):
                continue
            if path not in ALLOWED_WORK:
                for pattern in FORBIDDEN_WORK:
                    if pattern in line:
                        violations.append(
                            f"{rel}:{lineno}: scalar work loop `{pattern}`"
                            f" -- use WorkModel.vector()/total() instead"
                        )
            if not check_metadata or PER_BOX_OK in line:
                continue
            for regex, hint in FORBIDDEN_METADATA:
                if regex.search(line):
                    violations.append(
                        f"{rel}:{lineno}: scalar box metadata"
                        f" `{regex.pattern}` -- {hint}"
                    )
    if violations:
        print("scalar per-box idioms outside the allowed modules:")
        for v in violations:
            print(f"  {v}")
        return 1
    print("vectorized-work check: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
