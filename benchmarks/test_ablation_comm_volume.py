"""Ablation: communication volume per partitioner.

The paper's key partitioning requirements include "minimize communication
overheads by maintaining inter-level and intra-level locality" (section
3.1).  This bench measures each partitioner's ghost-exchange volume on the
same hierarchy: the curve-span schemes (ACEComposite, SFCHybrid) should
cut the least, the sorted-by-size heterogeneous assignment pays a locality
penalty for its tighter balance, and the graph partitioner sits between.
"""

import numpy as np

from repro.amr.ghost import plan_exchange_volumes
from repro.kernels.workloads import paper_rm3d_trace
from repro.partition import (
    ACEComposite,
    ACEHeterogeneous,
    GraphPartitioner,
    GreedyLPT,
    SFCHybrid,
)
from repro.runtime.experiment import PAPER_CAPACITIES


def _comm_volume(partitioner, boxes, caps) -> float:
    result = partitioner.partition(boxes, caps)
    vols = plan_exchange_volumes(result.boxes(), result.owners())
    return sum(vols.values())


def test_locality_comparison(run_experiment):
    boxes = paper_rm3d_trace(num_regrids=8).epoch(5)

    def sweep():
        out = {}
        for part in (
            ACEComposite(),
            SFCHybrid(),
            GraphPartitioner(),
            ACEHeterogeneous(),
            GreedyLPT(),
        ):
            out[part.name] = _comm_volume(part, boxes, PAPER_CAPACITIES)
        return out

    volumes = run_experiment(sweep)
    print()
    print("ghost-exchange bytes per iteration, by partitioner:")
    for name, vol in sorted(volumes.items(), key=lambda kv: kv[1]):
        print(f"  {name:>17}: {vol / 1e3:9.1f} kB")
    # Locality-preserving span schemes beat the capacity-sorted scheme.
    assert volumes["SFCHybrid"] <= volumes["ACEHeterogeneous"]
    assert volumes["ACEComposite"] <= volumes["ACEHeterogeneous"]
    # Everything is finite and positive on a connected hierarchy.
    assert all(v > 0 for v in volumes.values())
