"""Partitioner-throughput export: write ``BENCH_partition.json``.

Measures end-to-end partitioning throughput (boxes/second) before and
after the vectorized work-model refactor, at two box counts:

- **before**: a faithful replica of the pre-refactor hot path, embedded
  below -- per-box ``work_of`` calls in the greedy loop, the legacy
  O(n^2) pairwise ``is_disjoint`` validation, and the runtime's triple
  per-box load accounting (loads were recomputed from scratch for
  imbalance, per-level breakdown, and the regrid record).
- **after**: the current :class:`GreedyLPT` handed a fresh
  :class:`WorkModel` per call (fresh, so identity-cache hits across
  repeats cannot flatter the numbers), plus one cached-vector
  ``loads()`` call, matching what the repartition pipeline now does.

The artifact feeds ``repro bench-diff`` alongside
``BENCH_telemetry.json``; throughput keys (``boxes_per_wall_second``,
``wall_speedup``) diff with inverted direction (higher is better).

Not pytest-collected -- CI runs it explicitly::

    PYTHONPATH=src python benchmarks/bench_partition.py
"""

from __future__ import annotations

import gc
import json
import math
import platform
import time
from pathlib import Path

import numpy as np

from repro import __version__
from repro.partition import GreedyLPT, SFCHybrid, WorkModel
from repro.partition.base import PartitionResult, default_work
from repro.partition.composite import assign_curve_spans
from repro.partition.splitting import SplitConstraints
from repro.util.errors import PartitionError
from repro.util.geometry import Box, BoxArray, BoxList
from repro.util.sfc import hilbert_encode_many

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_partition.json"

SIZES = (1_000, 10_000)
CAPACITIES = np.array([0.16, 0.19, 0.31, 0.34])
REPEATS_AFTER = 5
#: The legacy path is quadratic in box count; one repeat at the large
#: size keeps the script's runtime bounded (~25 s total).
REPEATS_BEFORE = {1_000: 3, 10_000: 1}

#: Million-box tier (columnar refactor): 1 M boxes dealt onto 1024
#: simulated ranks through the SFC-hybrid span assigner.  The whole
#: repartition -- key computation, ordering, span cuts, assignment
#: columns -- must stay under a second of wall time.
MILLION_BOXES = 1_000_000
MILLION_RANKS = 1024
MILLION_BUDGET_S = 1.0
REPEATS_MILLION = 5


def million_capacities() -> np.ndarray:
    """1024 simulated ranks over four heterogeneous node generations."""
    caps = np.tile(np.array([1.0, 1.5, 2.0, 4.0]), MILLION_RANKS // 4)
    return caps / caps.sum()


def make_boxes(n: int) -> BoxList:
    """Synthetic patchwork: ``n`` disjoint 2-D boxes over three levels."""
    side = math.ceil(math.sqrt(n))
    boxes = []
    for i in range(n):
        x = (i % side) * 16
        y = (i // side) * 16
        sz = 8 + 4 * (i % 3)
        boxes.append(Box((x, y), (x + sz, y + sz), level=i % 3))
    return BoxList(boxes)


# --------------------------------------------------------------------------
# Faithful pre-refactor replicas (kept verbatim so "before" stays honest
# even as the live code evolves).
# --------------------------------------------------------------------------


def _legacy_is_disjoint(boxes: BoxList) -> bool:
    by_level: dict[int, list[Box]] = {}
    for b in boxes:
        by_level.setdefault(b.level, []).append(b)
    for bxs in by_level.values():
        for i, a in enumerate(bxs):
            for b in bxs[i + 1:]:
                if a.intersects(b):
                    return False
    return True


def _legacy_validate_covers(assignment, original: BoxList) -> None:
    got = BoxList(b for b, _ in assignment)
    for level in set(original.levels) | set(got.levels):
        if got.at_level(level).total_cells != original.at_level(level).total_cells:
            raise PartitionError(f"assignment lost cells at level {level}")
    if not _legacy_is_disjoint(got):
        raise PartitionError("assignment produced overlapping boxes")


def _legacy_loads(assignment, num_ranks: int) -> np.ndarray:
    out = np.zeros(num_ranks)
    for box, rank in assignment:
        out[rank] += default_work(box)
    return out


def legacy_partition_and_account(boxes: BoxList, capacities) -> np.ndarray:
    """Pre-refactor GreedyLPT + the runtime's triple load accounting."""
    caps = np.asarray(capacities, dtype=float)
    caps = caps / caps.sum()
    work_of = default_work
    total = sum(work_of(b) for b in boxes)  # noqa: F841 (targets, as before)
    assignment: list[tuple[Box, int]] = []
    loads = np.zeros(len(caps))
    safe_caps = np.where(caps > 0, caps, 1e-12)
    for box in sorted(boxes, key=lambda b: (-work_of(b), b.corner_key())):
        w = work_of(box)
        rank = int(np.argmin((loads + w) / safe_caps))
        assignment.append((box, rank))
        loads[rank] += w
    _legacy_validate_covers(assignment, boxes)
    # SamrRuntime._repartition used to walk the assignment three times:
    # imbalance loads, per-level loads, and the regrid record.
    out = _legacy_loads(assignment, len(caps))
    _legacy_loads(assignment, len(caps))
    _legacy_loads(assignment, len(caps))
    return out


def current_partition_and_account(boxes: BoxList, capacities) -> np.ndarray:
    r = GreedyLPT().partition(boxes, capacities, WorkModel())
    return r.loads()


# --------------------------------------------------------------------------
# Million-box tier: columnar SFC-hybrid vs the per-box object walk.
# --------------------------------------------------------------------------


def make_boxes_columnar(n: int) -> BoxList:
    """The :func:`make_boxes` patchwork built straight into columns."""
    i = np.arange(n, dtype=np.int64)
    side = math.ceil(math.sqrt(n))
    x = (i % side) * 16
    y = (i // side) * 16
    sz = 8 + 4 * (i % 3)
    lower = np.stack([x, y], axis=1)
    upper = np.stack([x + sz, y + sz], axis=1)
    return BoxList.from_array(BoxArray(lower, upper, i % 3))


def _legacy_sfc_order(boxes: BoxList) -> list[Box]:
    """Pre-columnar ``sfc_order_boxes``: per-box corner promotion."""
    box_list = list(boxes)
    max_level = max(b.level for b in box_list)
    corners = np.array(
        [[c * 2 ** (max_level - b.level) for c in b.lower] for b in box_list],
        dtype=np.int64,
    )
    bits = max(int(corners.max(initial=0)), 1).bit_length()
    keys = hilbert_encode_many(corners, bits)
    levels = np.fromiter(
        (b.level for b in box_list), dtype=np.int64, count=len(box_list)
    )
    order = np.lexsort((levels, keys))
    return [box_list[i] for i in order]


def legacy_hybrid_partition(boxes: BoxList, capacities) -> np.ndarray:
    """Pre-columnar SFCHybrid: object ordering + per-box span walk."""
    caps = np.asarray(capacities, dtype=float)
    caps = caps / caps.sum()
    model = WorkModel()
    targets = caps * sum(default_work(b) for b in boxes)
    result = PartitionResult(targets=targets, work_model=model)
    ordered = _legacy_sfc_order(boxes)
    assign_curve_spans(ordered, targets, model, SplitConstraints(), result)
    return _legacy_loads(result.assignment, len(caps))


def current_hybrid_partition(boxes: BoxList, capacities) -> np.ndarray:
    r = SFCHybrid().partition(boxes, capacities, WorkModel())
    return r.loads()


def bench_million() -> dict:
    caps = million_capacities()
    # Time the columnar path first, on its own list: the legacy walk
    # materializes (and caches) a million Box objects, and timing in
    # that bloated heap would charge the columnar path for GC scans
    # over objects it never creates.
    boxes = make_boxes_columnar(MILLION_BOXES)
    after_loads = current_hybrid_partition(boxes, caps)
    after = _best_wall(
        lambda: current_hybrid_partition(boxes, caps), REPEATS_MILLION
    )
    del boxes
    gc.collect()
    boxes = make_boxes_columnar(MILLION_BOXES)
    before_loads = legacy_hybrid_partition(boxes, caps)
    if not np.array_equal(before_loads, after_loads):
        raise AssertionError(
            "columnar SFCHybrid changed loads at the million-box tier"
        )
    before = _best_wall(lambda: legacy_hybrid_partition(boxes, caps), 1)
    if after >= MILLION_BUDGET_S:
        print(
            f"  WARNING: million-box repartition took {after:.3f} s "
            f"(budget {MILLION_BUDGET_S:.1f} s)"
        )
    return {
        "partitioner": f"SFCHybrid@{MILLION_BOXES}",
        "num_boxes": MILLION_BOXES,
        "num_ranks": MILLION_RANKS,
        "wall_budget_seconds": MILLION_BUDGET_S,
        "before": {
            "wall_seconds": before,
            "boxes_per_wall_second": MILLION_BOXES / before,
        },
        "after": {
            "wall_seconds": after,
            "boxes_per_wall_second": MILLION_BOXES / after,
        },
        "wall_speedup": before / after,
    }


def _best_wall(fn, repeats: int) -> float:
    """Best-of-N wall time with the cyclic GC paused while timing."""
    best = float("inf")
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            gc.collect()
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
    finally:
        if was_enabled:
            gc.enable()
    return best


def bench_size(n: int) -> dict:
    boxes = make_boxes(n)
    before_loads = legacy_partition_and_account(boxes, CAPACITIES)
    after_loads = current_partition_and_account(boxes, CAPACITIES)
    if not np.array_equal(before_loads, after_loads):
        raise AssertionError(
            f"vectorized path changed loads at n={n}: "
            f"{before_loads} != {after_loads}"
        )
    before = _best_wall(
        lambda: legacy_partition_and_account(boxes, CAPACITIES),
        REPEATS_BEFORE[n],
    )
    after = _best_wall(
        lambda: current_partition_and_account(boxes, CAPACITIES),
        REPEATS_AFTER,
    )
    return {
        "partitioner": f"GreedyLPT@{n}",
        "num_boxes": n,
        "before": {
            "wall_seconds": before,
            "boxes_per_wall_second": n / before,
        },
        "after": {
            "wall_seconds": after,
            "boxes_per_wall_second": n / after,
        },
        "wall_speedup": before / after,
    }


def main() -> None:
    rows = [bench_size(n) for n in SIZES]
    rows.append(bench_million())
    summary = {
        "schema_version": 1,
        "repro_version": __version__,
        "python": platform.python_version(),
        "sizes": rows,
    }
    OUTPUT.write_text(json.dumps(summary, indent=2) + "\n")
    print(f"wrote {OUTPUT}")
    for row in rows:
        print(
            f"  {row['num_boxes']:>6} boxes: "
            f"before {row['before']['wall_seconds'] * 1e3:9.1f} ms, "
            f"after {row['after']['wall_seconds'] * 1e3:7.1f} ms, "
            f"speedup {row['wall_speedup']:6.1f}x"
        )


if __name__ == "__main__":
    main()
