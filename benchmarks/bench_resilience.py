"""Resilience-cost export: write ``BENCH_resilience.json``.

Measures the wall-clock cost of the checkpoint/restart machinery and the
end-to-end latency of a kill-and-recover chaos run:

- **checkpoint save / restore**: serialize a stepped AMR hierarchy (real
  patch data, multiple levels) into a versioned checksummed snapshot and
  load it back with integrity verification, reported as throughput
  (``bytes_per_wall_second``, higher is better for ``repro bench-diff``);
- **chaos end-to-end**: the :func:`~repro.runtime.experiment.chaos_experiment`
  scenario (2 of 8 nodes killed mid-run, recovered later), reporting the
  simulated time-to-recover and the wall time of the full experiment.

The artifact feeds ``repro bench-diff`` alongside the telemetry and
partition benches; throughput keys diff with inverted direction.

Not pytest-collected -- CI runs it explicitly::

    PYTHONPATH=src python benchmarks/bench_resilience.py
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

from repro import __version__
from repro.amr.integrator import BergerOligerIntegrator
from repro.resilience.checkpoint import CheckpointManager, ResilienceConfig
from repro.runtime.experiment import _chaos_hierarchy, chaos_experiment

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_resilience.json"

REPEATS = 10


def _best_wall(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def stepped_hierarchy():
    """A hierarchy with real refined data: setup + 6 advection steps."""
    h = _chaos_hierarchy()
    integ = BergerOligerIntegrator(h, regrid_interval=3)
    integ.setup()
    for _ in range(6):
        integ.advance()
    return h


def bench_checkpoint() -> dict:
    h = stepped_hierarchy()
    assignment = [(box, 0) for box in h.box_list()]
    manager = CheckpointManager(ResilienceConfig(checkpoint_interval=1))
    ckpt = manager.save(h, assignment, clock_time=0.0)
    nbytes = ckpt.nbytes

    save_wall = _best_wall(lambda: manager.save(h, assignment, 0.0))

    def restore():
        manager.restore_latest(h)

    restore_wall = _best_wall(restore)
    return {
        "payload_bytes": nbytes,
        "num_patches": sum(len(level.patches) for level in h.levels),
        "save": {
            "wall_seconds": save_wall,
            "bytes_per_wall_second": nbytes / save_wall,
        },
        "restore": {
            "wall_seconds": restore_wall,
            "bytes_per_wall_second": nbytes / restore_wall,
        },
    }


def bench_chaos() -> dict:
    t0 = time.perf_counter()
    stats = chaos_experiment(num_nodes=8, steps=12, kill=2)
    wall = time.perf_counter() - t0
    if not stats["bitwise_identical"]:
        raise AssertionError("chaos run diverged from the sequential run")
    return {
        "wall_seconds": wall,
        "sim_recovery_seconds": stats["recovery_seconds"],
        "sim_overhead_pct": stats["overhead_pct"],
        "num_restores": stats["num_restores"],
        "replayed_steps": stats["replayed_steps"],
    }


def main() -> None:
    checkpoint = bench_checkpoint()
    chaos = bench_chaos()
    summary = {
        "schema_version": 1,
        "repro_version": __version__,
        "python": platform.python_version(),
        "checkpoint": checkpoint,
        "chaos": chaos,
    }
    OUTPUT.write_text(json.dumps(summary, indent=2) + "\n")
    print(f"wrote {OUTPUT}")
    print(
        f"  checkpoint: {checkpoint['payload_bytes']} bytes, save "
        f"{checkpoint['save']['wall_seconds'] * 1e3:.2f} ms, restore "
        f"{checkpoint['restore']['wall_seconds'] * 1e3:.2f} ms"
    )
    print(
        f"  chaos e2e: {chaos['wall_seconds']:.1f} s wall, "
        f"{chaos['sim_recovery_seconds']:.3f} sim s recovering, "
        f"{chaos['replayed_steps']} steps replayed"
    )


if __name__ == "__main__":
    main()
