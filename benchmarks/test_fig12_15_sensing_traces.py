"""Figs. 12-15: per-processor allocation traces at sensing frequencies
10 / 20 / 30 / 40 iterations.

Paper: each figure shows, for one frequency, the work assigned to the four
processors over the run with the sensed relative capacities annotated at
each sampling; faster sensing tracks the (same) load dynamics in more
steps.

Expected shape: for every frequency the allocation follows the sensed
capacities; higher frequencies record more distinct capacity states; the
dynamics sensed are the same underlying script in every case.
"""

import numpy as np

from repro.runtime.experiment import sensing_frequency_traces
from repro.runtime.reporting import format_frequency_traces


def _distinct_capacity_states(trace) -> int:
    caps = np.array(trace["capacities"]).round(2)
    return len({tuple(row) for row in caps})


def test_fig12_15_sensing_traces(run_experiment):
    data = run_experiment(
        sensing_frequency_traces,
        frequencies=(10, 20, 30, 40),
        iterations=120,
    )
    print()
    print(format_frequency_traces(data))
    traces = data["traces"]
    for freq, trace in traces.items():
        caps = np.array(trace["capacities"])
        loads = np.array(trace["loads"])
        shares = loads / loads.sum(axis=1, keepdims=True)
        # Allocation tracks the sensed capacities at every repartition.
        np.testing.assert_allclose(shares, caps, atol=0.06)
        # The load dynamics were observed (capacities changed mid-run).
        assert _distinct_capacity_states(trace) >= 2, freq
    # Sensing more often resolves at least as many capacity states.
    assert _distinct_capacity_states(traces[10]) >= _distinct_capacity_states(
        traces[40]
    )
