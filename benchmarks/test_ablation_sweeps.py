"""Extension sweeps: probe-cost sensitivity and heterogeneity scaling.

Two measurable versions of claims the paper makes qualitatively:

- section 6.1.4 picks the sensing frequency "to balance" overheads against
  adaptation -- the balance point depends on how much a probe costs;
- section 7 expects the improvement to be "more significant in the case of
  [...] greater heterogeneity and load dynamics".
"""

from repro.runtime.ablation import heterogeneity_sweep, probe_cost_sensitivity


def test_probe_cost_erodes_sensing_benefit(run_experiment):
    data = run_experiment(
        probe_cost_sensitivity, probe_costs=(0.0, 0.5, 2.0, 8.0)
    )
    print()
    print("dynamic-sensing benefit vs probe cost "
          f"(sensing every {data['sensing_interval']} its):")
    benefits = []
    for row in data["rows"]:
        print(
            f"  probe {row['probe_cost_s']:4.1f}s: dynamic "
            f"{row['dynamic_s']:6.1f}s vs once {row['once_s']:6.1f}s "
            f"-> benefit {row['benefit_pct']:5.1f}%"
        )
        benefits.append(row["benefit_pct"])
    # Monotone erosion: pricier probes, smaller benefit.
    assert benefits == sorted(benefits, reverse=True)
    # Free probes help a lot; the paper's 0.5 s barely dents the benefit.
    assert benefits[0] > 20.0
    assert benefits[1] > 0.8 * benefits[0]


def test_improvement_grows_with_heterogeneity(run_experiment):
    data = run_experiment(
        heterogeneity_sweep, load_levels=(0.0, 0.5, 1.0, 2.0, 4.0)
    )
    print()
    print(f"system-sensitive improvement vs load level "
          f"({data['procs']} procs, half loaded):")
    series = []
    for row in data["rows"]:
        print(
            f"  load {row['load_level']:3.1f}: "
            f"{row['improvement_pct']:5.1f}%"
        )
        series.append(row["improvement_pct"])
    # No heterogeneity -> no advantage (within granularity noise).
    assert abs(series[0]) < 5.0
    # Strictly growing with heterogeneity.
    assert all(b > a for a, b in zip(series, series[1:]))
    assert series[-1] > 20.0
