"""Table III: execution time vs sensing frequency (4 processors).

Paper:

    sensing every   execution time (s)
       10 its                    316
       20 its                    277   <-- best
       30 its                    286
       40 its                    293

Expected shape: an interior sweet spot -- sensing too frequently pays
probe-overhead and migration churn, sensing too rarely reacts late to the
cluster's load dynamics.  The best frequency is neither endpoint... the
paper notes "this number largely depends on the load dynamics of the
cluster", so we assert the U-shape, not the exact winner.
"""

from repro.runtime.experiment import sensing_frequency_sweep
from repro.runtime.reporting import format_table3


def test_table3_sensing_frequency(run_experiment):
    freqs = (2, 10, 20, 30, 60)
    data = run_experiment(
        sensing_frequency_sweep,
        frequencies=freqs,
        iterations=120,
        seeds=(5, 11, 23),
    )
    print()
    print(format_table3(data))
    by_freq = {r["frequency"]: r["seconds"] for r in data["rows"]}
    best = min(by_freq, key=by_freq.get)
    # The sweet spot is interior: neither hyper-frequent nor near-static.
    assert best not in (freqs[0], freqs[-1]), by_freq
    # Endpoints pay for it: measurably slower than the best.
    assert by_freq[freqs[0]] > by_freq[best] * 1.02
    assert by_freq[freqs[-1]] > by_freq[best] * 1.02
