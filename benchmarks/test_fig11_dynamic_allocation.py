"""Fig. 11: dynamic load allocation with mid-run sensing.

Paper setup: 4 processors, synthetic load generators varying the load
dynamically; NWS queried once before the start and twice during the run.
The figure shows per-processor work assignments tracking the relative
capacities at each sampling (e.g. 33/30/25/12 % early, 51/23/12/... later).

Expected shape: relative capacities change between sensings, and the
work-load allocation follows them -- the share series and the capacity
series move together.
"""

import numpy as np

from repro.runtime.experiment import dynamic_allocation_trace
from repro.runtime.reporting import format_dynamic_allocation


def test_fig11_dynamic_allocation(run_experiment):
    data = run_experiment(
        dynamic_allocation_trace, num_sensings=2, iterations=30
    )
    print()
    print(format_dynamic_allocation(data))
    caps = np.array(data["capacities"])
    loads = np.array(data["loads"])
    shares = loads / loads.sum(axis=1, keepdims=True)
    # Capacities actually changed during the run (load dynamics seen).
    assert (caps.max(axis=0) - caps.min(axis=0)).max() > 0.05
    # Allocation tracks capacity at every repartition point.
    np.testing.assert_allclose(shares, caps, atol=0.05)
    # As the application adapts, total work varies between regrids even
    # when capacities do not (the paper's second observation).
    totals = loads.sum(axis=1)
    assert len(np.unique(totals.round())) > 1
