"""Learned-policy subsystem benchmark: write ``BENCH_learn.json``.

Times the :mod:`repro.learn` stack at its three cost centers:

- **history ingest + warm start**: durably appending observations to an
  :class:`~repro.learn.history.ExecutionHistoryStore` (fsync per row),
  re-opening the store, and replaying it through a fresh
  :class:`~repro.learn.policy.LearnController` -- rows/second through
  the full persistence + fit path.
- **model fit**: streaming-OLS observation throughput
  (:class:`~repro.learn.models.OnlineLinearModel`) and transient
  capacity-model refit+predict throughput, the per-iteration price of
  keeping the models warm.
- **gate decisions**: :class:`~repro.learn.policy.RepartitionGate`
  pricings per second on a warm model, the inner-loop cost the runtime
  pays at every sensing.
- **end-to-end**: the learned adaptive loop vs the paper's fixed f=20
  on the dynamic Linux-cluster scenario -- host wall seconds for both,
  plus the simulated totals as drift keys (any change means the
  decisions themselves changed).

The artifact feeds ``repro bench-diff`` alongside the other BENCH
files: ``*_per_wall_second`` keys diff as rates (higher is better),
``*_wall_seconds`` as wall time (lower is better), ``sim_seconds_*`` as
drift.

Not pytest-collected -- CI runs it explicitly::

    PYTHONPATH=src python benchmarks/bench_learn.py
"""

from __future__ import annotations

import json
import platform
import shutil
import tempfile
import time
from pathlib import Path

import numpy as np

from repro import __version__
from repro.learn import (
    ExecutionHistoryStore,
    LearnConfig,
    LearnController,
    OnlineLinearModel,
    RepartitionGate,
    TransientCapacityModel,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_learn.json"

HISTORY_ROWS = 400
OLS_POINTS = 200_000
GATE_CALLS = 20_000
CAPACITY_STEPS = 2_000
E2E_ITERATIONS = 60


def bench_history() -> dict:
    """Durable append + reopen + warm-start over HISTORY_ROWS rows."""
    rng = np.random.default_rng(7)
    scratch = Path(tempfile.mkdtemp(prefix="bench-learn-"))
    try:
        store = ExecutionHistoryStore(scratch / "h")
        t0 = time.perf_counter()
        for i in range(HISTORY_ROWS):
            store.record(
                source="bench",
                phase=("compute", "iteration", "migrate")[i % 3],
                node=i % 8,
                t=float(i),
                work=float(100 + (i % 17)),
                seconds=float(rng.uniform(0.5, 1.5)),
            )
        append_wall = time.perf_counter() - t0
        store.checkpoint()

        t0 = time.perf_counter()
        reopened = ExecutionHistoryStore(scratch / "h")
        counts = LearnController().warm_start(reopened)
        warm_wall = time.perf_counter() - t0
        assert len(reopened) == HISTORY_ROWS, "lost rows on reopen"
        return {
            "history_rows": HISTORY_ROWS,
            "append_wall_seconds": append_wall,
            "appends_per_wall_second": HISTORY_ROWS / append_wall,
            "warm_start_wall_seconds": warm_wall,
            "warm_start_rows": sum(counts.values()),
        }
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


def bench_models() -> dict:
    """Streaming-OLS and transient-capacity fit throughput."""
    rng = np.random.default_rng(11)
    xs = rng.uniform(10.0, 1000.0, size=OLS_POINTS)
    ys = 0.5 + 0.002 * xs + rng.normal(0.0, 0.01, size=OLS_POINTS)
    model = OnlineLinearModel()
    t0 = time.perf_counter()
    for x, y in zip(xs, ys):
        model.observe(float(x), float(y))
    ols_wall = time.perf_counter() - t0
    assert not model.is_cold

    cap = TransientCapacityModel(num_nodes=8, window=12)
    caps = rng.uniform(0.05, 0.2, size=(CAPACITY_STEPS, 8))
    t0 = time.perf_counter()
    for step in range(CAPACITY_STEPS):
        cap.observe(float(step), caps[step])
        cap.predict(float(step) + 0.5)
    cap_wall = time.perf_counter() - t0
    return {
        "ols_points": OLS_POINTS,
        "ols_observations_per_wall_second": OLS_POINTS / ols_wall,
        "capacity_steps": CAPACITY_STEPS,
        "capacity_fits_per_wall_second": CAPACITY_STEPS / cap_wall,
    }


def bench_gate() -> dict:
    """Warm-gate pricing throughput (the per-sensing inner-loop cost)."""
    rng = np.random.default_rng(3)
    gate = RepartitionGate(LearnConfig())
    loads = rng.uniform(50.0, 150.0, size=(64, 8))
    caps = rng.uniform(0.05, 0.2, size=(64, 8))
    caps /= caps.sum(axis=1, keepdims=True)
    t0 = time.perf_counter()
    for i in range(GATE_CALLS):
        gate.decide(
            loads=loads[i % 64],
            capacities=caps[i % 64],
            horizon_iters=5,
            beta=0.01,
            migration_seconds=0.5,
        )
    wall = time.perf_counter() - t0
    return {
        "gate_calls": GATE_CALLS,
        "gate_decisions_per_wall_second": GATE_CALLS / wall,
    }


def bench_end_to_end() -> dict:
    """Learned loop vs fixed f=20 on the dynamic-load scenario."""
    from repro.cluster import Cluster
    from repro.kernels.workloads import paper_rm3d_trace
    from repro.monitor.service import ResourceMonitor
    from repro.partition import ACEHeterogeneous
    from repro.runtime.engine import RuntimeConfig, SamrRuntime

    regrid = 7
    workload = paper_rm3d_trace(num_regrids=E2E_ITERATIONS // regrid + 2)
    cal = SamrRuntime(
        workload,
        Cluster.paper_linux_cluster(8, seed=11, dynamic=True,
                                    horizon_s=1e9),
        ACEHeterogeneous(),
        config=RuntimeConfig(
            iterations=E2E_ITERATIONS, regrid_interval=regrid
        ),
    ).run()
    horizon = 0.8 * cal.total_seconds

    def run_once(learned: bool):
        cluster = Cluster.paper_linux_cluster(
            8, seed=11, dynamic=True, horizon_s=horizon
        )
        learn = None
        if learned:
            learn = LearnController(
                LearnConfig(
                    adaptive_sensing=True,
                    payoff_gate=True,
                    transient_forecast=True,
                )
            )
        t0 = time.perf_counter()
        result = SamrRuntime(
            workload,
            cluster,
            ACEHeterogeneous(),
            monitor=ResourceMonitor(cluster),
            config=RuntimeConfig(
                iterations=E2E_ITERATIONS,
                regrid_interval=regrid,
                sensing_interval=20,
            ),
            learn=learn,
        ).run()
        return result, time.perf_counter() - t0

    fixed_wall = learned_wall = float("inf")
    fixed_sim = learned_sim = 0.0
    for _ in range(3):
        result, wall = run_once(learned=False)
        fixed_wall = min(fixed_wall, wall)
        fixed_sim = result.total_seconds
        result, wall = run_once(learned=True)
        learned_wall = min(learned_wall, wall)
        learned_sim = result.total_seconds
    return {
        "iterations": E2E_ITERATIONS,
        "fixed_loop_wall_seconds": fixed_wall,
        "learned_loop_wall_seconds": learned_wall,
        "sim_seconds_fixed": fixed_sim,
        "sim_seconds_learned": learned_sim,
    }


def main() -> None:
    sections = {}
    for name, fn in (
        ("history", bench_history),
        ("models", bench_models),
        ("gate", bench_gate),
        ("end_to_end", bench_end_to_end),
    ):
        sections[name] = fn()
        pretty = ", ".join(
            f"{k}={v:.4g}" if isinstance(v, float) else f"{k}={v}"
            for k, v in sections[name].items()
        )
        print(f"{name}: {pretty}")
    payload = {
        "schema_version": 1,
        "repro_version": __version__,
        "python": platform.python_version(),
        **sections,
    }
    OUTPUT.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    print(f"wrote {OUTPUT}")


if __name__ == "__main__":
    main()
