"""Ablation: adaptive (deviation-driven) sensing vs fixed frequencies.

Table III shows the fixed sensing frequency must be hand-tuned to the
cluster's load dynamics ("this number largely depends upon the load
dynamics of the cluster").  The adaptive policy removes the knob: the
runtime re-senses only when measured iteration times deviate from the
post-repartition baseline, i.e. when the cluster actually changed.

Expected shape: adaptive matches (or beats) the best fixed frequency
while probing far less often, and beats sense-once by a wide margin.
"""

from repro.cluster import Cluster
from repro.kernels.workloads import paper_rm3d_trace
from repro.partition import ACEHeterogeneous
from repro.runtime import RuntimeConfig, SamrRuntime


def _run(**cfg_kwargs):
    cluster = Cluster.paper_linux_cluster(
        4, seed=11, dynamic=True, horizon_s=350.0
    )
    runtime = SamrRuntime(
        paper_rm3d_trace(num_regrids=26),
        cluster,
        ACEHeterogeneous(),
        config=RuntimeConfig(iterations=120, regrid_interval=5, **cfg_kwargs),
    )
    result = runtime.run()
    return result.total_seconds, result.num_sensings


def test_adaptive_sensing_vs_fixed(run_experiment):
    def sweep():
        out = {}
        out["sense once"] = _run(sensing_interval=0)
        for freq in (5, 10, 20, 40):
            out[f"fixed every {freq}"] = _run(sensing_interval=freq)
        out["adaptive (20% dev)"] = _run(adaptive_sensing_threshold=0.2)
        return out

    results = run_experiment(sweep)
    print()
    print("sensing policy comparison (dynamic 4-node cluster):")
    for label, (seconds, sensings) in sorted(
        results.items(), key=lambda kv: kv[1][0]
    ):
        print(f"  {label:>18}: {seconds:7.1f}s ({sensings} sensings)")
    adaptive_t, adaptive_n = results["adaptive (20% dev)"]
    once_t, _ = results["sense once"]
    best_fixed_t, best_fixed_n = min(
        (v for k, v in results.items() if k.startswith("fixed")),
        key=lambda v: v[0],
    )
    # Adaptive crushes sense-once ...
    assert adaptive_t < 0.8 * once_t
    # ... matches the best hand-tuned fixed frequency ...
    assert adaptive_t < 1.1 * best_fixed_t
    # ... with fewer probes than that frequency used.
    assert adaptive_n < best_fixed_n
