"""Ablation: composite vs level-based decomposition under the two
synchronization models.

SAMR partitioner taxonomies (reference [17]) distinguish *composite*
decompositions (one distribution of the whole hierarchy) from *level-based*
ones (each refinement level balanced separately).  Which wins depends on
the runtime's synchronization discipline:

- under **bulk** synchronization (one barrier per coarse iteration), only
  total per-rank work matters -- composite schemes are optimal and
  level-based ones pay extra communication for nothing;
- under **per-level** synchronization (a barrier after every substep of
  every level, strict Berger-Oliger), a rank with no work on some level
  idles through all of that level's substeps -- per-level balance is the
  whole game.

Expected shape: roughly equal under bulk; level-wise decisively faster
under per-level sync.
"""

from repro.cluster import Cluster
from repro.kernels.workloads import paper_rm3d_trace
from repro.partition import ACEHeterogeneous, LevelPartitioner
from repro.runtime import RuntimeConfig, SamrRuntime


def _run(partitioner, sync_mode: str) -> float:
    runtime = SamrRuntime(
        paper_rm3d_trace(num_regrids=8),
        Cluster.paper_four_node(),
        partitioner,
        config=RuntimeConfig(
            iterations=40, regrid_interval=5, sync_mode=sync_mode
        ),
    )
    return runtime.run().total_seconds


def test_levelwise_wins_under_per_level_sync(run_experiment):
    def sweep():
        out = {}
        for mode in ("bulk", "per_level"):
            for label, part in (
                ("composite", ACEHeterogeneous()),
                ("level-wise", LevelPartitioner(ACEHeterogeneous())),
            ):
                out[(mode, label)] = _run(part, mode)
        return out

    results = run_experiment(sweep)
    print()
    print("decomposition x synchronization model (seconds):")
    print(f"{'':>12} {'composite':>10} {'level-wise':>11}")
    for mode in ("bulk", "per_level"):
        print(
            f"{mode:>12} {results[(mode, 'composite')]:>10.1f} "
            f"{results[(mode, 'level-wise')]:>11.1f}"
        )
    # Bulk: composite at least as good (level-wise buys nothing).
    assert (
        results[("bulk", "composite")]
        <= results[("bulk", "level-wise")] * 1.05
    )
    # Per-level: level-wise wins big.
    assert (
        results[("per_level", "level-wise")]
        < 0.75 * results[("per_level", "composite")]
    )
    # The per-level model is never cheaper than bulk (more barriers).
    for label in ("composite", "level-wise"):
        assert results[("per_level", label)] >= results[("bulk", label)]
