"""Table II: execution time with dynamic sensing vs sensing only once.

Paper (identical synthetic load dynamics in both cases):

    procs   dynamic (s)   once (s)    speedup
        2         423.7      805.5      1.90x
        4         292.0      450.0      1.54x
        6         272.0      442.0      1.63x
        8         225.0      430.0      1.91x

Expected shape: dynamic sensing wins at every processor count, by a
substantial factor (roughly 1.3-2x); execution time falls with processor
count in both configurations.
"""

from repro.runtime.experiment import dynamic_vs_static_sensing
from repro.runtime.reporting import format_table2


def test_table2_dynamic_vs_static_sensing(run_experiment):
    data = run_experiment(
        dynamic_vs_static_sensing,
        processor_counts=(2, 4, 6, 8),
        iterations=120,
        sensing_interval=20,
        seeds=(5, 11, 23),
    )
    print()
    print(format_table2(data))
    rows = {r["procs"]: r for r in data["rows"]}
    for row in rows.values():
        speedup = row["once_s"] / row["dynamic_s"]
        # Dynamic sensing wins everywhere, by a paper-scale factor.
        assert speedup > 1.25, row
        assert speedup < 3.0, row
    # Both columns scale down with more processors.
    for key in ("dynamic_s", "once_s"):
        times = [rows[p][key] for p in (2, 4, 6, 8)]
        assert times == sorted(times, reverse=True)
