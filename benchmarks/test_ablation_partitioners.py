"""Ablation: partitioner panel -- what buys what?

ACEHeterogeneous = capacity awareness + constrained splitting.
SFCHybrid        = capacity awareness + splitting + curve-span locality.
GreedyLPT        = capacity awareness, no splitting.
ACEComposite     = splitting + locality, no capacity awareness.

Expected shape on a loaded cluster: every capacity-aware scheme beats the
capacity-blind default on execution time; the splitting schemes
(ACEHeterogeneous, SFCHybrid) achieve the lowest imbalance against
capacity targets.
"""

from repro.runtime.ablation import partitioner_panel


def test_partitioner_panel(run_experiment):
    data = run_experiment(partitioner_panel, iterations=30, seed=7)
    rows = {r["partitioner"]: r for r in data["rows"]}
    print()
    print("partitioner panel (8-node loaded cluster):")
    for name, row in sorted(
        rows.items(), key=lambda kv: kv[1]["seconds"]
    ):
        print(
            f"  {name:>17}: {row['seconds']:7.1f}s, "
            f"mean imbalance {row['mean_imbalance_pct']:5.1f}%"
        )
    # Capacity awareness beats the capacity-blind default.
    for aware in ("ACEHeterogeneous", "SFCHybrid", "GreedyLPT"):
        assert rows[aware]["seconds"] < rows["ACEComposite"]["seconds"], aware
    # Constrained splitting gives the tightest fit to capacity targets.
    for splitter in ("ACEHeterogeneous", "SFCHybrid"):
        assert (
            rows[splitter]["mean_imbalance_pct"]
            < rows["GreedyLPT"]["mean_imbalance_pct"]
        )
        assert (
            rows[splitter]["mean_imbalance_pct"]
            < rows["ACEComposite"]["mean_imbalance_pct"]
        )
