"""Fig. 10: percentage load imbalance, system-sensitive vs default.

Paper: I_k = |W_k - L_k| / L_k * 100 with L_k the capacity-proportional
target; the default scheme shows imbalances up to ~90 %, the
system-sensitive one stays low, with a residual (up to ~40 % in the
paper's grids, from the min-box-size and aspect-ratio constraints).

Expected shape: default >> system-sensitive at every regrid;
system-sensitive max < 40 %.
"""

from repro.runtime.experiment import imbalance_comparison
from repro.runtime.reporting import format_imbalance


def test_fig10_load_imbalance(run_experiment):
    data = run_experiment(imbalance_comparison, num_regrids=6)
    print()
    print(format_imbalance(data))
    sys_sens = data["system_sensitive"]
    default = data["default"]
    # Default is worse at every regrid -- by a wide margin.
    assert (default > sys_sens).all()
    assert default.mean() > 5 * sys_sens.mean()
    # The paper's residual-imbalance bound for the system-sensitive scheme.
    assert sys_sens.max() < 40.0
    # And the default's capacity-blindness shows up as tens of percent.
    assert default.max() > 25.0
