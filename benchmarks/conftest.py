"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures: it runs
the corresponding experiment builder once (timed by pytest-benchmark),
prints the same rows/series the paper reports, and asserts the paper's
qualitative *shape* (who wins, roughly by what factor, where the sweet
spots fall).  Absolute numbers differ -- our substrate is a simulator, not
the authors' 2001 Linux cluster -- and the assertions are written against
shape, not magnitude.

Run with:  pytest benchmarks/ --benchmark-only -s
(the -s shows the regenerated tables; omit it to just check shapes)
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_experiment(benchmark):
    """Run an experiment builder exactly once under pytest-benchmark."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return _run
