"""Ablation: multi-axis box splitting (paper section 8 future work).

"A primary cause of load-imbalance in the ACEHeterogeneous scheme can be
attributed to the fact that the bounding box is cut only along the longest
axis.  If the box is instead cut along more axes, it could lead to finer
partitioning granularity and hence better work assignments, which would in
turn reduce the load-imbalance."

Expected shape: with coarse splitting granularity (large minimum box size
/ snap), multi-axis splitting reduces the worst residual imbalance
substantially, at the cost of more cuts; with fine granularity the two are
close (the longest-axis cut already lands near every target).
"""

from repro.runtime.ablation import multiaxis_split_ablation


def test_multiaxis_splitting_reduces_residual_imbalance(run_experiment):
    coarse = run_experiment(
        multiaxis_split_ablation, num_regrids=8, min_box_size=8, snap=4
    )
    fine = multiaxis_split_ablation(num_regrids=8, min_box_size=2, snap=2)
    print()
    for label, data in (("coarse (min=8, snap=4)", coarse),
                        ("fine (min=2, snap=2)", fine)):
        print(f"granularity {label}:")
        for rule, rec in data.items():
            print(
                f"  {rule:>13}: worst imbalance "
                f"{max(rec['max_imbalance_pct']):5.1f}%, "
                f"{rec['total_splits']} splits"
            )
    c_single = max(coarse["longest-axis"]["max_imbalance_pct"])
    c_multi = max(coarse["multi-axis"]["max_imbalance_pct"])
    # The future-work remedy works: large reduction at coarse granularity.
    assert c_multi < 0.5 * c_single
    # It spends extra cuts to get there.
    assert (
        coarse["multi-axis"]["total_splits"]
        > coarse["longest-axis"]["total_splits"]
    )
    # At fine granularity multi-axis never hurts.
    f_single = max(fine["longest-axis"]["max_imbalance_pct"])
    f_multi = max(fine["multi-axis"]["max_imbalance_pct"])
    assert f_multi <= f_single + 1e-9
