"""Perf-trajectory export: write ``BENCH_telemetry.json`` at the repo root.

Unlike the paper-shape benchmarks, this module's product is a
machine-readable summary for comparing performance *across PRs*:

- wall-clock partitioner timings (best of several repeats over the
  paper-scale RM3D trace's epochs), measured through the telemetry
  subsystem's own partition spans;
- phase totals and the metrics-registry summary of one instrumented
  :class:`SamrRuntime` run (migration bytes, probe cost, iteration-time
  histogram, residual imbalance);
- the run's critical-path decomposition and communication volumes, so
  ``repro bench-diff`` can tell regressions on the critical path from
  micro-benchmark noise off it.

Run with the rest of the suite (``pytest benchmarks/``) or alone::

    PYTHONPATH=src python -m pytest benchmarks/test_telemetry_export.py -s
"""

from __future__ import annotations

import json
import platform
from pathlib import Path

from repro import Cluster, RuntimeConfig, SamrRuntime, __version__
from repro.kernels.workloads import paper_rm3d_trace
from repro.partition import ACEComposite, ACEHeterogeneous, GreedyLPT, SFCHybrid
from repro.partition.base import default_work
from repro.telemetry import (
    Tracer,
    aggregate_phases,
    analyze_critical_path,
    comm_profile,
    metrics_summary,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_telemetry.json"

PARTITIONERS = (ACEHeterogeneous, ACEComposite, GreedyLPT, SFCHybrid)
REPEATS = 3


def _partitioner_timings(workload, capacities) -> list[dict]:
    """Best-of-N wall time per partitioner, via the partition spans."""
    rows = []
    for factory in PARTITIONERS:
        partitioner = factory()
        tracer = Tracer()
        partitioner.set_tracer(tracer)
        for _ in range(REPEATS):
            for epoch in range(workload.num_regrids):
                partitioner.partition(
                    workload.epoch(epoch), capacities, default_work
                )
        by_repeat = [0.0] * REPEATS
        spans = [
            s for s in tracer.spans_named("partition")
            if s.attributes.get("partitioner") == partitioner.name
        ]
        per_repeat = len(spans) // REPEATS
        for i, span in enumerate(spans):
            by_repeat[min(i // per_repeat, REPEATS - 1)] += span.wall_duration
        rows.append(
            {
                "partitioner": partitioner.name,
                "epochs": workload.num_regrids,
                "best_wall_seconds": min(by_repeat),
                "mean_wall_seconds": sum(by_repeat) / REPEATS,
            }
        )
    return rows


def _runtime_phase_summary() -> dict:
    """One instrumented paper-style run; phase totals + metrics."""
    tracer = Tracer()
    runtime = SamrRuntime(
        paper_rm3d_trace(num_regrids=8),
        Cluster.paper_linux_cluster(8, seed=7),
        ACEHeterogeneous(),
        config=RuntimeConfig(iterations=40, regrid_interval=5,
                             sensing_interval=10),
        tracer=tracer,
    )
    result = runtime.run()
    paths = analyze_critical_path(tracer)
    comm = comm_profile(tracer)
    cp = paths[0] if paths else None
    cm = comm[0].total if comm else None
    return {
        "config": {"nodes": 8, "iterations": 40, "regrid_interval": 5,
                   "sensing_interval": 10},
        "total_sim_seconds": result.total_seconds,
        "phases": aggregate_phases(tracer),
        "metrics": metrics_summary(tracer)["metrics"],
        "critical_path": {
            "total_s": cp.total_s if cp else 0.0,
            "compute_s": cp.compute_s if cp else 0.0,
            "comm_s": cp.comm_s if cp else 0.0,
            "sync_s": cp.sync_s if cp else 0.0,
            "barrier_s": cp.barrier_s if cp else 0.0,
            "balance_headroom_s": cp.balance_headroom_s if cp else 0.0,
            "iterations": len(cp.iterations) if cp else 0,
        },
        "comm": {
            "bytes_total": cm.bytes_total if cm else 0.0,
            "seconds_total": cm.seconds_total if cm else 0.0,
            "derated_bytes_total": cm.derated_bytes_total if cm else 0.0,
            "events": comm[0].events if comm else 0,
        },
    }


def test_emit_bench_telemetry():
    caps = [0.1, 0.15, 0.2, 0.25, 0.3]
    workload = paper_rm3d_trace(num_regrids=4)
    summary = {
        "schema_version": 1,
        "repro_version": __version__,
        "python": platform.python_version(),
        "partitioner_timings": _partitioner_timings(workload, caps),
        "runtime": _runtime_phase_summary(),
    }
    OUTPUT.write_text(json.dumps(summary, indent=2) + "\n")
    print(f"\nwrote {OUTPUT}")
    for row in summary["partitioner_timings"]:
        print(
            f"  {row['partitioner']:>17}: "
            f"{row['best_wall_seconds'] * 1e3:7.1f} ms best of {REPEATS}"
        )
    # The artifact must be parseable and carry the fields the trajectory
    # tooling keys on.
    data = json.loads(OUTPUT.read_text())
    assert data["partitioner_timings"]
    assert all(
        r["best_wall_seconds"] > 0 for r in data["partitioner_timings"]
    )
    phases = data["runtime"]["phases"]
    assert {"run", "sense", "partition", "migrate"} <= set(phases)
    assert "migration_bytes" in data["runtime"]["metrics"]
    cp = data["runtime"]["critical_path"]
    assert cp["total_s"] > 0 and cp["iterations"] > 0
    parts = cp["compute_s"] + cp["comm_s"] + cp["sync_s"] + cp["barrier_s"]
    assert abs(parts - cp["total_s"]) < 1e-6 * max(cp["total_s"], 1.0)
    assert data["runtime"]["comm"]["bytes_total"] > 0
