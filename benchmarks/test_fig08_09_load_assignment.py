"""Figs. 8 and 9: per-processor work assignment vs regrid number.

Paper setup: 4 processors with relative capacities fixed at ~16/19/31/34 %
(two machines synthetically loaded), the application regridding every 5
iterations; the y-axis is the work load assigned to each processor at each
regrid.

Expected shape:
- Fig. 8 (default ACEComposite): the four series coincide -- equal work to
  every processor regardless of capacity;
- Fig. 9 (ACEHeterogeneous): the series order by capacity and track
  16/19/31/34 % of the total at every regrid.
"""

import numpy as np

from repro.runtime.experiment import PAPER_CAPACITIES, load_assignment_tracking
from repro.runtime.reporting import format_load_assignment


def test_fig08_default_equal_assignment(run_experiment):
    data = run_experiment(load_assignment_tracking, "composite", num_regrids=8)
    print()
    print(format_load_assignment(data))
    loads = np.asarray(data["loads"])
    shares = loads / loads.sum(axis=1, keepdims=True)
    # Equal distribution at every regrid, irrespective of capacity.
    np.testing.assert_allclose(shares, 0.25, atol=0.03)


def test_fig09_heterogeneous_tracks_capacity(run_experiment):
    data = run_experiment(
        load_assignment_tracking, "heterogeneous", num_regrids=8
    )
    print()
    print(format_load_assignment(data))
    loads = np.asarray(data["loads"])
    shares = loads / loads.sum(axis=1, keepdims=True)
    caps = np.asarray(data["capacities"])
    np.testing.assert_allclose(caps, PAPER_CAPACITIES, atol=0.01)
    # Every regrid's assignment is proportional to relative capacity.
    np.testing.assert_allclose(
        shares, np.tile(caps, (len(loads), 1)), atol=0.05
    )
    # The series are strictly ordered smallest -> largest capacity.
    for row in shares:
        assert row[0] < row[2] and row[1] < row[3]
