"""Campaign-orchestrator throughput export: write ``BENCH_campaign.json``.

Times the campaign subsystem end to end on a fixed 2 x 2 x 2 grid:

- **run**: a fresh single-worker campaign -- cells/second through the
  full per-cell durability sequence (fsynced store append, ledger
  update, checksummed checkpoint publish).
- **sharded run**: the same grid through a 2-process pool, for the
  orchestration overhead of sharding.
- **resume overhead**: re-opening the *completed* campaign and running
  it again.  Every cell skips, so this isolates the fixed price of a
  resume: checkpoint restore, ledger scan, store/compaction checks.

The artifact feeds ``repro bench-diff`` alongside the other BENCH files;
``cells_per_wall_second`` diffs as a rate (higher is better), the
``*_wall_seconds`` keys as wall time (lower is better), and the
simulated totals as drift (any change means cell records changed).

Not pytest-collected -- CI runs it explicitly::

    PYTHONPATH=src python benchmarks/bench_campaign.py
"""

from __future__ import annotations

import json
import platform
import shutil
import tempfile
import time
from pathlib import Path

from repro import __version__
from repro.campaign import CampaignRunner, CampaignSpec

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_campaign.json"


def bench_spec() -> CampaignSpec:
    return CampaignSpec(
        name="bench",
        scenarios=("paper-four-node", "linux-static"),
        partitioners=("greedy", "heterogeneous"),
        seeds=(1, 2),
        base_config={"iterations": 6},
    )


def timed_run(workers: int, max_cells: int | None = None):
    scratch = Path(tempfile.mkdtemp(prefix="bench-campaign-"))
    directory = scratch / "c"
    try:
        t0 = time.perf_counter()
        result = CampaignRunner(
            bench_spec(), directory, workers=workers
        ).run(max_cells=max_cells)
        wall = time.perf_counter() - t0
        # Resume over the finished campaign: every cell skips.
        t0 = time.perf_counter()
        resumed = CampaignRunner(
            bench_spec(), directory, workers=workers
        ).run()
        resume_wall = time.perf_counter() - t0
        assert resumed["executed"] == 0, "resume re-executed cells"
        store = (directory / "results.jsonl").read_text(encoding="utf-8")
        sim_total = sum(
            json.loads(line)["metrics"]["total_seconds"]
            for line in store.splitlines()
        )
        return result, wall, resume_wall, sim_total
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


def main() -> None:
    spec = bench_spec()
    rows = []
    for label, workers in (("inline", 1), ("sharded", 2)):
        best_wall = best_resume = float("inf")
        sim_total = 0.0
        for _ in range(3):
            result, wall, resume_wall, sim = timed_run(workers)
            best_wall = min(best_wall, wall)
            best_resume = min(best_resume, resume_wall)
            sim_total = sim
        rows.append(
            {
                "mode": f"{label}@{workers}w",
                "workers": workers,
                "num_cells": spec.num_cells,
                "run_wall_seconds": best_wall,
                "cells_per_wall_second": spec.num_cells / best_wall,
                "resume_overhead_wall_seconds": best_resume,
                "sim_seconds_total": sim_total,
            }
        )
        print(
            f"{label}: {spec.num_cells} cells in {best_wall:.3f}s "
            f"({spec.num_cells / best_wall:.1f} cells/s), "
            f"resume overhead {best_resume * 1e3:.1f} ms, "
            f"sim total {sim_total:.1f}s"
        )
    payload = {
        "schema_version": 1,
        "repro_version": __version__,
        "python": platform.python_version(),
        "modes": rows,
    }
    OUTPUT.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    print(f"wrote {OUTPUT}")


if __name__ == "__main__":
    main()
