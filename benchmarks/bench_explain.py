"""Decision-provenance benchmark: write ``BENCH_explain.json``.

Times the :mod:`repro.learn.audit` stack at its three cost centers:

- **ledger append**: durably recording decisions to a
  :class:`~repro.learn.audit.DecisionLedger` (fsync per row) and
  re-opening it -- the per-decision price the runtime pays to keep a
  complete causal account.
- **reconciliation**: :func:`~repro.learn.audit.reconcile` throughput
  over an in-memory ledger (calibration join + gate mix + forecast
  scoring), the cost of one ``repro explain`` / ``/decisions`` render.
- **oracle replay**: hindsight re-pricing of recorded gate decisions
  (:func:`~repro.learn.audit.oracle_replay`), the regret analysis that
  dominates reconciliation on gate-heavy ledgers.

The artifact feeds ``repro bench-diff`` alongside the other BENCH
files: ``*_per_wall_second`` keys diff as rates (higher is better,
registered in :data:`repro.telemetry.benchdiff.RATE_KEYS`),
``*_wall_seconds`` as wall time, counts as drift keys.

Not pytest-collected -- CI runs it explicitly::

    PYTHONPATH=src python benchmarks/bench_explain.py
"""

from __future__ import annotations

import json
import platform
import shutil
import tempfile
import time
from pathlib import Path

import numpy as np

from repro import __version__
from repro.learn import DecisionLedger, LearnConfig, RepartitionGate
from repro.learn.audit import oracle_replay, reconcile

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_explain.json"

LEDGER_ROWS = 400
RECONCILE_ROWS = 5_000
ORACLE_GATES = 2_000
NUM_NODES = 8


def _gate_record(rng: np.random.Generator, seq: int) -> dict:
    """One self-consistent gate row: outputs really computed by the gate."""
    loads = rng.uniform(50.0, 150.0, size=NUM_NODES)
    caps = rng.uniform(0.05, 0.2, size=NUM_NODES)
    beta = float(rng.uniform(0.001, 0.01))
    migration = float(rng.uniform(0.1, 2.0))
    gate = RepartitionGate(LearnConfig())
    decision = gate.decide(
        loads=loads,
        capacities=caps,
        horizon_iters=20,
        beta=beta,
        migration_seconds=migration,
    )
    return {
        "seq": seq,
        "kind": "gate",
        "loads": loads.tolist(),
        "capacities": caps.tolist(),
        "horizon_iters": 20,
        "beta": beta,
        "migration_seconds": migration,
        "gate_safety": 2.0,
        "repartition": decision.repartition,
        "reason": decision.reason,
        "payoff_seconds": decision.payoff_seconds,
        "cost_seconds": decision.cost_seconds,
    }


def _synthetic_rows(n: int, gates: int, seed: int = 5) -> list[dict]:
    """A realistic record mix: predictions + outcomes + gates + forecasts."""
    rng = np.random.default_rng(seed)
    rows: list[dict] = []
    t = 0.0
    while len(rows) < n - gates:
        seq = len(rows)
        t += 1.2
        roll = len(rows) % 10
        if roll < 6:
            x = float(rng.uniform(200.0, 800.0))
            actual = 0.5 + 0.002 * x + float(rng.normal(0.0, 0.02))
            rows.append(
                {
                    "seq": seq,
                    "kind": "prediction",
                    "iteration": seq,
                    "t": t,
                    "x": x,
                    "predicted": 0.5 + 0.002 * x,
                    "lo": 0.5 + 0.002 * x - 0.08,
                    "hi": 0.5 + 0.002 * x + 0.08,
                    "actual": actual,
                    "cold": False,
                }
            )
        elif roll < 8:
            rows.append(
                {
                    "seq": seq,
                    "kind": "outcome",
                    "phase": "sense",
                    "t": t,
                    "capacities": rng.uniform(
                        0.05, 0.2, size=NUM_NODES
                    ).tolist(),
                    "overhead_seconds": 0.01,
                }
            )
        elif roll < 9:
            rows.append(
                {
                    "seq": seq,
                    "kind": "outcome",
                    "phase": "migrate",
                    "t": t,
                    "seconds": float(rng.uniform(0.1, 2.0)),
                    "bytes": int(rng.integers(1_000, 1_000_000)),
                }
            )
        else:
            sensed = rng.uniform(0.05, 0.2, size=NUM_NODES)
            rows.append(
                {
                    "seq": seq,
                    "kind": "forecast",
                    "t": t,
                    "lead_seconds": 2.4,
                    "target_t": t + 2.4,
                    "drift_rate": 0.001,
                    "sensed": sensed.tolist(),
                    "predicted": (sensed * 1.01).tolist(),
                }
            )
    for _ in range(gates):
        rows.append(_gate_record(rng, len(rows)))
    return rows


def bench_ledger() -> dict:
    """Durable (fsync-per-append) decision recording + reopen."""
    rng = np.random.default_rng(7)
    scratch = Path(tempfile.mkdtemp(prefix="bench-explain-"))
    try:
        ledger = DecisionLedger(scratch / "ledger")
        t0 = time.perf_counter()
        for i in range(LEDGER_ROWS):
            ledger.record(
                "prediction",
                iteration=i,
                t=1.2 * i,
                x=float(rng.uniform(200.0, 800.0)),
                predicted=1.0,
                lo=0.9,
                hi=1.1,
                actual=float(rng.uniform(0.9, 1.1)),
                cold=False,
            )
        append_wall = time.perf_counter() - t0
        ledger.checkpoint()

        t0 = time.perf_counter()
        reopened = DecisionLedger(scratch / "ledger")
        reopen_wall = time.perf_counter() - t0
        assert len(reopened) == LEDGER_ROWS, "lost rows on reopen"
        return {
            "ledger_rows": LEDGER_ROWS,
            "append_wall_seconds": append_wall,
            "appends_per_wall_second": LEDGER_ROWS / append_wall,
            "reopen_wall_seconds": reopen_wall,
        }
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


def bench_reconcile() -> dict:
    """Full reconciliation throughput over an in-memory ledger."""
    rows = _synthetic_rows(RECONCILE_ROWS, gates=RECONCILE_ROWS // 50)
    t0 = time.perf_counter()
    report = reconcile(rows)
    wall = time.perf_counter() - t0
    assert report["records"] == RECONCILE_ROWS
    assert report["calibration"]["coverage"] is not None
    return {
        "records": RECONCILE_ROWS,
        "reconcile_wall_seconds": wall,
        "decisions_per_wall_second": RECONCILE_ROWS / wall,
    }


def bench_oracle() -> dict:
    """Hindsight replay throughput on a gate-heavy ledger."""
    rows = _synthetic_rows(ORACLE_GATES + 500, gates=ORACLE_GATES)
    t0 = time.perf_counter()
    report = oracle_replay(rows)
    wall = time.perf_counter() - t0
    assert report["decisions"] == ORACLE_GATES
    return {
        "gate_records": ORACLE_GATES,
        "oracle_wall_seconds": wall,
        "replays_per_wall_second": ORACLE_GATES / wall,
    }


def main() -> None:
    sections = {}
    for name, fn in (
        ("ledger", bench_ledger),
        ("reconcile", bench_reconcile),
        ("oracle", bench_oracle),
    ):
        sections[name] = fn()
        pretty = ", ".join(
            f"{k}={v:.4g}" if isinstance(v, float) else f"{k}={v}"
            for k, v in sections[name].items()
        )
        print(f"{name}: {pretty}")
    payload = {
        "schema_version": 1,
        "repro_version": __version__,
        "python": platform.python_version(),
        **sections,
    }
    OUTPUT.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    print(f"wrote {OUTPUT}")


if __name__ == "__main__":
    main()
