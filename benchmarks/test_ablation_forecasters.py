"""Ablation: NWS forecaster choice under measurement noise.

NWS reports forecasts, not raw samples, precisely because single probes
are noisy.  We feed each forecaster noisy measurements of a static
cluster and measure the capacity-estimation error against the noise-free
truth.

Expected shape: averaging predictors (sliding mean/median, AR) beat
last-value; the adaptive ensemble tracks close to the best primitive.
"""

from repro.runtime.ablation import forecaster_ablation


def test_forecaster_accuracy_under_noise(run_experiment):
    data = run_experiment(
        forecaster_ablation, noise=0.25, probes=40, seeds=(0, 1, 2)
    )
    by_kind = {r["forecaster"]: r["mae"] for r in data["rows"]}
    print()
    print(f"capacity MAE under {data['noise']:.0%} measurement noise:")
    for kind, mae in sorted(by_kind.items(), key=lambda kv: kv[1]):
        print(f"  {kind:>9}: {mae:.4f}")
    # Averaging beats the raw last sample.
    assert by_kind["mean"] < by_kind["last"]
    assert by_kind["median"] < by_kind["last"]
    # The ensemble is competitive: within 2x of the best primitive.
    best = min(v for k, v in by_kind.items() if k != "adaptive")
    assert by_kind["adaptive"] < 2 * best
