"""Micro-benchmarks of the substrate hot paths.

Unlike the table/figure benches (which run an experiment once and assert
its shape), these time the inner kernels pytest-benchmark style: SFC
encoding, Berger-Rigoutsos clustering, partitioning one paper-scale epoch,
HDDA redistribution, and one AMR solver step.  They guard against
performance regressions in the code the runtime calls thousands of times.
"""

import numpy as np

from repro.amr.clustering import berger_rigoutsos
from repro.hdda import HDDA, HierarchicalIndexSpace
from repro.kernels.rm3d import RM3DKernel
from repro.kernels.workloads import paper_rm3d_trace
from repro.partition import ACEComposite, ACEHeterogeneous
from repro.runtime.experiment import PAPER_CAPACITIES
from repro.util.geometry import Box
from repro.util.sfc import hilbert_encode_many


def test_bench_hilbert_encoding(benchmark):
    rng = np.random.default_rng(0)
    coords = rng.integers(0, 1 << 10, size=(100_000, 3))
    keys = benchmark(hilbert_encode_many, coords, 10)
    assert len(keys) == 100_000
    # Injective: as many distinct keys as distinct coordinates.
    assert len(np.unique(keys)) == len(np.unique(coords, axis=0))


def test_bench_berger_rigoutsos(benchmark):
    rng = np.random.default_rng(1)
    mask = np.zeros((128, 128), dtype=bool)
    for _ in range(12):  # scattered blobs
        x, y = rng.integers(0, 112, size=2)
        mask[x : x + 16, y : y + 16] = rng.random((16, 16)) < 0.7
    boxes = benchmark(berger_rigoutsos, mask, efficiency=0.7, min_size=2)
    assert len(boxes) > 1


def test_bench_partition_heterogeneous(benchmark):
    epoch = paper_rm3d_trace(num_regrids=8).epoch(7)
    caps = np.tile(PAPER_CAPACITIES, 8) / 8  # 32 ranks
    part = ACEHeterogeneous()
    result = benchmark(part.partition, epoch, caps)
    result.validate_covers(epoch)


def test_bench_partition_composite(benchmark):
    epoch = paper_rm3d_trace(num_regrids=8).epoch(7)
    caps = np.full(32, 1 / 32)
    part = ACEComposite()
    result = benchmark(part.partition, epoch, caps)
    result.validate_covers(epoch)


def test_bench_hdda_redistribution(benchmark):
    space = HierarchicalIndexSpace(Box((0, 0), (256, 256)), max_levels=2)
    tiles = [
        Box((i * 8, j * 8), ((i + 1) * 8, (j + 1) * 8))
        for i in range(32)
        for j in range(32)
    ]
    a1 = {b: (i % 8) for i, b in enumerate(tiles)}
    a2 = {b: ((i + 3) % 8) for i, b in enumerate(tiles)}

    def roundtrip():
        h = HDDA(space, num_procs=8)
        h.apply_assignment(a1)
        plan = h.apply_assignment(a2)
        return h, plan

    h, plan = benchmark(roundtrip)
    assert plan.total_blocks > 0
    h.check_invariants()


def test_bench_rm3d_step(benchmark):
    kernel = RM3DKernel(domain_shape=(64, 16, 16))
    u = kernel.initial_condition(Box((0, 0, 0), (64, 16, 16)), 1.0)
    dt = kernel.stable_dt(u, 1.0, 0.3)
    out = benchmark(kernel.step, u, dt, 1.0)
    assert out.shape == u.shape


def test_bench_rm3d_muscl_step(benchmark):
    kernel = RM3DKernel(domain_shape=(64, 16, 16), order=2)
    u = kernel.initial_condition(Box((0, 0, 0), (64, 16, 16)), 1.0)
    dt = kernel.stable_dt(u, 1.0, 0.3)
    out = benchmark(kernel.step, u, dt, 1.0)
    assert out.shape == u.shape


def test_bench_multigrid_vcycle(benchmark):
    import numpy as np

    from repro.solvers import PoissonMultigrid

    n = 128
    dx = 1.0 / n
    x = (np.arange(n) + 0.5) * dx
    X, Y = np.meshgrid(x, x, indexing="ij")
    f = 2 * np.pi**2 * np.sin(np.pi * X) * np.sin(np.pi * Y)
    mg = PoissonMultigrid((n, n), dx=dx)

    def solve():
        return mg.solve(f, tol=1e-8)

    u, info = benchmark(solve)
    assert info["converged"]


# --------------------------------------------------------------------------
# The partitioner's work queue (heapq swap regression guards)
# --------------------------------------------------------------------------
def _drain_work_queue(n: int) -> int:
    """Mirror ACEHeterogeneous's queue access pattern at size ``n``.

    Build a work-ascending (work, seq, item) queue, then pop everything
    while pushing split remainders back for a third of the pops -- the
    same pop/push mix the partitioner's fill loop produces.
    """
    import heapq

    queue = [(float((i * 7919) % 97), i, i) for i in range(n)]
    queue.sort()
    heapq.heapify(queue)
    seq = n
    popped = 0
    budget = n // 3  # bounded number of re-pushed "remainders"
    while queue:
        work, _, item = heapq.heappop(queue)
        popped += 1
        if budget > 0 and item % 3 == 0:
            heapq.heappush(queue, (work + 1.0, seq, item + n))
            seq += 1
            budget -= 1
    return popped


def test_bench_work_queue_drain(benchmark):
    n = 50_000
    popped = benchmark(_drain_work_queue, n)
    assert popped == n + n // 3


def test_work_queue_scales_linearithmically():
    """4x the boxes must cost nowhere near the 16x a quadratic queue does.

    The pre-heapq queue (``list.pop(0)`` + ``bisect.insort``) made every
    operation O(n), so quadrupling the queue quadrupled *each* of the 4x
    operations: a ~16x wall ratio.  The heap keeps operations O(log n);
    the observed ratio sits near 4.3x, and the generous 10x bound below
    stays red for any quadratic regression while tolerating noisy CI.
    """
    import time

    sizes = (8_000, 32_000)
    walls = []
    for n in sizes:
        _drain_work_queue(n)  # warm-up
        best = float("inf")
        for _ in range(5):
            t0 = time.perf_counter()
            _drain_work_queue(n)
            best = min(best, time.perf_counter() - t0)
        walls.append(best)
    ratio = walls[1] / walls[0]
    assert ratio < 10.0, (
        f"queue drain scaled {ratio:.1f}x for 4x items "
        f"({walls[0]*1e3:.2f} ms -> {walls[1]*1e3:.2f} ms); "
        f"expected ~4x (linearithmic), got quadratic-like behaviour"
    )
