"""Fig. 7 / Table I: total execution time, system-sensitive vs default.

Paper (32-node Linux cluster, RM3D, 3 levels on 128x32x32, capacities
sensed once before the start):

    procs   improvement
        4            7 %
        8            6 %
       16           18 %
       32           18 %

Expected shape: the system-sensitive partitioner wins at every processor
count, execution time falls with processor count, and the improvement is
larger on the bigger (more heterogeneous) configurations.
"""

from repro.runtime.experiment import execution_time_comparison
from repro.runtime.reporting import format_fig7_table1


def test_fig07_table1_execution_time(run_experiment):
    data = run_experiment(
        execution_time_comparison,
        processor_counts=(4, 8, 16, 32),
        iterations=40,
        seeds=(7, 19, 31),
    )
    print()
    print(format_fig7_table1(data))

    rows = {r["procs"]: r for r in data["rows"]}
    # Who wins: system-sensitive, at every P.
    for row in rows.values():
        assert row["improvement_pct"] > 0, row
    # Rough factor: single-digit to ~25 % improvements, as in the paper.
    for row in rows.values():
        assert 2.0 < row["improvement_pct"] < 35.0, row
    # Strong scaling: more processors -> shorter runs, for both schemes.
    for key in ("system_sensitive_s", "default_s"):
        times = [rows[p][key] for p in (4, 8, 16, 32)]
        assert times == sorted(times, reverse=True)
    # The gain grows with cluster size (4 -> 32), the paper's crossover.
    assert rows[32]["improvement_pct"] > rows[4]["improvement_pct"]
