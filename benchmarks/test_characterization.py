"""Partitioner characterization panel (related-work reference [17]).

One row per partitioner, five metrics each, over the paper's RM3D trace
with the 16/19/31/34 % capacity vector.  The multi-objective trade-offs:
the splitting schemes buy imbalance at the cost of fragmentation; the
curve/graph schemes buy communication volume at the cost of imbalance.
"""

from repro.kernels.workloads import paper_rm3d_trace
from repro.partition import (
    ACEComposite,
    ACEHeterogeneous,
    GraphPartitioner,
    GreedyLPT,
    LevelPartitioner,
    SFCHybrid,
)
from repro.runtime.characterization import characterize
from repro.runtime.experiment import PAPER_CAPACITIES


def test_characterization_panel(run_experiment):
    workload = paper_rm3d_trace(num_regrids=8)

    def sweep():
        return [
            characterize(p, workload, PAPER_CAPACITIES)
            for p in (
                ACEHeterogeneous(),
                SFCHybrid(),
                GreedyLPT(),
                GraphPartitioner(),
                ACEComposite(),
                LevelPartitioner(ACEHeterogeneous()),
            )
        ]

    rows = run_experiment(sweep)
    print()
    print(
        f"{'partitioner':>17} {'imb(mean/max)%':>16} {'comm kB':>9} "
        f"{'migr kB':>9} {'frag':>6} {'time ms':>8}"
    )
    for r in rows:
        print(
            f"{r.partitioner:>17} "
            f"{r.mean_imbalance_pct:7.1f}/{r.max_imbalance_pct:<7.1f} "
            f"{r.mean_comm_kb:>9.1f} {r.mean_migration_kb:>9.1f} "
            f"{r.fragmentation:>6.2f} {r.mean_partition_ms:>8.2f}"
        )
    by_name = {r.partitioner: r for r in rows}
    # The splitting, capacity-aware schemes dominate on imbalance ...
    for splitter in ("ACEHeterogeneous", "SFCHybrid"):
        assert by_name[splitter].mean_imbalance_pct < 5.0
        # ... paying for it in fragmentation (they produce extra boxes).
        assert by_name[splitter].fragmentation > 1.0
    # No-split schemes keep fragmentation at exactly 1.
    for whole in ("GreedyLPT", "GraphPartitioner"):
        assert by_name[whole].fragmentation == 1.0
        assert by_name[whole].mean_imbalance_pct > 5.0
    # The graph partitioner minimizes communication volume.
    assert by_name["GraphPartitioner"].mean_comm_kb == min(
        r.mean_comm_kb for r in rows
    )
    # Everything partitions a paper-scale epoch in a few milliseconds.
    for r in rows:
        assert r.mean_partition_ms < 100.0
