"""Ablation: capacity-weight choice (paper section 8 future work).

The paper uses equal weights (w_p = w_m = w_b = 1/3) and notes that
weights "can in fact be chosen more carefully according to the
computational needs of a particular application".  We run the RM3D
workload -- a compute-bound application -- on a cluster whose only
heterogeneity is CPU load, under four weight profiles.

Expected shape: the compute-bound profile (w_p-heavy) beats the paper's
equal weights, which in turn beat profiles that emphasize the
uninformative resources (memory / bandwidth are uniform on this cluster).
"""

from repro.runtime.ablation import weight_ablation


def test_weight_choice_matches_application_profile(run_experiment):
    data = run_experiment(weight_ablation, iterations=30)
    by_profile = {r["profile"]: r["seconds"] for r in data["rows"]}
    print()
    print(f"weight ablation on a {data['cluster']} cluster:")
    for profile, seconds in sorted(by_profile.items(), key=lambda kv: kv[1]):
        print(f"  {profile:>14}: {seconds:7.1f}s")
    assert by_profile["compute-bound"] < by_profile["equal (paper)"]
    assert by_profile["equal (paper)"] < by_profile["memory-bound"]
    assert by_profile["equal (paper)"] < by_profile["comm-bound"]
