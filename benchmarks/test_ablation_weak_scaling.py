"""Extension: weak scaling of the partitioned SAMR runtime.

Per-processor work is held constant while the cluster grows; ideal weak
scaling keeps execution time flat.  On a *loaded* cluster the makespan is
gated by the slowest of an ever-larger node sample, so efficiency decays
-- more gently for the capacity-aware partitioner, which keeps routing
work away from the stragglers.
"""

from repro.runtime.ablation import weak_scaling


def test_weak_scaling(run_experiment):
    data = run_experiment(
        weak_scaling, processor_counts=(2, 4, 8, 16), iterations=20
    )
    print()
    print(
        f"weak scaling ({data['cells_per_proc_y']} transverse cells/proc):"
    )
    print(f"{'procs':>6} {'het (s)':>9} {'eff':>6} {'comp (s)':>10} {'eff':>6}")
    for r in data["rows"]:
        print(
            f"{r['procs']:>6} {r['het_s']:>9.1f} {r['het_efficiency']:>6.2f} "
            f"{r['comp_s']:>10.1f} {r['comp_efficiency']:>6.2f}"
        )
    rows = data["rows"]
    # Capacity awareness wins at every size.
    for r in rows:
        assert r["het_s"] < r["comp_s"], r
    # Efficiency decays monotonically for both (loaded-cluster reality) ...
    for key in ("het_efficiency", "comp_efficiency"):
        effs = [r[key] for r in rows]
        assert effs == sorted(effs, reverse=True)
        # ... but stays in a sane band (no pathological collapse).
        assert effs[-1] > 0.3
