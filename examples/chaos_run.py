#!/usr/bin/env python
"""Chaos engineering for the adaptive runtime: kill nodes, recover, verify.

Walks the full resilience pipeline on a distributed AMR run:

1. a **sequential** advection run produces the reference solution;
2. a **chaos** run executes the same problem on an 8-node cluster with
   checkpoint/restart enabled while a seeded :class:`FaultPlan` crashes
   two nodes mid-run and brings them back later;
3. on detecting the dead ranks, the runtime restores the latest
   checksummed checkpoint, repartitions over the six survivors
   (orphaned boxes are priced as checkpoint-storage reads, not as
   transfers off the dead NICs), replays the lost steps, and grows back
   over the recovered nodes at the next repartition;
4. the final solution is compared **bitwise** against the sequential
   run -- partition invariance holds even across a crash-restore cycle.

Every fault and recovery lands in the telemetry stream as a ``fault.*``
/ ``recovery.*`` event, rendered by the HTML dashboard as full-height
timeline markers plus a chronological fault table.

Run:  python examples/chaos_run.py
Then: open chaos_run.dashboard.html
      python -m repro profile chaos_run.events.jsonl
"""

from repro.runtime.experiment import chaos_experiment
from repro.telemetry import (
    Tracer,
    activate,
    fault_summary,
    write_dashboard,
    write_jsonl,
)

NODES = 8
KILL = 2
STEPS = 12


def main() -> None:
    tracer = Tracer()
    with activate(tracer):
        stats = chaos_experiment(
            num_nodes=NODES, steps=STEPS, kill=KILL, tracer=tracer
        )

    print(
        f"killed nodes {stats['killed_nodes']} at "
        f"t={stats['outage_at_s']:.2f}s, recovered "
        f"{stats['outage_duration_s']:.2f}s later"
    )
    print(
        f"checkpoints {stats['num_checkpoints']}, restores "
        f"{stats['num_restores']}, recoveries {stats['num_recoveries']}, "
        f"replayed steps {stats['replayed_steps']}"
    )
    faults = fault_summary(tracer.events)
    for name, count in sorted(faults["counts"].items()):
        print(f"  {name}: {count}")
    ttr = stats["mean_time_to_recover_s"]
    if ttr is not None:
        print(f"mean time-to-recover: {ttr:.3f} sim s")
    print(
        "solution bitwise identical to sequential run:",
        stats["bitwise_identical"],
    )
    assert stats["bitwise_identical"], "chaos run diverged!"

    write_dashboard(
        tracer,
        "chaos_run.dashboard.html",
        title="Chaos run — fault injection dashboard",
    )
    write_jsonl(tracer, "chaos_run.events.jsonl")
    print("dashboard: chaos_run.dashboard.html")
    print("trace:     chaos_run.events.jsonl  "
          "(try: python -m repro profile chaos_run.events.jsonl)")


if __name__ == "__main__":
    main()
