#!/usr/bin/env python
"""The campaign lifecycle, end to end: run, interrupt, resume, serve.

Executes a small scenario × partitioner × seed grid three ways --
single worker, interrupted-then-resumed, and sharded across a process
pool -- and proves the payoff properties on the spot:

1. the resume re-executes **zero** completed cells;
2. all three result stores are **byte-identical** (cell records hold
   simulated-clock quantities only, so execution history leaves no
   trace in the data);
3. the ``repro serve`` HTTP layer answers cell queries and the HTML
   report, with ETag revalidation returning ``304`` from the response
   cache;
4. live observability rides along: per-cell trace-artifact bundles,
   the OpenMetrics ``/metrics`` endpoint and the ``/live`` SSE stream.

Run:  python examples/campaign_demo.py
"""

import json
import tempfile
import threading
import urllib.error
import urllib.request
from pathlib import Path

from repro.campaign import CampaignRunner, CampaignSpec, make_server

SPEC = CampaignSpec(
    name="demo",
    scenarios=("paper-four-node", "linux-static"),
    partitioners=("greedy", "heterogeneous"),
    seeds=(1, 2),
    base_config={"iterations": 10},
)


def main() -> None:
    root = Path(tempfile.mkdtemp(prefix="campaign-demo-"))
    print(f"campaign root: {root}")
    print(f"grid: {SPEC.num_cells} cells ({SPEC.campaign_id})\n")

    # -- 1. straight single-worker run ---------------------------------
    straight = root / "straight"
    result = CampaignRunner(SPEC, straight, workers=1).run()
    print(f"straight run:   executed {result['executed']}, "
          f"{result['wall_seconds']:.2f}s wall")

    # -- 2. interrupt after 3 cells, then resume -----------------------
    chopped = root / "chopped"
    partial = CampaignRunner(SPEC, chopped, workers=1).run(max_cells=3)
    print(f"interrupted:    executed {partial['executed']}, "
          f"{partial['completed']}/{partial['num_cells']} done")
    resumed = CampaignRunner(SPEC, chopped, workers=1).run()
    print(f"resumed:        executed {resumed['executed']}, "
          f"skipped {resumed['skipped']} (zero cells re-ran)")

    # -- 3. sharded across a 4-process pool ----------------------------
    sharded = root / "sharded"
    pooled = CampaignRunner(SPEC, sharded, workers=4).run()
    print(f"4-worker pool:  executed {pooled['executed']}, "
          f"{pooled['wall_seconds']:.2f}s wall")

    # -- the determinism payoff ----------------------------------------
    blobs = [
        (d / "results.jsonl").read_bytes()
        for d in (straight, chopped, sharded)
    ]
    assert blobs[0] == blobs[1] == blobs[2]
    print(f"\nall three result stores byte-identical "
          f"({len(blobs[0])} bytes)\n")

    # -- serve and query -----------------------------------------------
    server = make_server(root, port=0)
    port = server.server_address[1]
    threading.Thread(target=server.serve_forever, daemon=True).start()
    base = f"http://127.0.0.1:{port}"
    print(f"serving on {base}")

    def get(path: str, headers: dict | None = None):
        req = urllib.request.Request(base + path, headers=headers or {})
        try:
            with urllib.request.urlopen(req) as resp:
                return resp.status, dict(resp.headers), resp.read()
        except urllib.error.HTTPError as err:
            return err.code, dict(err.headers), err.read()

    _, _, body = get("/campaigns")
    ids = [row["id"] for row in json.loads(body)["campaigns"]]
    print(f"GET /campaigns -> {ids}")

    _, _, body = get("/campaigns/straight/cells")
    key = sorted(json.loads(body)["cells"])[0]
    _, _, body = get(f"/campaigns/straight/cells/{key}")
    record = json.loads(body)
    print(f"GET /campaigns/straight/cells/{key}")
    print(f"  -> total {record['metrics']['total_seconds']:.1f} sim s, "
          f"mean imbalance {record['metrics']['mean_imbalance_pct']:.1f}%")

    status, headers, body = get("/campaigns/straight/report")
    etag = headers["ETag"]
    print(f"GET /campaigns/straight/report -> {status}, "
          f"{len(body)} bytes, ETag {etag}")
    status, _, _ = get(
        "/campaigns/straight/report", {"If-None-Match": etag}
    )
    print(f"revalidation with If-None-Match -> {status} (cached)")
    assert status == 304

    # -- live observability --------------------------------------------
    _, _, body = get(f"/campaigns/straight/cells/{key}/artifacts/flamegraph")
    stacks = body.decode("utf-8").count("\n")
    print(f"GET .../cells/{key[:24]}.../artifacts/flamegraph "
          f"-> {stacks} collapsed stacks")
    _, headers, body = get("/metrics")
    print(f"GET /metrics -> {headers['Content-Type'].split(';')[0]}, "
          f"{len(body.splitlines())} lines")
    _, _, body = get("/campaigns/straight/live")
    finishes = body.decode("utf-8").count("event: live.cell_finished")
    print(f"GET /campaigns/straight/live -> SSE replay, "
          f"{finishes} cell-finished frames")
    assert finishes == SPEC.num_cells

    server.shutdown()
    server.server_close()
    print("\ndone; campaign directories left in", root)


if __name__ == "__main__":
    main()
