#!/usr/bin/env python
"""Run the actual RM3D Richtmyer-Meshkov AMR solver (not a trace).

This drives the real 3-D compressible Euler kernel through the
Berger-Oliger integrator on a scaled-down version of the paper's mesh
(the full 128x32x32 works too, but takes minutes per step in pure
NumPy -- pass --paper-scale if you have the patience), showing:

- the adaptive hierarchy forming over the shocked interface,
- regridding tracking the transmitted shock and the growing instability,
- the bounding-box lists the partitioner would receive at each regrid.

Run:  python examples/rm3d_amr_simulation.py [--paper-scale]
"""

import argparse

import numpy as np

from repro import ACEHeterogeneous, Box, GridHierarchy, RM3DKernel
from repro.amr.integrator import BergerOligerIntegrator
from repro.amr.regrid import RegridParams
from repro.runtime.experiment import PAPER_CAPACITIES


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--paper-scale", action="store_true",
        help="use the paper's 128x32x32 base mesh (slow in pure NumPy)",
    )
    parser.add_argument("--steps", type=int, default=12)
    args = parser.parse_args()

    shape = (128, 32, 32) if args.paper_scale else (32, 8, 8)
    kernel = RM3DKernel(domain_shape=shape)
    hierarchy = GridHierarchy(
        Box((0, 0, 0), shape), kernel, max_levels=3, refine_factor=2
    )

    partitioner = ACEHeterogeneous()

    def on_regrid(h: GridHierarchy) -> None:
        boxes = h.box_list()
        result = partitioner.partition(boxes, PAPER_CAPACITIES)
        shares = result.loads() / max(result.loads().sum(), 1)
        print(
            f"  regrid @ step {h.step_count}: {len(boxes)} boxes, "
            f"work/level = {h.work_by_level().tolist()}, "
            "shares = " + "/".join(f"{s:.0%}" for s in shares)
        )

    integrator = BergerOligerIntegrator(
        hierarchy,
        cfl=0.3,
        regrid_interval=3,
        regrid_params=RegridParams(flag_threshold=0.05, flag_buffer=1),
        on_regrid=on_regrid,
    )

    print(f"RM3D on {shape} base mesh, 3 levels of factor-2 refinement")
    integrator.setup()
    assert hierarchy.proper_nesting_ok()

    for step in range(args.steps):
        dt = integrator.advance()
        rho_max = max(
            float(p.interior[0].max()) for p in hierarchy.levels[0]
        )
        if step % 3 == 0:
            print(
                f"step {hierarchy.step_count:3d}: t={hierarchy.time:.4f} "
                f"dt={dt:.4f} levels={hierarchy.num_levels} "
                f"cells={int(sum(l.total_cells for l in hierarchy.levels))} "
                f"rho_max={rho_max:.3f}"
            )

    # Verify physics sanity at the end.
    for level in hierarchy.levels:
        for patch in level:
            rho = patch.interior[0]
            assert rho.min() > 0, "density stayed positive"
    print("done: density positive everywhere, nesting "
          f"{'ok' if hierarchy.proper_nesting_ok() else 'BROKEN'}")


if __name__ == "__main__":
    main()
