#!/usr/bin/env python
"""Distributed execution of the real RM3D solver on a simulated cluster.

The deepest integration in the library: the actual 3-D Richtmyer-Meshkov
Euler kernel runs under the Berger-Oliger integrator while the
system-sensitive partitioner owns the decomposition -- its split boxes
*become* the hierarchy's patch layout at every regrid, each simulated rank
owns its assigned patches, and compute / ghost-exchange / migration /
sensing costs accrue on the simulated cluster clock.

Because ghost filling reads the composite grid and restriction accumulates
in a fixed order, the solution is **bitwise identical** to a sequential
run -- partitioning changes *when* you finish, never *what* you compute.
This example demonstrates both facts.

Run:  python examples/distributed_rm3d.py
"""

import numpy as np

from repro import ACEComposite, ACEHeterogeneous, Box, Cluster, RM3DKernel
from repro.amr.ghost import GhostFiller
from repro.amr.hierarchy import GridHierarchy
from repro.amr.integrator import BergerOligerIntegrator
from repro.runtime.distributed import DistributedAmrRun, DistributedRunConfig

SHAPE = (32, 8, 8)
STEPS = 8


def make_hierarchy() -> GridHierarchy:
    return GridHierarchy(
        Box((0, 0, 0), SHAPE), RM3DKernel(domain_shape=SHAPE), max_levels=3
    )


def main() -> None:
    # --- sequential reference -------------------------------------------
    h_ref = make_hierarchy()
    integ = BergerOligerIntegrator(h_ref, regrid_interval=3, cfl=0.3)
    integ.setup()
    for _ in range(STEPS):
        integ.advance()
    reference = GhostFiller(h_ref).fetch(h_ref.domain, 0)

    # --- distributed runs under both partitioners ------------------------
    print(f"RM3D {SHAPE}, {STEPS} steps, 4-node loaded cluster "
          "(capacities ~16/19/31/34%)\n")
    for partitioner in (ACEHeterogeneous(), ACEComposite()):
        h = make_hierarchy()
        run = DistributedAmrRun(
            h,
            Cluster.paper_four_node(),
            partitioner,
            config=DistributedRunConfig(
                steps=STEPS, regrid_interval=3, cfl=0.3
            ),
        )
        result = run.run()
        solution = GhostFiller(h).fetch(h.domain, 0)
        identical = np.array_equal(solution, reference)
        loads = result.loads_history[-1]
        shares = "/".join(f"{s:.0%}" for s in loads / loads.sum())
        print(f"{partitioner.name}:")
        print(f"  simulated time : {result.total_seconds:7.2f}s "
              f"({result.num_regrids} regrids, "
              f"migration {result.migration_seconds:.2f}s)")
        print(f"  final shares   : [{shares}]")
        print(f"  level-0 patches: {len(h.levels[0])}")
        print(f"  bitwise equal to sequential solution: {identical}")
        assert identical, "partition invariance violated!"
        print()


if __name__ == "__main__":
    main()
