#!/usr/bin/env python
"""Adapting to cluster load dynamics via runtime sensing (section 6.2.3).

Runs the RM3D workload on a dynamic 4-node cluster whose synthetic load
*moves* mid-run (one pair of nodes busy in the first half, another pair in
the second), comparing three configurations:

1. sense once before the start (the paper's static baseline),
2. dynamic sensing every 20 iterations (the paper's sweet spot),
3. dynamic sensing every iteration (overhead-dominated).

Also prints the capacity/allocation trace of the adaptive run -- the
paper's fig. 11 view.

Run:  python examples/dynamic_sensing.py
"""

from repro import ACEHeterogeneous, Cluster, RuntimeConfig, SamrRuntime
from repro import paper_rm3d_trace

ITERATIONS = 100
HORIZON = 500.0  # the load script spans roughly the run length
SEED = 5


def run(sensing_interval: int):
    cluster = Cluster.paper_linux_cluster(
        4, seed=SEED, dynamic=True, horizon_s=HORIZON
    )
    runtime = SamrRuntime(
        paper_rm3d_trace(num_regrids=ITERATIONS // 5 + 1),
        cluster,
        ACEHeterogeneous(),
        config=RuntimeConfig(
            iterations=ITERATIONS,
            regrid_interval=5,
            sensing_interval=sensing_interval,
        ),
    )
    return runtime.run()


def main() -> None:
    print(f"RM3D trace, {ITERATIONS} iterations, dynamic 4-node cluster\n")
    results = {}
    for label, interval in (
        ("sense once", 0),
        ("every 20 its", 20),
        ("every iteration", 1),
    ):
        result = run(interval)
        results[label] = result
        print(
            f"{label:>16}: {result.total_seconds:7.1f}s "
            f"(sensings={result.num_sensings}, "
            f"sensing overhead={result.sensing_seconds:.0f}s, "
            f"migration={result.migration_seconds:.0f}s)"
        )

    best = min(results, key=lambda k: results[k].total_seconds)
    print(f"\nbest configuration: {best}")

    print("\ncapacity/allocation trace of the adaptive run (fig. 11 view):")
    adaptive = results["every 20 its"]
    last = None
    for rec in adaptive.regrids:
        caps = "/".join(f"{c:.0%}" for c in rec.capacities)
        if caps == last:
            continue
        last = caps
        shares = rec.loads / max(rec.loads.sum(), 1e-9)
        print(
            f"  iter {rec.iteration:3d} [{rec.trigger:>6}] "
            f"capacities [{caps}] -> shares "
            f"[{'/'.join(f'{s:.0%}' for s in shares)}]"
        )


if __name__ == "__main__":
    main()
