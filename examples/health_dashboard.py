#!/usr/bin/env python
"""Runtime health monitoring and the self-contained HTML dashboard.

Two instrumented runs of the paper-calibrated RM3D workload on the
4-node Linux cluster:

1. a *healthy* run -- residual imbalance stays inside the paper's 40 %
   bound and the anomaly detectors stay quiet;
2. a *degraded* run -- a synthetic load generator slams one node
   mid-run (section 6.1.1's mechanism), so iteration durations spike
   until the next sense + repartition adapts the decomposition.  The
   health monitor flags the spike.

Each run is analyzed live by a :class:`HealthMonitor` subscribed to the
tracer's span-close hook; both land in one self-contained HTML file
(inline SVG, no external resources) you can open straight from disk:

Run:  python examples/health_dashboard.py
Then: open health_dashboard.html
"""

from repro.cluster import Cluster
from repro.cluster.loadgen import SyntheticLoadGenerator
from repro.kernels.workloads import paper_rm3d_trace
from repro.partition import ACEHeterogeneous
from repro.runtime import RuntimeConfig, SamrRuntime
from repro.telemetry import HealthMonitor, Tracer, write_dashboard

ITERATIONS = 40


def run_instrumented(tracer: Tracer, spike: bool) -> None:
    cluster = Cluster.paper_linux_cluster(4, seed=7)
    if spike:
        # A burst of competing load lands on node 2 mid-run: load level 8
        # leaves the node ~1/9 of its CPU (Unix load-average model).
        cluster.add_load_generator(
            SyntheticLoadGenerator(
                node=2, start_time=35.0, ramp_rate=8.0, target_level=8.0,
                stop_time=70.0,
            )
        )
    SamrRuntime(
        paper_rm3d_trace(num_regrids=ITERATIONS // 10 + 1),
        cluster,
        ACEHeterogeneous(),
        config=RuntimeConfig(
            iterations=ITERATIONS, regrid_interval=10, sensing_interval=10
        ),
        tracer=tracer,
    ).run()


def main() -> None:
    tracer = Tracer()
    health = HealthMonitor()
    health.attach(tracer)

    run_instrumented(tracer, spike=False)
    run_instrumented(tracer, spike=True)
    health.finish()

    for pid, label in ((1, "healthy"), (2, "degraded")):
        snaps = [s for s in health.snapshots if s.pid == pid]
        worst = max(s.imbalance_pct or 0.0 for s in snaps)
        slowest = max(s.duration_s for s in snaps)
        print(f"{label:>8} run: {len(snaps)} iterations, worst mean "
              f"imbalance {worst:.1f}%, slowest iteration {slowest:.2f}s")

    if health.events:
        print(f"\n{len(health.events)} anomalies detected:")
        for event in health.events:
            print(f"  [{event.severity}] run {event.pid}, "
                  f"it {event.iteration}: {event.message}")
    else:
        print("\nno anomalies detected")

    out = "health_dashboard.html"
    write_dashboard(tracer, out, title="Health dashboard — example")
    print(f"\nwrote {out} (self-contained; open it in any browser)")


if __name__ == "__main__":
    main()
