#!/usr/bin/env python
"""Elliptic solves on (composite) grids: multigrid and Local Defect
Correction.

GrACE was built for "a family of adaptive mesh-refinement and multigrid
techniques"; many SAMR applications embed an elliptic solve per step
(pressure projection, self-gravity).  This example:

1. solves a Poisson problem with geometric multigrid and shows the
   textbook V-cycle contraction;
2. embeds a sharply local source inside a refined patch and shows Local
   Defect Correction (the elliptic counterpart of the AMR hierarchy)
   beating the global coarse grid by an order of magnitude -- using a
   fraction of a uniformly-fine grid's cells.

Run:  python examples/elliptic_solves.py
"""

import numpy as np

from repro import Box
from repro.solvers import LocalDefectCorrection, PoissonMultigrid

N = 64
DX = 1.0 / N
SIGMA2 = 0.03**2


def exact(X, Y):
    return np.exp(-((X - 0.5) ** 2 + (Y - 0.5) ** 2) / (2 * SIGMA2))


def rhs(X, Y):
    r2 = (X - 0.5) ** 2 + (Y - 0.5) ** 2
    g = np.exp(-r2 / (2 * SIGMA2))
    return -g * (r2 / SIGMA2**2 - 2 / SIGMA2)


def coarse_grid():
    x = (np.arange(N) + 0.5) * DX
    return np.meshgrid(x, x, indexing="ij")


def main() -> None:
    Xc, Yc = coarse_grid()

    # --- 1. plain multigrid ----------------------------------------------
    mg = PoissonMultigrid((N, N), dx=DX)
    u, info = mg.solve(rhs(Xc, Yc), tol=1e-10)
    res = info["residuals"]
    rates = [res[i + 1] / res[i] for i in range(1, min(5, len(res) - 1))]
    print(f"multigrid on {N}x{N}: {info['cycles']} V-cycles to 1e-10")
    print("  contraction per cycle:",
          " ".join(f"{r:.3f}" for r in rates))
    err = np.abs(u - exact(Xc, Yc)).max()
    print(f"  max error vs exact: {err:.2e}  (sharp source under-resolved)")

    # --- 2. composite solve: refine only where it matters ------------------
    patch = Box((24, 24), (40, 40))  # quarter of the domain, 4x refined
    factor = 4
    ldc = LocalDefectCorrection((N, N), patch, dx=DX, factor=factor)
    nf = patch.shape[0] * factor
    xf = (patch.lower[0] + (np.arange(nf) + 0.5) / factor) * DX
    Xf, Yf = np.meshgrid(xf, xf, indexing="ij")
    _, u_fine, ldc_info = ldc.solve(
        rhs(Xc, Yc), rhs(Xf, Yf), iterations=8
    )
    err_ldc = np.abs(u_fine - exact(Xf, Yf)).max()
    composite_cells = N * N + nf * nf
    uniform_cells = (N * factor) ** 2
    print(f"\nLDC with a {factor}x patch over the source:")
    print("  iteration updates:",
          " ".join(f"{c:.1e}" for c in ldc_info["changes"][1:5]))
    print(f"  max error in patch: {err_ldc:.2e} "
          f"({err / err_ldc:.0f}x better than coarse-only)")
    print(f"  cells used: {composite_cells} vs {uniform_cells} "
          f"uniformly fine ({uniform_cells / composite_cells:.1f}x saved)")
    assert err_ldc < 0.2 * err


if __name__ == "__main__":
    main()
