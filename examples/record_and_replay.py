#!/usr/bin/env python
"""Record-replay workflow: solve once, study partitioning forever.

The expensive part of SAMR partitioning research is the solver; the
partitioner only consumes the hierarchy's bounding-box lists.  This
example shows the library's record-replay loop:

1. run the real Buckley-Leverett kernel once, recording the hierarchy
   dynamics with ``record_workload``;
2. save the trace to JSON (shareable, like the paper's repeatable load
   scripts);
3. reload it and sweep every partitioner over the *same* dynamics on a
   loaded cluster -- without touching the kernel again.

Run:  python examples/record_and_replay.py
"""

import tempfile
from pathlib import Path

from repro import (
    ACEComposite,
    ACEHeterogeneous,
    Box,
    BuckleyLeverettKernel,
    Cluster,
    GridHierarchy,
    GreedyLPT,
    RuntimeConfig,
    SamrRuntime,
    SyntheticWorkload,
)
from repro.amr.integrator import BergerOligerIntegrator
from repro.amr.regrid import RegridParams
from repro.kernels.workloads import record_workload
from repro.partition import SFCHybrid


def main() -> None:
    # --- 1. solve once, recording ----------------------------------------
    kernel = BuckleyLeverettKernel(domain_shape=(64, 64), velocity=(1.0, 0.2))
    hierarchy = GridHierarchy(Box((0, 0), (64, 64)), kernel, max_levels=3)
    integrator = BergerOligerIntegrator(
        hierarchy,
        regrid_interval=4,
        regrid_params=RegridParams(flag_threshold=0.04, flag_buffer=2),
    )
    print("recording 24 solver steps of the Buckley-Leverett kernel ...")
    trace = record_workload(integrator, num_steps=24, name="bl-waterflood")
    print(f"  captured {trace.num_regrids} regrid epochs, "
          f"{trace.work_of(0)} -> {trace.work_of(trace.num_regrids - 1)} "
          "work units per epoch")

    # --- 2. persist -------------------------------------------------------
    path = Path(tempfile.gettempdir()) / "bl_waterflood_trace.json"
    trace.to_json(path)
    print(f"  saved to {path} ({path.stat().st_size} bytes)")

    # --- 3. reload and sweep partitioners ---------------------------------
    replayed = SyntheticWorkload.from_json(path)
    print("\nreplaying under four partitioners (4-node loaded cluster):")
    for partitioner in (
        ACEHeterogeneous(),
        SFCHybrid(),
        GreedyLPT(),
        ACEComposite(),
    ):
        runtime = SamrRuntime(
            replayed,
            Cluster.paper_four_node(),
            partitioner,
            config=RuntimeConfig(
                iterations=replayed.num_regrids * 4, regrid_interval=4
            ),
        )
        result = runtime.run()
        print(f"  {partitioner.name:>17}: {result.total_seconds:7.2f}s "
              f"(mean imbalance {result.mean_imbalance:5.1f}%)")


if __name__ == "__main__":
    main()
