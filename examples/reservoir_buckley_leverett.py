#!/usr/bin/env python
"""2-D Buckley-Leverett waterflood with AMR (the paper's fig. 3 domain).

GrACE's motivating applications include oil-reservoir simulation; the
paper illustrates the adaptive grid hierarchy with a 2-D Buckley-Leverett
run.  This example floods a 64x64 reservoir, letting the refined levels
chase the water front, and shows how the front's advance drags the
partitioner's bounding-box list across the domain -- the spatial dynamism
that makes repartitioning at every regrid necessary.

Run:  python examples/reservoir_buckley_leverett.py
"""

import numpy as np

from repro import (
    ACEHeterogeneous,
    Box,
    BuckleyLeverettKernel,
    Cluster,
    GridHierarchy,
    CapacityCalculator,
    ResourceMonitor,
)
from repro.amr.integrator import BergerOligerIntegrator
from repro.amr.regrid import RegridParams


def front_position(hierarchy: GridHierarchy) -> float:
    """x-coordinate where the level-0 saturation crosses 0.5."""
    s = hierarchy.levels[0].patches[0].interior[0]
    profile = s.mean(axis=1)
    idx = int(np.argmin(np.abs(profile - 0.5)))
    return float(idx)


def main() -> None:
    kernel = BuckleyLeverettKernel(
        mobility_ratio=2.0, velocity=(1.0, 0.15), domain_shape=(64, 64)
    )
    hierarchy = GridHierarchy(
        Box((0, 0), (64, 64)), kernel, max_levels=3, refine_factor=2
    )
    integrator = BergerOligerIntegrator(
        hierarchy,
        cfl=0.4,
        regrid_interval=4,
        regrid_params=RegridParams(flag_threshold=0.04, flag_buffer=2),
    )
    integrator.setup()

    cluster = Cluster.paper_four_node()
    cluster.clock.advance(5.0)
    capacities = CapacityCalculator().relative_capacities(
        ResourceMonitor(cluster).probe_all()
    )
    partitioner = ACEHeterogeneous()

    print("Buckley-Leverett waterflood, 64x64 base, 3 levels")
    print("capacities:", " ".join(f"{c:.0%}" for c in capacities))
    print(f"{'step':>5} {'front x':>8} {'boxes':>6} {'refined cells':>14} "
          f"{'load shares (het)':>24}")
    for step in range(24):
        integrator.advance()
        if step % 4 == 3:
            boxes = hierarchy.box_list()
            result = partitioner.partition(boxes, capacities)
            shares = result.loads() / result.loads().sum()
            refined = sum(
                lvl.total_cells for lvl in hierarchy.levels[1:]
            )
            print(
                f"{hierarchy.step_count:>5} {front_position(hierarchy):>8.1f} "
                f"{len(boxes):>6} {refined:>14} "
                f"{'/'.join(f'{s:.0%}' for s in shares):>24}"
            )

    s = hierarchy.levels[0].patches[0].interior[0]
    assert 0.0 <= s.min() and s.max() <= 1.0
    print(f"final water saturation range: [{s.min():.3f}, {s.max():.3f}]")

    from repro.amr.viz import render_levels

    print("\nfinal hierarchy (digits = refinement level at each base cell):")
    print(render_levels(hierarchy.box_list(), hierarchy.domain))


if __name__ == "__main__":
    main()
