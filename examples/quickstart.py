#!/usr/bin/env python
"""Quickstart: system-sensitive vs default partitioning in ~60 lines.

Reproduces the paper's worked example (section 6.1.3): a 4-node cluster
with two machines loaded by the synthetic load generator, relative
capacities ~16/19/31/34 %, and the RM3D workload distributed by both the
system-sensitive partitioner (ACEHeterogeneous) and GrACE's default
equal-work scheme (ACEComposite).

Run:  python examples/quickstart.py
"""

from repro import (
    ACEComposite,
    ACEHeterogeneous,
    CapacityCalculator,
    Cluster,
    ResourceMonitor,
    RuntimeConfig,
    SamrRuntime,
    load_imbalance,
    paper_rm3d_trace,
)

def main() -> None:
    # --- the environment: 4 identical machines, two of them loaded -------
    cluster = Cluster.paper_four_node()
    cluster.clock.advance(5.0)  # let the load ramps reach their plateaus

    # --- sense the system and compute relative capacities ----------------
    monitor = ResourceMonitor(cluster)
    snapshot = monitor.probe_all()
    capacities = CapacityCalculator().relative_capacities(snapshot)
    print("relative capacities:",
          " ".join(f"{c:.0%}" for c in capacities),
          f"(probe cost: {snapshot.overhead_seconds:.1f}s)")

    # --- partition one regrid epoch with both schemes --------------------
    workload = paper_rm3d_trace(num_regrids=8)
    boxes = workload.epoch(3)
    print(f"\nhierarchy: {len(boxes)} boxes, {boxes.total_cells} cells, "
          f"levels {boxes.levels}")
    for partitioner in (ACEHeterogeneous(), ACEComposite()):
        result = partitioner.partition(boxes, capacities)
        shares = result.loads() / result.loads().sum()
        targets = capacities * result.loads().sum()
        imbalance = load_imbalance(result, targets=targets)
        print(f"\n{partitioner.name}:")
        print("  load shares :", " ".join(f"{s:.0%}" for s in shares))
        print("  imbalance   :", " ".join(f"{i:5.1f}%" for i in imbalance))
        print(f"  box splits  : {result.num_splits}")

    # --- full runtime: who finishes first? --------------------------------
    print("\nfull 40-iteration run (simulated time):")
    for partitioner in (ACEHeterogeneous(), ACEComposite()):
        runtime = SamrRuntime(
            workload,
            Cluster.paper_four_node(),
            partitioner,
            config=RuntimeConfig(iterations=40, regrid_interval=5),
        )
        result = runtime.run()
        print(f"  {partitioner.name:>17}: {result.total_seconds:7.1f}s "
              f"(mean imbalance {result.mean_imbalance:.1f}%)")


if __name__ == "__main__":
    main()
