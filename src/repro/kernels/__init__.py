"""Application kernels.

Concrete :class:`~repro.amr.api.AmrKernel` implementations:

- :mod:`repro.kernels.advection` -- linear scalar advection (upwind), the
  minimal moving-feature workload used in tests and the quickstart;
- :mod:`repro.kernels.rm3d` -- the paper's evaluation application: a 3-D
  compressible Euler solver with a Richtmyer-Meshkov-style shocked-interface
  initial condition (base mesh 128x32x32, 3 levels of factor-2 refinement);
- :mod:`repro.kernels.buckley_leverett` -- the 2-D Buckley-Leverett
  two-phase reservoir transport problem of the paper's fig. 3;
- :mod:`repro.kernels.workloads` -- synthetic refinement-trace generators
  that reproduce paper-scale hierarchy dynamics without paying kernel FLOP
  costs (used by the benchmark harness).
"""

from repro.kernels.advection import AdvectionKernel
from repro.kernels.rm3d import RM3DKernel
from repro.kernels.buckley_leverett import BuckleyLeverettKernel
from repro.kernels.workloads import (
    SyntheticWorkload,
    moving_blob_trace,
    paper_rm3d_trace,
    record_workload,
)

__all__ = [
    "AdvectionKernel",
    "RM3DKernel",
    "BuckleyLeverettKernel",
    "SyntheticWorkload",
    "moving_blob_trace",
    "paper_rm3d_trace",
    "record_workload",
]
