"""RM3D: 3-D compressible Euler with a Richtmyer-Meshkov initial condition.

This is the paper's evaluation application: "a 3D compressible turbulence
kernel executing [...] solves the Richtmyer-Meshkov instability, and uses 3
levels of factor 2 refinement on a base mesh of size 128x32x32."

The solver is a first-order finite-volume scheme (Rusanov / local
Lax-Friedrichs flux) for the ideal-gas Euler equations with conserved
variables ``(rho, rho*u, rho*v, rho*w, E)``.  The initial condition is the
classic RM setup: a shock travelling along x toward a sinusoidally
perturbed interface between a light and a heavy gas; the instability grows
where shock meets interface, and the density-gradient refinement criterion
keeps the hierarchy focused there.

First-order Rusanov is deliberately chosen: it is unconditionally robust
(no positivity hacks) and the partitioning experiments consume only the
hierarchy's shape and work distribution, not turbulence spectra.
"""

from __future__ import annotations

import numpy as np

from repro.amr.api import AmrKernel
from repro.util.errors import KernelError
from repro.util.geometry import Box

__all__ = ["RM3DKernel"]

#: Paper mesh: base 128x32x32, 3 levels, factor 2.
PAPER_BASE_SHAPE = (128, 32, 32)


class RM3DKernel(AmrKernel):
    """Richtmyer-Meshkov 3-D compressible Euler kernel.

    Parameters
    ----------
    gamma:
        Ideal-gas adiabatic index.
    domain_shape:
        Base-mesh shape the initial condition is scaled to (paper:
        ``(128, 32, 32)``; tests use smaller meshes).
    density_ratio:
        Heavy/light gas density ratio across the interface (Atwood-number
        control).
    shock_mach:
        Strength of the incident shock (pressure jump scales with it).
    perturb_amplitude / perturb_modes:
        Sinusoidal interface perturbation (in cells, and mode counts across
        the two transverse axes).
    order:
        1 -- first-order Rusanov (default, unconditionally robust);
        2 -- MUSCL-Hancock with minmod-limited linear reconstruction
        (second order in space and time, ``ghost_width`` becomes 2).
    """

    num_fields = 5  # rho, mx, my, mz, E
    ndim = 3
    ghost_width = 1
    boundary = "outflow"

    def __init__(
        self,
        gamma: float = 1.4,
        domain_shape: tuple[int, int, int] = PAPER_BASE_SHAPE,
        density_ratio: float = 3.0,
        shock_mach: float = 1.5,
        perturb_amplitude: float = 2.0,
        perturb_modes: tuple[int, int] = (2, 1),
        order: int = 1,
    ):
        if gamma <= 1.0:
            raise KernelError(f"gamma must be > 1, got {gamma}")
        if density_ratio <= 0:
            raise KernelError(f"density_ratio must be > 0, got {density_ratio}")
        if shock_mach < 1.0:
            raise KernelError(f"shock_mach must be >= 1, got {shock_mach}")
        if order not in (1, 2):
            raise KernelError(f"order must be 1 or 2, got {order}")
        self.gamma = gamma
        self.domain_shape = tuple(int(s) for s in domain_shape)
        self.density_ratio = density_ratio
        self.shock_mach = shock_mach
        self.perturb_amplitude = perturb_amplitude
        self.perturb_modes = perturb_modes
        self.order = order
        self.ghost_width = 2 if order == 2 else 1
        self.validate()

    # ------------------------------------------------------------------
    # Initial condition
    # ------------------------------------------------------------------
    def initial_condition(self, box: Box, dx: float) -> np.ndarray:
        nx = self.domain_shape[0]
        # Cell-center coordinates in *base-mesh cell units* regardless of
        # the box's level, so refined boxes sample the same profile.
        factorized = 2**box.level
        coords = [
            (np.arange(lo, hi) + 0.5) / factorized
            for lo, hi in zip(box.lower, box.upper)
        ]
        x, y, z = np.meshgrid(*coords, indexing="ij")

        shock_x = 0.20 * nx
        interface_x = 0.40 * nx
        ky = 2 * np.pi * self.perturb_modes[0] / self.domain_shape[1]
        kz = 2 * np.pi * self.perturb_modes[1] / self.domain_shape[2]
        interface = interface_x + self.perturb_amplitude * (
            np.cos(ky * y) * np.cos(kz * z)
        )

        # Base state: light gas at rest.
        rho = np.ones_like(x)
        p = np.ones_like(x)
        u = np.zeros_like(x)
        # Heavy gas beyond the (perturbed) interface.
        heavy = x > interface
        rho = np.where(heavy, self.density_ratio, rho)
        # Post-shock state behind the shock plane (Rankine-Hugoniot for a
        # Mach-M shock into gas at rest, rho=1, p=1).
        g, M = self.gamma, self.shock_mach
        p2 = (2 * g * M**2 - (g - 1)) / (g + 1)
        rho2 = ((g + 1) * M**2) / ((g - 1) * M**2 + 2)
        c0 = np.sqrt(g)  # sound speed of the unit base state
        u2 = (2 * (M**2 - 1)) / ((g + 1) * M) * c0
        behind = x < shock_x
        rho = np.where(behind, rho2, rho)
        p = np.where(behind, p2, p)
        u = np.where(behind, u2, u)

        out = np.zeros((5,) + x.shape)
        out[0] = rho
        out[1] = rho * u
        # transverse momenta start at zero
        out[4] = p / (g - 1) + 0.5 * rho * u**2
        return out

    # ------------------------------------------------------------------
    # Euler physics
    # ------------------------------------------------------------------
    def _primitives(
        self, u: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(rho, velocity[3], pressure) with positivity floors."""
        rho = np.maximum(u[0], 1e-10)
        vel = u[1:4] / rho
        kinetic = 0.5 * rho * (vel**2).sum(axis=0)
        p = (self.gamma - 1.0) * np.maximum(u[4] - kinetic, 1e-10)
        return rho, vel, p

    def _flux(self, u: np.ndarray, axis: int) -> np.ndarray:
        rho, vel, p = self._primitives(u)
        vn = vel[axis]
        f = np.empty_like(u)
        f[0] = rho * vn
        for d in range(3):
            f[1 + d] = u[1 + d] * vn
        f[1 + axis] += p
        f[4] = (u[4] + p) * vn
        return f

    def step(self, u: np.ndarray, dt: float, dx: float) -> np.ndarray:
        if dt <= 0:
            raise KernelError(f"non-positive dt {dt}")
        if self.order == 2:
            return self._step_muscl(u, dt, dx)
        return self._step_rusanov(u, dt, dx)

    def _step_rusanov(self, u: np.ndarray, dt: float, dx: float) -> np.ndarray:
        rho, vel, p = self._primitives(u)
        c = np.sqrt(self.gamma * p / rho)
        out = u.copy()
        for axis in range(3):
            ax = axis + 1  # fields axis offset
            f = self._flux(u, axis)
            # Rusanov flux at i+1/2 between cell i and i+1.
            u_r = np.roll(u, -1, axis=ax)
            f_r = np.roll(f, -1, axis=ax)
            alpha = np.maximum(
                np.abs(vel[axis]) + c,
                np.roll(np.abs(vel[axis]) + c, -1, axis=axis),
            )
            f_half = 0.5 * (f + f_r) - 0.5 * alpha * (u_r - u)
            out -= dt / dx * (f_half - np.roll(f_half, 1, axis=ax))
        return out

    # ------------------------------------------------------------------
    # Second-order MUSCL-Hancock path
    # ------------------------------------------------------------------
    @staticmethod
    def _minmod_slopes(u: np.ndarray) -> list[np.ndarray]:
        """Minmod-limited per-axis slopes of the conserved variables."""
        slopes = []
        for axis in range(3):
            ax = axis + 1
            fwd = np.roll(u, -1, axis=ax) - u
            bwd = u - np.roll(u, 1, axis=ax)
            s = np.where(
                fwd * bwd > 0.0,
                np.sign(fwd) * np.minimum(np.abs(fwd), np.abs(bwd)),
                0.0,
            )
            slopes.append(s)
        return slopes

    def _rusanov_face_flux(
        self, ul: np.ndarray, ur: np.ndarray, axis: int
    ) -> np.ndarray:
        """Rusanov flux from reconstructed left/right face states."""
        rho_l, vel_l, p_l = self._primitives(ul)
        rho_r, vel_r, p_r = self._primitives(ur)
        c_l = np.sqrt(self.gamma * p_l / rho_l)
        c_r = np.sqrt(self.gamma * p_r / rho_r)
        alpha = np.maximum(
            np.abs(vel_l[axis]) + c_l, np.abs(vel_r[axis]) + c_r
        )
        return 0.5 * (
            self._flux(ul, axis) + self._flux(ur, axis)
        ) - 0.5 * alpha * (ur - ul)

    def _step_muscl(self, u: np.ndarray, dt: float, dx: float) -> np.ndarray:
        """MUSCL-Hancock: limited reconstruction + half-step predictor.

        One exchange per step (stencil radius 2), second order in space and
        time.  All operations are elementwise/rolled, preserving the
        partition-invariance property.
        """
        slopes = self._minmod_slopes(u)
        # Hancock predictor: evolve cell averages a half step using the
        # in-cell flux difference of the reconstructed face states.
        pred = u.copy()
        for axis in range(3):
            minus = u - 0.5 * slopes[axis]
            plus = u + 0.5 * slopes[axis]
            pred -= (
                0.5 * dt / dx * (self._flux(plus, axis) - self._flux(minus, axis))
            )
        out = u.copy()
        for axis in range(3):
            ax = axis + 1
            # Face i+1/2: left state from cell i, right from cell i+1,
            # both at the predicted half-time level.
            ul = pred + 0.5 * slopes[axis]
            ur = np.roll(pred - 0.5 * slopes[axis], -1, axis=ax)
            f_half = self._rusanov_face_flux(ul, ur, axis)
            out -= dt / dx * (f_half - np.roll(f_half, 1, axis=ax))
        return out

    def error_indicator(self, u: np.ndarray, dx: float) -> np.ndarray:
        """Normalized density-gradient magnitude (interface/shock tracker)."""
        rho = u[0]
        mag = np.zeros_like(rho)
        for axis in range(rho.ndim):
            g = np.gradient(rho, axis=axis)
            mag += g * g
        return np.sqrt(mag) / max(float(np.abs(rho).max()), 1e-10)

    def max_wave_speed(self, u: np.ndarray) -> float:
        rho, vel, p = self._primitives(u)
        c = np.sqrt(self.gamma * p / rho)
        return float((np.abs(vel).max(axis=0) + c).max())
