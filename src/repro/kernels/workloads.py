"""Synthetic SAMR workload traces.

Running the real RM3D kernel at the paper's 128x32x32 / 3-level scale in
pure Python costs minutes per step; the partitioning experiments, however,
consume only the *sequence of bounding-box lists* the hierarchy produces at
each regrid (plus per-box work weights derivable from level and size).  A
:class:`SyntheticWorkload` is exactly that sequence, generated
deterministically to match the qualitative dynamics of the real
application: a refined slab tracking the shocked interface, with a growing
population of instability "fingers" at the deepest level.

Both trace generators below produce hierarchies that satisfy the same
structural invariants as real regrids (per-level disjointness, proper
nesting, domain containment), which the test suite verifies.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro.util.errors import GeometryError
from repro.util.geometry import Box, BoxList

__all__ = [
    "SyntheticWorkload",
    "moving_blob_trace",
    "paper_rm3d_trace",
    "record_workload",
]


@dataclass(frozen=True, slots=True)
class SyntheticWorkload:
    """A pre-computed sequence of per-regrid bounding-box lists.

    ``box_lists[r]`` is the flattened hierarchy (all levels) after regrid
    ``r``; the runtime replays these instead of time-stepping a kernel.
    """

    name: str
    domain: Box
    refine_factor: int
    box_lists: tuple[BoxList, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.box_lists:
            raise GeometryError(f"workload {self.name!r} has no epochs")
        for bl in self.box_lists:
            if len(bl) == 0:
                raise GeometryError(f"workload {self.name!r} has an empty epoch")

    @property
    def num_regrids(self) -> int:
        return len(self.box_lists)

    def __iter__(self) -> Iterator[BoxList]:
        return iter(self.box_lists)

    def __len__(self) -> int:
        return len(self.box_lists)

    def epoch(self, r: int) -> BoxList:
        return self.box_lists[r]

    def work_of(self, r: int) -> int:
        """Work units of epoch ``r`` (cells weighted by time subcycling)."""
        return sum(
            b.num_cells * self.refine_factor**b.level for b in self.box_lists[r]
        )

    # ------------------------------------------------------------------
    # Persistence (record once with a real kernel, replay anywhere)
    # ------------------------------------------------------------------
    def to_json(self, path: str | Path) -> None:
        """Serialize the trace to a JSON file."""
        payload = {
            "name": self.name,
            "refine_factor": self.refine_factor,
            "domain": {
                "lower": list(self.domain.lower),
                "upper": list(self.domain.upper),
            },
            "epochs": [
                [
                    {
                        "lower": list(b.lower),
                        "upper": list(b.upper),
                        "level": b.level,
                    }
                    for b in bl
                ]
                for bl in self.box_lists
            ],
        }
        Path(path).write_text(json.dumps(payload, indent=1))

    @classmethod
    def from_json(cls, path: str | Path) -> "SyntheticWorkload":
        """Load a trace written by :meth:`to_json`."""
        try:
            payload = json.loads(Path(path).read_text())
            domain = Box(
                tuple(payload["domain"]["lower"]),
                tuple(payload["domain"]["upper"]),
            )
            epochs = tuple(
                BoxList(
                    Box(tuple(b["lower"]), tuple(b["upper"]), b["level"])
                    for b in epoch
                )
                for epoch in payload["epochs"]
            )
            return cls(
                name=payload["name"],
                domain=domain,
                refine_factor=int(payload["refine_factor"]),
                box_lists=epochs,
            )
        except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
            raise GeometryError(f"invalid workload file {path}: {exc}") from exc


def record_workload(integrator, num_steps: int, name: str | None = None) -> SyntheticWorkload:
    """Capture a real AMR run's hierarchy dynamics as a replayable trace.

    Drives ``integrator`` (a set-up or fresh
    :class:`~repro.amr.integrator.BergerOligerIntegrator`) for
    ``num_steps`` coarse steps, recording the flattened bounding-box list
    at every regrid.  The result plugs straight into
    :class:`~repro.runtime.engine.SamrRuntime`: solve once with the real
    kernel, then sweep partitioners/clusters/sensing policies over the
    recorded trace without re-paying kernel FLOPs -- the same record-replay
    methodology the built-in :func:`paper_rm3d_trace` emulates
    analytically.
    """
    hierarchy = integrator.hierarchy
    epochs: list[BoxList] = []

    previous_hook = integrator.on_regrid

    def capture(h) -> None:
        epochs.append(h.box_list())
        if previous_hook is not None:
            previous_hook(h)

    integrator.on_regrid = capture
    try:
        if not hierarchy.levels:
            integrator.setup()
        elif not epochs:
            epochs.append(hierarchy.box_list())
        for _ in range(num_steps):
            integrator.advance()
    finally:
        integrator.on_regrid = previous_hook
    return SyntheticWorkload(
        name=name or f"recorded-{type(hierarchy.kernel).__name__}",
        domain=hierarchy.domain,
        refine_factor=hierarchy.refine_factor,
        box_lists=tuple(epochs),
    )


def _chop(box: Box, axis: int, pieces: int) -> list[Box]:
    """Split a box into ``pieces`` near-equal chunks along one axis."""
    if pieces <= 1 or box.shape[axis] < 2 * pieces:
        return [box]
    out = []
    extent = box.shape[axis]
    step = extent // pieces
    lo = box.lower[axis]
    rest = box
    for _ in range(pieces - 1):
        cut = lo + step
        a, rest = rest.split(axis, cut)
        out.append(a)
        lo = cut
    out.append(rest)
    return out


def moving_blob_trace(
    domain_shape: tuple[int, ...] = (64, 64),
    num_regrids: int = 10,
    max_levels: int = 3,
    refine_factor: int = 2,
    blob_cells: int = 12,
    chop_pieces: int = 2,
) -> SyntheticWorkload:
    """A refined blob sweeping diagonally across the domain.

    The generic moving-feature workload: level-1 follows the blob loosely,
    level-2 tightly.  Works in any dimensionality.
    """
    if num_regrids < 1:
        raise GeometryError(f"num_regrids must be >= 1, got {num_regrids}")
    domain = Box((0,) * len(domain_shape), domain_shape)
    epochs: list[BoxList] = []
    for r in range(num_regrids):
        frac = r / max(1, num_regrids - 1)
        center = tuple(
            int(frac * (s - blob_cells - 2)) + blob_cells // 2 + 1
            for s in domain_shape
        )
        boxes: list[Box] = [domain]
        parent_footprint = domain
        for level in range(1, max_levels):
            half = max(2, blob_cells // (2 * level))
            lo = tuple(max(0, c - half) for c in center)
            hi = tuple(
                min(s, c + half) for c, s in zip(center, domain_shape)
            )
            if any(h <= l for l, h in zip(lo, hi)):
                break
            coarse = Box(lo, hi)  # in level-0 coords
            nested = coarse.intersection(parent_footprint)
            if nested is None:
                break
            fine = nested
            for _ in range(level):
                fine = fine.refine(refine_factor)
            boxes.extend(_chop(fine, axis=0, pieces=chop_pieces))
            parent_footprint = nested
        epochs.append(BoxList(boxes))
    return SyntheticWorkload(
        name="moving-blob",
        domain=domain,
        refine_factor=refine_factor,
        box_lists=tuple(epochs),
    )


def paper_rm3d_trace(
    num_regrids: int = 8,
    base_shape: tuple[int, int, int] = (128, 32, 32),
    max_levels: int = 3,
    refine_factor: int = 2,
    slab_half_width: int = 8,
    max_fingers: int = 6,
) -> SyntheticWorkload:
    """Hierarchy dynamics of the paper's RM3D run.

    Epoch ``r``: the shocked interface sits at ``x = (0.4 + 0.35 f) nx``
    (``f`` the progress fraction); level 1 is a slab of half-width
    ``slab_half_width`` base cells around it (chopped into chunks so the
    partitioner has multiple units), level 2 holds ``1 + f*(max_fingers-1)``
    instability fingers inside the slab, spread across the transverse plane.
    Total refined work *grows* over the run, as the real instability's
    mixing zone does.
    """
    if num_regrids < 1:
        raise GeometryError(f"num_regrids must be >= 1, got {num_regrids}")
    if max_levels < 1:
        raise GeometryError(f"max_levels must be >= 1, got {max_levels}")
    nx, ny, nz = base_shape
    domain = Box((0, 0, 0), base_shape)
    epochs: list[BoxList] = []
    for r in range(num_regrids):
        frac = r / max(1, num_regrids - 1)
        cx = int((0.40 + 0.35 * frac) * nx)
        boxes: list[Box] = [domain]
        slab_coarse = None
        if max_levels >= 2:
            lo = max(0, cx - slab_half_width)
            hi = min(nx, cx + slab_half_width)
            slab_coarse = Box((lo, 0, 0), (hi, ny, nz))
            slab_fine = slab_coarse.refine(refine_factor)
            boxes.extend(_chop(slab_fine, axis=1, pieces=4))
        if max_levels >= 3 and slab_coarse is not None:
            # Fixed transverse slots; the instability *fills more of them*
            # as it grows, so deepest-level work increases monotonically.
            fingers = 1 + int(round(frac * (max_fingers - 1)))
            finger_half = max(2, slab_half_width // 2)
            f_lo_x = max(slab_coarse.lower[0], cx - finger_half)
            f_hi_x = min(slab_coarse.upper[0], cx + finger_half)
            slot = max(2, ny // max_fingers)
            z0, z1 = nz // 4, max(nz // 4 + 2, 3 * nz // 4)
            z1 = min(z1, nz)
            for j in range(fingers):
                y0 = j * slot + 1
                y1 = min((j + 1) * slot - 1, ny)
                if y1 <= y0:
                    continue
                finger = Box((f_lo_x, y0, z0), (f_hi_x, y1, z1))
                nested = finger.intersection(slab_coarse)
                if nested is None:
                    continue
                fine2 = nested.refine(refine_factor).refine(refine_factor)
                boxes.append(fine2)
        epochs.append(BoxList(boxes))
    return SyntheticWorkload(
        name="rm3d-trace",
        domain=domain,
        refine_factor=refine_factor,
        box_lists=tuple(epochs),
    )
