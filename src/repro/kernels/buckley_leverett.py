"""Buckley-Leverett two-phase reservoir transport (paper fig. 3).

The paper illustrates the adaptive hierarchy with "a sequence of grid
hierarchies for a 2-D Buckley-Leverette oil reservoir simulation" -- GrACE's
home domain includes reservoir simulation.  The model: water saturation
``S`` advected through a porous medium by a fixed total-velocity field,

    S_t + div( f(S) * v ) = 0,      f(S) = S^2 / (S^2 + M (1 - S)^2),

with ``M`` the water/oil mobility ratio.  ``f`` is monotone in ``S``, so a
velocity-sign upwind scheme is stable; the sharp water front the fractional
flow produces is what drives refinement.
"""

from __future__ import annotations

import numpy as np

from repro.amr.api import AmrKernel
from repro.util.errors import KernelError
from repro.util.geometry import Box

__all__ = ["BuckleyLeverettKernel"]


class BuckleyLeverettKernel(AmrKernel):
    """2-D Buckley-Leverett saturation transport.

    Parameters
    ----------
    mobility_ratio:
        Water/oil mobility ratio ``M`` in the fractional-flow function.
    velocity:
        Constant total (Darcy) velocity; a waterflood sweeping the domain.
    front_position:
        Initial water-front location as a fraction of the domain's x extent.
    domain_shape:
        Base-mesh shape used to scale the initial condition.
    """

    num_fields = 1
    ndim = 2
    ghost_width = 1
    boundary = "outflow"

    def __init__(
        self,
        mobility_ratio: float = 2.0,
        velocity: tuple[float, float] = (1.0, 0.25),
        front_position: float = 0.15,
        domain_shape: tuple[int, int] = (64, 64),
    ):
        if mobility_ratio <= 0:
            raise KernelError(f"mobility_ratio must be > 0, got {mobility_ratio}")
        if not 0.0 < front_position < 1.0:
            raise KernelError(
                f"front_position must be in (0, 1), got {front_position}"
            )
        self.mobility_ratio = mobility_ratio
        self.velocity = tuple(float(v) for v in velocity)
        self.front_position = front_position
        self.domain_shape = tuple(int(s) for s in domain_shape)
        self.validate()

    # ------------------------------------------------------------------
    def fractional_flow(self, s: np.ndarray) -> np.ndarray:
        """Fractional flow f(S); monotone increasing on [0, 1]."""
        s = np.clip(s, 0.0, 1.0)
        w = s * s
        o = self.mobility_ratio * (1.0 - s) ** 2
        return w / (w + o + 1e-30)

    def initial_condition(self, box: Box, dx: float) -> np.ndarray:
        nx = self.domain_shape[0]
        factor = 2**box.level
        coords = [
            (np.arange(lo, hi) + 0.5) / factor
            for lo, hi in zip(box.lower, box.upper)
        ]
        x, _y = np.meshgrid(*coords, indexing="ij")
        front = self.front_position * nx
        width = max(1.0, 0.02 * nx)
        s = 0.5 * (1.0 - np.tanh((x - front) / width))
        return s[np.newaxis]

    def step(self, u: np.ndarray, dt: float, dx: float) -> np.ndarray:
        if dt <= 0:
            raise KernelError(f"non-positive dt {dt}")
        s = u[0]
        flux_s = self.fractional_flow(s)
        out = u.copy()
        upd = np.zeros_like(s)
        for axis, v in enumerate(self.velocity):
            if v == 0.0:
                continue
            f = v * flux_s
            if v > 0:
                diff = f - np.roll(f, 1, axis=axis)
            else:
                diff = np.roll(f, -1, axis=axis) - f
            upd -= dt / dx * diff
        out[0] = np.clip(s + upd, 0.0, 1.0)
        return out

    def error_indicator(self, u: np.ndarray, dx: float) -> np.ndarray:
        s = u[0]
        mag = np.zeros_like(s)
        for axis in range(s.ndim):
            g = np.gradient(s, axis=axis)
            mag += g * g
        return np.sqrt(mag)

    def max_wave_speed(self, u: np.ndarray) -> float:
        # df/dS is bounded; evaluate it on a fine saturation sample and use
        # the worst case times the velocity magnitude.
        s = np.linspace(0.0, 1.0, 101)
        df = np.gradient(self.fractional_flow(s), s)
        dfmax = float(np.abs(df).max())
        vmax = max(abs(v) for v in self.velocity)
        return vmax * dfmax
