"""Linear scalar advection: the minimal AMR workload.

Solves u_t + v . grad(u) = 0 with first-order upwinding.  A Gaussian pulse
rides across the (periodic) domain, dragging the refined region with it --
the simplest workload whose hierarchy *moves*, which is all the partitioning
experiments need from a test kernel.
"""

from __future__ import annotations

import numpy as np

from repro.amr.api import AmrKernel
from repro.util.errors import KernelError
from repro.util.geometry import Box

__all__ = ["AdvectionKernel"]


class AdvectionKernel(AmrKernel):
    """First-order upwind advection of one scalar field.

    Parameters
    ----------
    velocity:
        Advection velocity per axis; fixes ``ndim``.
    pulse_center:
        Initial Gaussian center in physical units of the unit-scaled domain
        (level-0 cell width = dx0 as configured on the hierarchy).
    pulse_width:
        Gaussian sigma in the same units.
    boundary:
        ``"periodic"`` (default) or ``"outflow"``.
    """

    num_fields = 1
    ghost_width = 1

    def __init__(
        self,
        velocity: tuple[float, ...] = (1.0, 0.5),
        pulse_center: tuple[float, ...] | None = None,
        pulse_width: float = 3.0,
        boundary: str = "periodic",
    ):
        self.velocity = tuple(float(v) for v in velocity)
        self.ndim = len(self.velocity)
        if self.ndim not in (1, 2, 3):
            raise KernelError(f"velocity must be 1-3 components, got {self.ndim}")
        if pulse_width <= 0:
            raise KernelError(f"pulse_width must be > 0, got {pulse_width}")
        self.pulse_center = pulse_center
        self.pulse_width = float(pulse_width)
        self.boundary = boundary
        self.validate()

    # ------------------------------------------------------------------
    def initial_condition(self, box: Box, dx: float) -> np.ndarray:
        center = self.pulse_center
        if center is None:
            center = tuple(8.0 for _ in range(self.ndim))
        grids = np.meshgrid(
            *[
                (np.arange(lo, hi) + 0.5) * dx
                for lo, hi in zip(box.lower, box.upper)
            ],
            indexing="ij",
        )
        r2 = sum((g - c) ** 2 for g, c in zip(grids, center))
        u = np.exp(-r2 / (2.0 * self.pulse_width**2))
        return u[np.newaxis]

    def step(self, u: np.ndarray, dt: float, dx: float) -> np.ndarray:
        if dt <= 0:
            raise KernelError(f"non-positive dt {dt}")
        out = u.copy()
        field = u[0]
        upd = np.zeros_like(field)
        for axis, v in enumerate(self.velocity):
            if v == 0.0:
                continue
            if v > 0:
                diff = field - np.roll(field, 1, axis=axis)
            else:
                diff = np.roll(field, -1, axis=axis) - field
            upd -= v * dt / dx * diff
        out[0] = field + upd
        return out

    def error_indicator(self, u: np.ndarray, dx: float) -> np.ndarray:
        field = u[0]
        mag = np.zeros_like(field)
        for axis in range(field.ndim):
            g = np.gradient(field, axis=axis)
            mag += g * g
        return np.sqrt(mag)

    def max_wave_speed(self, u: np.ndarray) -> float:
        return max(abs(v) for v in self.velocity)
