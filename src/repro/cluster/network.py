"""Network link cost model.

The paper's cluster interconnect is switched Fast Ethernet (100 Mbit/s).
The partitioning experiments need communication *cost*, not packet-level
fidelity, so a latency + bandwidth (alpha-beta) model suffices:

    transfer_time(n bytes) = latency + n / effective_bandwidth

Effective bandwidth is the minimum of the two endpoints' currently
deliverable NIC bandwidths (a congested or loaded endpoint throttles the
transfer), optionally derated by a contention factor when many pairs
communicate at once through one switch fabric.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import SimulationError

__all__ = ["LinkModel"]

_BITS_PER_BYTE = 8.0
_MEGA = 1e6


@dataclass(frozen=True, slots=True)
class LinkModel:
    """Alpha-beta transfer cost model.

    Parameters
    ----------
    latency_s:
        Per-message latency in seconds (Fast Ethernet + TCP stack:
        ~1e-4 s is representative).
    contention_factor:
        Multiplier >= 1 applied to transfer time when the fabric is shared;
        1.0 models an uncontended switched network.
    """

    latency_s: float = 1e-4
    contention_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise SimulationError(f"negative latency {self.latency_s}")
        if self.contention_factor < 1.0:
            raise SimulationError(
                f"contention_factor must be >= 1, got {self.contention_factor}"
            )

    def transfer_time(
        self,
        nbytes: float,
        src_bandwidth_mbps: float,
        dst_bandwidth_mbps: float,
    ) -> float:
        """Seconds to move ``nbytes`` between two endpoints."""
        if nbytes < 0:
            raise SimulationError(f"negative transfer size {nbytes}")
        if nbytes == 0:
            return 0.0
        bw = min(src_bandwidth_mbps, dst_bandwidth_mbps)
        if bw <= 0:
            raise SimulationError("transfer over a zero-bandwidth link")
        bytes_per_s = bw * _MEGA / _BITS_PER_BYTE
        return self.contention_factor * (self.latency_s + nbytes / bytes_per_s)
