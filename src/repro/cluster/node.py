"""Node capability specifications and dynamic state.

A :class:`NodeSpec` is the *static* description of one cluster node --
what the machine is.  A :class:`NodeState` is a snapshot of what is
*currently available* on it: the quantities NWS reports (fraction of CPU
available, free memory, link bandwidth) and what the capacity calculator
consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import SimulationError

__all__ = ["NodeSpec", "NodeState"]


@dataclass(frozen=True, slots=True)
class NodeSpec:
    """Static description of a cluster node.

    Parameters
    ----------
    name:
        Human-readable identifier (``"node03"``).
    cpu_speed:
        Relative compute rate of the unloaded CPU in *work units per
        second*; 1.0 is the reference machine.  Heterogeneity in machine
        generation shows up here.
    memory_mb:
        Physical memory in MB.
    bandwidth_mbps:
        NIC bandwidth in Mbit/s (Fast Ethernet = 100).
    os_overhead:
        Fraction of CPU permanently consumed by the OS and daemons
        (0.03 matches NWS's observation of ~3 % monitoring-era background).
    """

    name: str
    cpu_speed: float = 1.0
    memory_mb: float = 512.0
    bandwidth_mbps: float = 100.0
    os_overhead: float = 0.03

    def __post_init__(self) -> None:
        if self.cpu_speed <= 0:
            raise SimulationError(f"cpu_speed must be > 0, got {self.cpu_speed}")
        if self.memory_mb <= 0:
            raise SimulationError(f"memory_mb must be > 0, got {self.memory_mb}")
        if self.bandwidth_mbps <= 0:
            raise SimulationError(
                f"bandwidth_mbps must be > 0, got {self.bandwidth_mbps}"
            )
        if not 0.0 <= self.os_overhead < 1.0:
            raise SimulationError(
                f"os_overhead must be in [0, 1), got {self.os_overhead}"
            )


@dataclass(frozen=True, slots=True)
class NodeState:
    """Instantaneous resource availability on one node.

    Attributes
    ----------
    cpu_available:
        Fraction of the CPU available to a new process, in [0, 1].
        (NWS's "availableCPU" measurement.)
    free_memory_mb:
        Unused physical memory in MB.
    bandwidth_mbps:
        Currently deliverable end-to-end bandwidth in Mbit/s.
    load_level:
        Sum of synthetic load-generator levels active on the node
        (diagnostic; 0 when unloaded).
    """

    cpu_available: float
    free_memory_mb: float
    bandwidth_mbps: float
    load_level: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.cpu_available <= 1.0:
            raise SimulationError(
                f"cpu_available must be in [0, 1], got {self.cpu_available}"
            )
        if self.free_memory_mb < 0:
            raise SimulationError(
                f"free_memory_mb must be >= 0, got {self.free_memory_mb}"
            )
        if self.bandwidth_mbps < 0:
            raise SimulationError(
                f"bandwidth_mbps must be >= 0, got {self.bandwidth_mbps}"
            )

    def effective_speed(self, spec: NodeSpec) -> float:
        """Deliverable compute rate right now, in work units per second."""
        return spec.cpu_speed * self.cpu_available
