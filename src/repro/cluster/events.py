"""A minimal discrete-event clock.

The runtime advances simulated time in two ways: by *elapsing* the duration
of a computation/communication phase, and by *firing* scheduled callbacks
(load-generator ramp milestones, injected failures).  :class:`SimClock`
supports both: ``advance(dt)`` and ``advance_to(t)`` move time forward and
run any events that fall inside the interval, in timestamp order.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

from repro.util.errors import SimulationError

__all__ = ["SimClock"]


class SimClock:
    """Monotonic simulated clock with an event queue.

    Events are ``(time, callback)`` pairs; callbacks take the clock as their
    only argument and may schedule further events (at or after the event's
    own timestamp).
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._queue: list[tuple[float, int, Callable[["SimClock"], None]]] = []
        self._counter = itertools.count()  # FIFO tie-break for equal times
        self._advancing = False

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def schedule(self, when: float, callback: Callable[["SimClock"], None]) -> None:
        """Register ``callback`` to fire at absolute time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event at t={when} before now={self._now}"
            )
        heapq.heappush(self._queue, (float(when), next(self._counter), callback))

    def schedule_in(self, delay: float, callback: Callable[["SimClock"], None]) -> None:
        """Register ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.schedule(self._now + delay, callback)

    def advance(self, dt: float) -> None:
        """Move time forward by ``dt`` seconds, firing due events in order."""
        if dt < 0:
            raise SimulationError(f"cannot advance time by negative dt={dt}")
        self.advance_to(self._now + dt)

    def advance_to(self, t: float) -> None:
        """Move time to absolute ``t``, firing due events in order.

        Event callbacks may :meth:`schedule` freely -- including at exactly
        the current timestamp, which fires later in the same sweep in FIFO
        order -- but must not call ``advance``/``advance_to`` themselves:
        a nested advance would fast-forward past events the outer sweep
        still owns and then yank time backwards when the outer loop resumes.
        """
        if self._advancing:
            raise SimulationError(
                "re-entrant advance: an event callback tried to move the "
                "clock; callbacks may only schedule() further events"
            )
        if t < self._now:
            raise SimulationError(
                f"cannot move time backwards: now={self._now}, target={t}"
            )
        self._advancing = True
        try:
            while self._queue and self._queue[0][0] <= t:
                when, _, callback = heapq.heappop(self._queue)
                self._now = when
                callback(self)
        finally:
            self._advancing = False
        self._now = t

    @property
    def pending_events(self) -> int:
        return len(self._queue)
