"""The cluster facade: nodes + load generators + clock + link model.

A :class:`Cluster` answers one question for the rest of the system: *what is
the resource state of node k at simulated time t?*  State is a pure function
of time (all dynamics come from deterministic load generators), which gives
the controlled, replayable environment of the paper's evaluation: comparing
two partitioners re-runs the *same* cluster object trajectory.

Presets reproduce the paper's setups:

- :func:`Cluster.paper_four_node` -- 4 nodes, two of them loaded, tuned so
  the equal-weight relative capacities come out ~16 / 19 / 31 / 34 %
  (sections 6.1.3 and 6.2.2);
- :func:`Cluster.paper_linux_cluster` -- the 32-node Fast-Ethernet cluster
  with synthetic loads on a subset of nodes (section 6.2.1), truncatable to
  any processor count;
- :func:`Cluster.homogeneous` / :func:`Cluster.heterogeneous` -- generic
  builders for tests and ablations.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.cluster.events import SimClock
from repro.cluster.loadgen import SyntheticLoadGenerator, cpu_share_under_load
from repro.cluster.network import LinkModel
from repro.cluster.node import NodeSpec, NodeState
from repro.telemetry.spans import NULL_TRACER
from repro.util.errors import SimulationError
from repro.util.rng import make_rng

__all__ = ["Cluster"]

#: Memory the OS and resident daemons pin on every node (MB).
OS_BASE_MEMORY_MB = 64.0


class Cluster:
    """A simulated heterogeneous cluster.

    Parameters
    ----------
    nodes:
        Static node specifications.
    link:
        Interconnect cost model shared by all node pairs.
    load_generators:
        Synthetic load sources; more can be attached later with
        :meth:`add_load_generator`.
    """

    def __init__(
        self,
        nodes: Sequence[NodeSpec],
        link: LinkModel | None = None,
        load_generators: Iterable[SyntheticLoadGenerator] = (),
    ):
        self.nodes: tuple[NodeSpec, ...] = tuple(nodes)
        if not self.nodes:
            raise SimulationError("a cluster needs at least one node")
        self.link = link if link is not None else LinkModel()
        self.clock = SimClock()
        self.tracer = NULL_TRACER
        self._generators: list[SyntheticLoadGenerator] = []
        # Columnar generator table (node / start / stop / rate / target /
        # memory / bandwidth columns), rebuilt lazily after attachment.
        # Every state query evaluates all ramps in one vectorized pass and
        # scatters them per node with ``np.bincount`` -- the per-node
        # Python generator walks this replaces were the last linear scans
        # on the sensing path.
        self._gen_columns_cache: tuple[np.ndarray, ...] | None = None
        # Static per-node spec columns for vectorized speed queries.
        self._cpu_speed = np.array([s.cpu_speed for s in self.nodes])
        self._os_overhead = np.array([s.os_overhead for s in self.nodes])
        #: node -> sim time it went down (absent = up)
        self._down_since: dict[int, float] = {}
        #: node -> multiplicative NIC derating in (0, 1] (absent = 1.0)
        self._link_derate: dict[int, float] = {}
        for g in load_generators:
            self.add_load_generator(g)

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def attach_tracer(self, tracer) -> None:
        """Route cluster topology/load events onto ``tracer``.

        Emits one ``cluster`` event describing the static topology and one
        ``load_generator`` event per already-attached generator; generators
        added later emit their event at attach time.
        """
        self.tracer = tracer
        tracer.event(
            "cluster",
            num_nodes=self.num_nodes,
            num_load_generators=len(self._generators),
            nodes=[spec.name for spec in self.nodes],
        )
        for g in self._generators:
            self._trace_generator(g)

    def _trace_generator(self, gen: SyntheticLoadGenerator) -> None:
        self.tracer.event(
            "load_generator",
            node=gen.node,
            start_time=gen.start_time,
            target_level=gen.target_level,
        )

    def add_load_generator(self, gen: SyntheticLoadGenerator) -> None:
        if not 0 <= gen.node < self.num_nodes:
            raise SimulationError(
                f"load generator targets node {gen.node}, cluster has "
                f"{self.num_nodes} nodes"
            )
        self._generators.append(gen)
        self._gen_columns_cache = None
        if self.tracer.enabled:
            self._trace_generator(gen)

    @property
    def load_generators(self) -> tuple[SyntheticLoadGenerator, ...]:
        return tuple(self._generators)

    # ------------------------------------------------------------------
    # Node lifecycle (resilience)
    # ------------------------------------------------------------------
    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise SimulationError(f"unknown node index {node}")

    def is_up(self, node: int) -> bool:
        """Whether ``node`` is currently alive (default: yes)."""
        self._check_node(node)
        return node not in self._down_since

    def mark_down(self, node: int) -> None:
        """Take ``node`` out of service (crash/eviction).

        A down node has zero CPU availability, memory and bandwidth; its
        probes fail and the time model refuses to schedule work on it.
        Marking an already-down node is a no-op (idempotent, so an
        injected crash racing an eviction does not error).
        """
        self._check_node(node)
        self._down_since.setdefault(node, self.clock.now)

    def mark_up(self, node: int) -> None:
        """Return ``node`` to service; idempotent like :meth:`mark_down`."""
        self._check_node(node)
        self._down_since.pop(node, None)

    def down_since(self, node: int) -> float | None:
        """Sim time ``node`` went down, or ``None`` if it is up."""
        self._check_node(node)
        return self._down_since.get(node)

    @property
    def down_nodes(self) -> tuple[int, ...]:
        return tuple(sorted(self._down_since))

    @property
    def live_nodes(self) -> tuple[int, ...]:
        return tuple(
            k for k in range(self.num_nodes) if k not in self._down_since
        )

    def live_mask(self) -> np.ndarray:
        """Boolean per-node liveness vector."""
        mask = np.ones(self.num_nodes, dtype=bool)
        for k in self._down_since:
            mask[k] = False
        return mask

    def degrade_link(self, node: int, factor: float) -> None:
        """Derate ``node``'s NIC to ``factor`` of its deliverable bandwidth
        (a flaky switch port, a congested uplink)."""
        self._check_node(node)
        if not 0.0 < factor <= 1.0:
            raise SimulationError(
                f"link derating factor must be in (0, 1], got {factor}"
            )
        self._link_derate[node] = float(factor)

    def restore_link(self, node: int) -> None:
        """Lift any NIC derating on ``node``; idempotent."""
        self._check_node(node)
        self._link_derate.pop(node, None)

    def link_derate(self, node: int) -> float:
        self._check_node(node)
        return self._link_derate.get(node, 1.0)

    # ------------------------------------------------------------------
    def _gen_columns(self) -> tuple[np.ndarray, ...]:
        """Generator table as columns (rebuilt after attachments)."""
        cols = self._gen_columns_cache
        if cols is None:
            gens = self._generators
            cols = (
                np.array([g.node for g in gens], dtype=np.intp),
                np.array([g.start_time for g in gens], dtype=float),
                np.array(
                    [
                        np.inf if g.stop_time is None else g.stop_time
                        for g in gens
                    ],
                    dtype=float,
                ),
                np.array([g.ramp_rate for g in gens], dtype=float),
                np.array([g.target_level for g in gens], dtype=float),
                np.array([g.memory_per_unit_mb for g in gens], dtype=float),
                np.array(
                    [g.bandwidth_fraction_per_unit for g in gens],
                    dtype=float,
                ),
            )
            self._gen_columns_cache = cols
        return cols

    def _node_sums(self, t: float) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(load level, memory MB, NIC fraction) consumed per node at ``t``.

        All ramps are evaluated in one vectorized pass over the generator
        columns; per-node totals come from ``np.bincount``, whose in-order
        accumulation reproduces the old per-node Python sums bit for bit.
        """
        node, start, stop, rate, target, mem, bw = self._gen_columns()
        n = self.num_nodes
        if not node.size:
            zeros = np.zeros(n)
            return zeros, zeros, zeros
        active = (t >= start) & (t < stop)
        lvl = np.where(active, np.minimum(target, rate * (t - start)), 0.0)
        load = np.bincount(node, weights=lvl, minlength=n)
        mem_used = np.bincount(node, weights=lvl * mem, minlength=n)
        bw_used = np.bincount(node, weights=lvl * bw, minlength=n)
        return load, mem_used, bw_used

    def load_level(self, node: int, t: float | None = None) -> float:
        """Total synthetic load on ``node`` at time ``t`` (default: now)."""
        self._check_node(node)
        t = self.clock.now if t is None else t
        return float(self._node_sums(t)[0][node])

    def _state_at(
        self, node: int, level: float, mem_used: float, bw_used: float
    ) -> NodeState:
        if node in self._down_since:
            # A crashed node delivers nothing -- no CPU, no memory, no NIC.
            return NodeState(
                cpu_available=0.0,
                free_memory_mb=0.0,
                bandwidth_mbps=0.0,
                load_level=level,
            )
        spec = self.nodes[node]
        mem_total = OS_BASE_MEMORY_MB + mem_used
        bw_share = max(0.05, 1.0 - bw_used)  # >= 5% stays deliverable
        bw_share *= self._link_derate.get(node, 1.0)
        return NodeState(
            cpu_available=cpu_share_under_load(level, spec.os_overhead),
            free_memory_mb=max(0.0, spec.memory_mb - mem_total),
            bandwidth_mbps=spec.bandwidth_mbps * bw_share,
            load_level=level,
        )

    def state_of(self, node: int, t: float | None = None) -> NodeState:
        """Ground-truth resource state of one node.

        Only the simulator and its tests call this directly; the framework
        sees node state through the resource monitor, which adds probe cost
        (and, optionally, noise and forecasting).
        """
        self._check_node(node)
        t = self.clock.now if t is None else t
        load, mem_used, bw_used = self._node_sums(t)
        return self._state_at(
            node,
            float(load[node]),
            float(mem_used[node]),
            float(bw_used[node]),
        )

    def states(self, t: float | None = None) -> list[NodeState]:
        """Ground-truth state of every node (one columnar pass)."""
        t = self.clock.now if t is None else t
        load, mem_used, bw_used = self._node_sums(t)
        return [
            self._state_at(
                k, float(load[k]), float(mem_used[k]), float(bw_used[k])
            )
            for k in range(self.num_nodes)
        ]

    def effective_speed(self, node: int, t: float | None = None) -> float:
        """Deliverable work units per second on ``node`` at ``t``."""
        return self.state_of(node, t).effective_speed(self.nodes[node])

    def effective_speeds(self, t: float | None = None) -> np.ndarray:
        """Per-node deliverable speeds, computed without NodeState objects."""
        t = self.clock.now if t is None else t
        load = self._node_sums(t)[0]
        share = np.clip((1.0 - self._os_overhead) / (1.0 + load), 0.0, 1.0)
        speeds = self._cpu_speed * share
        if self._down_since:
            speeds[list(self._down_since)] = 0.0
        return speeds

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @classmethod
    def homogeneous(
        cls,
        n: int,
        cpu_speed: float = 1.0,
        memory_mb: float = 512.0,
        bandwidth_mbps: float = 100.0,
    ) -> "Cluster":
        """``n`` identical unloaded nodes."""
        return cls(
            [
                NodeSpec(
                    name=f"node{k:02d}",
                    cpu_speed=cpu_speed,
                    memory_mb=memory_mb,
                    bandwidth_mbps=bandwidth_mbps,
                )
                for k in range(n)
            ]
        )

    @classmethod
    def heterogeneous(
        cls,
        n: int,
        seed: int = 0,
        speed_range: tuple[float, float] = (0.5, 1.5),
        memory_choices: Sequence[float] = (256.0, 512.0, 1024.0),
        bandwidth_choices: Sequence[float] = (100.0, 100.0, 10.0),
    ) -> "Cluster":
        """``n`` nodes with mixed hardware generations (seeded, replayable)."""
        rng = make_rng(seed)
        nodes = [
            NodeSpec(
                name=f"node{k:02d}",
                cpu_speed=float(rng.uniform(*speed_range)),
                memory_mb=float(rng.choice(memory_choices)),
                bandwidth_mbps=float(rng.choice(bandwidth_choices)),
            )
            for k in range(n)
        ]
        return cls(nodes)

    @classmethod
    def paper_four_node(cls) -> "Cluster":
        """The 4-node scenario of sections 6.1.3 / 6.2.2.

        Four identical machines; synthetic load generators on nodes 0-2
        (two heavy, one light) tuned so equal-weight relative capacities
        converge to approximately 16 %, 19 %, 31 % and 34 % once the ramps
        plateau (within the first simulated second).
        """
        nodes = [NodeSpec(name=f"node{k:02d}") for k in range(4)]
        # Target normalized CPU/memory shares x = (.115, .16, .34, .385);
        # combined with equal bandwidth shares (.25 each) under equal weights
        # this yields C = (x + x + 1/4)/3 = (.160, .190, .310, .340).
        gens = [
            SyntheticLoadGenerator(
                node=0, start_time=-1.0, ramp_rate=10.0,
                target_level=2.348, memory_per_unit_mb=133.8,
            ),
            SyntheticLoadGenerator(
                node=1, start_time=-1.0, ramp_rate=10.0,
                target_level=1.407, memory_per_unit_mb=186.1,
            ),
            SyntheticLoadGenerator(
                node=2, start_time=-1.0, ramp_rate=10.0,
                target_level=0.132, memory_per_unit_mb=396.8,
            ),
        ]
        return cls(nodes, load_generators=gens)

    @classmethod
    def paper_linux_cluster(
        cls,
        n: int = 32,
        loaded_fraction: float = 0.5,
        seed: int = 7,
        dynamic: bool = False,
        horizon_s: float = 900.0,
    ) -> "Cluster":
        """The 32-node Linux/Fast-Ethernet cluster of section 6.2.1.

        ``loaded_fraction`` of the nodes carry synthetic load (heterogeneity
        comes from the load, as in the paper's controlled setup).  With
        ``dynamic=True`` the load *moves*: one half of the loaded set is
        busy from the start until ~``horizon_s/2``, the other half from
        ~``horizon_s/2`` on ("multiple load generators ... create
        interesting load dynamics", section 6.1.1).  A sense-once
        configuration therefore shifts work onto exactly the nodes that
        later become slow, reproducing the large dynamic-vs-static gaps of
        table II; dynamic sensing keeps adapting (section 6.2.3).
        """
        if n < 1:
            raise SimulationError(f"need at least one node, got {n}")
        nodes = [NodeSpec(name=f"node{k:02d}") for k in range(n)]
        rng = make_rng(seed)
        num_loaded = max(1, int(round(n * loaded_fraction)))
        loaded = sorted(int(x) for x in rng.choice(n, size=num_loaded, replace=False))
        gens = []
        if dynamic:
            # Phase 1 loads half the loaded set from before t=0 until
            # mid-horizon; phase 2 loads the *other* half afterwards.
            half = (num_loaded + 1) // 2
            phase1 = loaded[:half]
            phase2 = loaded[half:]
            if not phase2:  # with one loaded node, phase 2 hits another node
                phase2 = [(phase1[0] + 1) % n]
            h = horizon_s
            for k in phase1:
                gens.append(
                    SyntheticLoadGenerator(
                        node=k, start_time=-1.0, ramp_rate=10.0,
                        target_level=float(rng.uniform(2.5, 4.5)),
                        stop_time=float(rng.uniform(0.45, 0.55)) * h,
                        memory_per_unit_mb=120.0,
                    )
                )
            for k in phase2:
                gens.append(
                    SyntheticLoadGenerator(
                        node=k,
                        start_time=float(rng.uniform(0.45, 0.55)) * h,
                        ramp_rate=10.0,
                        target_level=float(rng.uniform(2.5, 4.5)),
                        memory_per_unit_mb=120.0,
                    )
                )
            return cls(nodes, load_generators=gens)
        # Static case: the ramp completed before the application starts
        # (paper section 6.2.1 runs under established load).  Load
        # diversity grows with cluster size, reflecting the paper's
        # observation that larger clusters exhibit greater heterogeneity
        # (and hence larger system-sensitive gains: ~7 % at 4 nodes vs
        # ~18 % at 32).
        hi = min(3.0, 0.6 + 0.075 * n)
        for k in loaded:
            gens.append(
                SyntheticLoadGenerator(
                    node=k, start_time=-1.0, ramp_rate=10.0,
                    target_level=float(rng.uniform(0.3, hi)),
                    memory_per_unit_mb=48.0,
                )
            )
        return cls(nodes, load_generators=gens)
