"""Synthetic load generation (paper section 6.1.1).

    "The load generator decreased the available memory and increased CPU
    load on a processor, thus lowering its capacity to do work.  The load
    generated on the processor increased linearly at a specified rate until
    it reached the desired load level.  Note that multiple load generators
    were run on a processor to create interesting load dynamics."

A :class:`SyntheticLoadGenerator` is a pure function of simulated time, so
replaying an experiment under a different partitioner sees *bit-identical*
load dynamics -- the controlled-environment property the paper's comparisons
depend on.

Load semantics follow the Unix load-average model: a load level of ``L``
competing processes leaves a new process ``1 / (1 + L)`` of the CPU.  Each
load unit also pins ``memory_per_unit_mb`` of memory.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import SimulationError

__all__ = ["SyntheticLoadGenerator", "cpu_share_under_load"]


def cpu_share_under_load(load_level: float, os_overhead: float = 0.0) -> float:
    """Fraction of CPU available to a new process under ``load_level``
    competing load units, after subtracting the OS background share."""
    if load_level < 0:
        raise SimulationError(f"negative load level {load_level}")
    share = (1.0 - os_overhead) / (1.0 + load_level)
    return max(0.0, min(1.0, share))


@dataclass(frozen=True, slots=True)
class SyntheticLoadGenerator:
    """Deterministic linear-ramp load source attached to one node.

    Parameters
    ----------
    node:
        Index of the node this generator loads.
    start_time:
        Simulated time (s) at which the ramp begins.
    ramp_rate:
        Load units added per second during the ramp (> 0).
    target_level:
        Load level at which the ramp plateaus (>= 0).
    stop_time:
        Optional time at which the generator exits and its load vanishes
        (``None`` = runs forever).
    memory_per_unit_mb:
        Memory pinned per load unit.
    bandwidth_fraction_per_unit:
        Fraction of the node's NIC bandwidth consumed per load unit (a
        network-chatty competitor, e.g. a bulk transfer); 0 = CPU/memory
        load only.  Total consumption across generators is capped so at
        least 5 % of the NIC stays deliverable.
    """

    node: int
    start_time: float = 0.0
    ramp_rate: float = 0.1
    target_level: float = 1.0
    stop_time: float | None = None
    memory_per_unit_mb: float = 32.0
    bandwidth_fraction_per_unit: float = 0.0

    def __post_init__(self) -> None:
        if self.node < 0:
            raise SimulationError(f"negative node index {self.node}")
        if self.ramp_rate <= 0:
            raise SimulationError(f"ramp_rate must be > 0, got {self.ramp_rate}")
        if self.target_level < 0:
            raise SimulationError(
                f"target_level must be >= 0, got {self.target_level}"
            )
        if self.stop_time is not None and self.stop_time < self.start_time:
            raise SimulationError("stop_time before start_time")
        if self.memory_per_unit_mb < 0:
            raise SimulationError("negative memory_per_unit_mb")
        if not 0.0 <= self.bandwidth_fraction_per_unit <= 1.0:
            raise SimulationError(
                "bandwidth_fraction_per_unit must be in [0, 1], got "
                f"{self.bandwidth_fraction_per_unit}"
            )

    def level_at(self, t: float) -> float:
        """Load level contributed at simulated time ``t``."""
        if t < self.start_time:
            return 0.0
        if self.stop_time is not None and t >= self.stop_time:
            return 0.0
        return min(self.target_level, self.ramp_rate * (t - self.start_time))

    def memory_at(self, t: float) -> float:
        """Memory (MB) pinned at simulated time ``t``."""
        return self.level_at(t) * self.memory_per_unit_mb

    def bandwidth_fraction_at(self, t: float) -> float:
        """Fraction of NIC bandwidth consumed at simulated time ``t``."""
        return self.level_at(t) * self.bandwidth_fraction_per_unit
