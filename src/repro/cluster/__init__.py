"""Heterogeneous-cluster simulator (substitute for the paper's testbed).

The paper evaluates on a 32-node Linux cluster on Fast Ethernet, loaded by a
*synthetic load generator* so both partitioners see identical, controlled
system dynamics.  Offline we reproduce that environment with a deterministic
simulator:

- :mod:`repro.cluster.node` -- per-node capability specs (CPU speed, memory,
  NIC bandwidth) and dynamic state (CPU availability, free memory);
- :mod:`repro.cluster.loadgen` -- the synthetic load generator of section
  6.1.1: load ramps linearly at a specified rate to a desired level,
  consuming CPU and memory; several generators may stack on one node;
- :mod:`repro.cluster.events` -- a small discrete-event clock;
- :mod:`repro.cluster.network` -- latency/bandwidth link cost model;
- :mod:`repro.cluster.cluster` -- the cluster facade plus presets, including
  the paper's 4-node scenario with relative capacities ~16/19/31/34 %.

The simulator is the *system under measurement*: partitioners only ever see
it through the resource monitor (:mod:`repro.monitor`), exactly as the real
framework only saw the cluster through NWS.
"""

from repro.cluster.node import NodeSpec, NodeState
from repro.cluster.events import SimClock
from repro.cluster.loadgen import SyntheticLoadGenerator
from repro.cluster.network import LinkModel
from repro.cluster.cluster import Cluster

__all__ = [
    "NodeSpec",
    "NodeState",
    "SimClock",
    "SyntheticLoadGenerator",
    "LinkModel",
    "Cluster",
]
