"""``python -m repro`` entry point."""

import sys

from repro.cli import main

try:
    code = main()
except BrokenPipeError:
    # Downstream pager/`head` closed the pipe early; exit quietly like a
    # well-behaved Unix tool instead of tracebacking.
    sys.stderr.close()
    code = 0
raise SystemExit(code)
