"""repro: adaptive system-sensitive partitioning of SAMR applications on
heterogeneous clusters.

A faithful, self-contained reproduction of Sinha & Parashar, *Adaptive
Runtime Partitioning of AMR Applications on Heterogeneous Clusters*
(CLUSTER 2001).  The package implements the paper's framework end to end:

- the **GrACE-style SAMR substrate** (:mod:`repro.amr`, :mod:`repro.hdda`):
  Berger-Oliger grid hierarchies, Berger-Rigoutsos clustering, space-filling
  curve index spaces, extendible-hash block storage;
- **application kernels** (:mod:`repro.kernels`): the RM3D
  Richtmyer-Meshkov compressible-flow kernel of the paper's evaluation, a
  Buckley-Leverett reservoir kernel, scalar advection, and paper-scale
  synthetic workload traces;
- a **heterogeneous-cluster simulator** (:mod:`repro.cluster`,
  :mod:`repro.comm`) with the paper's synthetic load generator;
- an **NWS-equivalent resource monitor** (:mod:`repro.monitor`) with the
  forecaster suite and the 0.5 s/node probe cost;
- the **capacity metric and partitioners** (:mod:`repro.partition`):
  ACEHeterogeneous (system-sensitive) and ACEComposite (default baseline);
- the **adaptive runtime** (:mod:`repro.runtime`) wiring it all into the
  sense -> capacity -> partition -> execute loop, plus experiment builders
  for every table and figure in the paper;
- a **telemetry subsystem** (:mod:`repro.telemetry`): structured phase
  tracing over wall and simulated clocks, a metrics registry, and
  exporters to JSONL / Chrome trace-event (Perfetto) / flat summaries --
  no-op by default, enabled per run or via ``repro trace``.

Quickstart::

    from repro import (
        ACEHeterogeneous, Cluster, RuntimeConfig, SamrRuntime,
        paper_rm3d_trace,
    )

    workload = paper_rm3d_trace()
    cluster = Cluster.paper_linux_cluster(8, seed=7)
    runtime = SamrRuntime(
        workload, cluster, ACEHeterogeneous(),
        config=RuntimeConfig(iterations=40, regrid_interval=5),
    )
    result = runtime.run()
    print(f"execution time: {result.total_seconds:.1f} simulated seconds")
"""

from repro.amr import (
    AmrKernel,
    BergerOligerIntegrator,
    GridHierarchy,
    GridLevel,
    GridPatch,
    berger_rigoutsos,
)
from repro.cluster import Cluster, LinkModel, NodeSpec, SyntheticLoadGenerator
from repro.comm import SimCommunicator
from repro.hdda import HDDA, HierarchicalIndexSpace
from repro.kernels import (
    AdvectionKernel,
    BuckleyLeverettKernel,
    RM3DKernel,
    SyntheticWorkload,
    moving_blob_trace,
    paper_rm3d_trace,
)
from repro.monitor import ResourceMonitor
from repro.partition import (
    ACEComposite,
    ACEHeterogeneous,
    CapacityCalculator,
    CapacityWeights,
    GreedyLPT,
    SplitConstraints,
    load_imbalance,
    makespan_estimate,
)
from repro.runtime import RunResult, RuntimeConfig, SamrRuntime
from repro.telemetry import (
    NULL_TRACER,
    MetricsRegistry,
    NullTracer,
    Tracer,
    activate,
)
from repro.util import Box, BoxList, ReproError

__version__ = "1.0.0"

__all__ = [
    # geometry
    "Box",
    "BoxList",
    "ReproError",
    # AMR substrate
    "AmrKernel",
    "GridPatch",
    "GridLevel",
    "GridHierarchy",
    "BergerOligerIntegrator",
    "berger_rigoutsos",
    "HDDA",
    "HierarchicalIndexSpace",
    # kernels
    "AdvectionKernel",
    "RM3DKernel",
    "BuckleyLeverettKernel",
    "SyntheticWorkload",
    "moving_blob_trace",
    "paper_rm3d_trace",
    # cluster + monitoring
    "Cluster",
    "NodeSpec",
    "LinkModel",
    "SyntheticLoadGenerator",
    "SimCommunicator",
    "ResourceMonitor",
    # partitioning
    "CapacityCalculator",
    "CapacityWeights",
    "ACEHeterogeneous",
    "ACEComposite",
    "GreedyLPT",
    "SplitConstraints",
    "load_imbalance",
    "makespan_estimate",
    # runtime
    "SamrRuntime",
    "RuntimeConfig",
    "RunResult",
    # telemetry
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "MetricsRegistry",
    "activate",
    "__version__",
]
