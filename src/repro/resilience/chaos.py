"""Declarative, seeded fault injection on the simulated clock.

A :class:`FaultPlan` is data, not code: an ordered tuple of
:class:`FaultEvent` records saying *what* happens to *which* node *when*.
The :class:`FaultInjector` arms a plan by scheduling one callback per event
on the cluster's :class:`~repro.cluster.events.SimClock`; because the clock
is deterministic and the plan is immutable, a chaos run replays bit-for-bit
-- the same property :class:`~repro.cluster.loadgen.SyntheticLoadGenerator`
gives the paper's load dynamics.

Fault kinds
-----------
``node_crash`` / ``node_recover``
    The node leaves / rejoins the cluster (zero CPU/memory/bandwidth while
    down; probes fail; collectives shrink around it).
``sensor_blackout`` / ``sensor_restore``
    The node keeps computing but its monitor sensors stop answering --
    exercises the stale -> suspect -> evicted escalation ladder without
    any real capacity change.
``link_degrade`` / ``link_restore``
    The node's NIC is derated to ``factor`` of its deliverable bandwidth
    (flaky switch port, congested uplink).

Every applied event is mirrored onto the telemetry stream as a ``fault.*``
or ``recovery.*`` instant event, which the health monitor and the HTML
dashboard render.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.cluster.cluster import Cluster
from repro.util.errors import ResilienceError
from repro.util.rng import make_rng

__all__ = ["FAULT_KINDS", "FaultEvent", "FaultInjector", "FaultPlan"]

#: kind -> (telemetry event name, needs_factor)
FAULT_KINDS: dict[str, tuple[str, bool]] = {
    "node_crash": ("fault.node_crash", False),
    "node_recover": ("recovery.node_up", False),
    "sensor_blackout": ("fault.sensor_blackout", False),
    "sensor_restore": ("recovery.sensor_restored", False),
    "link_degrade": ("fault.link_degraded", True),
    "link_restore": ("recovery.link_restored", False),
}


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One scheduled disturbance."""

    time: float
    kind: str
    node: int
    factor: float = 1.0  # link_degrade only: residual bandwidth fraction

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ResilienceError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{sorted(FAULT_KINDS)}"
            )
        if self.time < 0:
            raise ResilienceError(f"fault time must be >= 0, got {self.time}")
        if self.node < 0:
            raise ResilienceError(f"fault node must be >= 0, got {self.node}")
        if self.kind == "link_degrade" and not 0.0 < self.factor <= 1.0:
            raise ResilienceError(
                f"link_degrade factor must be in (0, 1], got {self.factor}"
            )


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """An immutable, replayable schedule of disturbances."""

    events: tuple[FaultEvent, ...]
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))

    def validate(self, num_nodes: int) -> None:
        """Check every event targets a node the cluster actually has."""
        for ev in self.events:
            if ev.node >= num_nodes:
                raise ResilienceError(
                    f"fault plan targets node {ev.node}, cluster has "
                    f"{num_nodes} nodes"
                )

    @property
    def horizon(self) -> float:
        """Latest event timestamp (0.0 for an empty plan)."""
        return max((ev.time for ev in self.events), default=0.0)

    def kinds(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for ev in self.events:
            out[ev.kind] = out.get(ev.kind, 0) + 1
        return out

    # -- builders ------------------------------------------------------
    @classmethod
    def node_outage(
        cls,
        nodes: Iterable[int],
        at: float,
        duration: float | None = None,
        seed: int = 0,
    ) -> "FaultPlan":
        """Crash ``nodes`` at ``at``; recover them ``duration`` later
        (never, if ``duration`` is ``None``)."""
        events: list[FaultEvent] = []
        for node in nodes:
            events.append(FaultEvent(time=at, kind="node_crash", node=node))
            if duration is not None:
                if duration <= 0:
                    raise ResilienceError(
                        f"outage duration must be > 0, got {duration}"
                    )
                events.append(
                    FaultEvent(
                        time=at + duration, kind="node_recover", node=node
                    )
                )
        return cls(events=tuple(sorted(events, key=lambda e: e.time)), seed=seed)

    @classmethod
    def random(
        cls,
        num_nodes: int,
        horizon_s: float,
        seed: int = 0,
        num_crashes: int = 1,
        num_blackouts: int = 1,
        num_link_faults: int = 1,
        outage_fraction: tuple[float, float] = (0.2, 0.4),
        blackout_fraction: tuple[float, float] = (0.05, 0.15),
        derate_range: tuple[float, float] = (0.1, 0.5),
    ) -> "FaultPlan":
        """A seeded random plan: crashes, blackouts and link derating.

        Crash targets are distinct nodes and at most ``num_nodes - 1`` of
        them, so at least one survivor always exists.  Every outage and
        blackout recovers within the horizon.
        """
        if num_nodes < 1:
            raise ResilienceError(f"need >= 1 node, got {num_nodes}")
        if horizon_s <= 0:
            raise ResilienceError(f"horizon must be > 0, got {horizon_s}")
        num_crashes = min(num_crashes, num_nodes - 1)
        rng = make_rng(seed)
        events: list[FaultEvent] = []
        crash_targets = (
            [int(x) for x in rng.choice(num_nodes, num_crashes, replace=False)]
            if num_crashes > 0
            else []
        )
        for node in crash_targets:
            start = float(rng.uniform(0.1, 0.5)) * horizon_s
            dur = float(rng.uniform(*outage_fraction)) * horizon_s
            events.append(FaultEvent(time=start, kind="node_crash", node=node))
            events.append(
                FaultEvent(
                    time=min(start + dur, 0.95 * horizon_s),
                    kind="node_recover",
                    node=node,
                )
            )
        for _ in range(num_blackouts):
            node = int(rng.integers(0, num_nodes))
            start = float(rng.uniform(0.1, 0.8)) * horizon_s
            dur = float(rng.uniform(*blackout_fraction)) * horizon_s
            events.append(
                FaultEvent(time=start, kind="sensor_blackout", node=node)
            )
            events.append(
                FaultEvent(
                    time=min(start + dur, 0.98 * horizon_s),
                    kind="sensor_restore",
                    node=node,
                )
            )
        for _ in range(num_link_faults):
            node = int(rng.integers(0, num_nodes))
            start = float(rng.uniform(0.1, 0.8)) * horizon_s
            dur = float(rng.uniform(*blackout_fraction)) * horizon_s
            factor = float(rng.uniform(*derate_range))
            events.append(
                FaultEvent(
                    time=start, kind="link_degrade", node=node, factor=factor
                )
            )
            events.append(
                FaultEvent(
                    time=min(start + dur, 0.98 * horizon_s),
                    kind="link_restore",
                    node=node,
                )
            )
        events.sort(key=lambda e: (e.time, e.node, e.kind))
        return cls(events=tuple(events), seed=seed)


class FaultInjector:
    """Applies a :class:`FaultPlan` to a cluster (and optionally a monitor).

    Arm once; the injector schedules every event on the cluster clock and
    mutates cluster/monitor state as simulated time reaches each event.
    ``applied`` records ``(time, kind, node)`` for post-run reporting.
    """

    def __init__(self, cluster: Cluster, monitor=None, tracer=None):
        self.cluster = cluster
        self.monitor = monitor
        self._tracer = tracer
        self.plan: FaultPlan | None = None
        self.applied: list[tuple[float, str, int]] = []

    @property
    def tracer(self):
        return self._tracer if self._tracer is not None else self.cluster.tracer

    def arm(self, plan: FaultPlan) -> None:
        """Schedule every event of ``plan`` on the cluster clock."""
        if self.plan is not None:
            raise ResilienceError(
                "injector already armed; build a fresh injector per plan"
            )
        plan.validate(self.cluster.num_nodes)
        now = self.cluster.clock.now
        for ev in plan.events:
            if ev.time < now:
                raise ResilienceError(
                    f"fault at t={ev.time} is in the past (now={now})"
                )
        self.plan = plan
        for ev in plan.events:
            self.cluster.clock.schedule(
                ev.time, lambda _clock, e=ev: self._apply(e)
            )

    # -- event application --------------------------------------------
    def _apply(self, ev: FaultEvent) -> None:
        if ev.kind == "node_crash":
            self.cluster.mark_down(ev.node)
        elif ev.kind == "node_recover":
            self.cluster.mark_up(ev.node)
        elif ev.kind == "sensor_blackout":
            if self.monitor is not None:
                self.monitor.blackout_sensor(ev.node)
        elif ev.kind == "sensor_restore":
            if self.monitor is not None:
                self.monitor.restore_sensor(ev.node)
        elif ev.kind == "link_degrade":
            self.cluster.degrade_link(ev.node, ev.factor)
        elif ev.kind == "link_restore":
            self.cluster.restore_link(ev.node)
        self.applied.append((self.cluster.clock.now, ev.kind, ev.node))
        name, needs_factor = FAULT_KINDS[ev.kind]
        attrs = {"node": ev.node, "plan_seed": self.plan.seed}
        if needs_factor:
            attrs["factor"] = ev.factor
        self.tracer.event(name, **attrs)
