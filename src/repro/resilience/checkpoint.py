"""Checkpoint/restart for the adaptive runtime.

A checkpoint captures everything needed to resume a run bit-for-bit:

- the grid hierarchy (every level's patch boxes and field data, plus
  ``time`` and ``step_count``),
- the current partition assignment (box -> rank),
- the simulated clock reading at save time.

Snapshots are *versioned* (a format version plus a monotonically growing
step tag) and *checksummed* with :func:`repro.util.hashing.checksum_bytes`;
restore verifies integrity before touching the hierarchy, so a truncated or
corrupted snapshot raises :class:`~repro.util.errors.CheckpointError`
instead of silently resuming from garbage.

Restore-and-replay is what makes failure recovery exact: determinism plus
partition invariance mean that replaying the lost steps over the surviving
rank set reproduces the identical solution the undisturbed run would have
produced.
"""

from __future__ import annotations

import io
import os
import pickle
import struct
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.amr.hierarchy import GridHierarchy
from repro.amr.level import GridLevel
from repro.amr.patch import GridPatch
from repro.util.errors import CheckpointError
from repro.util.geometry import Box
from repro.util.hashing import checksum_bytes

__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "Checkpoint",
    "CheckpointManager",
    "CheckpointStore",
    "DirectoryCheckpointStore",
    "MemoryCheckpointStore",
    "ResilienceConfig",
    "hierarchy_state",
    "restore_hierarchy_state",
]

#: On-disk/in-memory snapshot format version.
CHECKPOINT_FORMAT_VERSION = 1

#: Magic prefix of serialized snapshot files.
_MAGIC = b"RPCK"

#: File header: magic, format version, step, payload length, checksum,
#: hierarchy time, clock time.
_HEADER = struct.Struct("<4sIQQQdd")


# ---------------------------------------------------------------------------
# Hierarchy (de)serialization
# ---------------------------------------------------------------------------
def hierarchy_state(h: GridHierarchy) -> dict:
    """Snapshot a hierarchy's mutable state as plain data.

    Static configuration (domain, kernel, refine factor) is *not* captured;
    restore targets a hierarchy built with the same configuration and only
    replaces its dynamic state, mirroring how an MPI restart re-runs the
    same binary against a data file.
    """
    return {
        "time": h.time,
        "step_count": h.step_count,
        "levels": [
            {
                "level": lvl.level,
                "patches": [
                    {
                        "lower": p.box.lower,
                        "upper": p.box.upper,
                        "data": np.array(p.data, copy=True),
                    }
                    for p in lvl
                ],
            }
            for lvl in h.levels
        ],
    }


def restore_hierarchy_state(h: GridHierarchy, state: dict) -> None:
    """Replace ``h``'s dynamic state with a previously captured snapshot."""
    levels: list[GridLevel] = []
    for lvl_state in state["levels"]:
        lnum = int(lvl_state["level"])
        patches = [
            GridPatch(
                Box(ps["lower"], ps["upper"], lnum),
                num_fields=h.kernel.num_fields,
                ghost_width=h.kernel.ghost_width,
                data=np.array(ps["data"], copy=True),
            )
            for ps in lvl_state["patches"]
        ]
        levels.append(GridLevel(lnum, patches))
    h.levels = levels
    h.time = float(state["time"])
    h.step_count = int(state["step_count"])


def _encode_assignment(
    assignment: Sequence[tuple[Box, int]] | None,
) -> list[tuple[tuple, tuple, int, int]] | None:
    if assignment is None:
        return None
    return [
        (b.lower, b.upper, b.level, int(rank)) for b, rank in assignment
    ]


def _decode_assignment(
    encoded: list[tuple[tuple, tuple, int, int]] | None,
) -> list[tuple[Box, int]] | None:
    if encoded is None:
        return None
    return [
        (Box(lower, upper, level), rank)
        for lower, upper, level, rank in encoded
    ]


# ---------------------------------------------------------------------------
# The snapshot object
# ---------------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class Checkpoint:
    """One integrity-checked snapshot of the run state."""

    version: int
    step: int
    sim_time: float  # hierarchy (physics) time at save
    clock_time: float  # simulated wall clock at save
    payload: bytes  # pickled state dict
    checksum: int

    @property
    def nbytes(self) -> int:
        return len(self.payload)

    def verify(self) -> None:
        """Raise :class:`CheckpointError` on version or integrity mismatch."""
        if self.version != CHECKPOINT_FORMAT_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint format version {self.version} "
                f"(expected {CHECKPOINT_FORMAT_VERSION})"
            )
        actual = checksum_bytes(self.payload)
        if actual != self.checksum:
            raise CheckpointError(
                f"checkpoint for step {self.step} failed integrity check: "
                f"stored {self.checksum:#018x}, computed {actual:#018x}"
            )

    def state(self) -> dict:
        """Decode the payload (verifying integrity first)."""
        self.verify()
        return pickle.loads(self.payload)

    def to_bytes(self) -> bytes:
        """Serialize header + payload for file storage."""
        header = _HEADER.pack(
            _MAGIC,
            self.version,
            self.step,
            len(self.payload),
            self.checksum & ((1 << 64) - 1),
            self.sim_time,
            self.clock_time,
        )
        return header + self.payload

    @classmethod
    def from_bytes(cls, blob: bytes) -> "Checkpoint":
        if len(blob) < _HEADER.size:
            raise CheckpointError(
                f"checkpoint blob truncated: {len(blob)} bytes, header "
                f"needs {_HEADER.size}"
            )
        magic, version, step, nbytes, checksum, sim_t, clock_t = (
            _HEADER.unpack_from(blob)
        )
        if magic != _MAGIC:
            raise CheckpointError(f"bad checkpoint magic {magic!r}")
        payload = blob[_HEADER.size:]
        if len(payload) != nbytes:
            raise CheckpointError(
                f"checkpoint payload truncated: header promises {nbytes} "
                f"bytes, file holds {len(payload)}"
            )
        ckpt = cls(
            version=version,
            step=step,
            sim_time=sim_t,
            clock_time=clock_t,
            payload=payload,
            checksum=checksum,
        )
        ckpt.verify()
        return ckpt


# ---------------------------------------------------------------------------
# Stores
# ---------------------------------------------------------------------------
class CheckpointStore:
    """Interface: ordered snapshot storage with bounded retention."""

    def save(self, ckpt: Checkpoint) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def latest(self) -> Checkpoint | None:  # pragma: no cover - interface
        raise NotImplementedError

    def steps(self) -> tuple[int, ...]:  # pragma: no cover - interface
        raise NotImplementedError

    def latest_valid(self) -> Checkpoint | None:
        """Newest snapshot that passes integrity verification.

        :meth:`latest` fails closed -- a corrupt newest snapshot raises so
        nobody resumes from garbage.  Consumers that would rather *fall
        back* (lose the last interval, keep the run alive) call this
        instead: corrupt snapshots are skipped newest-to-oldest and the
        first one that verifies is returned.  ``None`` means no snapshot
        at all survived.
        """
        return self.latest()


class MemoryCheckpointStore(CheckpointStore):
    """In-process snapshot ring (the default for simulated runs)."""

    def __init__(self, keep_last: int = 2):
        if keep_last < 1:
            raise CheckpointError(f"keep_last must be >= 1, got {keep_last}")
        self.keep_last = keep_last
        self._snapshots: list[Checkpoint] = []

    def save(self, ckpt: Checkpoint) -> None:
        self._snapshots.append(ckpt)
        if len(self._snapshots) > self.keep_last:
            del self._snapshots[: -self.keep_last]

    def latest(self) -> Checkpoint | None:
        return self._snapshots[-1] if self._snapshots else None

    def steps(self) -> tuple[int, ...]:
        return tuple(c.step for c in self._snapshots)


class DirectoryCheckpointStore(CheckpointStore):
    """File-backed snapshots: ``<dir>/ckpt_<step>.rpck``."""

    def __init__(self, directory: str | Path, keep_last: int = 2):
        if keep_last < 1:
            raise CheckpointError(f"keep_last must be >= 1, got {keep_last}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep_last = keep_last

    def _files(self) -> list[Path]:
        return sorted(self.directory.glob("ckpt_*.rpck"))

    def save(self, ckpt: Checkpoint) -> None:
        path = self.directory / f"ckpt_{ckpt.step:08d}.rpck"
        tmp = path.with_suffix(".tmp")
        with io.open(tmp, "wb") as f:
            f.write(ckpt.to_bytes())
            f.flush()
            os.fsync(f.fileno())
        tmp.replace(path)  # atomic publish: no torn snapshots
        files = self._files()
        for old in files[: -self.keep_last]:
            old.unlink()
        # A crash between write and rename leaves a stale .tmp behind;
        # it never shadows a published snapshot, so sweep it here.
        for stale in self.directory.glob("ckpt_*.tmp"):
            if stale != tmp:
                stale.unlink(missing_ok=True)

    def latest(self) -> Checkpoint | None:
        files = self._files()
        if not files:
            return None
        return Checkpoint.from_bytes(files[-1].read_bytes())

    def latest_valid(self) -> Checkpoint | None:
        """Newest snapshot that verifies; corrupt ones are skipped.

        A truncated header, short payload or checksum mismatch on the
        newest file (a crash mid-publish, bit rot) must not strand the
        older, intact snapshot -- recovery walks backwards and restores
        the first file that passes :meth:`Checkpoint.verify`.  Partial
        writes never qualify in the first place: saves go through a
        ``.tmp`` name that :meth:`_files` does not match until the atomic
        rename publishes them.
        """
        for path in reversed(self._files()):
            try:
                return Checkpoint.from_bytes(path.read_bytes())
            except CheckpointError:
                continue
        return None

    def steps(self) -> tuple[int, ...]:
        return tuple(
            int(p.stem.split("_", 1)[1]) for p in self._files()
        )


# ---------------------------------------------------------------------------
# Manager + runtime-facing config
# ---------------------------------------------------------------------------
@dataclass(slots=True)
class ResilienceConfig:
    """How a runtime participates in checkpoint/restart.

    ``checkpoint_interval`` is in coarse steps; ``storage_bandwidth_mbps``
    prices checkpoint writes and recovery reads (the cost of evacuating a
    dead rank's boxes is a read from stable storage, not a transfer from
    the dead NIC).  ``charge_io_time`` lets benchmarks measure pure
    serialization throughput without perturbing the simulated clock.
    """

    store: CheckpointStore = field(default_factory=MemoryCheckpointStore)
    checkpoint_interval: int = 5
    storage_bandwidth_mbps: float = 400.0
    charge_io_time: bool = True

    def __post_init__(self) -> None:
        if self.checkpoint_interval < 1:
            raise CheckpointError(
                "checkpoint_interval must be >= 1, got "
                f"{self.checkpoint_interval}"
            )
        if self.storage_bandwidth_mbps <= 0:
            raise CheckpointError(
                "storage_bandwidth_mbps must be > 0, got "
                f"{self.storage_bandwidth_mbps}"
            )


class CheckpointManager:
    """Builds, stores and restores snapshots for a running hierarchy."""

    def __init__(self, config: ResilienceConfig, tracer=None):
        from repro.telemetry.spans import NULL_TRACER

        self.config = config
        self.store = config.store
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.num_saves = 0
        self.num_restores = 0

    # -- pricing -------------------------------------------------------
    def io_seconds(self, nbytes: int) -> float:
        """Sim seconds to stream ``nbytes`` to/from checkpoint storage."""
        return nbytes / (self.config.storage_bandwidth_mbps * 125_000.0)

    # -- save ----------------------------------------------------------
    def due(self, step: int) -> bool:
        """Whether a save is due after completing coarse step ``step``."""
        return step > 0 and step % self.config.checkpoint_interval == 0

    def save(
        self,
        hierarchy: GridHierarchy,
        assignment: Sequence[tuple[Box, int]] | None,
        clock_time: float,
    ) -> Checkpoint:
        state = {
            "hierarchy": hierarchy_state(hierarchy),
            "assignment": _encode_assignment(assignment),
            "clock_time": float(clock_time),
        }
        payload = pickle.dumps(state, protocol=4)
        ckpt = Checkpoint(
            version=CHECKPOINT_FORMAT_VERSION,
            step=hierarchy.step_count,
            sim_time=hierarchy.time,
            clock_time=float(clock_time),
            payload=payload,
            checksum=checksum_bytes(payload),
        )
        self.store.save(ckpt)
        self.num_saves += 1
        self.tracer.event(
            "checkpoint.save",
            step=ckpt.step,
            nbytes=ckpt.nbytes,
            io_seconds=self.io_seconds(ckpt.nbytes),
        )
        return ckpt

    # -- restore -------------------------------------------------------
    def restore_latest(
        self, hierarchy: GridHierarchy
    ) -> tuple[Checkpoint, list[tuple[Box, int]] | None]:
        """Verify and load the newest snapshot into ``hierarchy``.

        Returns the checkpoint and the decoded partition assignment that
        was active at save time (``None`` if none was recorded).
        """
        ckpt = self.store.latest()
        if ckpt is None:
            raise CheckpointError(
                "restore requested but the checkpoint store is empty"
            )
        state = ckpt.state()  # verifies version + checksum
        restore_hierarchy_state(hierarchy, state["hierarchy"])
        self.num_restores += 1
        self.tracer.event(
            "recovery.restore",
            step=ckpt.step,
            nbytes=ckpt.nbytes,
            io_seconds=self.io_seconds(ckpt.nbytes),
        )
        return ckpt, _decode_assignment(state["assignment"])
