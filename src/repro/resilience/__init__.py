"""Resilience subsystem: fault injection, checkpoint/restart, probe policy.

The paper's premise is that cluster capacity is *dynamic*; in production the
dynamics include outright failure.  This package makes the runtime survive
them while preserving the reproduction's core property -- the solution stays
bitwise identical to the undisturbed sequential run, because recovery
restores a checkpoint and replays forward over a repartitioned (smaller)
rank set, and partition invariance guarantees the numerics do not care who
owns which box.

Pieces
------
- :mod:`repro.resilience.chaos` -- a seeded, declarative fault plan plus an
  injector that schedules crashes / recoveries / sensor blackouts / link
  degradations on the simulated clock (replayable bit-for-bit).
- :mod:`repro.resilience.checkpoint` -- versioned, checksummed snapshots of
  the grid hierarchy + partition assignment + clock state, with
  integrity-verified restore.
- :mod:`repro.resilience.policy` -- exponential-backoff probe retries and a
  consecutive-failure escalation ladder (healthy -> stale -> suspect ->
  evicted) replacing the monitor's silent stale carry-forward.
"""

from repro.resilience.chaos import FaultEvent, FaultInjector, FaultPlan
from repro.resilience.checkpoint import (
    Checkpoint,
    CheckpointManager,
    CheckpointStore,
    DirectoryCheckpointStore,
    MemoryCheckpointStore,
    ResilienceConfig,
)
from repro.resilience.policy import (
    BackoffPolicy,
    EscalationPolicy,
    NodeProbeStatus,
    ProbeRetryPolicy,
)

__all__ = [
    "BackoffPolicy",
    "Checkpoint",
    "CheckpointManager",
    "CheckpointStore",
    "DirectoryCheckpointStore",
    "EscalationPolicy",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "MemoryCheckpointStore",
    "NodeProbeStatus",
    "ProbeRetryPolicy",
    "ResilienceConfig",
]
