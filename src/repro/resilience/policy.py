"""Probe retry/backoff and failure-escalation policy.

The stock :class:`~repro.monitor.service.ResourceMonitor` silently carries a
node's last reading forward when a probe fails.  That is the right *first*
response -- NWS sensors drop packets all the time -- but carried forward
indefinitely it turns a dead node into a permanently "healthy looking" one.
This module supplies the two missing mechanisms:

- :class:`BackoffPolicy`: exponential backoff with deterministic jitter for
  in-sweep probe retries.  Jitter is derived from :func:`repro.util.hashing.
  mix64` of ``(node, attempt, seed)`` rather than a stateful RNG, so retry
  timing replays bit-for-bit no matter how many other components draw
  random numbers in between.
- :class:`EscalationPolicy` / :class:`ProbeRetryPolicy`: a consecutive-
  failure ladder ``healthy -> stale -> suspect -> evicted``.  Stale keeps
  the carry-forward, suspect flags the node to the health monitor, evicted
  removes it from the live set the capacity calculator normalizes over.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.util.errors import ResilienceError
from repro.util.hashing import mix64

__all__ = [
    "BackoffPolicy",
    "EscalationPolicy",
    "NodeProbeStatus",
    "ProbeRetryPolicy",
]


class NodeProbeStatus(enum.Enum):
    """Where a node sits on the escalation ladder."""

    HEALTHY = "healthy"
    STALE = "stale"
    SUSPECT = "suspect"
    EVICTED = "evicted"


@dataclass(frozen=True, slots=True)
class BackoffPolicy:
    """Exponential backoff with deterministic jitter.

    ``delay(node, attempt)`` for attempt 1, 2, ... is
    ``min(base_s * factor**(attempt-1), max_s)`` scaled by a jitter factor
    in ``[1 - jitter, 1 + jitter]`` drawn from a hash of
    ``(node, attempt, seed)`` -- no RNG state is consumed, so chaos replays
    are unaffected by retry count.
    """

    base_s: float = 0.05
    factor: float = 2.0
    max_s: float = 2.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base_s <= 0:
            raise ResilienceError(f"base_s must be > 0, got {self.base_s}")
        if self.factor < 1.0:
            raise ResilienceError(f"factor must be >= 1, got {self.factor}")
        if self.max_s < self.base_s:
            raise ResilienceError(
                f"max_s ({self.max_s}) must be >= base_s ({self.base_s})"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ResilienceError(
                f"jitter must be in [0, 1), got {self.jitter}"
            )

    def delay(self, node: int, attempt: int) -> float:
        """Seconds to wait before retry ``attempt`` (1-based) on ``node``."""
        if attempt < 1:
            raise ResilienceError(f"attempt must be >= 1, got {attempt}")
        raw = min(self.base_s * self.factor ** (attempt - 1), self.max_s)
        if self.jitter == 0.0:
            return raw
        h = mix64(mix64(self.seed ^ (node << 20)) ^ attempt)
        unit = h / float(1 << 64)  # uniform in [0, 1)
        return raw * (1.0 - self.jitter + 2.0 * self.jitter * unit)


@dataclass(frozen=True, slots=True)
class EscalationPolicy:
    """Consecutive-failure thresholds for the escalation ladder.

    A node that has failed its probe sweep ``k`` consecutive times is
    *stale* once ``k >= stale_after``, *suspect* once ``k >= suspect_after``
    and *evicted* once ``k >= evict_after``.  One successful sweep resets
    the count (and the status) to healthy -- eviction is a monitoring
    verdict, not a permanent ban.
    """

    stale_after: int = 1
    suspect_after: int = 3
    evict_after: int = 6

    def __post_init__(self) -> None:
        if not 1 <= self.stale_after <= self.suspect_after <= self.evict_after:
            raise ResilienceError(
                "escalation thresholds must satisfy 1 <= stale_after <= "
                f"suspect_after <= evict_after, got {self.stale_after}, "
                f"{self.suspect_after}, {self.evict_after}"
            )

    def classify(self, consecutive_failures: int) -> NodeProbeStatus:
        if consecutive_failures >= self.evict_after:
            return NodeProbeStatus.EVICTED
        if consecutive_failures >= self.suspect_after:
            return NodeProbeStatus.SUSPECT
        if consecutive_failures >= self.stale_after:
            return NodeProbeStatus.STALE
        return NodeProbeStatus.HEALTHY


@dataclass(frozen=True, slots=True)
class ProbeRetryPolicy:
    """What the monitor does about failed probes: retry, then escalate.

    ``max_retries`` is the number of *additional* in-sweep attempts after
    the first failure; each retry waits :meth:`BackoffPolicy.delay`, which
    the monitor charges to the sweep's overhead.
    """

    backoff: BackoffPolicy = BackoffPolicy()
    escalation: EscalationPolicy = EscalationPolicy()
    max_retries: int = 2

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ResilienceError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
