"""The adaptive runtime: sense -> capacity -> partition -> execute loop.

This package is the analogue of the paper's "system sensitive runtime
management architecture" (section 5, fig. 5): it wires the resource monitor,
the capacity calculator, a partitioner, the HDDA and the cluster simulator
into the iteration loop of a SAMR application, and accounts simulated
execution time with :mod:`repro.runtime.timemodel`.

- :mod:`repro.runtime.engine` -- :class:`SamrRuntime`, the loop driver, and
  :class:`RunResult`, the full execution record;
- :mod:`repro.runtime.timemodel` -- per-iteration makespan model
  (compute + ghost exchange + sync + migration + sensing overhead);
- :mod:`repro.runtime.experiment` -- pre-configured builders for every
  experiment in the paper's evaluation section;
- :mod:`repro.runtime.reporting` -- row/series printers matching the
  paper's tables and figures.
"""

from repro.runtime.engine import RunResult, RuntimeConfig, SamrRuntime
from repro.runtime.pipeline import (
    RepartitionOutcome,
    RepartitionPipeline,
    SenseOutcome,
)
from repro.runtime.timemodel import IterationCost, TimeModel

__all__ = [
    "SamrRuntime",
    "RuntimeConfig",
    "RunResult",
    "RepartitionPipeline",
    "RepartitionOutcome",
    "SenseOutcome",
    "TimeModel",
    "IterationCost",
]
