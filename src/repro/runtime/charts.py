"""Plain-text chart rendering for the figure benchmarks.

The paper's evaluation is figures; the benchmark harness reports the same
series as ASCII line charts so a terminal run of
``pytest benchmarks/ --benchmark-only -s`` visually mirrors the paper.
No plotting dependency needed (offline environment).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

__all__ = ["line_chart", "bar_chart"]

_MARKERS = "ox+*#@%&"


def line_chart(
    series: Mapping[str, Sequence[float]],
    x: Sequence[float] | None = None,
    width: int = 64,
    height: int = 16,
    title: str = "",
    y_label: str = "",
    x_label: str = "",
) -> str:
    """Render one or more y-series over a shared x-axis as ASCII art.

    Each series gets a marker character; the legend maps markers to names.
    """
    if not series:
        raise ValueError("no series to plot")
    lengths = {len(v) for v in series.values()}
    if len(lengths) != 1:
        raise ValueError(f"series lengths differ: {sorted(lengths)}")
    n = lengths.pop()
    if n == 0:
        raise ValueError("empty series")
    if x is None:
        x = list(range(n))
    if len(x) != n:
        raise ValueError("x length does not match series length")

    xs = np.asarray(x, dtype=float)
    all_y = np.concatenate([np.asarray(v, dtype=float) for v in series.values()])
    y_min, y_max = float(all_y.min()), float(all_y.max())
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = float(xs.min()), float(xs.max())
    if x_max == x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for (name, ys), marker in zip(series.items(), _MARKERS):
        for xv, yv in zip(xs, np.asarray(ys, dtype=float)):
            col = int(round((xv - x_min) / (x_max - x_min) * (width - 1)))
            row = int(
                round((yv - y_min) / (y_max - y_min) * (height - 1))
            )
            grid[height - 1 - row][col] = marker

    lines: list[str] = []
    if title:
        lines.append(title)
    top_lab = f"{y_max:.4g}"
    bot_lab = f"{y_min:.4g}"
    lab_w = max(len(top_lab), len(bot_lab), len(y_label))
    for i, row in enumerate(grid):
        if i == 0:
            label = top_lab
        elif i == height - 1:
            label = bot_lab
        elif i == height // 2 and y_label:
            label = y_label
        else:
            label = ""
        lines.append(f"{label:>{lab_w}} |" + "".join(row))
    lines.append(" " * lab_w + " +" + "-" * width)
    x_axis = f"{x_min:.4g}" + " " * max(
        1, width - len(f"{x_min:.4g}") - len(f"{x_max:.4g}")
    ) + f"{x_max:.4g}"
    lines.append(" " * lab_w + "  " + x_axis)
    if x_label:
        lines.append(" " * lab_w + "  " + x_label.center(width))
    legend = "   ".join(
        f"{marker}={name}" for (name, _), marker in zip(series.items(), _MARKERS)
    )
    lines.append(" " * lab_w + "  " + legend)
    return "\n".join(lines)


def bar_chart(
    values: Mapping[str, float],
    width: int = 48,
    title: str = "",
    unit: str = "",
) -> str:
    """Horizontal bar chart of labelled values."""
    if not values:
        raise ValueError("no values to plot")
    vmax = max(values.values())
    if vmax <= 0:
        vmax = 1.0
    lab_w = max(len(k) for k in values)
    lines = [title] if title else []
    for name, v in values.items():
        bar = "#" * max(1, int(round(v / vmax * width)))
        lines.append(f"{name:>{lab_w}} |{bar} {v:.4g}{unit}")
    return "\n".join(lines)
