"""Execution-time model for one SAMR iteration on the simulated cluster.

A bulk-synchronous iteration costs, per rank *k*:

    compute_k = W_k * seconds_per_work_unit / effective_speed_k
    comm_k    = serialized ghost-exchange transfer time on k's NIC

and the iteration's wall time is ``max_k(compute_k + comm_k)`` plus a
(log P) synchronization term -- the slowest node gates everyone, which is
precisely why capacity-blind equal partitions lose on loaded clusters.

Regrid-time costs are separate: data migration (the HDDA's plan priced as a
transfer makespan) and, at sensing points, the monitor's probe overhead
(~0.5 s per node, section 6.1.4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.cluster import Cluster
from repro.comm.simmpi import SimCommunicator
from repro.util.errors import SimulationError

__all__ = ["IterationCost", "TimeModel"]

#: Default calibration: seconds one reference node (cpu_speed=1, fully
#: available) needs per work unit (one cell-update of the RM3D kernel,
#: including its share of flux evaluations).  Chosen so a 4-processor
#: RM3D iteration costs ~2 s, matching the paper's iteration-to-probe
#: cost ratio (one NWS probe of the 4-node cluster ~ one iteration).
DEFAULT_SECONDS_PER_WORK_UNIT = 5e-6

#: Payload of the per-iteration reduction (dt computation): one float per
#: field plus headroom.
SYNC_BYTES = 64.0


@dataclass(frozen=True, slots=True)
class IterationCost:
    """Breakdown of one iteration's simulated cost."""

    compute: np.ndarray  # per-rank seconds
    comm: np.ndarray  # per-rank seconds
    sync: float  # collective seconds
    total: float  # iteration wall time (max over ranks + sync)


class TimeModel:
    """Prices iterations, migrations and sensing against a cluster."""

    def __init__(
        self,
        cluster: Cluster,
        seconds_per_work_unit: float = DEFAULT_SECONDS_PER_WORK_UNIT,
    ):
        if seconds_per_work_unit <= 0:
            raise SimulationError(
                f"seconds_per_work_unit must be > 0, got {seconds_per_work_unit}"
            )
        self.cluster = cluster
        self.spwu = seconds_per_work_unit
        self.comm = SimCommunicator(cluster)

    def iteration_cost(
        self,
        loads: np.ndarray,
        pair_bytes: dict[tuple[int, int], float],
        t: float | None = None,
    ) -> IterationCost:
        """Cost of one coarse iteration under bulk synchronization.

        ``loads`` is per-rank work W_k in work units; ``pair_bytes`` is the
        ghost-exchange volume map from
        :func:`repro.amr.ghost.plan_exchange_volumes`.
        """
        loads = np.asarray(loads, dtype=float)
        n = self.cluster.num_nodes
        if len(loads) != n:
            raise SimulationError(f"{len(loads)} loads for {n} nodes")
        if (loads < 0).any():
            raise SimulationError("negative per-rank load")
        speeds = self.cluster.effective_speeds(t)
        if ((loads > 0) & (speeds <= 0)).any():
            raise SimulationError(
                "a rank with work has zero effective speed (down node "
                "still owns boxes?)"
            )
        compute = np.divide(
            loads * self.spwu,
            speeds,
            out=np.zeros_like(loads),
            where=speeds > 0,
        )
        comm = self.comm.exchange_time(pair_bytes, t, phase="ghost-exchange")
        sync = self.comm.allreduce_time(SYNC_BYTES, t, op="sync")
        total = float((compute + comm).max() + sync)
        return IterationCost(compute=compute, comm=comm, sync=sync, total=total)

    def iteration_cost_per_level(
        self,
        level_loads: np.ndarray,
        subcycles: np.ndarray,
        pair_bytes: dict[tuple[int, int], float],
        t: float | None = None,
    ) -> IterationCost:
        """Cost of one coarse iteration under *per-level* synchronization.

        Berger-Oliger subcycling imposes a barrier after every substep of
        every level: all of level l's patches must finish substep s before
        the inter-grid operations that feed substep s+1.  Under this
        stricter model a rank with no work on some level idles through
        that level's phases -- which is exactly what level-based
        decompositions (:class:`~repro.partition.levelwise.LevelPartitioner`)
        exist to prevent.

        Parameters
        ----------
        level_loads:
            ``(num_levels, num_ranks)`` work per level per rank, for one
            coarse step (i.e. already including subcycling repetition).
        subcycles:
            Substeps each level takes per coarse step (``factor**level``).
        pair_bytes:
            Ghost-exchange volumes for the whole iteration.
        """
        level_loads = np.asarray(level_loads, dtype=float)
        n = self.cluster.num_nodes
        if level_loads.ndim != 2 or level_loads.shape[1] != n:
            raise SimulationError(
                f"level_loads must be (num_levels, {n}), got "
                f"{level_loads.shape}"
            )
        if (level_loads < 0).any():
            raise SimulationError("negative per-level load")
        subcycles = np.asarray(subcycles, dtype=float)
        if len(subcycles) != level_loads.shape[0] or (subcycles < 1).any():
            raise SimulationError("invalid subcycle counts")
        speeds = self.cluster.effective_speeds(t)
        if ((level_loads.sum(axis=0) > 0) & (speeds <= 0)).any():
            raise SimulationError(
                "a rank with work has zero effective speed (down node "
                "still owns boxes?)"
            )
        # Each level contributes `subcycles` barrier phases; a phase lasts
        # as long as the busiest rank's share of that level's substep work.
        phase_time = np.zeros(n)
        total_phases = 0.0
        for lvl in range(level_loads.shape[0]):
            per_substep = level_loads[lvl] / subcycles[lvl]
            phase = np.divide(
                per_substep * self.spwu,
                speeds,
                out=np.zeros(n),
                where=speeds > 0,
            )
            phase_time += phase  # per-rank accumulated compute
            total_phases += float(phase.max()) * subcycles[lvl]
        comm = self.comm.exchange_time(pair_bytes, t, phase="ghost-exchange")
        sync = self.comm.allreduce_time(SYNC_BYTES, t, op="sync") * float(
            subcycles.sum()
        )
        total = float(total_phases + comm.max() + sync)
        return IterationCost(
            compute=phase_time, comm=comm, sync=sync, total=total
        )

    def migration_cost(
        self, bytes_moved: dict[tuple[int, int], int], t: float | None = None
    ) -> float:
        """Wall seconds of a post-repartition data migration."""
        return self.comm.migration_time(bytes_moved, t)
