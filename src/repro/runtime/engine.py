"""The adaptive system-sensitive runtime loop.

:class:`SamrRuntime` executes a SAMR workload trace on a simulated cluster:

- every ``regrid_interval`` iterations the hierarchy regrids (the next epoch
  of the workload trace) and the partitioner redistributes the new
  bounding-box list using the *most recently sensed* relative capacities;
  the HDDA turns the new assignment into a migration plan whose transfer
  time is charged to the clock;
- every ``sensing_interval`` iterations the resource monitor probes the
  cluster (charging ~0.5 s per node) and the capacity calculator refreshes
  the relative capacities -- ``sensing_interval=0`` reproduces the paper's
  "sense only once before the start" configuration;
- every iteration costs compute + ghost-exchange + sync time from the
  :class:`~repro.runtime.timemodel.TimeModel`, advancing the cluster clock,
  which in turn advances the synthetic load dynamics.

The complete history lands in :class:`RunResult`, from which every table
and figure of the paper's evaluation section is derived.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.cluster import Cluster
from repro.hdda import HDDA, HierarchicalIndexSpace
from repro.kernels.workloads import SyntheticWorkload
from repro.learn.policy import NULL_LEARNER
from repro.monitor.service import ResourceMonitor
from repro.partition.base import Partitioner
from repro.partition.capacity import CapacityCalculator
from repro.partition.workmodel import WorkModel
from repro.resilience.checkpoint import ResilienceConfig
from repro.runtime.pipeline import RepartitionPipeline
from repro.runtime.timemodel import TimeModel
from repro.telemetry.spans import NullTracer, Tracer, get_active_tracer
from repro.util.errors import SimulationError

__all__ = ["RuntimeConfig", "RegridRecord", "RunResult", "SamrRuntime"]


@dataclass(frozen=True, slots=True)
class RuntimeConfig:
    """Loop parameters.

    Attributes
    ----------
    iterations:
        Coarse iterations to execute.
    regrid_interval:
        Iterations between regrids (paper experiments: 5).
    sensing_interval:
        Iterations between monitor probes; 0 = probe once at start only.
    ghost_width:
        Stencil radius used for exchange-volume planning.
    bytes_per_cell:
        Ghost/migration payload per cell (5 float64 fields for RM3D = 40).
    use_forecast:
        Use the monitor's forecaster output instead of raw probes.
    repartition_on_sense:
        Redistribute immediately after each sensing ("distributes the
        workload based on these capacities", section 6.1.4) -- the
        data-migration churn this causes is the overhead side of the
        sensing-frequency trade-off.
    sync_mode:
        ``"bulk"`` (default) -- one barrier per coarse iteration, the
        favourable model for composite decompositions; ``"per_level"`` --
        a barrier after every substep of every level (strict Berger-Oliger
        subcycling), under which per-level balance matters and
        :class:`~repro.partition.levelwise.LevelPartitioner` earns its keep.
    adaptive_sensing_threshold:
        When set (e.g. 0.25), replaces the fixed cadence answer to
        Table III's tuning problem: the runtime predicts each iteration's
        duration from the capacities it last sensed, and re-senses only
        when the *measured* duration deviates relatively by more than this
        threshold -- load changes trigger sensing, quiet stretches don't.
        ``sensing_interval`` then acts as an optional floor between forced
        checks (0 = purely deviation-driven).
    """

    iterations: int = 40
    regrid_interval: int = 5
    sensing_interval: int = 0
    ghost_width: int = 1
    bytes_per_cell: float = 40.0
    use_forecast: bool = False
    repartition_on_sense: bool = True
    sync_mode: str = "bulk"
    adaptive_sensing_threshold: float | None = None

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise SimulationError(f"iterations must be >= 1, got {self.iterations}")
        if self.regrid_interval < 1:
            raise SimulationError(
                f"regrid_interval must be >= 1, got {self.regrid_interval}"
            )
        if self.sensing_interval < 0:
            raise SimulationError(
                f"sensing_interval must be >= 0, got {self.sensing_interval}"
            )
        if self.sync_mode not in ("bulk", "per_level"):
            raise SimulationError(
                f"sync_mode must be 'bulk' or 'per_level', got "
                f"{self.sync_mode!r}"
            )
        if (
            self.adaptive_sensing_threshold is not None
            and self.adaptive_sensing_threshold <= 0
        ):
            raise SimulationError(
                "adaptive_sensing_threshold must be positive, got "
                f"{self.adaptive_sensing_threshold}"
            )


@dataclass(slots=True)
class RegridRecord:
    """What happened at one regrid/partition point."""

    iteration: int
    regrid_number: int
    trigger: str  # "regrid" or "sense"
    capacities: np.ndarray
    loads: np.ndarray  # realized W_k (work units)
    targets: np.ndarray  # ideal L_k = C_k * L
    imbalance: np.ndarray  # I_k (%)
    num_splits: int
    migration_bytes: int
    migration_seconds: float


@dataclass(slots=True)
class RunResult:
    """Complete record of one runtime execution."""

    total_seconds: float = 0.0
    compute_seconds: float = 0.0
    comm_seconds: float = 0.0
    migration_seconds: float = 0.0
    sensing_seconds: float = 0.0
    iterations: int = 0
    num_sensings: int = 0
    regrids: list[RegridRecord] = field(default_factory=list)
    iteration_times: list[float] = field(default_factory=list)
    capacity_history: list[tuple[float, np.ndarray]] = field(default_factory=list)

    @property
    def mean_imbalance(self) -> float:
        if not self.regrids:
            return 0.0
        return float(np.mean([r.imbalance.mean() for r in self.regrids]))

    @property
    def max_imbalance(self) -> float:
        if not self.regrids:
            return 0.0
        return float(max(r.imbalance.max() for r in self.regrids))

    def loads_by_regrid(self) -> np.ndarray:
        """(num_regrids, num_ranks) matrix of realized loads."""
        return np.array([r.loads for r in self.regrids])


class SamrRuntime:
    """Drives one workload trace to completion on a simulated cluster."""

    def __init__(
        self,
        workload: SyntheticWorkload,
        cluster: Cluster,
        partitioner: Partitioner,
        monitor: ResourceMonitor | None = None,
        capacity_calculator: CapacityCalculator | None = None,
        config: RuntimeConfig | None = None,
        time_model: TimeModel | None = None,
        tracer: Tracer | NullTracer | None = None,
        resilience: ResilienceConfig | None = None,
        learn=None,
    ):
        self.workload = workload
        self.cluster = cluster
        self.partitioner = partitioner
        self.monitor = monitor or ResourceMonitor(cluster)
        self.capacity = capacity_calculator or CapacityCalculator()
        self.config = config or RuntimeConfig()
        self.time_model = time_model or TimeModel(cluster)
        # Telemetry is injectable and defaults to the ambient tracer
        # (the shared no-op unless `repro.telemetry.activate` installed
        # one); an enabled tracer is propagated to every collaborator so
        # partition/probe/cluster spans land in the same trace.
        self.tracer = tracer if tracer is not None else get_active_tracer()
        if self.tracer.enabled:
            self.partitioner.set_tracer(self.tracer)
            self.monitor.tracer = self.tracer
        space = HierarchicalIndexSpace(
            workload.domain,
            max_levels=max(
                max(bl.levels) + 1 for bl in workload.box_lists
            ),
            refine_factor=workload.refine_factor,
        )
        self.hdda = HDDA(
            space,
            num_procs=cluster.num_nodes,
            bytes_per_cell=int(self.config.bytes_per_cell),
        )
        # Learned policies are injectable with an inert default, exactly
        # like the tracer: NULL_LEARNER has enabled=False, every decision
        # point guards on it, and the unlearned loop stays byte-identical.
        self.learn = learn if learn is not None else NULL_LEARNER
        # All sense/partition/migrate/plan mechanics live in the shared
        # pipeline; the runtime keeps only loop control and bookkeeping.
        self.pipeline = RepartitionPipeline(
            cluster=cluster,
            partitioner=partitioner,
            monitor=self.monitor,
            capacity=self.capacity,
            time_model=self.time_model,
            tracer=self.tracer,
            work_model=WorkModel(workload.refine_factor),
            bytes_per_cell=self.config.bytes_per_cell,
            ghost_width=self.config.ghost_width,
            refine_factor=workload.refine_factor,
            learner=self.learn,
        )
        self._level_loads = np.zeros((1, cluster.num_nodes))
        self._subcycles = np.ones(1)
        # Failure-aware repartitioning (opt-in).  A trace run has no grid
        # data to checkpoint -- recovery here means re-sensing and
        # repartitioning the current epoch over the surviving rank set,
        # with orphaned boxes priced as checkpoint-storage reads.
        self.resilience = resilience
        self._partition_live: frozenset[int] | None = None

    # ------------------------------------------------------------------
    @property
    def _prev_assignment(self) -> list[tuple]:
        return self.pipeline.prev_assignment

    def _work_of(self, box) -> float:
        return self.pipeline.work_model.work(box)

    def _sense(self, result: RunResult) -> np.ndarray:
        """Probe the cluster, charge overhead, return fresh capacities."""
        out = self.pipeline.sense(
            span_attrs={"iteration": result.iterations},
            use_forecast=self.config.use_forecast,
            node_gauges=True,
        )
        result.sensing_seconds += out.overhead_seconds
        result.num_sensings += 1
        result.capacity_history.append(
            (self.cluster.clock.now, out.capacities)
        )
        return out.capacities

    def _repartition(
        self,
        epoch_idx: int,
        capacities: np.ndarray,
        result: RunResult,
        trigger: str = "regrid",
    ) -> tuple[np.ndarray, dict]:
        """Partition the epoch's boxes, migrate data, record everything.

        Returns (per-rank loads, pair ghost-exchange volumes).

        With resilience enabled and a degraded trusted set, the partition
        runs through the pipeline's recovery stage instead: compacted over
        the live ranks so no box can land on a dead one, with orphaned
        cells priced as checkpoint-storage reads.
        """
        boxes = self.workload.epoch(min(epoch_idx, self.workload.num_regrids - 1))
        degraded = self.resilience is not None and (
            not bool(self.monitor.trusted_mask().all())
            or self.pipeline.needs_recovery()
        )
        if degraded:
            trigger = "recovery"
            out = self.pipeline.recover(
                boxes,
                capacities,
                storage_bandwidth_mbps=self.resilience.storage_bandwidth_mbps,
                on_apply=self.hdda.apply_assignment,
            )
        else:
            out = self.pipeline.repartition(
                boxes,
                capacities,
                migrate_attrs={"trigger": trigger},
                on_apply=self.hdda.apply_assignment,
                stats=True,
            )
        if self.resilience is not None:
            self._partition_live = self._trusted_live()
        result.migration_seconds += out.migration_seconds
        # Per-level load matrix for the per-level synchronization model.
        levels, self._level_loads = out.level_loads(self.cluster.num_nodes)
        self._subcycles = np.array(
            [self.workload.refine_factor**lvl for lvl in levels] or [1]
        )
        record = RegridRecord(
            iteration=result.iterations,
            regrid_number=len(result.regrids),
            trigger=trigger,
            capacities=capacities.copy(),
            loads=out.loads,
            targets=out.targets,
            imbalance=out.imbalance,
            num_splits=out.part.num_splits,
            migration_bytes=out.migration_bytes,
            migration_seconds=out.migration_seconds,
        )
        result.regrids.append(record)
        volumes = self.pipeline.exchange_plan(out.part.boxes(), out.owners)
        return out.loads, volumes

    # ------------------------------------------------------------------
    def _trusted_live(self) -> frozenset[int]:
        """Ranks that are up and not evicted by the escalation policy."""
        return frozenset(
            int(i) for i in np.flatnonzero(self.monitor.trusted_mask())
        )

    def _recovery_due(self) -> bool:
        """Whether the trusted rank set no longer matches the partition.

        Covers both directions: a box owner died (evacuate + shrink) and a
        previously dead/evicted node rejoined (grow back over it).
        """
        if self.resilience is None:
            return False
        return (
            self.pipeline.needs_recovery()
            or self._trusted_live() != self._partition_live
        )

    def _price(self, loads: np.ndarray, volumes: dict):
        if self.config.sync_mode == "per_level":
            return self.time_model.iteration_cost_per_level(
                self._level_loads, self._subcycles, volumes
            )
        return self.time_model.iteration_cost(loads, volumes)

    def _health_attrs(self, result: RunResult) -> dict:
        """Health signals for the iteration span (see the pipeline)."""
        imbalance = result.regrids[-1].imbalance if result.regrids else None
        return self.pipeline.health_attrs(len(result.regrids), imbalance)

    def run(self) -> RunResult:
        """Execute the configured number of iterations; returns the record."""
        tracer = self.tracer
        if tracer.enabled:
            tracer.begin_run(
                f"SamrRuntime[{self.partitioner.name}]",
                sim_clock=lambda: self.cluster.clock.now,
            )
            self.cluster.attach_tracer(tracer)
        with tracer.span(
            "run",
            partitioner=self.partitioner.name,
            num_nodes=self.cluster.num_nodes,
            iterations=self.config.iterations,
        ):
            result = self._run_loop()
        if tracer.enabled:
            metrics = tracer.metrics
            metrics.counter("total_sim_seconds").inc(result.total_seconds)
            metrics.counter("iterations").inc(result.iterations)
        return result

    def _learned_capacities(self, capacities: np.ndarray) -> np.ndarray:
        """Swap in the transient forecast when that behavior is active."""
        learn = self.learn
        if learn.enabled and learn.config.transient_forecast:
            return learn.effective_capacities(
                capacities, self.cluster.clock.now
            )
        return capacities

    def _run_loop(self) -> RunResult:
        cfg = self.config
        tracer = self.tracer
        learn = self.learn
        learned_sensing = learn.enabled and learn.config.adaptive_sensing
        result = RunResult()
        capacities = self._sense(result)  # sense once before the start
        capacities = self._learned_capacities(capacities)
        loads, volumes = self._repartition(0, capacities, result)
        epoch = 0
        baseline: float | None = None  # adaptive-sensing reference time
        adaptive_pending = False
        last_sense_iter = 0
        for it in range(cfg.iterations):
            if self._recovery_due():
                # A fault (or recovery) landed between iterations: re-sense
                # and repartition over the surviving trusted set before
                # pricing anything against dead hardware.
                capacities = self._sense(result)
                loads, volumes = self._repartition(epoch, capacities, result)
                baseline = None
                adaptive_pending = False
                last_sense_iter = it
            sensed = False
            due_fixed = (
                cfg.adaptive_sensing_threshold is None
                and not learned_sensing
                and it > 0
                and cfg.sensing_interval
                and it % cfg.sensing_interval == 0
            )
            due_adaptive = adaptive_pending and (
                cfg.sensing_interval == 0
                or it - last_sense_iter >= cfg.sensing_interval
            )
            # Learned cadence: the drift model replaces the fixed f.
            due_learned = learned_sensing and learn.sense_due(
                it, last_sense_iter
            )
            if due_fixed or due_adaptive or due_learned:
                capacities = self._sense(result)
                capacities = self._learned_capacities(capacities)
                sensed = True
                adaptive_pending = False
                last_sense_iter = it
            if it > 0 and it % cfg.regrid_interval == 0:
                epoch += 1
                loads, volumes = self._repartition(epoch, capacities, result)
                baseline = None  # new epoch: iteration times shift anyway
            elif sensed and cfg.repartition_on_sense:
                repartition = True
                if learn.enabled and learn.config.payoff_gate:
                    # Price the sense-triggered redistribution: predicted
                    # imbalance cost over the rest of the epoch vs the
                    # modeled migration bill.  Cold models always pay
                    # (the paper's behavior).
                    horizon = cfg.regrid_interval - (
                        it % cfg.regrid_interval
                    )
                    decision = learn.repartition_decision(
                        loads,
                        capacities,
                        horizon,
                        iteration=it,
                        t=self.cluster.clock.now,
                    )
                    repartition = decision.repartition
                if repartition:
                    loads, volumes = self._repartition(
                        epoch, capacities, result, trigger="sense"
                    )
                    baseline = None
            iteration_start = self.cluster.clock.now
            try:
                cost = self._price(loads, volumes)
            except SimulationError:
                # A fault fired during this iteration's sense/migrate clock
                # advance, after capacities were computed: a dead rank still
                # owns work.  Abort the step, recover, re-price once.
                if not self._recovery_due():
                    raise
                tracer.event("fault.step_aborted", iteration=it)
                capacities = self._sense(result)
                loads, volumes = self._repartition(epoch, capacities, result)
                baseline = None
                adaptive_pending = False
                last_sense_iter = it
                iteration_start = self.cluster.clock.now
                cost = self._price(loads, volumes)
            self.cluster.clock.advance(cost.total)
            if tracer.enabled:
                self.pipeline.emit_iteration_spans(
                    iteration_start,
                    cost,
                    {"iteration": it, **self._health_attrs(result)},
                )
                tracer.metrics.histogram("iteration_seconds").observe(
                    cost.total
                )
            result.iteration_times.append(cost.total)
            result.compute_seconds += float(cost.compute.max())
            result.comm_seconds += float(cost.comm.max() + cost.sync)
            result.iterations += 1
            if learn.enabled:
                learn.observe_iteration(
                    it, self.cluster.clock.now, loads, capacities, cost
                )
            theta = cfg.adaptive_sensing_threshold
            if theta is not None:
                # Deviation from the post-repartition reference signals a
                # cluster load change worth re-sensing for.
                if baseline is None:
                    baseline = cost.total
                elif abs(cost.total - baseline) / baseline > theta:
                    adaptive_pending = True
        result.total_seconds = self.cluster.clock.now
        return result
