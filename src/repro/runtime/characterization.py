"""Partitioner characterization metrics.

The paper's group published a companion study ("Characterization of
domain-based partitioners for parallel SAMR applications", Steensland,
Chandra, Thune & Parashar, 2000 -- reference [17]) defining the axes on
which SAMR partitioners should be compared.  This module computes that
metric panel for any partitioner over any workload trace:

- **load imbalance** against capacity-proportional targets (paper eq. 2);
- **communication volume** of one ghost exchange under the assignment;
- **data migration** between consecutive epochs (repartitioning cost);
- **fragmentation**: boxes produced per input box (splitting pressure);
- **partitioning time**: wall-clock cost of the partitioning call itself.

The characterization benchmark prints one row per partitioner, giving the
multi-objective picture a single execution-time number hides.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.amr.ghost import plan_exchange_volumes
from repro.kernels.workloads import SyntheticWorkload
from repro.partition.base import Partitioner, default_work
from repro.partition.metrics import load_imbalance, redistribution_volume

__all__ = ["CharacterizationRow", "characterize"]


@dataclass(frozen=True, slots=True)
class CharacterizationRow:
    """Aggregated metrics for one partitioner over a trace."""

    partitioner: str
    mean_imbalance_pct: float
    max_imbalance_pct: float
    mean_comm_kb: float
    mean_migration_kb: float
    fragmentation: float  # output boxes / input boxes
    mean_partition_ms: float


def characterize(
    partitioner: Partitioner,
    workload: SyntheticWorkload,
    capacities: Sequence[float],
    bytes_per_cell: float = 40.0,
    ghost_width: int = 1,
) -> CharacterizationRow:
    """Run ``partitioner`` over every epoch of ``workload`` and aggregate."""
    caps = np.asarray(capacities, dtype=float)
    caps = caps / caps.sum()

    def work_of(box):
        return default_work(box, workload.refine_factor)

    imbalances: list[float] = []
    comm: list[float] = []
    migration: list[float] = []
    frag: list[float] = []
    times: list[float] = []
    prev_assignment: list = []
    for epoch in range(workload.num_regrids):
        boxes = workload.epoch(epoch)
        t0 = time.perf_counter()
        result = partitioner.partition(boxes, caps, work_of)
        times.append((time.perf_counter() - t0) * 1e3)
        total = result.loads(work_of).sum()
        imb = load_imbalance(result, work_of, targets=caps * total)
        imbalances.append(float(imb.max()))
        vols = plan_exchange_volumes(
            result.boxes(),
            result.owners(),
            ghost_width=ghost_width,
            bytes_per_cell=bytes_per_cell,
            refine_factor=workload.refine_factor,
        )
        comm.append(sum(vols.values()) / 1e3)
        moved = redistribution_volume(
            prev_assignment, result.assignment, bytes_per_cell
        )
        if epoch > 0:
            migration.append(sum(moved.values()) / 1e3)
        frag.append(len(result.assignment) / max(len(boxes), 1))
        prev_assignment = result.assignment
    return CharacterizationRow(
        partitioner=partitioner.name,
        mean_imbalance_pct=float(np.mean(imbalances)),
        max_imbalance_pct=float(np.max(imbalances)),
        mean_comm_kb=float(np.mean(comm)),
        mean_migration_kb=float(np.mean(migration)) if migration else 0.0,
        fragmentation=float(np.mean(frag)),
        mean_partition_ms=float(np.mean(times)),
    )
