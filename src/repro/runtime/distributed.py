"""Distributed execution of a *real* AMR application on the simulated cluster.

Where :class:`~repro.runtime.engine.SamrRuntime` replays a pre-computed
workload trace, :class:`DistributedAmrRun` drives an actual
kernel + hierarchy through the Berger-Oliger integrator while the
partitioner owns the decomposition:

- at every regrid the partitioner distributes the fresh bounding-box list;
  its (possibly split) output boxes become the hierarchy's *patch layout*
  (:meth:`GridHierarchy.repatch_level`), exactly as GrACE turns partitioner
  output into the distribution of the HDDA;
- each simulated rank owns the patches assigned to it; per-iteration
  compute time is the rank's owned work over its current effective speed,
  ghost-exchange volumes are derived from the actual patch geometry, and
  migration is priced from the cell-owner diff -- all charged to the
  cluster clock;
- the numerics still execute in-process (this is a simulation), which
  yields a strong correctness property this module's tests rely on:
  **partition invariance** -- ghost filling reads the composite grid, so
  the solution after N steps is bitwise independent of the patch layout
  and rank count.  A "distributed" run must equal the sequential one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.amr.hierarchy import GridHierarchy
from repro.amr.integrator import BergerOligerIntegrator
from repro.amr.regrid import RegridParams
from repro.cluster.cluster import Cluster
from repro.learn.policy import NULL_LEARNER
from repro.monitor.service import ResourceMonitor
from repro.partition.base import Partitioner
from repro.partition.capacity import CapacityCalculator
from repro.partition.workmodel import WorkModel
from repro.resilience.checkpoint import CheckpointManager, ResilienceConfig
from repro.runtime.pipeline import RepartitionPipeline
from repro.runtime.timemodel import TimeModel
from repro.telemetry.spans import NullTracer, Tracer, get_active_tracer
from repro.util.errors import SimulationError
from repro.util.geometry import Box

__all__ = ["DistributedRunConfig", "DistributedRunResult", "DistributedAmrRun"]


@dataclass(frozen=True, slots=True)
class DistributedRunConfig:
    """Parameters of a distributed AMR execution."""

    steps: int = 20
    regrid_interval: int = 5
    sensing_interval: int = 0  # 0 = sense once before the start
    cfl: float = 0.4
    bytes_per_field_cell: float = 8.0

    def __post_init__(self) -> None:
        if self.steps < 1:
            raise SimulationError(f"steps must be >= 1, got {self.steps}")
        if self.regrid_interval < 0:
            raise SimulationError("negative regrid_interval")
        if self.sensing_interval < 0:
            raise SimulationError("negative sensing_interval")


@dataclass(slots=True)
class DistributedRunResult:
    """Execution record of a distributed AMR run."""

    total_seconds: float = 0.0
    sensing_seconds: float = 0.0
    migration_seconds: float = 0.0
    steps: int = 0
    num_regrids: int = 0
    num_sensings: int = 0
    loads_history: list[np.ndarray] = field(default_factory=list)
    capacities_history: list[np.ndarray] = field(default_factory=list)
    step_seconds: list[float] = field(default_factory=list)
    #: resilience accounting (all zero on undisturbed runs)
    num_recoveries: int = 0
    num_restores: int = 0
    num_checkpoints: int = 0
    replayed_steps: int = 0
    recovery_seconds: float = 0.0
    checkpoint_seconds: float = 0.0


class DistributedAmrRun:
    """Executes a hierarchy + kernel distributed over a simulated cluster.

    Parameters
    ----------
    hierarchy:
        A (not yet initialized) :class:`GridHierarchy`.
    cluster:
        The simulated cluster providing ranks and their dynamics.
    partitioner:
        Distribution policy invoked at setup and at every regrid.
    regrid_params:
        Flagging/clustering knobs passed to the integrator.
    """

    def __init__(
        self,
        hierarchy: GridHierarchy,
        cluster: Cluster,
        partitioner: Partitioner,
        monitor: ResourceMonitor | None = None,
        capacity_calculator: CapacityCalculator | None = None,
        config: DistributedRunConfig | None = None,
        regrid_params: RegridParams | None = None,
        time_model: TimeModel | None = None,
        tracer: Tracer | NullTracer | None = None,
        resilience: ResilienceConfig | None = None,
        learn=None,
    ):
        self.hierarchy = hierarchy
        self.cluster = cluster
        self.partitioner = partitioner
        self.monitor = monitor or ResourceMonitor(cluster)
        self.capacity = capacity_calculator or CapacityCalculator()
        self.config = config or DistributedRunConfig()
        self.time_model = time_model or TimeModel(cluster)
        self.tracer = tracer if tracer is not None else get_active_tracer()
        if self.tracer.enabled:
            self.partitioner.set_tracer(self.tracer)
            self.monitor.tracer = self.tracer
        self.integrator = BergerOligerIntegrator(
            hierarchy,
            cfl=self.config.cfl,
            regrid_interval=self.config.regrid_interval,
            regrid_params=regrid_params,
            on_regrid=self._on_regrid,
        )
        # Learned policies behind the tracer's inert-default pattern.
        self.learn = learn if learn is not None else NULL_LEARNER
        # Shared sense/partition/migrate/plan mechanics (see the engine).
        self.pipeline = RepartitionPipeline(
            cluster=cluster,
            partitioner=partitioner,
            monitor=self.monitor,
            capacity=self.capacity,
            time_model=self.time_model,
            tracer=self.tracer,
            work_model=WorkModel(hierarchy.refine_factor),
            bytes_per_cell=self.bytes_per_cell,
            ghost_width=hierarchy.kernel.ghost_width,
            refine_factor=hierarchy.refine_factor,
            learner=self.learn,
        )
        self._capacities: np.ndarray | None = None
        self._result: DistributedRunResult | None = None
        # Checkpoint/restart + failure-aware repartitioning (opt-in; the
        # default path is byte-identical to the resilience-free runtime).
        self.resilience = resilience
        self.ckpt_manager = (
            CheckpointManager(resilience, tracer=self.tracer)
            if resilience is not None
            else None
        )
        self._partition_live: frozenset[int] | None = None

    # ------------------------------------------------------------------
    def _work_of(self, box: Box) -> float:
        return self.pipeline.work_model.work(box)

    @property
    def bytes_per_cell(self) -> float:
        return self.config.bytes_per_field_cell * self.hierarchy.kernel.num_fields

    @property
    def _assignment(self) -> list[tuple[Box, int]]:
        return self.pipeline.prev_assignment

    def owned_loads(self) -> np.ndarray:
        """Per-rank work of the current assignment (cached work vector)."""
        out = self.pipeline.last
        if out is None or not out.part.num_assigned():
            return np.zeros(self.cluster.num_nodes)
        return out.part.loads()

    def owner_map(self) -> dict[Box, int]:
        return dict(self._assignment)

    # ------------------------------------------------------------------
    def _sense(self) -> None:
        out = self.pipeline.sense()
        self._capacities = out.capacities
        result = self._result
        if result is not None:
            result.sensing_seconds += out.overhead_seconds
            result.num_sensings += 1
            result.capacities_history.append(out.capacities.copy())

    def _repatch(self, part) -> None:
        # Turn the partitioner's (possibly split) boxes into patch
        # layout before migration is priced.  Level grouping runs on the
        # result's level column; ``at_level`` preserves assignment order
        # within each level, as the old per-pair bucketing did.
        boxes = part.boxes()
        for level in boxes.levels:
            self.hierarchy.repatch_level(level, boxes.at_level(level))

    def _on_regrid(self, hierarchy: GridHierarchy) -> None:
        """Partition the fresh hierarchy and make its output the patching."""
        if self._capacities is None:
            self._sense()
        boxes = hierarchy.box_list()
        if self.resilience is not None and not self.monitor.trusted_mask().all():
            # Regrid while part of the cluster is out: partition over the
            # survivors only (the recovery stage handles remapping).
            out = self.pipeline.recover(
                boxes,
                self._capacities,
                before_migrate=self._repatch,
                storage_bandwidth_mbps=self.resilience.storage_bandwidth_mbps,
            )
        else:
            out = self.pipeline.repartition(
                boxes, self._capacities, before_migrate=self._repatch
            )
        self._partition_live = self._trusted_live()
        result = self._result
        if result is not None:
            result.migration_seconds += out.migration_seconds
            result.num_regrids += 1
            result.loads_history.append(out.loads)

    # ------------------------------------------------------------------
    def run(self) -> DistributedRunResult:
        """Set up and execute ``config.steps`` coarse steps."""
        tracer = self.tracer
        if tracer.enabled:
            tracer.begin_run(
                f"DistributedAmrRun[{self.partitioner.name}]",
                sim_clock=lambda: self.cluster.clock.now,
            )
            self.cluster.attach_tracer(tracer)
        self._result = DistributedRunResult()
        result = self._result
        with tracer.span(
            "run",
            partitioner=self.partitioner.name,
            num_nodes=self.cluster.num_nodes,
            steps=self.config.steps,
        ):
            self._sense()
            self.integrator.setup()
            if self.ckpt_manager is not None:
                # Baseline snapshot: a crash before the first cadence save
                # restores to the initial state and replays everything.
                self._checkpoint()
            cfg = self.config
            learn = self.learn
            learned_sensing = learn.enabled and learn.config.adaptive_sensing
            last_sense_step = self.hierarchy.step_count
            target = self.hierarchy.step_count + cfg.steps
            while self.hierarchy.step_count < target:
                step = self.hierarchy.step_count
                if self.ckpt_manager is not None:
                    recovered = self._maybe_recover()
                    if recovered:
                        step = self.hierarchy.step_count
                due_fixed = (
                    not learned_sensing
                    and cfg.sensing_interval
                    and step > 0
                    and step % cfg.sensing_interval == 0
                )
                due_learned = learned_sensing and learn.sense_due(
                    step, last_sense_step
                )
                if due_fixed or due_learned:
                    self._sense()
                    last_sense_step = step
                    if learn.enabled and learn.config.transient_forecast:
                        self._capacities = learn.effective_capacities(
                            self._capacities, self.cluster.clock.now
                        )
                    if learn.enabled and learn.config.payoff_gate:
                        # Mid-epoch redistribution is new capability the
                        # gate unlocks: between regrids the paper's loop
                        # rides out any imbalance, but when the priced
                        # payoff beats the migration bill we repartition
                        # the *current* patch layout early.
                        horizon = (
                            cfg.regrid_interval
                            - step % cfg.regrid_interval
                            if cfg.regrid_interval
                            else cfg.sensing_interval or 1
                        )
                        decision = learn.repartition_decision(
                            self.owned_loads(),
                            self._capacities,
                            horizon,
                            iteration=step,
                            t=self.cluster.clock.now,
                        )
                        if decision.repartition:
                            out = self.pipeline.repartition(
                                self.hierarchy.box_list(),
                                self._capacities,
                                migrate_attrs={"trigger": "sense"},
                                before_migrate=self._repatch,
                            )
                            if result is not None:
                                result.migration_seconds += (
                                    out.migration_seconds
                                )
                                result.loads_history.append(out.loads)
                step_start = self.cluster.clock.now
                try:
                    with tracer.span("advance", step=step):
                        self.integrator.advance()
                    loads = self.owned_loads()
                    current = self.pipeline.last
                    volumes = (
                        self.pipeline.exchange_plan(
                            current.part.boxes(), current.owners
                        )
                        if current is not None
                        else {}
                    )
                    cost = self.time_model.iteration_cost(loads, volumes)
                except SimulationError:
                    # A fault landed mid-step (dead endpoint in a planned
                    # transfer, dead rank still owning work): abort the
                    # step; the recovery stage restores and replays it.
                    if self.ckpt_manager is None or not (
                        self.pipeline.needs_recovery()
                        or self._trusted_live() != self._partition_live
                    ):
                        raise
                    tracer.event("fault.step_aborted", step=step)
                    continue
                self.cluster.clock.advance(cost.total)
                if tracer.enabled:
                    self._emit_step_spans(step, step_start, cost)
                    tracer.metrics.histogram("step_seconds").observe(
                        cost.total
                    )
                result.step_seconds.append(cost.total)
                result.steps += 1
                if learn.enabled and self._capacities is not None:
                    learn.observe_iteration(
                        step,
                        self.cluster.clock.now,
                        loads,
                        self._capacities,
                        cost,
                    )
                if (
                    self.ckpt_manager is not None
                    and self.ckpt_manager.due(self.hierarchy.step_count)
                ):
                    self._checkpoint()
        result.total_seconds = self.cluster.clock.now
        result.replayed_steps = max(0, result.steps - self.config.steps)
        if tracer.enabled:
            tracer.metrics.counter("total_sim_seconds").inc(
                result.total_seconds
            )
        return result

    # ------------------------------------------------------------------
    # Resilience: checkpointing and the recovery stage
    # ------------------------------------------------------------------
    def _trusted_live(self) -> frozenset[int]:
        return frozenset(
            int(k) for k in np.flatnonzero(self.monitor.trusted_mask())
        )

    def _checkpoint(self) -> None:
        """Snapshot hierarchy + assignment, charging storage I/O time."""
        manager = self.ckpt_manager
        ckpt = manager.save(
            self.hierarchy,
            self.pipeline.prev_assignment,
            self.cluster.clock.now,
        )
        io_s = manager.io_seconds(ckpt.nbytes)
        if self.resilience.charge_io_time:
            self.cluster.clock.advance(io_s)
        result = self._result
        if result is not None:
            result.num_checkpoints += 1
            result.checkpoint_seconds += io_s

    def _maybe_recover(self) -> bool:
        """Run the recovery stage when the trusted rank set changed.

        Two triggers: a box-owning rank is down (data loss -- restore the
        latest checkpoint and replay), or the trusted live set differs
        from the one the current partition was computed over (a node was
        evicted, or a recovered node should be grown onto again).
        """
        data_lost = self.pipeline.needs_recovery()
        if not data_lost and self._trusted_live() == self._partition_live:
            return False
        tracer = self.tracer
        manager = self.ckpt_manager
        result = self._result
        dead_owners = self.pipeline.dead_owner_ranks()
        t0 = self.cluster.clock.now
        with tracer.span(
            "recovery",
            dead_ranks=list(dead_owners),
            data_lost=data_lost,
        ):
            if data_lost:
                ckpt, saved_assignment = manager.restore_latest(
                    self.hierarchy
                )
                if self.resilience.charge_io_time:
                    self.cluster.clock.advance(
                        manager.io_seconds(ckpt.nbytes)
                    )
                if saved_assignment is not None:
                    # Price evacuation against the layout that was live at
                    # save time, not the doomed post-crash layout.
                    self.pipeline.prev_assignment = saved_assignment
                if result is not None:
                    result.num_restores += 1
            self._sense()  # fresh capacities over the surviving rank set
            out = self.pipeline.recover(
                self.hierarchy.box_list(),
                self._capacities,
                before_migrate=self._repatch,
                storage_bandwidth_mbps=self.resilience.storage_bandwidth_mbps,
            )
            self._partition_live = self._trusted_live()
            if result is not None:
                result.num_recoveries += 1
                result.migration_seconds += out.migration_seconds
                result.loads_history.append(out.loads)
                result.recovery_seconds += self.cluster.clock.now - t0
        tracer.event(
            "recovery.complete",
            resumed_step=self.hierarchy.step_count,
            num_live=len(self._partition_live),
            recovery_seconds=self.cluster.clock.now - t0,
        )
        return True

    def _health_attrs(self) -> dict:
        """Health signals for one step's iteration span (see the pipeline)."""
        result = self._result
        epoch = result.num_regrids if result is not None else 0
        imbalance = None
        if self._assignment and self._capacities is not None:
            loads = self.owned_loads()
            targets = self._capacities * loads.sum()
            ok = targets > 0
            if ok.any():
                imbalance = (
                    np.abs(loads[ok] - targets[ok]) / targets[ok] * 100.0
                )
        return self.pipeline.health_attrs(epoch, imbalance)

    def _emit_step_spans(self, step, start_sim, cost) -> None:
        """Per-rank simulated-time tracks for one priced coarse step."""
        self.pipeline.emit_iteration_spans(
            start_sim, cost, {"step": step, **self._health_attrs()}
        )
