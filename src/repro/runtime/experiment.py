"""Pre-configured builders for every experiment in the paper's evaluation.

Each function assembles workload + cluster + runtime for one table or
figure and returns plain data (dicts / arrays) that the benchmark harness
prints as the paper's rows and series.  Experiments are deterministic given
their seed; multi-seed variants average out placement luck the same way the
paper averaged repeated runs.

Experiment index (see DESIGN.md section 4):

========  ====================================================
Fig. 7    :func:`execution_time_comparison`
Table I   :func:`execution_time_comparison` (percentage column)
Fig. 8/9  :func:`load_assignment_tracking`
Fig. 10   :func:`imbalance_comparison`
Fig. 11   :func:`dynamic_allocation_trace`
Table II  :func:`dynamic_vs_static_sensing`
Table III :func:`sensing_frequency_sweep`
Fig 12-15 :func:`sensing_frequency_traces`
========  ====================================================
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.cluster import Cluster
from repro.kernels.workloads import SyntheticWorkload, paper_rm3d_trace
from repro.monitor.service import ResourceMonitor
from repro.partition import (
    ACEComposite,
    ACEHeterogeneous,
    GraphPartitioner,
    GreedyLPT,
    SFCHybrid,
)
from repro.partition.base import Partitioner
from repro.partition.capacity import CapacityCalculator, CapacityWeights
from repro.runtime.engine import RunResult, RuntimeConfig, SamrRuntime
from repro.util.errors import ExperimentError

__all__ = [
    "PAPER_CAPACITIES",
    "CAMPAIGN_SCENARIOS",
    "make_partitioner",
    "run_once",
    "campaign_cell",
    "execution_time_comparison",
    "load_assignment_tracking",
    "imbalance_comparison",
    "dynamic_allocation_trace",
    "dynamic_vs_static_sensing",
    "sensing_frequency_sweep",
    "sensing_frequency_traces",
    "chaos_experiment",
]

#: The fixed relative capacities of the paper's 4-node scenario (~16/19/31/34 %).
PAPER_CAPACITIES = np.array([0.16, 0.19, 0.31, 0.34])


def make_partitioner(name: str) -> Partitioner:
    """Partitioner registry used by benchmarks and examples."""
    table = {
        "heterogeneous": ACEHeterogeneous,
        "ACEHeterogeneous": ACEHeterogeneous,
        "composite": ACEComposite,
        "ACEComposite": ACEComposite,
        "hybrid": SFCHybrid,
        "SFCHybrid": SFCHybrid,
        "greedy": GreedyLPT,
        "GreedyLPT": GreedyLPT,
        "graph": GraphPartitioner,
        "GraphPartitioner": GraphPartitioner,
    }
    try:
        return table[name]()
    except KeyError:
        raise ExperimentError(
            f"unknown partitioner {name!r}; choose from {sorted(table)}"
        ) from None


def run_once(
    workload: SyntheticWorkload,
    cluster: Cluster,
    partitioner: Partitioner,
    config: RuntimeConfig,
    weights: CapacityWeights | None = None,
) -> RunResult:
    """One runtime execution (thin convenience wrapper)."""
    runtime = SamrRuntime(
        workload,
        cluster,
        partitioner,
        monitor=ResourceMonitor(cluster),
        capacity_calculator=CapacityCalculator(weights),
        config=config,
    )
    return runtime.run()


# ---------------------------------------------------------------------------
# Campaign cells: the per-cell execution entrypoint
# ---------------------------------------------------------------------------
def _scenario_paper_four_node(seed: int, config: dict) -> Cluster:
    return Cluster.paper_four_node()


def _scenario_linux_static(seed: int, config: dict) -> Cluster:
    return Cluster.paper_linux_cluster(
        int(config.get("procs", 4)),
        loaded_fraction=float(config.get("loaded_fraction", 0.5)),
        seed=seed,
    )


def _scenario_linux_dynamic(seed: int, config: dict) -> Cluster:
    return Cluster.paper_linux_cluster(
        int(config.get("procs", 4)),
        loaded_fraction=float(config.get("loaded_fraction", 0.5)),
        seed=seed,
        dynamic=True,
        horizon_s=float(config.get("horizon_s", 600.0)),
    )


def _scenario_homogeneous(seed: int, config: dict) -> Cluster:
    return Cluster.homogeneous(int(config.get("procs", 4)))


def _scenario_heterogeneous_hw(seed: int, config: dict) -> Cluster:
    return Cluster.heterogeneous(int(config.get("procs", 4)), seed=seed)


#: Scenario registry for campaign grids: name -> cluster builder.  Every
#: builder is a pure function of (seed, config), so a cell re-executed on
#: any worker -- or any resume -- reproduces the identical simulation.
CAMPAIGN_SCENARIOS = {
    "paper-four-node": _scenario_paper_four_node,
    "linux-static": _scenario_linux_static,
    "linux-dynamic": _scenario_linux_dynamic,
    "homogeneous": _scenario_homogeneous,
    "heterogeneous-hw": _scenario_heterogeneous_hw,
}


def campaign_cell(
    scenario: str,
    partitioner: str,
    seed: int,
    config: dict | None = None,
    tracer=None,
) -> dict:
    """Execute one campaign grid cell; return its deterministic record.

    This is the unit of work :class:`repro.campaign.CampaignRunner` ships
    to worker processes.  The returned dict contains **simulated-clock
    quantities only** (run metrics, health summary, per-phase sim-second
    breakdown) -- never wall-clock readings, worker ids or timestamps --
    so the same cell produces byte-identical records whether it ran
    inline, on any of N pool workers, or in a resumed campaign.  Wall
    timings belong to the orchestrator's own telemetry, not the record.

    ``tracer`` injects the tracer the cell runs under (the campaign
    worker passes :func:`repro.telemetry.live.deterministic_tracer` so
    the per-cell artifact bundle it persists afterwards is also a pure
    function of the spec).  The default is such a deterministic tracer,
    not a wall-clock one, for the same reason.
    """
    from repro.telemetry.analysis import HealthMonitor
    from repro.telemetry.live import deterministic_tracer
    from repro.telemetry.spans import activate

    config = dict(config or {})
    try:
        build_cluster = CAMPAIGN_SCENARIOS[scenario]
    except KeyError:
        raise ExperimentError(
            f"unknown campaign scenario {scenario!r}; choose from "
            f"{sorted(CAMPAIGN_SCENARIOS)}"
        ) from None
    iterations = int(config.get("iterations", 20))
    num_regrids = int(config.get("num_regrids", iterations // 5 + 2))
    workload = paper_rm3d_trace(num_regrids=num_regrids)
    cluster = build_cluster(seed, config)
    cfg = RuntimeConfig(
        iterations=iterations,
        regrid_interval=int(config.get("regrid_interval", 5)),
        sensing_interval=int(config.get("sensing_interval", 10)),
    )
    if tracer is None:
        tracer = deterministic_tracer()
    health = HealthMonitor().attach(tracer)
    with activate(tracer):
        result = run_once(workload, cluster, make_partitioner(partitioner), cfg)
    health.finish()

    phases: dict[str, dict] = {}
    for span in tracer.spans:
        agg = phases.setdefault(span.name, {"count": 0, "sim_seconds": 0.0})
        agg["count"] += 1
        agg["sim_seconds"] += span.sim_duration
    summary = health.summary()
    return {
        "scenario": scenario,
        "partitioner": partitioner,
        "seed": int(seed),
        "config": config,
        "metrics": {
            "total_seconds": result.total_seconds,
            "compute_seconds": result.compute_seconds,
            "comm_seconds": result.comm_seconds,
            "migration_seconds": result.migration_seconds,
            "sensing_seconds": result.sensing_seconds,
            "iterations": result.iterations,
            "num_sensings": result.num_sensings,
            "num_regrids": len(result.regrids),
            "mean_imbalance_pct": result.mean_imbalance,
            "max_imbalance_pct": result.max_imbalance,
        },
        "health": {
            "num_snapshots": summary["num_snapshots"],
            "num_events": summary["num_events"],
            "events_by_severity": summary["events_by_severity"],
            "worst_imbalance_pct": summary["worst_imbalance_pct"],
            "imbalance_bound_pct": summary["imbalance_bound_pct"],
        },
        "phases": phases,
    }


# ---------------------------------------------------------------------------
# Fig. 7 / Table I
# ---------------------------------------------------------------------------
def execution_time_comparison(
    processor_counts: Sequence[int] = (4, 8, 16, 32),
    iterations: int = 40,
    seeds: Sequence[int] = (7, 19, 31),
    num_regrids: int = 8,
) -> dict:
    """Total execution time, system-sensitive vs default (Fig. 7), and the
    percentage improvement (Table I), averaged over seeds."""
    workload = paper_rm3d_trace(num_regrids=num_regrids)
    rows = []
    for p in processor_counts:
        het_times, comp_times = [], []
        for seed in seeds:
            for times, part in (
                (het_times, ACEHeterogeneous()),
                (comp_times, ACEComposite()),
            ):
                cluster = Cluster.paper_linux_cluster(p, seed=seed)
                cfg = RuntimeConfig(iterations=iterations, regrid_interval=5)
                times.append(
                    run_once(workload, cluster, part, cfg).total_seconds
                )
        het = float(np.mean(het_times))
        comp = float(np.mean(comp_times))
        rows.append(
            {
                "procs": p,
                "system_sensitive_s": het,
                "default_s": comp,
                "improvement_pct": (comp - het) / comp * 100.0,
            }
        )
    return {"rows": rows, "seeds": list(seeds), "iterations": iterations}


# ---------------------------------------------------------------------------
# Figs. 8, 9, 10: fixed capacities 16/19/31/34, regrid every 5 iterations
# ---------------------------------------------------------------------------
def _paper_four_node_run(
    partitioner: Partitioner, num_regrids: int = 8
) -> RunResult:
    workload = paper_rm3d_trace(num_regrids=num_regrids)
    cluster = Cluster.paper_four_node()
    cfg = RuntimeConfig(
        iterations=num_regrids * 5,
        regrid_interval=5,
        sensing_interval=0,  # capacities computed once before the start
    )
    return run_once(workload, cluster, partitioner, cfg)


def load_assignment_tracking(
    partitioner_name: str = "heterogeneous", num_regrids: int = 8
) -> dict:
    """Per-processor work assignment vs regrid number (Figs. 8 and 9).

    With the default partitioner the four series coincide (equal work);
    with ACEHeterogeneous they order by relative capacity 16/19/31/34 %.
    """
    result = _paper_four_node_run(make_partitioner(partitioner_name), num_regrids)
    loads = result.loads_by_regrid()
    return {
        "partitioner": partitioner_name,
        "capacities": result.regrids[0].capacities.tolist(),
        "regrid_numbers": list(range(1, len(result.regrids) + 1)),
        "loads": loads,  # shape (num_regrids, 4)
    }


def imbalance_comparison(num_regrids: int = 6) -> dict:
    """Percentage load imbalance per regrid for both schemes (Fig. 10),
    both judged against capacity-proportional targets."""
    out: dict = {"regrid_numbers": list(range(1, num_regrids + 1))}
    for key, name in (
        ("system_sensitive", "heterogeneous"),
        ("default", "composite"),
    ):
        result = _paper_four_node_run(make_partitioner(name), num_regrids)
        out[key] = np.array([r.imbalance.max() for r in result.regrids])
    return out


# ---------------------------------------------------------------------------
# Fig. 11 and sensing-frequency experiments (dynamic cluster)
# ---------------------------------------------------------------------------
def _calibrated_horizon(
    num_procs: int,
    workload: SyntheticWorkload,
    iterations: int,
    seed: int,
    fraction: float = 0.8,
) -> float:
    """Load-script horizon matched to the expected run length.

    The paper hand-tuned its load scripts to span the application run; we
    reproduce that by calibrating on a sense-once execution and scaling.
    """
    cluster = Cluster.paper_linux_cluster(
        num_procs, seed=seed, dynamic=True, horizon_s=1e9
    )
    cfg = RuntimeConfig(iterations=iterations, regrid_interval=5)
    base = run_once(workload, cluster, ACEHeterogeneous(), cfg).total_seconds
    return fraction * base


def dynamic_allocation_trace(
    num_sensings: int = 2,
    iterations: int = 30,
    seed: int = 5,
) -> dict:
    """Fig. 11: 4 nodes, loads on a subset, NWS queried once before the
    start plus ``num_sensings`` times during the run; work allocation and
    relative capacities tracked at every repartition point."""
    workload = paper_rm3d_trace(num_regrids=iterations // 5 + 2)
    interval = max(1, iterations // (num_sensings + 1))
    horizon = _calibrated_horizon(4, workload, iterations, seed)
    cluster = Cluster.paper_linux_cluster(
        4, seed=seed, dynamic=True, horizon_s=horizon
    )
    cfg = RuntimeConfig(
        iterations=iterations, regrid_interval=5, sensing_interval=interval
    )
    result = run_once(workload, cluster, ACEHeterogeneous(), cfg)
    return {
        "iterations": [r.iteration for r in result.regrids],
        "capacities": [r.capacities for r in result.regrids],
        "loads": [r.loads for r in result.regrids],
        "triggers": [r.trigger for r in result.regrids],
        "total_seconds": result.total_seconds,
    }


def dynamic_vs_static_sensing(
    processor_counts: Sequence[int] = (2, 4, 6, 8),
    iterations: int = 160,
    sensing_interval: int = 20,
    seeds: Sequence[int] = (5, 11, 23),
) -> dict:
    """Table II: execution time with dynamic sensing vs sensing only once,
    under identical load dynamics, averaged over seeds."""
    workload = paper_rm3d_trace(num_regrids=iterations // 5 + 2)
    rows = []
    for p in processor_counts:
        dyn_times, once_times = [], []
        for seed in seeds:
            horizon = _calibrated_horizon(p, workload, iterations, seed)
            for times, interval in (
                (dyn_times, sensing_interval),
                (once_times, 0),
            ):
                cluster = Cluster.paper_linux_cluster(
                    p, seed=seed, dynamic=True, horizon_s=horizon
                )
                cfg = RuntimeConfig(
                    iterations=iterations,
                    regrid_interval=5,
                    sensing_interval=interval,
                )
                times.append(
                    run_once(
                        workload, cluster, ACEHeterogeneous(), cfg
                    ).total_seconds
                )
        rows.append(
            {
                "procs": p,
                "dynamic_s": float(np.mean(dyn_times)),
                "once_s": float(np.mean(once_times)),
            }
        )
    return {"rows": rows, "seeds": list(seeds)}


def sensing_frequency_sweep(
    frequencies: Sequence[int] = (10, 20, 30, 40),
    iterations: int = 160,
    num_procs: int = 4,
    seeds: Sequence[int] = (5, 11, 23),
) -> dict:
    """Table III: execution time vs sensing frequency on 4 processors."""
    workload = paper_rm3d_trace(num_regrids=iterations // 5 + 2)
    rows = []
    horizons = {
        seed: _calibrated_horizon(num_procs, workload, iterations, seed)
        for seed in seeds
    }
    for freq in frequencies:
        times = []
        for seed in seeds:
            cluster = Cluster.paper_linux_cluster(
                num_procs, seed=seed, dynamic=True, horizon_s=horizons[seed]
            )
            cfg = RuntimeConfig(
                iterations=iterations, regrid_interval=5, sensing_interval=freq
            )
            times.append(
                run_once(workload, cluster, ACEHeterogeneous(), cfg).total_seconds
            )
        rows.append({"frequency": freq, "seconds": float(np.mean(times))})
    return {"rows": rows, "seeds": list(seeds), "procs": num_procs}


def sensing_frequency_traces(
    frequencies: Sequence[int] = (10, 20, 30, 40),
    iterations: int = 120,
    seed: int = 5,
) -> dict:
    """Figs. 12-15: per-processor allocation traces for each frequency."""
    workload = paper_rm3d_trace(num_regrids=iterations // 5 + 2)
    horizon = _calibrated_horizon(4, workload, iterations, seed)
    traces = {}
    for freq in frequencies:
        cluster = Cluster.paper_linux_cluster(
            4, seed=seed, dynamic=True, horizon_s=horizon
        )
        cfg = RuntimeConfig(
            iterations=iterations, regrid_interval=5, sensing_interval=freq
        )
        result = run_once(workload, cluster, ACEHeterogeneous(), cfg)
        traces[freq] = {
            "iterations": [r.iteration for r in result.regrids],
            "capacities": [r.capacities for r in result.regrids],
            "loads": [r.loads for r in result.regrids],
            "total_seconds": result.total_seconds,
        }
    return {"frequencies": list(frequencies), "traces": traces}


# ----------------------------------------------------------------------
# Chaos: checkpoint/restart + failure-aware repartitioning, end to end
# ----------------------------------------------------------------------
def _chaos_hierarchy():
    from repro.amr.hierarchy import GridHierarchy
    from repro.kernels.advection import AdvectionKernel
    from repro.util.geometry import Box

    kernel = AdvectionKernel(
        velocity=(1.0, 0.5), pulse_center=(8.0, 8.0), pulse_width=2.0
    )
    return GridHierarchy(Box((0, 0), (32, 32)), kernel, max_levels=3)


def chaos_experiment(
    num_nodes: int = 8,
    steps: int = 12,
    kill: int = 2,
    seed: int = 7,
    checkpoint_interval: int = 3,
    regrid_interval: int = 3,
    outage_window: tuple[float, float] = (0.3, 0.7),
    tracer=None,
) -> dict:
    """Kill ``kill`` of ``num_nodes`` mid-run, recover them, and verify.

    Three executions of the same advection problem:

    1. a *sequential* integrator run -- the reference solution;
    2. a fault-free distributed run -- calibrates total runtime so the
       outage can be placed mid-flight (at ``outage_window`` fractions);
    3. the *chaos* run: checkpoints every ``checkpoint_interval`` steps,
       a seeded :class:`~repro.resilience.chaos.FaultPlan` crashes the
       victim nodes and later brings them back, and the recovery stage
       restores + repartitions over the survivors.

    Solution integrity is the partition-invariance property under fire:
    the chaos run's final solution must be **bitwise identical** to the
    sequential one.  Returns a stats dict (the ``repro chaos`` report).
    """
    from repro.amr.ghost import GhostFiller
    from repro.amr.integrator import BergerOligerIntegrator
    from repro.resilience import FaultInjector, FaultPlan, ResilienceConfig
    from repro.runtime.distributed import (
        DistributedAmrRun,
        DistributedRunConfig,
    )
    from repro.telemetry.analysis import fault_summary

    if not 0 < kill < num_nodes:
        raise ExperimentError(
            f"kill must leave at least one survivor: kill={kill}, "
            f"nodes={num_nodes}"
        )
    # 1. Sequential reference.
    h_ref = _chaos_hierarchy()
    integ = BergerOligerIntegrator(h_ref, regrid_interval=regrid_interval)
    integ.setup()
    for _ in range(steps):
        integ.advance()
    reference = GhostFiller(h_ref).fetch(h_ref.domain, 0)

    cfg = DistributedRunConfig(steps=steps, regrid_interval=regrid_interval)
    # 2. Fault-free calibration run (also the no-overhead baseline).  The
    # initial sense + migration dominates short runs, so the outage is
    # placed inside the *stepping* phase -- its start is read off the
    # first "advance" span of an instrumented baseline.
    from repro.telemetry.spans import Tracer as _Tracer

    probe_tracer = _Tracer()
    h_base = _chaos_hierarchy()
    baseline = DistributedAmrRun(
        h_base,
        Cluster.homogeneous(num_nodes),
        ACEHeterogeneous(),
        config=cfg,
        tracer=probe_tracer,
    ).run()
    step_starts = [
        s.start_sim for s in probe_tracer.spans if s.name == "advance"
    ]
    t_begin = min(step_starts) if step_starts else 0.0
    window = baseline.total_seconds - t_begin

    # 3. The chaos run.
    victims = list(range(kill))
    at = t_begin + outage_window[0] * window
    duration = (outage_window[1] - outage_window[0]) * window
    plan = FaultPlan.node_outage(victims, at=at, duration=duration, seed=seed)
    h_chaos = _chaos_hierarchy()
    cluster = Cluster.homogeneous(num_nodes)
    run = DistributedAmrRun(
        h_chaos,
        cluster,
        ACEHeterogeneous(),
        config=cfg,
        tracer=tracer,
        resilience=ResilienceConfig(checkpoint_interval=checkpoint_interval),
    )
    injector = FaultInjector(cluster, monitor=run.monitor, tracer=tracer)
    injector.arm(plan)
    result = run.run()
    solution = GhostFiller(h_chaos).fetch(h_chaos.domain, 0)

    identical = bool(np.array_equal(solution, reference))
    faults = fault_summary(tracer.events if tracer is not None else ())
    return {
        "num_nodes": num_nodes,
        "steps": steps,
        "killed_nodes": victims,
        "outage_at_s": at,
        "outage_duration_s": duration,
        "plan_events": len(plan.events),
        "applied_events": [
            {"time": t, "kind": kind, "node": node}
            for t, kind, node in injector.applied
        ],
        "baseline_seconds": baseline.total_seconds,
        "chaos_seconds": result.total_seconds,
        "overhead_pct": (
            (result.total_seconds / baseline.total_seconds - 1.0) * 100.0
            if baseline.total_seconds > 0
            else 0.0
        ),
        "num_checkpoints": result.num_checkpoints,
        "num_restores": result.num_restores,
        "num_recoveries": result.num_recoveries,
        "replayed_steps": result.replayed_steps,
        "recovery_seconds": result.recovery_seconds,
        "checkpoint_seconds": result.checkpoint_seconds,
        "time_to_recover_s": faults["time_to_recover_s"],
        "mean_time_to_recover_s": faults["mean_time_to_recover_s"],
        "bitwise_identical": identical,
    }
