"""Row/series printers matching the paper's tables and figures.

Each formatter takes the dict produced by the corresponding
:mod:`repro.runtime.experiment` builder and returns the text the benchmark
harness prints -- the same rows/series the paper reports, with our measured
numbers.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.charts import bar_chart, line_chart

__all__ = [
    "format_fig7_table1",
    "format_load_assignment",
    "format_imbalance",
    "format_dynamic_allocation",
    "format_table2",
    "format_table3",
    "format_frequency_traces",
]


def _series_block(title: str, lines: list[str]) -> str:
    bar = "=" * max(len(title), 40)
    return "\n".join([bar, title, bar, *lines, ""])


def format_fig7_table1(data: dict) -> str:
    lines = [
        f"{'procs':>6} {'system-sensitive (s)':>22} {'default (s)':>14} "
        f"{'improvement':>12}",
    ]
    for row in data["rows"]:
        lines.append(
            f"{row['procs']:>6} {row['system_sensitive_s']:>22.1f} "
            f"{row['default_s']:>14.1f} {row['improvement_pct']:>11.1f}%"
        )
    chart = line_chart(
        {
            "system-sensitive": [r["system_sensitive_s"] for r in data["rows"]],
            "default": [r["default_s"] for r in data["rows"]],
        },
        x=[r["procs"] for r in data["rows"]],
        title="execution time (s) vs processors",
        x_label="processors",
    )
    return _series_block(
        "Fig. 7 / Table I -- execution time, system-sensitive vs default",
        lines + ["", chart],
    )


def format_load_assignment(data: dict) -> str:
    loads = np.asarray(data["loads"])
    caps = data["capacities"]
    header = "regrid  " + "  ".join(
        f"P{k} (C={c:.0%})" for k, c in enumerate(caps)
    )
    lines = [header]
    for i, rn in enumerate(data["regrid_numbers"]):
        lines.append(
            f"{rn:>6}  " + "  ".join(f"{v:>10.0f}" for v in loads[i])
        )
    chart = line_chart(
        {
            f"P{k} ({c:.0%})": loads[:, k]
            for k, c in enumerate(caps)
        },
        x=data["regrid_numbers"],
        title="work assigned per processor vs regrid number",
        x_label="regrid number",
    )
    title = (
        f"Fig. {'9' if data['partitioner'] == 'heterogeneous' else '8'} -- "
        f"work-load assignment per regrid ({data['partitioner']})"
    )
    return _series_block(title, lines + ["", chart])


def format_imbalance(data: dict) -> str:
    lines = [f"{'regrid':>6} {'system-sensitive':>18} {'default':>10}"]
    for i, rn in enumerate(data["regrid_numbers"]):
        lines.append(
            f"{rn:>6} {data['system_sensitive'][i]:>17.1f}% "
            f"{data['default'][i]:>9.1f}%"
        )
    chart = line_chart(
        {
            "system-sensitive": data["system_sensitive"],
            "default": data["default"],
        },
        x=data["regrid_numbers"],
        title="% load imbalance vs regrid number",
        x_label="regrid number",
    )
    return _series_block(
        "Fig. 10 -- % load imbalance vs capacity-proportional targets",
        lines + ["", chart],
    )


def format_dynamic_allocation(data: dict) -> str:
    lines = [f"{'iter':>5} {'trigger':>8}  capacities -> loads"]
    for it, trig, caps, loads in zip(
        data["iterations"], data["triggers"], data["capacities"], data["loads"]
    ):
        caps_s = "/".join(f"{c:.0%}" for c in caps)
        share = loads / max(loads.sum(), 1e-12)
        loads_s = "/".join(f"{s:.0%}" for s in share)
        lines.append(f"{it:>5} {trig:>8}  [{caps_s}] -> [{loads_s}]")
    lines.append(f"total execution time: {data['total_seconds']:.1f} s")
    return _series_block(
        "Fig. 11 -- dynamic load allocation (sensed at start + during run)",
        lines,
    )


def format_table2(data: dict) -> str:
    lines = [
        f"{'procs':>6} {'dynamic sensing (s)':>20} {'sense once (s)':>16} "
        f"{'speedup':>8}"
    ]
    for row in data["rows"]:
        lines.append(
            f"{row['procs']:>6} {row['dynamic_s']:>20.1f} "
            f"{row['once_s']:>16.1f} {row['once_s'] / row['dynamic_s']:>7.2f}x"
        )
    return _series_block(
        "Table II -- dynamic sensing vs sensing only once", lines
    )


def format_table3(data: dict) -> str:
    lines = [f"{'sensing every':>14} {'execution time (s)':>20}"]
    best = min(data["rows"], key=lambda r: r["seconds"])
    for row in data["rows"]:
        marker = "  <-- best" if row is best else ""
        lines.append(
            f"{row['frequency']:>10} its {row['seconds']:>20.1f}{marker}"
        )
    chart = bar_chart(
        {
            f"every {r['frequency']:>2} its": r["seconds"]
            for r in data["rows"]
        },
        title="execution time vs sensing frequency",
        unit="s",
    )
    return _series_block(
        f"Table III -- sensing frequency sweep ({data['procs']} procs)",
        lines + ["", chart],
    )


def format_frequency_traces(data: dict) -> str:
    blocks = []
    fig = 12
    for freq in data["frequencies"]:
        tr = data["traces"][freq]
        lines = [f"{'iter':>5}  capacities -> load shares"]
        for it, caps, loads in zip(
            tr["iterations"], tr["capacities"], tr["loads"]
        ):
            caps_s = "/".join(f"{c:.0%}" for c in caps)
            share = loads / max(loads.sum(), 1e-12)
            loads_s = "/".join(f"{s:.0%}" for s in share)
            lines.append(f"{it:>5}  [{caps_s}] -> [{loads_s}]")
        lines.append(f"total: {tr['total_seconds']:.1f} s")
        blocks.append(
            _series_block(
                f"Fig. {fig} -- allocation trace, sensing every {freq} its",
                lines,
            )
        )
        fig += 1
    return "\n".join(blocks)
