"""The repartition pipeline shared by every runtime loop.

Both :class:`~repro.runtime.engine.SamrRuntime` (trace replay) and
:class:`~repro.runtime.distributed.DistributedAmrRun` (real kernel) drive
the same sense -> capacity -> partition -> migrate -> exchange-plan cycle
from the paper's runtime architecture (section 5, fig. 5); they used to
carry private near-duplicate implementations of it, down to the telemetry
spans.  :class:`RepartitionPipeline` is that cycle as one object with one
composable method per stage:

``sense()``
    Probe the resource monitor, charge the probe overhead to the cluster
    clock, optionally swap in the forecaster's view, and compute fresh
    relative capacities under a ``capacity`` span nested in a ``sense``
    span.
``repartition()``
    Partition a box list against capacities using the pipeline's
    :class:`~repro.partition.workmodel.WorkModel` (one cached work vector
    prices the boxes, the loads and the level loads -- no per-box Python
    calls), then price and apply the data migration under a ``migrate``
    span, tracking the previous assignment for the cell-owner diff.
``exchange_plan()``
    Ghost-exchange volume planning for the current decomposition.
``health_attrs()`` / ``emit_iteration_spans()``
    The per-iteration observability stamping shared by both loops: the
    health attributes the :class:`~repro.telemetry.analysis.HealthMonitor`
    and the HTML dashboard consume, and the per-rank
    compute/ghost-exchange/sync simulated-time tracks.

Runtime-specific details stay with the runtimes and enter as small
arguments or callbacks: extra span attributes (``iteration`` /
``trigger``), per-node gauge emission, the HDDA assignment application
(engine) and the hierarchy repatch between partition and migration
(distributed).  The stage structure, span nesting, attribute ordering and
metric creation order are exactly those of the loops this replaces --
exported traces are byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.amr.ghost import plan_exchange_volumes
from repro.cluster.cluster import Cluster
from repro.learn.policy import NULL_LEARNER
from repro.monitor.service import ResourceMonitor
from repro.partition.base import Partitioner, PartitionResult
from repro.partition.capacity import CapacityCalculator
from repro.partition.metrics import (
    imbalance_pct,
    redistribution_volume_columns,
)
from repro.partition.workmodel import WorkFunction, WorkModel, as_work_model
from repro.runtime.timemodel import IterationCost, TimeModel
from repro.util.errors import ResilienceError
from repro.util.geometry import Box, BoxList

__all__ = ["SenseOutcome", "RepartitionOutcome", "RepartitionPipeline"]


@dataclass(slots=True)
class SenseOutcome:
    """What one sensing stage produced."""

    snapshot: object
    capacities: np.ndarray
    overhead_seconds: float


@dataclass(slots=True)
class RepartitionOutcome:
    """What one partition + migrate stage produced.

    ``loads``/``targets``/``imbalance`` are all derived from the single
    cached work vector of ``part`` -- callers must not recompute them
    with per-box loops.  ``owners`` materializes box objects lazily: a
    repartition whose caller only reads the columnar views never builds
    the per-box dict.
    """

    part: PartitionResult
    loads: np.ndarray  # realized W_k
    targets: np.ndarray  # ideal L_k = C_k * L
    imbalance: np.ndarray  # I_k (%)
    migration_bytes: int
    migration_seconds: float

    @property
    def owners(self) -> dict[Box, int]:
        """Box -> rank mapping, built on first access."""
        return self.part.owners()

    def level_loads(self, num_ranks: int) -> tuple[list[int], np.ndarray]:
        """(levels, per-level load matrix) for per-level sync pricing.

        One ``np.add.at`` scatter of the cached work vector replaces the
        per-box Python loop; unbuffered in-order accumulation keeps the
        float result identical to the loop it replaced.  Box levels come
        straight off the result's level column.
        """
        if not self.part.num_assigned():
            return [], np.zeros((1, num_ranks))
        box_levels = self.part.boxes().array.level
        levels, index = np.unique(box_levels, return_inverse=True)
        matrix = np.zeros((len(levels), num_ranks))
        np.add.at(
            matrix,
            (index, self.part.rank_vector()),
            self.part.work_vector(),
        )
        return [int(lvl) for lvl in levels], matrix


class RepartitionPipeline:
    """Composable sense/partition/migrate/plan stages over one cluster.

    Parameters
    ----------
    cluster, partitioner, monitor, capacity, time_model:
        The collaborators both runtimes already wire up.
    tracer:
        Telemetry sink; every stage stamps the same spans/metrics the
        runtime loops historically emitted.
    work_model:
        The :class:`WorkModel` pricing boxes throughout the pipeline
        (``None`` -> default Berger-Oliger model with ``refine_factor``;
        a legacy callable is adapted).
    bytes_per_cell, ghost_width, refine_factor:
        Payload and stencil parameters for migration pricing and
        ghost-exchange planning.
    learner:
        The :class:`~repro.learn.policy.LearnController` observing every
        stage, behind the same inert-default pattern as the tracer
        (``NULL_LEARNER`` has ``enabled = False``, every hook guards on
        it, the unlearned path is byte-identical).
    """

    def __init__(
        self,
        *,
        cluster: Cluster,
        partitioner: Partitioner,
        monitor: ResourceMonitor,
        capacity: CapacityCalculator,
        time_model: TimeModel,
        tracer,
        work_model: WorkModel | WorkFunction | None = None,
        bytes_per_cell: float = 40.0,
        ghost_width: int = 1,
        refine_factor: int = 2,
        learner=None,
    ):
        self.cluster = cluster
        self.partitioner = partitioner
        self.monitor = monitor
        self.capacity = capacity
        self.time_model = time_model
        self.tracer = tracer
        self.learner = learner if learner is not None else NULL_LEARNER
        if self.learner.enabled:
            self.learner.bind(tracer, cluster.num_nodes)
        self.work_model = as_work_model(work_model, refine_factor)
        self.bytes_per_cell = float(bytes_per_cell)
        self.ghost_width = int(ghost_width)
        self.refine_factor = int(refine_factor)
        # Promote the communicator's traffic into telemetry (counters,
        # collective histograms, per-exchange comm.exchange events) so
        # the communication profiler sees the same costs the time model
        # charges.  A disabled tracer keeps the communicator silent.
        if getattr(tracer, "enabled", False):
            self.time_model.comm.bind_tracer(tracer)
        # Assignment of the previous epoch (diffed for migration volume),
        # held as columns; the pair list view materializes only if an
        # external reader asks for :attr:`prev_assignment`.
        self._prev_boxes: BoxList | None = None
        self._prev_ranks: np.ndarray | None = None
        self._prev_pairs: list[tuple[Box, int]] | None = []
        #: outcome of the most recent :meth:`repartition`
        self.last: RepartitionOutcome | None = None

    # ------------------------------------------------------------------
    # Previous-epoch assignment (columns first, pairs on demand)
    # ------------------------------------------------------------------
    @property
    def prev_assignment(self) -> list[tuple[Box, int]]:
        """Previous epoch's ``(box, rank)`` pairs (lazy object view)."""
        pairs = self._prev_pairs
        if pairs is None:
            pairs = list(zip(self._prev_boxes, self._prev_ranks.tolist()))
            self._prev_pairs = pairs
        return pairs

    @prev_assignment.setter
    def prev_assignment(self, pairs: list[tuple[Box, int]]) -> None:
        # Checkpoint restore hands back a pair list; lower it to columns.
        pairs = list(pairs)
        self._prev_pairs = pairs
        if pairs:
            self._prev_boxes = BoxList(b for b, _ in pairs)
            self._prev_ranks = np.fromiter(
                (r for _, r in pairs), dtype=np.intp, count=len(pairs)
            )
        else:
            self._prev_boxes = None
            self._prev_ranks = None

    def _set_prev_columns(self, boxes: BoxList, ranks: np.ndarray) -> None:
        self._prev_boxes = boxes
        self._prev_ranks = ranks
        self._prev_pairs = None

    # ------------------------------------------------------------------
    # Stage: sense + capacity
    # ------------------------------------------------------------------
    def sense(
        self,
        *,
        span_attrs: dict | None = None,
        use_forecast: bool = False,
        node_gauges: bool = False,
    ) -> SenseOutcome:
        """Probe the cluster, charge overhead, compute fresh capacities.

        ``span_attrs`` land on the ``sense`` span (the engine stamps the
        iteration number); ``node_gauges`` additionally publishes the
        per-node availability/capacity gauges the dashboard plots.
        """
        tracer = self.tracer
        with tracer.span("sense", **(span_attrs or {})) as sense_span:
            snapshot = self.monitor.probe_all()
            overhead = snapshot.overhead_seconds
            self.cluster.clock.advance(overhead)
            if use_forecast:
                snapshot = self.monitor.forecast_all()
            # Dead/evicted nodes get exactly zero capacity; with everyone
            # trusted this is the original fixed-rank-set computation.
            live = self.monitor.trusted_mask()
            with tracer.span("capacity"):
                caps = self.capacity.relative_capacities(
                    snapshot, None if bool(live.all()) else live
                )
            sense_span.set(overhead_seconds=overhead, capacities=caps)
        if tracer.enabled:
            metrics = tracer.metrics
            metrics.counter("num_sensings").inc()
            metrics.counter("probe_cost_seconds").inc(overhead)
            if node_gauges:
                for node in range(snapshot.num_nodes):
                    metrics.gauge("node_cpu_available", node=node).set(
                        snapshot.cpu[node]
                    )
                    metrics.gauge("node_capacity", node=node).set(caps[node])
        if self.learner.enabled:
            self.learner.observe_sense(
                self.cluster.clock.now, caps, overhead
            )
        return SenseOutcome(snapshot, caps, overhead)

    # ------------------------------------------------------------------
    # Stage: partition + migrate
    # ------------------------------------------------------------------
    def repartition(
        self,
        boxes: BoxList,
        capacities: np.ndarray,
        *,
        migrate_attrs: dict | None = None,
        before_migrate: Callable[[PartitionResult], None] | None = None,
        on_apply: Callable[[dict[Box, int]], None] | None = None,
        stats: bool = False,
    ) -> RepartitionOutcome:
        """Partition ``boxes``, price and apply the migration.

        ``before_migrate`` runs between partitioning and the migrate span
        (the distributed runtime repatches the hierarchy there);
        ``on_apply`` runs inside the span once the cell-owner diff is
        taken (the engine applies the assignment to the HDDA there).
        ``stats=True`` adds the residual-imbalance histogram and per-node
        utilization gauges.
        """
        tracer = self.tracer
        part = self.partitioner.partition(boxes, capacities, self.work_model)
        if before_migrate is not None:
            before_migrate(part)
        with tracer.span("migrate", **(migrate_attrs or {})) as mig_span:
            # Geometric cell-owner diff against the previous assignment: the
            # true redistribution traffic, robust to boxes being re-split.
            # Runs on the column views of both epochs -- no pair lists.
            moved = redistribution_volume_columns(
                self._prev_boxes,
                self._prev_ranks,
                part.boxes(),
                part.rank_vector(),
                self.bytes_per_cell,
            )
            if on_apply is not None:
                on_apply(part.owners())
            self._set_prev_columns(part.boxes(), part.rank_vector())
            mig_seconds = self.time_model.migration_cost(moved)
            self.cluster.clock.advance(mig_seconds)
            mig_bytes = int(sum(moved.values()))
            mig_span.set(bytes=mig_bytes, sim_seconds=mig_seconds)

        # One cached work vector yields loads, targets and imbalance.
        loads = part.loads()
        targets = capacities * loads.sum()
        imbalance = imbalance_pct(loads, targets)
        if tracer.enabled:
            metrics = tracer.metrics
            metrics.counter("num_repartitions").inc()
            metrics.counter("migration_bytes").inc(mig_bytes)
            metrics.counter("migration_seconds").inc(mig_seconds)
            if stats:
                metrics.histogram("residual_imbalance_pct").observe(
                    float(imbalance.mean())
                )
                for node in range(self.cluster.num_nodes):
                    utilization = (
                        loads[node] / targets[node]
                        if targets[node] > 0
                        else 0.0
                    )
                    metrics.gauge("node_utilization", node=node).set(
                        utilization
                    )
        if self.learner.enabled:
            self.learner.observe_repartition(
                self.cluster.clock.now, mig_seconds, mig_bytes
            )
        outcome = RepartitionOutcome(
            part=part,
            loads=loads,
            targets=targets,
            imbalance=imbalance,
            migration_bytes=mig_bytes,
            migration_seconds=mig_seconds,
        )
        self.last = outcome
        return outcome

    # ------------------------------------------------------------------
    # Stage: recovery (failure-aware repartitioning)
    # ------------------------------------------------------------------
    def dead_owner_ranks(self) -> tuple[int, ...]:
        """Down ranks (cluster ground truth) that still own boxes.

        In a real deployment this is the MPI layer reporting broken pipes
        on the ranks' connections; in the simulation we consult the
        cluster directly.  Sensor-only loss (blackouts) is *not* included
        -- that is the escalation policy's call.
        """
        down = set(self.cluster.down_nodes)
        if not down:
            return ()
        ranks = self._prev_ranks
        if ranks is not None:
            owners = set(np.unique(ranks).tolist())
        else:
            owners = {rank for _, rank in (self._prev_pairs or [])}
        return tuple(sorted(down & owners))

    def needs_recovery(self) -> bool:
        """Whether any current box owner is a dead rank."""
        return bool(self.dead_owner_ranks())

    def recover(
        self,
        boxes: BoxList,
        capacities: np.ndarray,
        *,
        storage_bandwidth_mbps: float = 400.0,
        before_migrate: Callable[[PartitionResult], None] | None = None,
        on_apply: Callable[[dict[Box, int]], None] | None = None,
    ) -> RepartitionOutcome:
        """Repartition over the surviving rank set, evacuating the dead.

        The partitioner runs over the *compacted* live capacities -- so no
        partitioning scheme can hand a box to a dead rank -- and the
        result is remapped back to true node indices.  Evacuation traffic
        (cells whose previous owner is down) cannot come off the dead NIC;
        it is priced as a read from checkpoint storage at
        ``storage_bandwidth_mbps``.  The same stage handles growth: when a
        recovered node rejoins the trusted set, the partition simply
        spreads over it again (no evacuation term).
        """
        tracer = self.tracer
        live = self.monitor.trusted_mask()
        if not live.any():
            raise ResilienceError(
                "recovery attempted with no surviving nodes"
            )
        dead_owners = self.dead_owner_ranks()
        with tracer.span(
            "recover",
            dead_ranks=list(dead_owners),
            num_live=int(live.sum()),
        ):
            live_idx = np.flatnonzero(live)
            caps_live = np.asarray(capacities, dtype=float)[live]
            total = caps_live.sum()
            caps_live = (
                caps_live / total
                if total > 0
                else np.full(len(caps_live), 1.0 / len(caps_live))
            )
            part_live = self.partitioner.partition(
                boxes, caps_live, self.work_model
            )
            # Remap compact ranks back to true node indices; expand the
            # target vector so every consumer stays num_nodes-sized.  The
            # remap is one gather on the rank column -- no pair rebuild.
            n = self.cluster.num_nodes
            targets_full = np.zeros(n)
            targets_full[live_idx] = part_live.targets
            part = PartitionResult(
                targets=targets_full,
                num_splits=part_live.num_splits,
                work_model=part_live.work_model,
            )
            part.set_columns(
                part_live.boxes(), live_idx[part_live.rank_vector()]
            )
            if before_migrate is not None:
                before_migrate(part)
            with tracer.span("migrate", trigger="recovery") as mig_span:
                moved = redistribution_volume_columns(
                    self._prev_boxes,
                    self._prev_ranks,
                    part.boxes(),
                    part.rank_vector(),
                    self.bytes_per_cell,
                )
                live_moved: dict[tuple[int, int], float] = {}
                evac_bytes = 0.0
                for (src, dst), nbytes in moved.items():
                    if self.cluster.is_up(src):
                        live_moved[(src, dst)] = nbytes
                    else:
                        evac_bytes += nbytes
                if on_apply is not None:
                    on_apply(part.owners())
                self._set_prev_columns(part.boxes(), part.rank_vector())
                mig_seconds = self.time_model.migration_cost(live_moved)
                mig_seconds += evac_bytes / (
                    storage_bandwidth_mbps * 125_000.0
                )
                self.cluster.clock.advance(mig_seconds)
                mig_bytes = int(sum(moved.values()))
                mig_span.set(
                    bytes=mig_bytes,
                    sim_seconds=mig_seconds,
                    evacuated_bytes=int(evac_bytes),
                )
        tracer.event(
            "recovery.repartition",
            dead_ranks=list(dead_owners),
            num_live=int(live.sum()),
            evacuated_bytes=int(evac_bytes),
        )
        loads = part.loads()
        imbalance = imbalance_pct(loads, targets_full)
        if tracer.enabled:
            metrics = tracer.metrics
            metrics.counter("num_repartitions").inc()
            metrics.counter("num_recoveries").inc()
            metrics.counter("migration_bytes").inc(mig_bytes)
            metrics.counter("migration_seconds").inc(mig_seconds)
            metrics.counter("evacuated_bytes").inc(int(evac_bytes))
        if self.learner.enabled:
            # Provenance first: observe_recover must see the migration
            # model *before* this migration folds into it.
            self.learner.observe_recover(
                self.cluster.clock.now,
                list(dead_owners),
                mig_seconds,
                mig_bytes,
                int(evac_bytes),
            )
            self.learner.observe_repartition(
                self.cluster.clock.now, mig_seconds, mig_bytes
            )
        outcome = RepartitionOutcome(
            part=part,
            loads=loads,
            targets=targets_full,
            imbalance=imbalance,
            migration_bytes=mig_bytes,
            migration_seconds=mig_seconds,
        )
        self.last = outcome
        return outcome

    # ------------------------------------------------------------------
    # Stage: ghost-exchange planning
    # ------------------------------------------------------------------
    def exchange_plan(
        self, boxes: BoxList, owners: dict[Box, int]
    ) -> dict:
        """Pairwise ghost-exchange volumes of the current decomposition."""
        return plan_exchange_volumes(
            boxes,
            owners,
            ghost_width=self.ghost_width,
            bytes_per_cell=self.bytes_per_cell,
            refine_factor=self.refine_factor,
        )

    # ------------------------------------------------------------------
    # Stage: observability stamping
    # ------------------------------------------------------------------
    def health_attrs(
        self, epoch: int, imbalance: np.ndarray | None = None
    ) -> dict:
        """Per-iteration health signals published on the iteration span.

        The health monitor (:mod:`repro.telemetry.analysis`) and the HTML
        dashboard read these straight off the trace, so an exported JSONL
        file is self-sufficient for offline diagnosis.  ``epoch`` is the
        repartition count (the z-score detector resets its window on
        change, so a regrid's legitimate cost shift is not a "spike");
        ``imbalance`` is the caller's current I_k vector, if it has one.
        """
        staleness = self.monitor.staleness_s()
        attrs: dict = {
            "staleness_s": staleness if staleness != float("inf") else None,
            "epoch": epoch,
        }
        if imbalance is not None:
            finite = imbalance[np.isfinite(imbalance)]
            if finite.size:
                attrs["imbalance_pct"] = float(finite.mean())
                attrs["max_imbalance_pct"] = float(finite.max())
        self.tracer.metrics.gauge("sensing_staleness_seconds").set(
            0.0 if staleness == float("inf") else staleness
        )
        return attrs

    def emit_iteration_spans(
        self, start_sim: float, cost: IterationCost, attrs: dict
    ) -> None:
        """Per-rank compute/ghost-exchange tracks for one priced iteration.

        The time model prices the whole iteration at once; this decomposes
        the per-rank breakdown into simulated-time spans (compute first,
        then the rank's serialized ghost exchange, then the collective
        sync gating everyone).  ``attrs`` land on the enclosing
        ``iteration`` span (loop counter plus :meth:`health_attrs`),
        alongside the critical-path attribution the profiler keys on:
        which rank's busy time gated the step, and the sync tax.
        """
        tracer = self.tracer
        busy_per_rank = cost.compute + cost.comm
        critical_rank = (
            int(busy_per_rank.argmax()) if len(busy_per_rank) else None
        )
        tracer.add_span(
            "iteration",
            start_sim,
            start_sim + cost.total,
            critical_rank=critical_rank,
            sync_s=float(cost.sync),
            **attrs,
        )
        for rank in range(len(cost.compute)):
            compute = float(cost.compute[rank])
            comm = float(cost.comm[rank])
            if compute > 0.0:
                tracer.add_span(
                    "compute", start_sim, start_sim + compute, rank=rank
                )
            if comm > 0.0:
                tracer.add_span(
                    "ghost-exchange",
                    start_sim + compute,
                    start_sim + compute + comm,
                    rank=rank,
                )
        if cost.sync > 0.0:
            busy = float(busy_per_rank.max())
            tracer.add_span(
                "sync", start_sim + busy, start_sim + busy + cost.sync
            )
