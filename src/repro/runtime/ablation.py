"""Ablation experiments beyond the paper's tables (DESIGN.md section 5).

The paper closes with two directions we implement and measure:

- **Weight choice** (section 8): "we are currently working with a more
  careful choice of weights w_p, w_m, w_b that will adequately reflect the
  computational needs of the application" -- :func:`weight_ablation` runs
  application profiles (CPU-, memory-, comm-weighted) against clusters
  whose scarcity matches or mismatches the profile.
- **Multi-axis splitting** (section 8): "if the box is instead cut along
  more axes, it could lead to finer partitioning granularity and hence
  better work assignments" -- :func:`multiaxis_split_ablation` compares the
  residual imbalance with the longest-axis-only rule against the extension.

Two more isolate design choices of the reproduction itself:

- :func:`forecaster_ablation` -- which NWS-style predictor yields the best
  capacities when measurements are noisy;
- :func:`partitioner_panel` -- ACEHeterogeneous vs the no-split greedy LPT
  vs the capacity-blind default, separating the value of capacity awareness
  from the value of constrained splitting.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

import numpy as np

from repro.cluster import Cluster, SyntheticLoadGenerator
from repro.kernels.workloads import paper_rm3d_trace
from repro.monitor.service import ResourceMonitor
from repro.partition import (
    ACEComposite,
    ACEHeterogeneous,
    GraphPartitioner,
    GreedyLPT,
    SFCHybrid,
    SplitConstraints,
    load_imbalance,
)
from repro.partition.capacity import CapacityCalculator, CapacityWeights
from repro.runtime.engine import RuntimeConfig, SamrRuntime

__all__ = [
    "weight_ablation",
    "multiaxis_split_ablation",
    "forecaster_ablation",
    "partitioner_panel",
    "probe_cost_sensitivity",
    "heterogeneity_sweep",
    "weak_scaling",
    "learn_ablation",
]


def _cpu_loaded_cluster(n: int = 4) -> Cluster:
    """Nodes differing only in CPU load (memory/bandwidth uniform)."""
    c = Cluster.homogeneous(n)
    for k, level in enumerate(np.linspace(0.0, 2.5, n)):
        if level > 0:
            c.add_load_generator(
                SyntheticLoadGenerator(
                    node=k, start_time=-1.0, ramp_rate=10.0,
                    target_level=float(level), memory_per_unit_mb=0.0,
                )
            )
    return c


def _memory_squeezed_cluster(n: int = 4) -> Cluster:
    """Nodes differing only in free memory (CPU/bandwidth uniform).

    Memory pressure is modelled as pinned memory with negligible CPU
    competition (a large in-memory cache, say).
    """
    c = Cluster.homogeneous(n)
    for k, mem in enumerate(np.linspace(0.0, 360.0, n)):
        if mem > 0:
            c.add_load_generator(
                SyntheticLoadGenerator(
                    node=k, start_time=-1.0, ramp_rate=10.0,
                    target_level=0.05, memory_per_unit_mb=float(mem / 0.05),
                )
            )
    return c


def weight_ablation(iterations: int = 30) -> dict:
    """Execution time per weight profile on a CPU-heterogeneous cluster.

    On a cluster whose only scarcity is CPU, weighting CPU higher should
    beat the paper's equal weights, which dilute the CPU signal with the
    uninformative memory/bandwidth shares.
    """
    workload = paper_rm3d_trace(num_regrids=iterations // 5 + 1)
    profiles = {
        "equal (paper)": CapacityWeights.equal(),
        "compute-bound": CapacityWeights.compute_bound(),
        "memory-bound": CapacityWeights.memory_bound(),
        "comm-bound": CapacityWeights.comm_bound(),
    }
    rows = []
    for label, weights in profiles.items():
        cluster = _cpu_loaded_cluster(4)
        runtime = SamrRuntime(
            workload,
            cluster,
            ACEHeterogeneous(),
            capacity_calculator=CapacityCalculator(weights),
            config=RuntimeConfig(iterations=iterations, regrid_interval=5),
        )
        rows.append(
            {"profile": label, "seconds": runtime.run().total_seconds}
        )
    return {"rows": rows, "cluster": "cpu-loaded 4-node"}


def multiaxis_split_ablation(
    num_regrids: int = 8,
    min_box_size: int = 2,
    snap: int = 2,
) -> dict:
    """Residual imbalance: longest-axis-only vs multi-axis splitting.

    The paper attributes the system-sensitive scheme's residual imbalance
    to cutting "only along the longest axis" and proposes multi-axis cuts
    as the remedy; this ablation measures that remedy.  The effect grows
    with the splitting granularity (``min_box_size``/``snap``): the coarser
    a single longest-axis plane is, the more a sub-plane cut can recover.
    """
    workload = paper_rm3d_trace(num_regrids=num_regrids)
    cluster = Cluster.paper_four_node()
    cluster.clock.advance(5.0)
    caps = CapacityCalculator().relative_capacities(
        ResourceMonitor(cluster).probe_all()
    )
    out = {}
    for label, multi in (("longest-axis", False), ("multi-axis", True)):
        constraints = SplitConstraints(
            min_box_size=min_box_size, snap=snap, allow_multi_axis=multi
        )
        part = ACEHeterogeneous(constraints=constraints)
        per_regrid = []
        splits = 0
        for epoch in range(num_regrids):
            result = part.partition(workload.epoch(epoch), caps)
            total = result.loads().sum()
            per_regrid.append(
                float(load_imbalance(result, targets=caps * total).max())
            )
            splits += result.num_splits
        out[label] = {
            "max_imbalance_pct": per_regrid,
            "total_splits": splits,
        }
    return out


def forecaster_ablation(
    noise: float = 0.25,
    probes: int = 40,
    seeds: Sequence[int] = (0, 1, 2),
) -> dict:
    """Capacity-estimation error per forecaster under noisy measurements.

    The cluster is static (paper_four_node), so the true relative
    capacities are constant; a noisy monitor feeds each forecaster and we
    measure the mean absolute capacity error against the noise-free truth.
    Averaging forecasters (mean/median) should beat last-value; the
    adaptive ensemble should be competitive with the best member.
    """
    calc = CapacityCalculator()
    truth_cluster = Cluster.paper_four_node()
    truth_cluster.clock.advance(5.0)
    truth = calc.relative_capacities(
        ResourceMonitor(truth_cluster).probe_all()
    )
    rows = []
    for kind in ("last", "mean", "median", "ar", "adaptive"):
        errs = []
        for seed in seeds:
            cluster = Cluster.paper_four_node()
            cluster.clock.advance(5.0)
            monitor = ResourceMonitor(
                cluster, noise=noise, forecaster=kind, seed=seed
            )
            for i in range(probes):
                monitor.probe_all(t=5.0 + i)
            estimate = calc.relative_capacities(monitor.forecast_all())
            errs.append(float(np.abs(estimate - truth).mean()))
        rows.append({"forecaster": kind, "mae": float(np.mean(errs))})
    return {"rows": rows, "noise": noise, "truth": truth.tolist()}


def probe_cost_sensitivity(
    probe_costs: Sequence[float] = (0.0, 0.5, 2.0, 8.0),
    sensing_interval: int = 10,
    iterations: int = 120,
    seed: int = 5,
) -> dict:
    """How the value of dynamic sensing depends on the probe's price.

    The paper's 0.5 s NWS figure sits in a sweet region; this sweep shows
    the frequency/overhead trade-off collapsing as probes get expensive --
    with pricey probes, the same sensing cadence stops paying for itself
    against the sense-once baseline.
    """
    workload = paper_rm3d_trace(num_regrids=iterations // 5 + 2)
    rows = []
    for cost in probe_costs:
        times = {}
        horizon = None
        for label, interval in (("dynamic", sensing_interval), ("once", 0)):
            cluster = Cluster.paper_linux_cluster(
                4, seed=seed, dynamic=True,
                horizon_s=horizon if horizon else 300.0,
            )
            monitor = ResourceMonitor(cluster, probe_overhead_s=cost)
            runtime = SamrRuntime(
                workload,
                cluster,
                ACEHeterogeneous(),
                monitor=monitor,
                config=RuntimeConfig(
                    iterations=iterations,
                    regrid_interval=5,
                    sensing_interval=interval,
                ),
            )
            times[label] = runtime.run().total_seconds
        rows.append(
            {
                "probe_cost_s": cost,
                "dynamic_s": times["dynamic"],
                "once_s": times["once"],
                "benefit_pct": (times["once"] - times["dynamic"])
                / times["once"] * 100.0,
            }
        )
    return {"rows": rows, "sensing_interval": sensing_interval}


def heterogeneity_sweep(
    load_levels: Sequence[float] = (0.0, 0.5, 1.0, 2.0, 4.0),
    iterations: int = 30,
    num_procs: int = 4,
) -> dict:
    """System-sensitive improvement as a function of cluster heterogeneity.

    Half the nodes carry ``level`` units of load; the improvement of
    ACEHeterogeneous over the capacity-blind default should grow
    monotonically with the load level (zero load -> no advantage), the
    paper's 'greater heterogeneity' extrapolation made measurable.
    """
    workload = paper_rm3d_trace(num_regrids=iterations // 5 + 1)
    rows = []
    for level in load_levels:
        times = {}
        for key, part in (
            ("het", ACEHeterogeneous()),
            ("comp", ACEComposite()),
        ):
            cluster = Cluster.homogeneous(num_procs)
            for k in range(num_procs // 2):
                if level > 0:
                    cluster.add_load_generator(
                        SyntheticLoadGenerator(
                            node=k, start_time=-1.0, ramp_rate=10.0,
                            target_level=level, memory_per_unit_mb=60.0,
                        )
                    )
            runtime = SamrRuntime(
                workload,
                cluster,
                part,
                config=RuntimeConfig(iterations=iterations, regrid_interval=5),
            )
            times[key] = runtime.run().total_seconds
        rows.append(
            {
                "load_level": level,
                "improvement_pct": (times["comp"] - times["het"])
                / times["comp"] * 100.0,
            }
        )
    return {"rows": rows, "procs": num_procs}


def weak_scaling(
    processor_counts: Sequence[int] = (2, 4, 8, 16),
    iterations: int = 20,
    cells_per_proc_y: int = 16,
    seed: int = 7,
) -> dict:
    """Weak scaling: problem size grows with the processor count.

    The mesh's *transverse* extent is ``cells_per_proc_y * P`` -- the
    interface slab and the instability fingers span the transverse plane,
    so refined (dominant) work genuinely scales with P, keeping
    per-processor work constant.  Ideal weak scaling keeps execution time
    flat; efficiency is ``T(P_min) / T(P)``.
    """
    rows = []
    base_time = {}
    for p in processor_counts:
        workload = paper_rm3d_trace(
            num_regrids=iterations // 5 + 1,
            base_shape=(64, cells_per_proc_y * p, 16),
        )
        times = {}
        for key, part in (
            ("het", ACEHeterogeneous()),
            ("comp", ACEComposite()),
        ):
            cluster = Cluster.paper_linux_cluster(p, seed=seed)
            runtime = SamrRuntime(
                workload,
                cluster,
                part,
                config=RuntimeConfig(iterations=iterations, regrid_interval=5),
            )
            times[key] = runtime.run().total_seconds
            base_time.setdefault(key, times[key])
        rows.append(
            {
                "procs": p,
                "het_s": times["het"],
                "comp_s": times["comp"],
                "het_efficiency": base_time["het"] / times["het"],
                "comp_efficiency": base_time["comp"] / times["comp"],
            }
        )
    return {"rows": rows, "cells_per_proc_y": cells_per_proc_y}


def partitioner_panel(iterations: int = 30, seed: int = 7) -> dict:
    """Execution time: the paper's two schemes plus two extension baselines.

    Separates the ingredients of the system-sensitive scheme: capacity
    awareness (ACEHeterogeneous, SFCHybrid and GreedyLPT have it,
    ACEComposite doesn't), constrained box splitting (all but GreedyLPT),
    and curve-span locality (ACEComposite and SFCHybrid).
    """
    workload = paper_rm3d_trace(num_regrids=iterations // 5 + 1)
    rows = []
    for part in (
        ACEHeterogeneous(),
        SFCHybrid(),
        GreedyLPT(),
        GraphPartitioner(),
        ACEComposite(),
    ):
        cluster = Cluster.paper_linux_cluster(8, seed=seed)
        runtime = SamrRuntime(
            workload,
            cluster,
            part,
            config=RuntimeConfig(iterations=iterations, regrid_interval=5),
        )
        result = runtime.run()
        rows.append(
            {
                "partitioner": part.name,
                "seconds": result.total_seconds,
                "mean_imbalance_pct": result.mean_imbalance,
            }
        )
    return {"rows": rows}


def learn_ablation(
    iterations: int = 150,
    sensing_interval: int = 20,
    regrid_interval: int = 7,
    seed: int = 11,
    drift_tolerance: float = 0.02,
    ledger_dir: str | None = None,
) -> dict:
    """Attribute the learned loop's win per piece (repro.learn).

    Five variants of the adaptive runtime -- the paper's fixed-f loop,
    each learned behavior alone (adaptive sensing interval, payoff-gated
    repartitioning, transient capacity forecasting) and all three
    together -- on two scenarios:

    - **load-dynamics**: the paper's dynamic Linux-cluster load scripts
      (8 nodes, calibrated horizon);
    - **chaos**: the same dynamic cluster plus a two-node outage window
      mid-run, recovered through the resilience stage.

    The regrid interval is deliberately co-prime with f so that
    sense-triggered repartitions exist at all (with the paper's f=20 and
    regrid=5, every sensing lands on a regrid and the gate would have
    nothing to decide).  Returns per-scenario rows with the win over
    fixed-f attributed to each piece.

    With ``ledger_dir`` set, every learned variant records its decision
    provenance to ``<ledger_dir>/<scenario>/<variant>`` for
    ``repro explain``; decisions themselves are unchanged.
    """
    from repro.learn import DecisionLedger, LearnConfig, LearnController
    from repro.resilience import FaultInjector, FaultPlan
    from repro.resilience.checkpoint import ResilienceConfig

    workload = paper_rm3d_trace(num_regrids=iterations // regrid_interval + 2)
    # Calibrate the load-script horizon on a sense-once run (the same
    # discipline as experiment._calibrated_horizon).
    cal_cluster = Cluster.paper_linux_cluster(
        8, seed=seed, dynamic=True, horizon_s=1e9
    )
    cal = SamrRuntime(
        workload,
        cal_cluster,
        ACEHeterogeneous(),
        config=RuntimeConfig(
            iterations=iterations, regrid_interval=regrid_interval
        ),
    ).run()
    horizon = 0.8 * cal.total_seconds

    def flags(**kw) -> LearnConfig:
        base = dict(
            adaptive_sensing=False,
            payoff_gate=False,
            transient_forecast=False,
            fallback_interval=sensing_interval,
            drift_tolerance=drift_tolerance,
        )
        base.update(kw)
        return LearnConfig(**base)

    variants: list[tuple[str, LearnConfig | None]] = [
        ("fixed-f", None),
        ("adaptive-f", flags(adaptive_sensing=True)),
        ("gate", flags(payoff_gate=True)),
        ("transient", flags(transient_forecast=True)),
        (
            "all",
            flags(
                adaptive_sensing=True,
                payoff_gate=True,
                transient_forecast=True,
            ),
        ),
    ]

    def run_variant(
        scenario: str, name: str, learn_cfg: LearnConfig | None
    ) -> dict:
        cluster = Cluster.paper_linux_cluster(
            8, seed=seed, dynamic=True, horizon_s=horizon
        )
        monitor = ResourceMonitor(cluster)
        resilience = None
        if scenario == "chaos":
            plan = FaultPlan.node_outage(
                [2, 5],
                at=0.3 * cal.total_seconds,
                duration=0.3 * cal.total_seconds,
                seed=seed,
            )
            FaultInjector(cluster, monitor=monitor).arm(plan)
            resilience = ResilienceConfig()
        learn = None
        if learn_cfg is not None:
            ledger = None
            if ledger_dir is not None:
                ledger = DecisionLedger(
                    Path(ledger_dir) / scenario / name
                )
            learn = LearnController(learn_cfg, ledger=ledger)
        runtime = SamrRuntime(
            workload,
            cluster,
            ACEHeterogeneous(),
            monitor=monitor,
            config=RuntimeConfig(
                iterations=iterations,
                regrid_interval=regrid_interval,
                sensing_interval=sensing_interval,
            ),
            resilience=resilience,
            learn=learn,
        )
        result = runtime.run()
        row = {
            "seconds": result.total_seconds,
            "num_sensings": result.num_sensings,
            "migration_seconds": result.migration_seconds,
            "sensing_seconds": result.sensing_seconds,
        }
        if learn is not None:
            summary = learn.summary()
            row["sensing_interval"] = summary["sensing_interval"]
            row["gate_skips"] = summary["gate"]["skips"]
            row["gate_decisions"] = summary["gate"]["decisions"]
            row["capacity_model_cold"] = summary["capacity_model"]["cold"]
        return row

    scenarios: dict[str, dict] = {}
    for scenario in ("load-dynamics", "chaos"):
        rows = []
        baseline_s: float | None = None
        for name, learn_cfg in variants:
            row = {
                "variant": name,
                **run_variant(scenario, name, learn_cfg),
            }
            if name == "fixed-f":
                baseline_s = row["seconds"]
            row["win_pct"] = (
                (baseline_s - row["seconds"]) / baseline_s * 100.0
                if baseline_s
                else 0.0
            )
            rows.append(row)
        scenarios[scenario] = {"rows": rows}
    return {
        "scenarios": scenarios,
        "iterations": iterations,
        "sensing_interval": sensing_interval,
        "regrid_interval": regrid_interval,
        "seed": seed,
        "drift_tolerance": drift_tolerance,
    }
