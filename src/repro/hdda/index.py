"""Hierarchical index space for the HDDA.

Maps every (level, coordinate) pair and every bounding box of the adaptive
grid hierarchy to a single integer key on one global space-filling curve.
Construction: promote coordinates to the finest-level index space (multiply
by ``refine_factor`` per remaining level), encode with the chosen curve, then
append the level number in the low bits so co-located entities on different
levels get distinct keys while staying adjacent on the curve -- this is how
the HDDA keeps inter-level locality (a fine patch hashes next to the coarse
region it refines).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.util.errors import GeometryError, HDDAError
from repro.util.geometry import Box, BoxList
from repro.util.sfc import hilbert_encode, morton_encode

__all__ = ["HierarchicalIndexSpace"]


class HierarchicalIndexSpace:
    """SFC-based global index space over an adaptive grid hierarchy.

    Parameters
    ----------
    domain:
        The level-0 computational domain (a single box with lower corner at
        the origin).
    max_levels:
        Number of refinement levels the space must address (level indices
        ``0 .. max_levels-1``).
    refine_factor:
        Refinement ratio between consecutive levels.
    curve:
        ``"hilbert"`` (default, better locality) or ``"morton"``.
    """

    def __init__(
        self,
        domain: Box,
        max_levels: int = 4,
        refine_factor: int = 2,
        curve: str = "hilbert",
    ):
        if domain.level != 0:
            raise HDDAError("index-space domain must be a level-0 box")
        if any(l != 0 for l in domain.lower):
            raise HDDAError("index-space domain must start at the origin")
        if max_levels < 1:
            raise HDDAError(f"max_levels must be >= 1, got {max_levels}")
        if refine_factor < 2:
            raise HDDAError(f"refine_factor must be >= 2, got {refine_factor}")
        if curve not in ("hilbert", "morton"):
            raise HDDAError(f"unknown curve {curve!r}")
        self.domain = domain
        self.max_levels = max_levels
        self.refine_factor = refine_factor
        self.curve = curve

        self._finest = max_levels - 1
        finest_extent = max(domain.shape) * refine_factor**self._finest
        bits = 1
        while (1 << bits) < finest_extent:
            bits += 1
        self._bits = bits
        self._level_bits = max(1, (max_levels - 1).bit_length())
        if (bits * domain.ndim + self._level_bits) > 62:
            raise HDDAError(
                "domain too large to index with 62-bit keys: "
                f"bits={bits}, ndim={domain.ndim}, level_bits={self._level_bits}"
            )

    # ------------------------------------------------------------------
    @property
    def bits_per_axis(self) -> int:
        """Bits used per axis at the finest level."""
        return self._bits

    def _encode(self, coords: Sequence[int]) -> int:
        if self.curve == "hilbert":
            return hilbert_encode(coords, self._bits)
        return morton_encode(coords, self._bits)

    def _promote(self, coords: Sequence[int], level: int) -> tuple[int, ...]:
        scale = self.refine_factor ** (self._finest - level)
        return tuple(c * scale for c in coords)

    def _check_level(self, level: int) -> None:
        if not 0 <= level < self.max_levels:
            raise HDDAError(
                f"level {level} outside [0, {self.max_levels}) for this space"
            )

    # ------------------------------------------------------------------
    def key_for_point(self, coords: Sequence[int], level: int) -> int:
        """Global key of a single cell at ``level``."""
        self._check_level(level)
        try:
            promoted = self._promote(coords, level)
            curve_key = self._encode(promoted)
        except GeometryError as exc:
            raise HDDAError(f"point {tuple(coords)} not addressable: {exc}") from exc
        return (curve_key << self._level_bits) | level

    def key_for_box(self, box: Box) -> int:
        """Global key of a box: the key of its lower corner at its level.

        Lower-corner keys give a locality-preserving total order over blocks;
        two boxes may share a corner only across levels, and the level bits
        keep those distinct.
        """
        self._check_level(box.level)
        return self.key_for_point(box.lower, box.level)

    def level_of_key(self, key: int) -> int:
        """Recover the refinement level from a key."""
        if key < 0:
            raise HDDAError(f"negative key {key}")
        level = key & ((1 << self._level_bits) - 1)
        if level >= self.max_levels:
            raise HDDAError(f"key {key} encodes invalid level {level}")
        return level

    def order_boxes(self, boxes: Iterable[Box]) -> BoxList:
        """Boxes sorted by their global key (the HDDA storage order)."""
        return BoxList(sorted(boxes, key=self.key_for_box))

    def span_for_boxes(self, boxes: Iterable[Box]) -> tuple[int, int]:
        """Inclusive (min_key, max_key) span covered by a set of boxes."""
        keys = [self.key_for_box(b) for b in boxes]
        if not keys:
            raise HDDAError("span of an empty box set")
        return min(keys), max(keys)
