"""Block storage for the HDDA.

A :class:`BlockStore` holds the per-box data blocks of one address space
(conceptually: one processor's slice of the distributed array).  Blocks are
keyed by their hierarchical-index key and stored in an extendible hash table,
so the store grows and shrinks bucket-by-bucket as the grid hierarchy
evolves, with no global rehashing (the property GrACE's substrate relies on
at regrid time).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.util.errors import HDDAError
from repro.util.geometry import Box
from repro.util.hashing import ExtendibleHashTable

__all__ = ["Block", "BlockStore"]


@dataclass(slots=True)
class Block:
    """One storage unit: a bounding box plus its payload.

    ``payload`` is opaque to the storage layer -- grid classes put field
    arrays here; tests and the simulator may store lightweight sentinels.
    ``nbytes`` is the accounting size used for migration-cost modelling.
    """

    key: int
    box: Box
    payload: Any = None
    nbytes: int = field(default=0)

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise HDDAError(f"negative block size {self.nbytes}")


class BlockStore:
    """Extendible-hash-backed collection of :class:`Block` objects."""

    def __init__(self, bucket_capacity: int = 8):
        self._table = ExtendibleHashTable(bucket_capacity=bucket_capacity)

    def put(self, block: Block) -> None:
        """Insert or replace the block under its key."""
        self._table.put(block.key, block)

    def get(self, key: int) -> Block:
        blk = self._table.get(key)
        if blk is None:
            raise HDDAError(f"no block stored under key {key}")
        return blk

    def pop(self, key: int) -> Block:
        """Remove and return the block (used when migrating blocks away)."""
        try:
            return self._table.remove(key)
        except KeyError as exc:
            raise HDDAError(f"no block stored under key {key}") from exc

    def __contains__(self, key: int) -> bool:
        return key in self._table

    def __len__(self) -> int:
        return len(self._table)

    def blocks(self) -> Iterator[Block]:
        for _, blk in self._table.items():
            yield blk

    def keys(self) -> Iterator[int]:
        return self._table.keys()

    @property
    def total_bytes(self) -> int:
        """Accounting size of everything stored here."""
        return sum(b.nbytes for b in self.blocks())

    @property
    def total_cells(self) -> int:
        return sum(b.box.num_cells for b in self.blocks())

    def map_payloads(self, fn: Callable[[Block], Any]) -> None:
        """Apply ``fn`` to every block, storing its return as the new payload."""
        for blk in list(self.blocks()):
            blk.payload = fn(blk)

    def stats(self) -> dict[str, float]:
        s = self._table.stats()
        s["total_bytes"] = float(self.total_bytes)
        return s

    def check_invariants(self) -> None:
        self._table.check_invariants()
        for key, blk in self._table.items():
            if blk.key != key:
                raise HDDAError(
                    f"block stored under key {key} carries key {blk.key}"
                )
