"""The Hierarchical Distributed Dynamic Array facade.

:class:`HDDA` ties together the hierarchical index space and per-processor
block stores, and exposes the two operations the GrACE runtime needs:

- **grow/shrink**: register and drop blocks as the hierarchy regrids;
- **redistribute**: given a new box->processor assignment from a partitioner,
  compute a :class:`MigrationPlan` (which blocks move where, and how many
  bytes that is) and apply it.

The migration plan is what couples partitioning quality to redistribution
cost in the simulated runtime: a partitioner that churns ownership pays for
it in modelled communication time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

import numpy as np

from repro.hdda.index import HierarchicalIndexSpace
from repro.hdda.storage import Block, BlockStore
from repro.util.errors import HDDAError
from repro.util.geometry import Box, BoxList

__all__ = ["OwnershipMap", "MigrationPlan", "HDDA"]

#: Accounting bytes per grid cell (one double-precision field value).
BYTES_PER_CELL = 8


class OwnershipMap:
    """Mapping from block keys to owning processor ranks."""

    def __init__(self, num_procs: int):
        if num_procs < 1:
            raise HDDAError(f"num_procs must be >= 1, got {num_procs}")
        self.num_procs = num_procs
        self._owner: dict[int, int] = {}

    def assign(self, key: int, rank: int) -> None:
        if not 0 <= rank < self.num_procs:
            raise HDDAError(f"rank {rank} out of range [0, {self.num_procs})")
        self._owner[key] = rank

    def owner(self, key: int) -> int:
        try:
            return self._owner[key]
        except KeyError as exc:
            raise HDDAError(f"key {key} has no owner") from exc

    def drop(self, key: int) -> None:
        self._owner.pop(key, None)

    def keys_of(self, rank: int) -> list[int]:
        return [k for k, r in self._owner.items() if r == rank]

    def __len__(self) -> int:
        return len(self._owner)

    def __contains__(self, key: int) -> bool:
        return key in self._owner

    def counts(self) -> np.ndarray:
        """Blocks per rank, shape (num_procs,)."""
        out = np.zeros(self.num_procs, dtype=np.int64)
        for r in self._owner.values():
            out[r] += 1
        return out


@dataclass(slots=True)
class MigrationPlan:
    """Blocks that must change address space after a repartition.

    ``moves`` maps ``(src_rank, dst_rank)`` to the list of block keys going
    that way; ``bytes_moved`` aggregates accounting bytes per directed pair.
    """

    moves: dict[tuple[int, int], list[int]] = field(default_factory=dict)
    bytes_moved: dict[tuple[int, int], int] = field(default_factory=dict)

    def add(self, src: int, dst: int, key: int, nbytes: int) -> None:
        self.moves.setdefault((src, dst), []).append(key)
        self.bytes_moved[(src, dst)] = (
            self.bytes_moved.get((src, dst), 0) + nbytes
        )

    @property
    def total_blocks(self) -> int:
        return sum(len(v) for v in self.moves.values())

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_moved.values())

    def is_empty(self) -> bool:
        return not self.moves


class HDDA:
    """Distributed dynamic array over a simulated set of address spaces.

    Parameters
    ----------
    index_space:
        The hierarchical SFC index space addressing the hierarchy.
    num_procs:
        Number of address spaces (simulated processors).
    bytes_per_cell:
        Accounting size of one cell's data (default: one float64).
    """

    def __init__(
        self,
        index_space: HierarchicalIndexSpace,
        num_procs: int,
        bytes_per_cell: int = BYTES_PER_CELL,
    ):
        self.index_space = index_space
        self.num_procs = num_procs
        self.bytes_per_cell = bytes_per_cell
        self.stores: list[BlockStore] = [BlockStore() for _ in range(num_procs)]
        self.ownership = OwnershipMap(num_procs)

    # ------------------------------------------------------------------
    # Grow / shrink
    # ------------------------------------------------------------------
    def register_box(self, box: Box, rank: int, payload=None) -> int:
        """Create a block for ``box`` owned by ``rank``; returns its key."""
        key = self.index_space.key_for_box(box)
        if key in self.ownership:
            raise HDDAError(f"box {box} already registered (key {key})")
        blk = Block(
            key=key,
            box=box,
            payload=payload,
            nbytes=box.num_cells * self.bytes_per_cell,
        )
        self.stores[rank].put(blk)
        self.ownership.assign(key, rank)
        return key

    def unregister_box(self, box: Box) -> None:
        """Drop the block for ``box`` (hierarchy shrank at regrid)."""
        key = self.index_space.key_for_box(box)
        rank = self.ownership.owner(key)
        self.stores[rank].pop(key)
        self.ownership.drop(key)

    def clear(self) -> None:
        """Drop every block (full hierarchy rebuild)."""
        self.stores = [BlockStore() for _ in range(self.num_procs)]
        self.ownership = OwnershipMap(self.num_procs)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def get_block(self, box: Box) -> Block:
        key = self.index_space.key_for_box(box)
        return self.stores[self.ownership.owner(key)].get(key)

    def owner_of(self, box: Box) -> int:
        return self.ownership.owner(self.index_space.key_for_box(box))

    def boxes_of(self, rank: int) -> BoxList:
        """All boxes owned by ``rank``, in index order."""
        blocks = [self.stores[rank].get(k) for k in self.ownership.keys_of(rank)]
        return BoxList(
            b.box for b in sorted(blocks, key=lambda blk: blk.key)
        )

    def all_boxes(self) -> BoxList:
        out: list[tuple[int, Box]] = []
        for rank in range(self.num_procs):
            for key in self.ownership.keys_of(rank):
                out.append((key, self.stores[rank].get(key).box))
        return BoxList(b for _, b in sorted(out, key=lambda kv: kv[0]))

    @property
    def total_blocks(self) -> int:
        return len(self.ownership)

    def cells_per_rank(self) -> np.ndarray:
        out = np.zeros(self.num_procs, dtype=np.int64)
        for rank in range(self.num_procs):
            out[rank] = self.stores[rank].total_cells
        return out

    # ------------------------------------------------------------------
    # Redistribution
    # ------------------------------------------------------------------
    def plan_redistribution(
        self, assignment: Mapping[Box, int] | Iterable[tuple[Box, int]]
    ) -> MigrationPlan:
        """Plan the block moves needed to realize a new box->rank assignment.

        Boxes in the assignment that are not yet registered are ignored here
        (they are *new* blocks, created by :meth:`apply_assignment`); blocks
        not mentioned in the assignment keep their current owner.
        """
        items = (
            assignment.items()
            if isinstance(assignment, Mapping)
            else list(assignment)
        )
        plan = MigrationPlan()
        for box, dst in items:
            if not 0 <= dst < self.num_procs:
                raise HDDAError(f"rank {dst} out of range")
            key = self.index_space.key_for_box(box)
            if key not in self.ownership:
                continue
            src = self.ownership.owner(key)
            if src != dst:
                nbytes = self.stores[src].get(key).nbytes
                plan.add(src, dst, key, nbytes)
        return plan

    def apply_assignment(
        self, assignment: Mapping[Box, int] | Iterable[tuple[Box, int]]
    ) -> MigrationPlan:
        """Make the array match a partitioner's assignment exactly.

        Existing blocks move (returned in the plan), blocks for new boxes are
        created in place, and blocks whose boxes disappeared are dropped.
        """
        items = list(
            assignment.items()
            if isinstance(assignment, Mapping)
            else assignment
        )
        plan = self.plan_redistribution(items)
        # Execute moves.
        for (src, dst), keys in plan.moves.items():
            for key in keys:
                blk = self.stores[src].pop(key)
                self.stores[dst].put(blk)
                self.ownership.assign(key, dst)
        # Create new blocks, tracking the desired final key set.
        desired: set[int] = set()
        for box, rank in items:
            key = self.index_space.key_for_box(box)
            desired.add(key)
            if key not in self.ownership:
                self.register_box(box, rank)
        # Drop stale blocks.
        for key in list(self.ownership._owner):
            if key not in desired:
                rank = self.ownership.owner(key)
                self.stores[rank].pop(key)
                self.ownership.drop(key)
        return plan

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def locality_score(self) -> float:
        """Fraction of index-adjacent block pairs owned by one rank.

        1.0 means the ownership map is a set of contiguous curve spans (the
        ideal the SFC layout aims for); values near ``1/num_procs`` indicate
        ownership uncorrelated with curve position.
        """
        keys = sorted(self.ownership._owner)
        if len(keys) < 2:
            return 1.0
        owners = [self.ownership.owner(k) for k in keys]
        same = sum(1 for a, b in zip(owners, owners[1:]) if a == b)
        return same / (len(keys) - 1)

    def check_invariants(self) -> None:
        """Ownership map and stores must agree exactly."""
        seen: set[int] = set()
        for rank in range(self.num_procs):
            for key in self.stores[rank].keys():
                if key in seen:
                    raise HDDAError(f"key {key} stored on multiple ranks")
                seen.add(key)
                if self.ownership.owner(key) != rank:
                    raise HDDAError(
                        f"key {key} stored on rank {rank} but owned by "
                        f"{self.ownership.owner(key)}"
                    )
            self.stores[rank].check_invariants()
        if seen != set(self.ownership._owner):
            raise HDDAError("ownership map and stores disagree on key set")
