"""Hierarchical Distributed Dynamic Array (HDDA).

The HDDA is GrACE's lowest data-management layer: an array that is
*hierarchical* (each element can recursively be an array -- here, one block
per grid-hierarchy bounding box) and *dynamic* (it grows and shrinks at every
regrid).  It is composed of

- a **hierarchical index space** derived from the application domain through
  space-filling mappings (:mod:`repro.hdda.index`),
- **extendible-hash storage** for dynamic blocks (:mod:`repro.hdda.storage`),
- a **distribution layer** mapping index-space spans to owning processors and
  planning data migration on repartition (:mod:`repro.hdda.hdda`).

Index locality on the space-filling curve translates spatial application
locality into storage locality, which is what makes SFC-span ownership a
communication-friendly distribution.
"""

from repro.hdda.index import HierarchicalIndexSpace
from repro.hdda.storage import BlockStore
from repro.hdda.hdda import HDDA, MigrationPlan, OwnershipMap

__all__ = [
    "HierarchicalIndexSpace",
    "BlockStore",
    "HDDA",
    "MigrationPlan",
    "OwnershipMap",
]
