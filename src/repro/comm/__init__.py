"""Simulated message-passing layer.

Substitute for the MPI transport under GrACE: the experiments need the
*cost* of communication phases (ghost exchanges, data migration,
reductions), not actual data movement, so :class:`SimCommunicator` prices
message patterns against the cluster's link model and current node
bandwidths, and keeps traffic counters for diagnostics.
"""

from repro.comm.simmpi import CommStats, SimCommunicator

__all__ = ["SimCommunicator", "CommStats"]
