"""Communication cost accounting over the simulated cluster.

Model
-----
- Point-to-point: alpha-beta cost from :class:`repro.cluster.LinkModel`,
  throttled by the slower endpoint's current NIC bandwidth.
- Exchange phases (ghost sync, migration): each rank serializes its own
  sends and receives; the phase lasts as long as the busiest rank.  This is
  the standard post-office model for single-NIC nodes on switched Ethernet.
- Collectives: binomial-tree allreduce/broadcast, ``ceil(log2 P)`` rounds of
  the slowest-pair point-to-point cost.

The communicator never moves payloads -- the HDDA already holds them; here
we only price the pattern and tally statistics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.cluster.cluster import Cluster
from repro.util.errors import SimulationError

__all__ = ["CommStats", "SimCommunicator"]


@dataclass(slots=True)
class CommStats:
    """Cumulative traffic counters."""

    messages: int = 0
    bytes_sent: int = 0
    point_to_point_time: float = 0.0
    collective_time: float = 0.0
    per_pair_bytes: dict[tuple[int, int], int] = field(default_factory=dict)

    def record_message(self, src: int, dst: int, nbytes: int, seconds: float) -> None:
        self.messages += 1
        self.bytes_sent += nbytes
        self.point_to_point_time += seconds
        self.per_pair_bytes[(src, dst)] = (
            self.per_pair_bytes.get((src, dst), 0) + nbytes
        )


class SimCommunicator:
    """Prices communication patterns on a simulated cluster."""

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        self.stats = CommStats()

    @property
    def size(self) -> int:
        return self.cluster.num_nodes

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise SimulationError(f"rank {rank} out of range [0, {self.size})")

    # ------------------------------------------------------------------
    def p2p_time(
        self, src: int, dst: int, nbytes: float, t: float | None = None
    ) -> float:
        """Seconds for one message from ``src`` to ``dst`` at time ``t``."""
        self._check_rank(src)
        self._check_rank(dst)
        if src == dst:
            return 0.0  # local copy, charged to compute
        if not (self.cluster.is_up(src) and self.cluster.is_up(dst)):
            raise SimulationError(
                f"point-to-point {src}->{dst} has a down endpoint; "
                "recovery must evacuate or re-route this transfer"
            )
        s_bw = self.cluster.state_of(src, t).bandwidth_mbps
        d_bw = self.cluster.state_of(dst, t).bandwidth_mbps
        seconds = self.cluster.link.transfer_time(nbytes, s_bw, d_bw)
        self.stats.record_message(src, dst, int(nbytes), seconds)
        return seconds

    def exchange_time(
        self,
        pair_bytes: Mapping[tuple[int, int], float],
        t: float | None = None,
    ) -> np.ndarray:
        """Per-rank time for a neighbourhood exchange phase.

        ``pair_bytes[(src, dst)]`` is the payload volume from src to dst.
        Every rank's sends and receives serialize on its NIC; the function
        returns the per-rank busy time (callers usually take the max).
        """
        busy = np.zeros(self.size)
        for (src, dst), nbytes in pair_bytes.items():
            seconds = self.p2p_time(src, dst, nbytes, t)
            busy[src] += seconds
            busy[dst] += seconds
        return busy

    def allreduce_time(self, nbytes: float, t: float | None = None) -> float:
        """Binomial-tree allreduce over the *live* ranks.

        Down nodes are excluded from the tree -- an MPI implementation with
        fault tolerance (ULFM-style) shrinks the communicator; pricing them
        in would divide by a zero bandwidth.
        """
        live = [k for k in range(self.size) if self.cluster.is_up(k)]
        if len(live) <= 1:
            return 0.0
        rounds = math.ceil(math.log2(len(live)))
        states = [self.cluster.state_of(k, t) for k in live]
        slowest_bw = min(s.bandwidth_mbps for s in states)
        per_round = self.cluster.link.transfer_time(nbytes, slowest_bw, slowest_bw)
        seconds = rounds * per_round
        self.stats.collective_time += seconds
        return seconds

    def broadcast_time(self, nbytes: float, t: float | None = None) -> float:
        """Binomial-tree broadcast; same round structure as allreduce."""
        return self.allreduce_time(nbytes, t)

    # ------------------------------------------------------------------
    def migration_time(
        self,
        bytes_moved: Mapping[tuple[int, int], int],
        t: float | None = None,
    ) -> float:
        """Wall time of a data-migration phase (post-repartition).

        Returns the makespan: the busiest rank's serialized transfer time.
        """
        if not bytes_moved:
            return 0.0
        busy = self.exchange_time(bytes_moved, t)
        return float(busy.max())
