"""Communication cost accounting over the simulated cluster.

Model
-----
- Point-to-point: alpha-beta cost from :class:`repro.cluster.LinkModel`,
  throttled by the slower endpoint's current NIC bandwidth.
- Exchange phases (ghost sync, migration): each rank serializes its own
  sends and receives; the phase lasts as long as the busiest rank.  This is
  the standard post-office model for single-NIC nodes on switched Ethernet.
- Collectives: binomial-tree allreduce/broadcast, ``ceil(log2 P)`` rounds of
  the slowest-pair point-to-point cost.

The communicator never moves payloads -- the HDDA already holds them; here
we only price the pattern and tally statistics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.cluster.cluster import Cluster
from repro.telemetry.spans import NULL_TRACER
from repro.util.errors import SimulationError

__all__ = ["CommStats", "SimCommunicator"]

#: Exchange events carry at most this many per-pair rows; beyond it only
#: the heaviest pairs (by bytes) are kept and ``pairs_dropped`` says how
#: many fell off.  Keeps JSONL traces bounded on large clusters.
EVENT_PAIR_CAP = 512


@dataclass(slots=True)
class CommStats:
    """Cumulative traffic counters."""

    messages: int = 0
    bytes_sent: int = 0
    point_to_point_time: float = 0.0
    collective_time: float = 0.0
    per_pair_bytes: dict[tuple[int, int], int] = field(default_factory=dict)
    per_pair_seconds: dict[tuple[int, int], float] = field(default_factory=dict)
    per_pair_messages: dict[tuple[int, int], int] = field(default_factory=dict)

    def record_message(self, src: int, dst: int, nbytes: int, seconds: float) -> None:
        self.messages += 1
        self.bytes_sent += nbytes
        self.point_to_point_time += seconds
        pair = (src, dst)
        self.per_pair_bytes[pair] = self.per_pair_bytes.get(pair, 0) + nbytes
        self.per_pair_seconds[pair] = self.per_pair_seconds.get(pair, 0.0) + seconds
        self.per_pair_messages[pair] = self.per_pair_messages.get(pair, 0) + 1


class SimCommunicator:
    """Prices communication patterns on a simulated cluster.

    With a tracer bound (:meth:`bind_tracer`), traffic is also promoted
    into telemetry: ``comm.bytes_total``/``comm.messages_total`` counters,
    per-collective timing histograms, and one ``comm.exchange`` event per
    exchange phase carrying the per-pair volume/time/derating detail the
    communication profiler turns into rank-by-rank matrices.
    """

    def __init__(self, cluster: Cluster, tracer=None):
        self.cluster = cluster
        self.stats = CommStats()
        self._tracer = NULL_TRACER
        self._bytes_total = None
        self._messages_total = None
        if tracer is not None:
            self.bind_tracer(tracer)

    def bind_tracer(self, tracer) -> None:
        """Route traffic accounting into ``tracer``'s metrics and events.

        Binding a disabled tracer (or :data:`NULL_TRACER`) turns the
        instrumentation back off; the priced costs are bit-identical
        either way.
        """
        self._tracer = tracer
        if tracer is not None and tracer.enabled:
            self._bytes_total = tracer.metrics.counter("comm.bytes_total")
            self._messages_total = tracer.metrics.counter("comm.messages_total")
        else:
            self._tracer = NULL_TRACER
            self._bytes_total = None
            self._messages_total = None

    @property
    def size(self) -> int:
        return self.cluster.num_nodes

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise SimulationError(f"rank {rank} out of range [0, {self.size})")

    # ------------------------------------------------------------------
    def p2p_time(
        self, src: int, dst: int, nbytes: float, t: float | None = None
    ) -> float:
        """Seconds for one message from ``src`` to ``dst`` at time ``t``."""
        self._check_rank(src)
        self._check_rank(dst)
        if src == dst:
            return 0.0  # local copy, charged to compute
        if not (self.cluster.is_up(src) and self.cluster.is_up(dst)):
            raise SimulationError(
                f"point-to-point {src}->{dst} has a down endpoint; "
                "recovery must evacuate or re-route this transfer"
            )
        s_bw = self.cluster.state_of(src, t).bandwidth_mbps
        d_bw = self.cluster.state_of(dst, t).bandwidth_mbps
        seconds = self.cluster.link.transfer_time(nbytes, s_bw, d_bw)
        self.stats.record_message(src, dst, int(nbytes), seconds)
        if self._messages_total is not None:
            self._messages_total.inc()
            self._bytes_total.inc(int(nbytes))
        return seconds

    def exchange_time(
        self,
        pair_bytes: Mapping[tuple[int, int], float],
        t: float | None = None,
        phase: str = "exchange",
    ) -> np.ndarray:
        """Per-rank time for a neighbourhood exchange phase.

        ``pair_bytes[(src, dst)]`` is the payload volume from src to dst.
        Every rank's sends and receives serialize on its NIC; the function
        returns the per-rank busy time (callers usually take the max).
        ``phase`` labels the emitted ``comm.exchange`` telemetry event
        (``"ghost-exchange"``, ``"migration"``) when a tracer is bound.
        """
        busy = np.zeros(self.size)
        trace = self._tracer.enabled
        pairs: list[tuple[int, int, int, float, bool]] = []
        for (src, dst), nbytes in pair_bytes.items():
            seconds = self.p2p_time(src, dst, nbytes, t)
            busy[src] += seconds
            busy[dst] += seconds
            if trace and src != dst:
                eff_bw = min(
                    self.cluster.state_of(src, t).bandwidth_mbps,
                    self.cluster.state_of(dst, t).bandwidth_mbps,
                )
                nom_bw = min(
                    self.cluster.nodes[src].bandwidth_mbps,
                    self.cluster.nodes[dst].bandwidth_mbps,
                )
                derated = eff_bw < nom_bw * (1.0 - 1e-12)
                pairs.append((int(src), int(dst), int(nbytes), seconds, derated))
        if trace:
            self._emit_exchange_event(phase, pairs, busy, t)
        return busy

    def _emit_exchange_event(
        self,
        phase: str,
        pairs: list[tuple[int, int, int, float, bool]],
        busy: np.ndarray,
        t: float | None,
    ) -> None:
        total_bytes = int(sum(p[2] for p in pairs))
        derated_bytes = int(sum(p[2] for p in pairs if p[4]))
        messages = len(pairs)
        dropped = 0
        if len(pairs) > EVENT_PAIR_CAP:
            pairs = sorted(pairs, key=lambda p: p[2], reverse=True)
            dropped = len(pairs) - EVENT_PAIR_CAP
            pairs = pairs[:EVENT_PAIR_CAP]
        makespan = float(busy.max()) if busy.size else 0.0
        attrs = {
            "phase": phase,
            "ranks": self.size,
            "bytes": total_bytes,
            "messages": messages,
            "seconds": makespan,
            "derated_bytes": derated_bytes,
            "pairs": [list(p) for p in pairs],
        }
        if dropped:
            attrs["pairs_dropped"] = dropped
        if t is not None:
            attrs["t"] = float(t)
        self._tracer.event("comm.exchange", **attrs)
        self._tracer.metrics.histogram("comm.phase_seconds", phase=phase).observe(
            makespan
        )

    def allreduce_time(
        self, nbytes: float, t: float | None = None, op: str = "allreduce"
    ) -> float:
        """Binomial-tree allreduce over the *live* ranks.

        Down nodes are excluded from the tree -- an MPI implementation with
        fault tolerance (ULFM-style) shrinks the communicator; pricing them
        in would divide by a zero bandwidth.
        """
        live = [k for k in range(self.size) if self.cluster.is_up(k)]
        if len(live) <= 1:
            return 0.0
        rounds = math.ceil(math.log2(len(live)))
        states = [self.cluster.state_of(k, t) for k in live]
        slowest_bw = min(s.bandwidth_mbps for s in states)
        per_round = self.cluster.link.transfer_time(nbytes, slowest_bw, slowest_bw)
        seconds = rounds * per_round
        self.stats.collective_time += seconds
        if self._tracer.enabled:
            self._tracer.metrics.histogram(
                "comm.collective_seconds", op=op
            ).observe(seconds)
        return seconds

    def broadcast_time(self, nbytes: float, t: float | None = None) -> float:
        """Binomial-tree broadcast; same round structure as allreduce."""
        return self.allreduce_time(nbytes, t, op="broadcast")

    # ------------------------------------------------------------------
    def migration_time(
        self,
        bytes_moved: Mapping[tuple[int, int], int],
        t: float | None = None,
    ) -> float:
        """Wall time of a data-migration phase (post-repartition).

        Returns the makespan: the busiest rank's serialized transfer time.
        """
        if not bytes_moved:
            return 0.0
        busy = self.exchange_time(bytes_moved, t, phase="migration")
        return float(busy.max())
