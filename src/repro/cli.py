"""Command-line interface: regenerate any of the paper's results.

Usage::

    python -m repro list                 # what can be run
    python -m repro run fig7             # regenerate Fig. 7 / Table I
    python -m repro run table2 --quick   # smaller configuration
    python -m repro run all              # everything (takes a few minutes)
    python -m repro trace fig7           # run instrumented, export traces
    python -m repro report fig7          # run + health-analyse + HTML dash
    python -m repro report traces/fig7.events.jsonl   # offline, from file
    python -m repro profile fig10        # critical path + flamegraphs
    python -m repro profile traces/fig10.events.jsonl # offline profiling
    python -m repro top fig10            # live per-rank terminal view
    python -m repro bench-diff OLD.json NEW.json      # perf trajectory
    python -m repro chaos --nodes 8 --kill 2          # fault injection
    python -m repro campaign run SPEC.json --dir campaigns/a --workers 4
    python -m repro campaign status campaigns/a       # progress ledger
    python -m repro campaign resume campaigns/a --workers 4
    python -m repro campaign watch campaigns/a        # live progress tail
    python -m repro serve --root campaigns --port 8765  # HTTP front
    python -m repro learn fit campaigns/a             # fit cost models
    python -m repro learn inspect campaigns/a/learn   # model fit state
    python -m repro learn replay campaigns/a/learn    # learned vs fixed-f
    python -m repro run ablation-learn --ledger traces/ledger  # + provenance
    python -m repro explain traces/ledger/chaos/all   # audit the decisions
    python -m repro explain traces/ledger/chaos/all --decision 12
    python -m repro explain traces/ledger/chaos/all --calibration --regret

``campaign`` executes a scenario × partitioner × seed × config grid
(one JSON spec file) sharded across worker processes, checkpointing the
completed-cell ledger after every cell: a run killed at any point --
SIGKILL included -- resumes with ``campaign resume`` re-executing zero
completed cells, and the compacted result store is byte-identical to an
uninterrupted single-worker run.  Each cell also persists a per-cell
trace-artifact bundle (span JSONL, flamegraph, critical-path profile)
under ``artifacts/<cell-key>/`` and appends lifecycle events to the
campaign's ``events.jsonl`` progress log.  ``campaign watch`` tails
that log (or a serve ``/live`` SSE URL) as a live progress line with
throughput and ETA.  ``serve`` fronts a directory of campaigns with a
stdlib HTTP API (status, paginated cells, per-cell records and
artifacts, OpenMetrics at ``/metrics``, an SSE stream at
``/campaigns/<id>/live``, HTML report and dashboard) with
ETag-validated response caching.

``learn`` closes the loop from observability to decision-making: ``fit``
ingests a campaign's per-cell ``artifacts/<cell-key>/profile.json``
bundles into a durable execution-history store and fits the
least-squares cost/capacity models of :mod:`repro.learn`; ``inspect``
reports which models are fitted vs cold; ``replay`` re-runs the dynamic
Linux-cluster scenario with the learned policies (adaptive sensing
interval, payoff-gated repartitioning, transient capacity forecasting)
warm-started from that store and compares against the paper's fixed
f=20 loop.

``explain`` audits a decision ledger (written when a run's
:class:`~repro.learn.policy.LearnController` is given a
:class:`~repro.learn.audit.DecisionLedger`, e.g. via
``repro run ablation-learn --ledger DIR``): the default summary counts
records and gate accepts/skips; ``--decision SEQ`` reconstructs one
gate decision bit-exactly from its recorded inputs (exit 1 on any
divergence); ``--calibration`` scores the 95% CI coverage of the
one-step-ahead cost predictions; ``--regret`` re-prices every gate
decision with hindsight costs and reports the cumulative regret.

``profile`` reconstructs the per-iteration critical path from the span
stream (which rank's compute/exchange gated each step, slack per rank,
the headroom a perfect capacity-proportional partition could recover),
folds ``comm.exchange`` events into rank-by-rank traffic matrices with
derated-link attribution, and writes flamegraph (collapsed + speedscope
JSON) and OpenMetrics artifacts.

``chaos`` runs a distributed AMR execution under a seeded fault plan
(node crashes mid-run, recovery later), with checkpoint/restart and
failure-aware repartitioning enabled, and reports time-to-recover plus
solution-integrity stats: the final solution must be bitwise identical
to an undisturbed sequential run.

``trace`` runs one experiment under an enabled telemetry tracer and writes
three artifacts to ``--out-dir`` (default ``traces/``): a Chrome
trace-event JSON loadable in Perfetto (one track per simulated rank), a
JSONL span/event log, and a JSON metrics summary.

``report`` additionally runs the health monitor (anomaly detection
against the paper's 40 % imbalance bound, probe-overhead and
capacity-drift rules, duration-spike z-scores) and renders one
self-contained HTML dashboard; given a path to an exported ``.jsonl``
trace it analyses offline without re-running anything.

Each experiment prints the same rows/series the paper reports, produced by
the corresponding builder in :mod:`repro.runtime.experiment` /
:mod:`repro.runtime.ablation`.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Callable

from repro.runtime import ablation as ab
from repro.runtime import experiment as ex
from repro.runtime import reporting as rep
from repro.telemetry import (
    HealthMonitor,
    LiveTop,
    Tracer,
    activate,
    aggregate_phases,
    analyze_critical_path,
    comm_profile,
    diff_bench_files,
    format_critical_path_report,
    format_diff,
    openmetrics_selfcheck,
    registry_from_records,
    write_chrome_trace,
    write_collapsed,
    write_dashboard,
    write_jsonl,
    write_metrics_json,
    write_openmetrics,
    write_speedscope,
)

__all__ = ["main", "EXPERIMENTS"]


def _run_fig7(quick: bool) -> str:
    data = ex.execution_time_comparison(
        processor_counts=(4, 8, 16, 32),
        iterations=20 if quick else 40,
        seeds=(7,) if quick else (7, 19, 31),
    )
    return rep.format_fig7_table1(data)


def _run_fig8(quick: bool) -> str:
    return rep.format_load_assignment(
        ex.load_assignment_tracking("composite", num_regrids=4 if quick else 8)
    )


def _run_fig9(quick: bool) -> str:
    return rep.format_load_assignment(
        ex.load_assignment_tracking(
            "heterogeneous", num_regrids=4 if quick else 8
        )
    )


def _run_fig10(quick: bool) -> str:
    return rep.format_imbalance(
        ex.imbalance_comparison(num_regrids=3 if quick else 6)
    )


def _run_fig11(quick: bool) -> str:
    return rep.format_dynamic_allocation(
        ex.dynamic_allocation_trace(
            num_sensings=2, iterations=20 if quick else 30
        )
    )


def _run_table2(quick: bool) -> str:
    data = ex.dynamic_vs_static_sensing(
        processor_counts=(2, 4) if quick else (2, 4, 6, 8),
        iterations=80 if quick else 160,
        seeds=(5,) if quick else (5, 11, 23),
    )
    return rep.format_table2(data)


def _run_table3(quick: bool) -> str:
    data = ex.sensing_frequency_sweep(
        frequencies=(10, 40) if quick else (2, 10, 20, 30, 60),
        iterations=80 if quick else 160,
        seeds=(5,) if quick else (5, 11, 23),
    )
    return rep.format_table3(data)


def _run_fig12_15(quick: bool) -> str:
    data = ex.sensing_frequency_traces(
        frequencies=(10, 40) if quick else (10, 20, 30, 40),
        iterations=60 if quick else 120,
    )
    return rep.format_frequency_traces(data)


def _run_ablation_weights(quick: bool) -> str:
    data = ab.weight_ablation(iterations=15 if quick else 30)
    lines = [f"weight ablation ({data['cluster']} cluster):"]
    for row in sorted(data["rows"], key=lambda r: r["seconds"]):
        lines.append(f"  {row['profile']:>14}: {row['seconds']:7.1f}s")
    return "\n".join(lines)


def _run_ablation_multiaxis(quick: bool) -> str:
    lines = []
    for label, kwargs in (
        ("coarse (min=8, snap=4)", {"min_box_size": 8, "snap": 4}),
        ("fine   (min=2, snap=2)", {"min_box_size": 2, "snap": 2}),
    ):
        data = ab.multiaxis_split_ablation(
            num_regrids=4 if quick else 8, **kwargs
        )
        lines.append(f"granularity {label}:")
        for rule, rec in data.items():
            lines.append(
                f"  {rule:>13}: worst imbalance "
                f"{max(rec['max_imbalance_pct']):5.1f}%, "
                f"{rec['total_splits']} splits"
            )
    return "\n".join(lines)


def _run_ablation_forecasters(quick: bool) -> str:
    data = ab.forecaster_ablation(
        probes=20 if quick else 40, seeds=(0,) if quick else (0, 1, 2)
    )
    lines = [f"capacity MAE under {data['noise']:.0%} measurement noise:"]
    for row in sorted(data["rows"], key=lambda r: r["mae"]):
        lines.append(f"  {row['forecaster']:>9}: {row['mae']:.4f}")
    return "\n".join(lines)


def _run_sweep_probe_cost(quick: bool) -> str:
    data = ab.probe_cost_sensitivity(
        probe_costs=(0.0, 2.0) if quick else (0.0, 0.5, 2.0, 8.0),
        iterations=60 if quick else 120,
    )
    lines = [
        "dynamic-sensing benefit vs probe cost "
        f"(sensing every {data['sensing_interval']} its):"
    ]
    for row in data["rows"]:
        lines.append(
            f"  probe {row['probe_cost_s']:4.1f}s: benefit "
            f"{row['benefit_pct']:5.1f}%"
        )
    return "\n".join(lines)


def _run_sweep_heterogeneity(quick: bool) -> str:
    data = ab.heterogeneity_sweep(
        load_levels=(0.0, 2.0) if quick else (0.0, 0.5, 1.0, 2.0, 4.0),
        iterations=15 if quick else 30,
    )
    lines = [f"improvement vs load level ({data['procs']} procs):"]
    for row in data["rows"]:
        lines.append(
            f"  load {row['load_level']:3.1f}: {row['improvement_pct']:5.1f}%"
        )
    return "\n".join(lines)


def _run_ablation_learn(quick: bool, ledger_dir: str | None = None) -> str:
    data = ab.learn_ablation(
        iterations=60 if quick else 150, ledger_dir=ledger_dir
    )
    lines = [
        "learned-policy ablation vs fixed "
        f"f={data['sensing_interval']} "
        f"(regrid every {data['regrid_interval']} its):"
    ]
    for scenario, rec in data["scenarios"].items():
        lines.append(f"  {scenario}:")
        for row in rec["rows"]:
            extra = ""
            if "sensing_interval" in row:
                extra = (
                    f", f->{row['sensing_interval']}, "
                    f"gate {row['gate_skips']}/{row['gate_decisions']} "
                    "skipped"
                )
            lines.append(
                f"    {row['variant']:>10}: {row['seconds']:7.1f}s "
                f"({row['win_pct']:+5.1f}%, "
                f"{row['num_sensings']} sensings{extra})"
            )
    if ledger_dir is not None:
        lines.append(
            f"decision ledgers written under {ledger_dir}/<scenario>/"
            "<variant> -- audit with `repro explain`"
        )
    return "\n".join(lines)


def _run_ablation_panel(quick: bool) -> str:
    data = ab.partitioner_panel(iterations=15 if quick else 30)
    lines = ["partitioner panel (8-node loaded cluster):"]
    for row in sorted(data["rows"], key=lambda r: r["seconds"]):
        lines.append(
            f"  {row['partitioner']:>17}: {row['seconds']:7.1f}s, "
            f"mean imbalance {row['mean_imbalance_pct']:5.1f}%"
        )
    return "\n".join(lines)


EXPERIMENTS: dict[str, tuple[str, Callable[[bool], str]]] = {
    "fig7": ("Fig. 7 / Table I: execution time vs processors", _run_fig7),
    "table1": ("alias of fig7", _run_fig7),
    "fig8": ("Fig. 8: load assignment, default partitioner", _run_fig8),
    "fig9": ("Fig. 9: load assignment, ACEHeterogeneous", _run_fig9),
    "fig10": ("Fig. 10: % load imbalance, both schemes", _run_fig10),
    "fig11": ("Fig. 11: dynamic load allocation", _run_fig11),
    "table2": ("Table II: dynamic vs static sensing", _run_table2),
    "table3": ("Table III: sensing frequency sweep", _run_table3),
    "fig12-15": ("Figs. 12-15: sensing-frequency traces", _run_fig12_15),
    "ablation-weights": ("weight-choice ablation", _run_ablation_weights),
    "ablation-multiaxis": (
        "multi-axis splitting ablation", _run_ablation_multiaxis,
    ),
    "ablation-forecasters": (
        "forecaster-choice ablation", _run_ablation_forecasters,
    ),
    "ablation-panel": ("partitioner panel", _run_ablation_panel),
    "ablation-learn": (
        "learned-policy ablation (adaptive-f / gate / transient)",
        _run_ablation_learn,
    ),
    "sweep-probe-cost": (
        "probe-cost sensitivity sweep", _run_sweep_probe_cost,
    ),
    "sweep-heterogeneity": (
        "improvement vs heterogeneity sweep", _run_sweep_heterogeneity,
    ),
}


def _lookup_experiment(name: str) -> Callable[[bool], str] | None:
    """Resolve an experiment id, printing a clear error for unknown names.

    Every subcommand that takes an experiment goes through here, so a typo
    always yields exit code 2 with the list of valid ids -- never a raw
    traceback.
    """
    entry = EXPERIMENTS.get(name)
    if entry is not None:
        return entry[1]
    close = [k for k in EXPERIMENTS if name.lower() in k or k in name.lower()]
    hint = f" (did you mean: {', '.join(close)}?)" if close else ""
    print(
        f"unknown experiment {name!r}{hint}; "
        f"valid ids: {', '.join(EXPERIMENTS)}",
        file=sys.stderr,
    )
    return None


def _load_records_or_fail(path: Path) -> list[dict] | None:
    """Parse a JSONL trace, or print one clear line and return ``None``.

    Every CLI path that reads a user-supplied trace file funnels through
    here so a missing, unreadable or corrupt file is always a one-line
    error and exit code 2, never a traceback.
    """
    if not path.is_file():
        print(f"trace file not found: {path}", file=sys.stderr)
        return None
    records: list[dict] = []
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                if not isinstance(record, dict):
                    raise ValueError(
                        f"line {lineno}: expected a JSON object, "
                        f"got {type(record).__name__}"
                    )
                records.append(record)
    except (json.JSONDecodeError, UnicodeDecodeError, ValueError, OSError) as exc:
        print(f"corrupt trace file {path}: {exc}", file=sys.stderr)
        return None
    if not records:
        print(f"trace file {path} contains no records", file=sys.stderr)
        return None
    return records


def _run_traced(experiment: str, quick: bool, out_dir: str) -> int:
    """Run one experiment instrumented; write trace + metrics artifacts."""
    fn = _lookup_experiment(experiment)
    if fn is None:
        return 2
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    tracer = Tracer()
    with activate(tracer):
        print(fn(quick))
    trace_path = out / f"{experiment}.trace.json"
    events_path = out / f"{experiment}.events.jsonl"
    metrics_path = out / f"{experiment}.metrics.json"
    write_chrome_trace(tracer, trace_path)
    write_jsonl(tracer, events_path)
    write_metrics_json(tracer, metrics_path)
    phases = aggregate_phases(tracer)
    print()
    print(
        f"telemetry: {len(tracer.spans)} spans, {len(tracer.events)} events, "
        f"{len(tracer.run_labels)} traced runs"
    )
    for name in sorted(phases, key=lambda n: -phases[n]["sim_seconds"]):
        agg = phases[name]
        print(
            f"  {name:>16}: {agg['count']:5.0f} spans, "
            f"{agg['sim_seconds']:10.2f} sim s, "
            f"{agg['wall_seconds']:8.3f} wall s"
        )
    print(f"chrome trace (Perfetto-loadable): {trace_path}")
    print(f"event log (JSONL):                {events_path}")
    print(f"metrics summary (JSON):           {metrics_path}")
    return 0


def _print_health_summary(monitor: HealthMonitor) -> None:
    summary = monitor.summary()
    print(
        f"health: {summary['num_snapshots']} iteration snapshots, "
        f"worst mean imbalance "
        f"{summary['worst_imbalance_pct']:.1f}% "
        f"(bound {summary['imbalance_bound_pct']:g}%)"
    )
    if monitor.events:
        by_sev = summary["events_by_severity"]
        counts = ", ".join(f"{n} {sev}" for sev, n in sorted(by_sev.items()))
        print(f"anomalies: {counts}")
        for event in monitor.events[:10]:
            print(
                f"  [{event.severity}] it {event.iteration} "
                f"(run {event.pid}): {event.message}"
            )
        if len(monitor.events) > 10:
            print(f"  ... and {len(monitor.events) - 10} more (see dashboard)")
    else:
        print("anomalies: none detected")


def _run_report(target: str, quick: bool, out_dir: str) -> int:
    """Render the health dashboard for an experiment or a trace file.

    ``target`` is either an experiment id (the experiment runs
    instrumented with a health monitor attached) or a path to a
    previously exported ``.events.jsonl`` trace (offline analysis).
    """
    out = Path(out_dir)
    path = Path(target)
    if path.suffix == ".jsonl" or path.is_file():
        records = _load_records_or_fail(path)
        if records is None:
            return 2
        out.mkdir(parents=True, exist_ok=True)
        stem = path.name.removesuffix(".jsonl").removesuffix(".events")
        dashboard_path = out / f"{stem}.dashboard.html"
        write_dashboard(
            records,
            dashboard_path,
            title=f"Health dashboard — {path.name}",
        )
        print(f"health dashboard (self-contained): {dashboard_path}")
        return 0
    fn = _lookup_experiment(target)
    if fn is None:
        return 2
    out.mkdir(parents=True, exist_ok=True)
    tracer = Tracer()
    health = HealthMonitor()
    health.attach(tracer)
    with activate(tracer):
        print(fn(quick))
    health.finish()
    print()
    _print_health_summary(health)
    events_path = out / f"{target}.events.jsonl"
    dashboard_path = out / f"{target}.dashboard.html"
    write_jsonl(tracer, events_path)
    write_dashboard(
        tracer, dashboard_path, title=f"Health dashboard — {target}"
    )
    print(f"event log (JSONL):                 {events_path}")
    print(f"health dashboard (self-contained): {dashboard_path}")
    return 0


def _write_profile_artifacts(
    source, out: Path, stem: str, run_labels: dict[int, str] | None = None
) -> int:
    """Analyze ``source`` and write the full profile artifact set."""
    out.mkdir(parents=True, exist_ok=True)
    results = analyze_critical_path(source, run_labels=run_labels)
    print(format_critical_path_report(results))
    comm = comm_profile(source, run_labels=run_labels)
    for profile in comm:
        total = profile.total
        derated = total.derated_bytes_total
        share = 100.0 * derated / total.bytes_total if total.bytes_total else 0.0
        print(
            f"comm [{profile.label}]: {total.bytes_total / 1e6:.2f} MB over "
            f"{profile.events} exchange phases, {total.seconds_total:.4f} s "
            f"on NICs, {share:.1f}% of bytes over derated links"
        )
        for pair in total.top_pairs(3):
            print(
                f"  {pair['src']}->{pair['dst']}: "
                f"{pair['bytes'] / 1e6:.2f} MB, {pair['seconds']:.4f} s"
                + ("  [derated link]" if pair["derated"] else "")
            )
    critical_path = out / f"{stem}.critical_path.json"
    comm_path = out / f"{stem}.comm.json"
    collapsed_path = out / f"{stem}.collapsed.txt"
    speedscope_path = out / f"{stem}.speedscope.json"
    openmetrics_path = out / f"{stem}.openmetrics.txt"
    with open(critical_path, "w", encoding="utf-8") as fh:
        json.dump([r.to_dict() for r in results], fh, indent=1)
        fh.write("\n")
    with open(comm_path, "w", encoding="utf-8") as fh:
        json.dump([p.to_dict() for p in comm], fh, indent=1)
        fh.write("\n")
    write_collapsed(source, collapsed_path)
    write_speedscope(source, speedscope_path, name=stem)
    registry = registry_from_records(source)
    write_openmetrics(registry, openmetrics_path)
    problems = openmetrics_selfcheck(
        openmetrics_path.read_text(encoding="utf-8")
    )
    if problems:
        print(
            "openmetrics self-check failed: " + "; ".join(problems),
            file=sys.stderr,
        )
        return 1
    print(f"critical-path analysis (JSON):    {critical_path}")
    print(f"communication matrices (JSON):    {comm_path}")
    print(f"flamegraph (collapsed stacks):    {collapsed_path}")
    print(f"flamegraph (speedscope.app JSON): {speedscope_path}")
    print(f"metrics (OpenMetrics text):       {openmetrics_path}")
    return 0


def _run_profile(target: str, quick: bool, out_dir: str) -> int:
    """Profile an experiment run or a previously exported trace.

    ``target`` is an experiment id (runs instrumented, then profiles the
    live tracer) or a path to an exported ``.events.jsonl`` trace
    (offline profiling, nothing re-runs).
    """
    out = Path(out_dir)
    path = Path(target)
    if path.suffix == ".jsonl" or path.is_file():
        records = _load_records_or_fail(path)
        if records is None:
            return 2
        stem = path.name.removesuffix(".jsonl").removesuffix(".events")
        return _write_profile_artifacts(records, out, stem)
    fn = _lookup_experiment(target)
    if fn is None:
        return 2
    tracer = Tracer()
    with activate(tracer):
        print(fn(quick))
    print()
    out.mkdir(parents=True, exist_ok=True)
    events_path = out / f"{target}.events.jsonl"
    write_jsonl(tracer, events_path)
    status = _write_profile_artifacts(tracer, out, target)
    print(f"event log (JSONL):                {events_path}")
    return status


def _run_top(experiment: str, quick: bool, interval: int) -> int:
    """Run an experiment with the live span-observer terminal view."""
    fn = _lookup_experiment(experiment)
    if fn is None:
        return 2
    top = LiveTop()
    tracer = Tracer()
    live = sys.stdout.isatty()
    state = {"iterations": 0}

    def refresh(span) -> None:
        top.on_span_close(span)
        if span.name != "iteration":
            return
        state["iterations"] += 1
        if live and state["iterations"] % max(1, interval) == 0:
            # Home the cursor and clear below: stable in-place refresh.
            sys.stdout.write("\x1b[H\x1b[J" + top.render() + "\n")
            sys.stdout.flush()

    tracer.add_observer(refresh)
    with activate(tracer):
        output = fn(quick)
    tracer.remove_observer(refresh)
    if live:
        sys.stdout.write("\x1b[H\x1b[J")
    print(top.render())
    print()
    print(output)
    return 0


def _run_chaos(
    nodes: int,
    kill: int,
    steps: int,
    seed: int,
    checkpoint_interval: int,
    out_dir: str,
) -> int:
    """Run the chaos experiment; print recovery + integrity stats."""
    from repro.runtime.experiment import chaos_experiment

    if not 0 < kill < nodes:
        print(
            f"--kill must leave at least one survivor: "
            f"kill={kill}, nodes={nodes}",
            file=sys.stderr,
        )
        return 2
    tracer = Tracer()
    with activate(tracer):
        stats = chaos_experiment(
            num_nodes=nodes,
            steps=steps,
            kill=kill,
            seed=seed,
            checkpoint_interval=checkpoint_interval,
            tracer=tracer,
        )
    print(
        f"chaos run: {stats['steps']} steps on {stats['num_nodes']} nodes, "
        f"killed {stats['killed_nodes']} at t={stats['outage_at_s']:.2f}s "
        f"for {stats['outage_duration_s']:.2f}s (plan seed {seed})"
    )
    print(
        f"  checkpoints: {stats['num_checkpoints']} "
        f"({stats['checkpoint_seconds']:.3f}s I/O), "
        f"restores: {stats['num_restores']}, "
        f"recoveries: {stats['num_recoveries']}, "
        f"replayed steps: {stats['replayed_steps']}"
    )
    ttr = stats["mean_time_to_recover_s"]
    print(
        "  time-to-recover: "
        + (f"{ttr:.3f}s (mean)" if ttr is not None else "n/a")
        + f", recovery time total: {stats['recovery_seconds']:.3f}s"
    )
    print(
        f"  runtime: {stats['chaos_seconds']:.2f}s vs fault-free "
        f"{stats['baseline_seconds']:.2f}s "
        f"({stats['overhead_pct']:+.1f}% overhead)"
    )
    ok = stats["bitwise_identical"]
    print(
        "  solution integrity: "
        + ("bitwise identical to the sequential run" if ok else "MISMATCH")
    )
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    events_path = out / "chaos.events.jsonl"
    dashboard_path = out / "chaos.dashboard.html"
    write_jsonl(tracer, events_path)
    write_dashboard(
        tracer, dashboard_path, title="Chaos run — fault injection dashboard"
    )
    print(f"event log (JSONL):                 {events_path}")
    print(f"health dashboard (self-contained): {dashboard_path}")
    return 0 if ok else 1


def _load_campaign_spec_for_dir(directory: Path):
    """Recover the spec a campaign directory was created from."""
    from repro.campaign.orchestrator import META_NAME
    from repro.campaign.spec import CampaignSpec
    from repro.util.errors import CampaignError

    meta_path = directory / META_NAME
    if not meta_path.is_file():
        raise CampaignError(
            f"{directory} is not a campaign directory (no {META_NAME}); "
            f"start one with 'repro campaign run SPEC --dir {directory}'"
        )
    try:
        meta = json.loads(meta_path.read_text(encoding="utf-8"))
        return CampaignSpec.from_dict(meta["spec"])
    except (json.JSONDecodeError, OSError, KeyError) as exc:
        raise CampaignError(
            f"unreadable campaign metadata {meta_path}: {exc}"
        ) from exc


def _print_campaign_result(result: dict) -> None:
    state = "complete" if result["complete"] else "interrupted"
    print(
        f"campaign {result['campaign_id']}: "
        f"{result['completed']}/{result['num_cells']} cells ({state})"
    )
    print(
        f"  executed {result['executed']}, skipped {result['skipped']} "
        f"already-done, failed {result['failed']}, "
        f"{result['wall_seconds']:.2f}s wall"
    )


def _execute_campaign(
    spec, directory: Path, workers: int, max_cells: int | None
) -> int:
    """Shared body of ``campaign run`` and ``campaign resume``."""
    from repro.campaign import ORCHESTRATOR_TRACE_NAME, CampaignRunner

    tracer = Tracer()
    runner = CampaignRunner(spec, directory, workers=workers, tracer=tracer)
    result = runner.run(max_cells=max_cells)
    # The orchestrator's own trace; ``events.jsonl`` is the cross-process
    # progress log the runner appends to while cells execute.
    write_jsonl(tracer, directory / ORCHESTRATOR_TRACE_NAME)
    _print_campaign_result(result)
    if result["complete"]:
        print(f"  result store: {runner.store.results_path}")
    else:
        print(
            f"  resume with: repro campaign resume {directory} "
            f"--workers {workers}"
        )
    return 1 if result["failed"] else 0


def _watch_event_line(record: dict, progress) -> str | None:
    """One log line per lifecycle event for non-tty watch output."""
    name = record.get("name")
    attrs = record.get("attributes") or {}
    key = attrs.get("cell_key", "")
    if name == "campaign.started":
        return (
            f"campaign {attrs.get('campaign_id', '?')}: "
            f"{attrs.get('num_cells', '?')} cells, "
            f"{attrs.get('pending', '?')} pending"
        )
    if name == "live.cell_started":
        return f"cell started  {key}"
    if name == "live.cell_finished":
        return (
            f"cell finished {key} "
            f"({progress.completed}/{progress.num_cells or '?'})"
        )
    if name == "live.cell_failed":
        return f"cell failed   {key}: {attrs.get('error', '')}"
    return None


def _watch_directory(
    directory: Path, interval: float, timeout: float | None
) -> int:
    """Tail a campaign directory's progress log until completion."""
    import time as _time

    from repro.campaign import campaign_status
    from repro.telemetry.live import EVENTS_NAME, LiveProgress, ProgressLog

    status = campaign_status(directory)
    progress = LiveProgress(num_cells=status["num_cells"])
    log = ProgressLog(directory / EVENTS_NAME)
    live = sys.stdout.isatty()
    deadline = _time.monotonic() + timeout if timeout is not None else None
    offset = 0
    observed_any = False
    while True:
        records, offset = log.read_from(offset)
        for record in records:
            if not progress.observe(record):
                continue
            observed_any = True
            if live:
                sys.stdout.write("\r\x1b[K" + progress.render_line())
                sys.stdout.flush()
            else:
                line = _watch_event_line(record, progress)
                if line is not None:
                    print(line)
        if progress.complete:
            break
        if not observed_any and status["complete"]:
            # Completed before the progress log existed: nothing to tail.
            progress.completed = int(status["completed"])
            progress.complete = True
            break
        if deadline is not None and _time.monotonic() >= deadline:
            if live:
                sys.stdout.write("\n")
            print(
                f"watch timed out after {timeout:g}s: "
                + progress.render_line()
            )
            return 1
        _time.sleep(max(0.05, interval))
    if live:
        sys.stdout.write("\n")
    print("watch: " + progress.render_line())
    return 1 if progress.failed else 0


def _watch_url(url: str, timeout: float | None) -> int:
    """Consume a serve ``/campaigns/<id>/live`` SSE stream until done."""
    import time as _time
    import urllib.error
    import urllib.request

    deadline = _time.monotonic() + timeout if timeout is not None else None
    request = urllib.request.Request(
        url, headers={"Accept": "text/event-stream"}
    )
    last: dict = {}
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            for raw in response:
                line = raw.decode("utf-8", "replace").rstrip("\r\n")
                if not line.startswith("data: "):
                    if deadline is not None and _time.monotonic() >= deadline:
                        print(f"watch timed out after {timeout:g}s")
                        return 1
                    continue
                payload = json.loads(line[len("data: "):])
                snapshot = (
                    payload.get("progress")
                    if isinstance(payload, dict) and "progress" in payload
                    else payload
                )
                if not isinstance(snapshot, dict):
                    continue
                last = snapshot
                completed = snapshot.get("completed", 0)
                total = snapshot.get("num_cells") or "?"
                print(f"progress: {completed}/{total} cells")
                if snapshot.get("complete"):
                    break
                if deadline is not None and _time.monotonic() >= deadline:
                    print(f"watch timed out after {timeout:g}s")
                    return 1
    except (urllib.error.URLError, OSError, json.JSONDecodeError) as exc:
        print(f"watch error: could not stream {url}: {exc}", file=sys.stderr)
        return 2
    if last.get("complete"):
        print("watch: complete")
        return 1 if last.get("failed") else 0
    print("watch: stream ended before completion")
    return 1


def _run_campaign_watch(
    target: str, interval: float, timeout: float | None
) -> int:
    """``repro campaign watch``: live progress for a directory or URL."""
    if target.startswith(("http://", "https://")):
        return _watch_url(target, timeout)
    return _watch_directory(Path(target), interval, timeout)


def _run_campaign(args) -> int:
    """Dispatch ``repro campaign run|status|resume|watch``; errors exit 2."""
    from repro.campaign import CampaignSpec, campaign_status
    from repro.util.errors import CampaignError

    try:
        if args.campaign_command == "run":
            spec = CampaignSpec.from_file(args.spec)
            return _execute_campaign(
                spec, Path(args.dir), args.workers, args.max_cells
            )
        if args.campaign_command == "resume":
            directory = Path(args.dir)
            spec = _load_campaign_spec_for_dir(directory)
            return _execute_campaign(
                spec, directory, args.workers, args.max_cells
            )
        if args.campaign_command == "status":
            status = campaign_status(Path(args.dir))
            state = "complete" if status["complete"] else "in progress"
            print(
                f"campaign {status['campaign_id']} ({status['name']}): "
                f"{status['completed']}/{status['num_cells']} cells, {state}"
            )
            print(
                f"  store records: {status['store_records']}"
                + (" (compacted)" if status["compacted"] else "")
            )
            if status.get("artifact_cells"):
                print(
                    f"  artifact bundles: {status['artifact_cells']} cells"
                )
            for key, error in sorted(status["failed"].items()):
                print(f"  failed {key}: {error}")
            return 1 if status["failed"] else 0
        if args.campaign_command == "watch":
            return _run_campaign_watch(
                args.target, args.interval, args.timeout
            )
    except CampaignError as exc:
        print(f"campaign error: {exc}", file=sys.stderr)
        return 2
    print(
        "usage: repro campaign {run,status,resume,watch} ...",
        file=sys.stderr,
    )
    return 2


def _run_serve(root: str, host: str, port: int) -> int:
    """Serve campaign directories over HTTP until interrupted."""
    import signal

    from repro.campaign import make_server
    from repro.util.errors import CampaignError

    try:
        server = make_server(root, host=host, port=port)
    except CampaignError as exc:
        print(f"serve error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:  # port in use, permission denied ...
        print(f"could not bind {host}:{port}: {exc}", file=sys.stderr)
        return 2

    def _terminate(signum, frame):
        raise SystemExit(0)

    signal.signal(signal.SIGTERM, _terminate)
    bound_port = server.server_address[1]
    ids = server.campaign_ids()
    print(f"serving {len(ids)} campaign(s) from {root} "
          f"on http://{host}:{bound_port}")
    for campaign_id in ids:
        print(f"  http://{host}:{bound_port}/campaigns/{campaign_id}/report")
    try:
        server.serve_forever(poll_interval=0.2)
    except (KeyboardInterrupt, SystemExit):
        pass
    finally:
        server.server_close()
    return 0


def _run_bench_diff(
    old: str, new: str, tolerance: float, fail_on_regression: bool,
    verbose: bool,
) -> int:
    for path in (old, new):
        if not Path(path).is_file():
            print(f"bench file not found: {path}", file=sys.stderr)
            return 2
    try:
        comparison = diff_bench_files(old, new, tolerance=tolerance)
    except ValueError as exc:  # malformed JSON
        print(f"could not parse bench file: {exc}", file=sys.stderr)
        return 2
    print(format_diff(comparison, verbose=verbose))
    if comparison.regressions and fail_on_regression:
        return 1
    return 0


def _print_learn_summary(summary: dict) -> None:
    cap = summary["capacity_model"]
    itm = summary["iter_model"]
    mig = summary["migration_model"]
    probe = summary["probe_model"]

    def _state(cold: bool) -> str:
        return "cold" if cold else "fitted"

    print(
        f"  iteration model:  {_state(itm['cold'])} "
        f"(n={itm['n']}, beta={itm['beta']:.4g}, "
        f"intercept={itm['intercept']:.4g})"
    )
    print(
        f"  migration model:  {_state(mig['cold'])} "
        f"(n={mig['n']}, mean={mig['mean_seconds']:.4g}s)"
    )
    print(
        f"  probe model:      {_state(probe['cold'])} "
        f"(n={probe['n']}, mean={probe['mean_seconds']:.4g}s)"
    )
    print(
        f"  capacity model:   {_state(cap['cold'])} "
        f"(window={cap['window_len']}, "
        f"drift_rate={cap['drift_rate']:.4g}/s)"
    )
    print(f"  sensing interval: {summary['sensing_interval']} its")


def _learn_fit(campaign: str, store_dir: str | None) -> int:
    """Ingest campaign artifacts into a history store and fit models."""
    from repro.learn import ExecutionHistoryStore, LearnController

    campaign_path = Path(campaign)
    if not (campaign_path / "artifacts").is_dir():
        print(
            f"no artifacts/ under {campaign_path}; run the campaign first",
            file=sys.stderr,
        )
        return 2
    directory = Path(store_dir) if store_dir else campaign_path / "learn"
    store = ExecutionHistoryStore(directory)
    added = store.ingest_artifacts(campaign_path)
    store.checkpoint()
    learn = LearnController(history=store)
    counts = learn.warm_start(store)
    print(
        f"history store {directory}: {len(store)} rows "
        f"({added} newly ingested from {campaign_path}/artifacts)"
    )
    print(
        "warm-started models from "
        + ", ".join(f"{v} {k}" for k, v in counts.items())
        + " rows:"
    )
    _print_learn_summary(learn.summary())
    return 0


def _learn_inspect(store_dir: str) -> int:
    """Print a history store's contents and the models it supports."""
    from repro.learn import ExecutionHistoryStore, LearnController

    directory = Path(store_dir)
    if not directory.is_dir():
        print(f"no history store at {directory}", file=sys.stderr)
        return 2
    store = ExecutionHistoryStore(directory)
    print(f"history store {directory}: {len(store)} rows")
    if len(store):
        keys = store.column("cell_key")
        for cell_key in store.sources():
            n = int((keys == cell_key).sum())
            print(f"  cell {cell_key}: {n} rows")
        print("  phases: " + ", ".join(store.phases()))
    learn = LearnController(history=None)
    learn.warm_start(store)
    _print_learn_summary(learn.summary())
    return 0


def _learn_replay(store_dir: str, iterations: int, seed: int) -> int:
    """Re-run the dynamic-load scenario with warm-started models.

    Runs the paper's fixed-f loop and the fully learned loop (adaptive
    sensing + payoff gate + transient forecasting), the latter seeded
    from the history store, and prints the wall-clock comparison.
    """
    from repro.cluster import Cluster
    from repro.kernels.workloads import paper_rm3d_trace
    from repro.learn import (
        ExecutionHistoryStore,
        LearnConfig,
        LearnController,
    )
    from repro.monitor.service import ResourceMonitor
    from repro.partition import ACEHeterogeneous
    from repro.runtime.engine import RuntimeConfig, SamrRuntime

    directory = Path(store_dir)
    if not directory.is_dir():
        print(f"no history store at {directory}", file=sys.stderr)
        return 2
    store = ExecutionHistoryStore(directory)

    regrid_interval = 7
    workload = paper_rm3d_trace(
        num_regrids=iterations // regrid_interval + 2
    )
    cal = SamrRuntime(
        workload,
        Cluster.paper_linux_cluster(8, seed=seed, dynamic=True,
                                    horizon_s=1e9),
        ACEHeterogeneous(),
        config=RuntimeConfig(
            iterations=iterations, regrid_interval=regrid_interval
        ),
    ).run()
    horizon = 0.8 * cal.total_seconds

    def run_once(learn: LearnController | None):
        cluster = Cluster.paper_linux_cluster(
            8, seed=seed, dynamic=True, horizon_s=horizon
        )
        return SamrRuntime(
            workload,
            cluster,
            ACEHeterogeneous(),
            monitor=ResourceMonitor(cluster),
            config=RuntimeConfig(
                iterations=iterations,
                regrid_interval=regrid_interval,
                sensing_interval=20,
            ),
            learn=learn,
        ).run()

    baseline = run_once(None)
    learn = LearnController(
        LearnConfig(
            adaptive_sensing=True, payoff_gate=True,
            transient_forecast=True,
        )
    )
    counts = learn.warm_start(store)
    replayed = run_once(learn)
    win = (
        (baseline.total_seconds - replayed.total_seconds)
        / baseline.total_seconds * 100.0
        if baseline.total_seconds
        else 0.0
    )
    print(
        f"replay on load-dynamics ({iterations} its, seed {seed}), "
        f"warm-started from {len(store)} history rows "
        f"({sum(counts.values())} replayed):"
    )
    print(
        f"  fixed f=20: {baseline.total_seconds:8.1f}s "
        f"({baseline.num_sensings} sensings)"
    )
    print(
        f"  learned:    {replayed.total_seconds:8.1f}s "
        f"({replayed.num_sensings} sensings, {win:+.1f}%)"
    )
    _print_learn_summary(learn.summary())
    return 0


def _run_learn(args) -> int:
    """Dispatch ``repro learn fit|inspect|replay``; errors exit 2."""
    from repro.util.errors import ExperimentError

    try:
        if args.learn_command == "fit":
            return _learn_fit(args.campaign, args.store)
        if args.learn_command == "inspect":
            return _learn_inspect(args.store)
        if args.learn_command == "replay":
            return _learn_replay(args.store, args.iterations, args.seed)
    except ExperimentError as exc:
        print(f"learn error: {exc}", file=sys.stderr)
        return 2
    print("usage: repro learn {fit,inspect,replay} ...", file=sys.stderr)
    return 2


def _fmt_audit_seconds(value) -> str:
    """Render a reconciled seconds value ('-' for absent, 'inf' kept)."""
    if value is None:
        return "-"
    return f"{value:.4g}"


def _explain_summary(report: dict) -> list[str]:
    gate = report["gate"]
    cal = report["calibration"]
    reg = report["regret"]
    lines = [
        f"{report['records']} ledger records: "
        + ", ".join(
            f"{kind}={count}"
            for kind, count in sorted(report["counts"].items())
        ),
        f"gate: {gate['decisions']} decisions, "
        f"{gate['accepts']} repartitions, {gate['skips']} skips "
        + "("
        + ", ".join(
            f"{reason}={count}"
            for reason, count in sorted(gate["reasons"].items())
        )
        + ")"
        if gate["decisions"]
        else "gate: no decisions recorded",
    ]
    if cal["predictions"]:
        lines.append(
            f"calibration: {cal['coverage']:.1%} of {cal['predictions']} "
            f"warm 95% CIs contained the truth (target "
            f"{cal['target']:.0%}; {cal['cold_predictions']} cold), "
            f"mean |err| {_fmt_audit_seconds(cal['mean_abs_error_seconds'])}s"
        )
    if reg["decisions"]:
        lines.append(
            f"regret: {reg['cumulative_regret_seconds']:.4g}s vs the "
            f"hindsight oracle ({reg['disagreements']}/{reg['decisions']} "
            f"decisions differ, agreement {reg['agreement_rate']:.1%})"
        )
    fc = report["forecast"]
    if fc["forecasts"]:
        lines.append(
            f"forecast: {fc['scored']}/{fc['forecasts']} capacity "
            "forecasts scored against the next probe, mean |err| "
            f"{_fmt_audit_seconds(fc['mean_abs_error'])}"
        )
    return lines


def _explain_decision(rows: list[dict], seq: int) -> int:
    """Reconstruct one gate decision bit-exactly; exit 1 on divergence."""
    from repro.learn.audit import verify_decision

    record = next(
        (r for r in rows if int(r.get("seq", -1)) == seq), None
    )
    if record is None:
        print(f"explain error: no record with seq {seq}", file=sys.stderr)
        return 2
    if record.get("kind") != "gate":
        print(
            f"decision {seq} is a {record.get('kind')!r} record:"
        )
        for key in sorted(record):
            print(f"  {key} = {record[key]}")
        return 0
    check = verify_decision(record)
    action = "repartition" if check["recorded"]["repartition"] else "skip"
    print(
        f"decision {seq} (iteration {record.get('iteration')}, "
        f"t={record.get('t')}): {action} [{check['recorded']['reason']}]"
    )
    print(
        f"  inputs: {len(record.get('loads', []))} nodes, "
        f"horizon {record['horizon_iters']} its, "
        f"beta={record.get('beta')}, "
        f"migration_seconds={record.get('migration_seconds')}, "
        f"gate_safety={record.get('gate_safety')}"
    )
    print(
        f"  prediction: payoff {record.get('payoff_seconds')}s "
        f"(95% CI [{record.get('payoff_lo_seconds')}, "
        f"{record.get('payoff_hi_seconds')}]) "
        f"vs cost {record.get('cost_seconds')}s"
    )
    print(
        f"  model digest: iter n={record.get('iter_n')} "
        f"slope={record.get('iter_slope')}, "
        f"migration n={record.get('migration_n')}"
    )
    if check["match"]:
        print("  replay: bit-exact (gate re-run from recorded inputs)")
        return 0
    print("  replay: DIVERGED on " + ", ".join(check["mismatches"]))
    for name in check["mismatches"]:
        print(
            f"    {name}: recorded {check['recorded'][name]!r} "
            f"vs replayed {check['replayed'][name]!r}"
        )
    return 1


def _run_explain(args) -> int:
    """Dispatch ``repro explain``; user errors exit 2, divergence 1."""
    from repro.learn.audit import (
        load_ledger_rows,
        reconcile,
        verify_decision,
    )
    from repro.util.errors import ExperimentError

    try:
        rows = load_ledger_rows(args.ledger)
    except ExperimentError as exc:
        print(f"explain error: {exc}", file=sys.stderr)
        return 2
    try:
        if args.decision is not None:
            return _explain_decision(rows, args.decision)
        report = reconcile(rows)
        if args.json:
            print(json.dumps(report, indent=2, sort_keys=True))
            return 0
        sections = []
        if args.calibration:
            sections.append("calibration")
        if args.regret:
            sections.append("regret")
        for line in _explain_summary(report):
            print(line)
        if "calibration" in sections:
            cal = report["calibration"]
            print("calibration detail:")
            for key in (
                "predictions",
                "cold_predictions",
                "covered",
                "coverage",
                "target",
                "mean_abs_error_seconds",
                "mean_signed_error_seconds",
            ):
                print(f"  {key} = {cal[key]}")
        if "regret" in sections:
            reg = report["regret"]
            print("regret detail (per gate decision):")
            print(
                f"  oracle beta={reg['oracle_beta']}, "
                f"oracle migration={reg['oracle_migration_seconds']}"
            )
            for row in reg["per_decision"]:
                mark = "agree" if row["agree"] else (
                    f"DIFFER regret={row['regret_seconds']:.4g}s"
                )
                print(
                    f"  seq {row['seq']:>4}: recorded="
                    f"{'repartition' if row['recorded'] else 'skip'} "
                    f"oracle="
                    f"{'repartition' if row['oracle'] else 'skip'} "
                    f"[{mark}]"
                )
        if args.verify:
            checks = [
                verify_decision(r) for r in rows if r.get("kind") == "gate"
            ]
            bad = [c for c in checks if not c["match"]]
            print(
                f"verify: {len(checks) - len(bad)}/{len(checks)} gate "
                "decisions replay bit-exactly"
            )
            if bad:
                for c in bad:
                    print(
                        f"  seq {c['seq']} diverged on "
                        + ", ".join(c["mismatches"])
                    )
                return 1
        return 0
    except ExperimentError as exc:
        print(f"explain error: {exc}", file=sys.stderr)
        return 2


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list available experiments")
    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id from 'list', or 'all'")
    run.add_argument(
        "--quick", action="store_true",
        help="smaller configuration (fewer seeds/iterations)",
    )
    run.add_argument(
        "--ledger", default=None, metavar="DIR",
        help="record decision provenance under DIR "
        "(ablation-learn only; audit with `repro explain`)",
    )
    trace = sub.add_parser(
        "trace",
        help="run one experiment instrumented; export trace + metrics",
    )
    trace.add_argument("experiment", help="experiment id from 'list'")
    trace.add_argument(
        "--quick", action="store_true",
        help="smaller configuration (fewer seeds/iterations)",
    )
    trace.add_argument(
        "--out-dir", default="traces",
        help="directory for trace artifacts (default: traces/)",
    )
    report = sub.add_parser(
        "report",
        help="run the health monitor; render a self-contained HTML "
        "dashboard (accepts an experiment id or a .events.jsonl trace)",
    )
    report.add_argument(
        "target",
        help="experiment id from 'list', or path to an exported "
        ".events.jsonl trace",
    )
    report.add_argument(
        "--quick", action="store_true",
        help="smaller configuration (fewer seeds/iterations)",
    )
    report.add_argument(
        "--out-dir", default="traces",
        help="directory for the dashboard (default: traces/)",
    )
    profile = sub.add_parser(
        "profile",
        help="critical-path analysis, comm matrices, flamegraphs and "
        "OpenMetrics (accepts an experiment id or a .events.jsonl trace)",
    )
    profile.add_argument(
        "target",
        help="experiment id from 'list', or path to an exported "
        ".events.jsonl trace",
    )
    profile.add_argument(
        "--quick", action="store_true",
        help="smaller configuration (fewer seeds/iterations)",
    )
    profile.add_argument(
        "--out-dir", default="traces",
        help="directory for profile artifacts (default: traces/)",
    )
    top = sub.add_parser(
        "top",
        help="run one experiment with a live per-phase/per-rank terminal "
        "view fed by the span-observer hook",
    )
    top.add_argument("experiment", help="experiment id from 'list'")
    top.add_argument(
        "--quick", action="store_true",
        help="smaller configuration (fewer seeds/iterations)",
    )
    top.add_argument(
        "--interval", type=int, default=5,
        help="refresh the view every N iterations (default: 5)",
    )
    chaos = sub.add_parser(
        "chaos",
        help="run a distributed AMR execution under fault injection; "
        "report time-to-recover and solution-integrity stats",
    )
    chaos.add_argument(
        "--nodes", type=int, default=8, help="cluster size (default: 8)"
    )
    chaos.add_argument(
        "--kill", type=int, default=2,
        help="nodes crashed mid-run and recovered later (default: 2)",
    )
    chaos.add_argument(
        "--steps", type=int, default=12,
        help="coarse AMR steps to execute (default: 12)",
    )
    chaos.add_argument(
        "--seed", type=int, default=7, help="fault-plan seed (default: 7)"
    )
    chaos.add_argument(
        "--checkpoint-interval", type=int, default=3,
        help="steps between checkpoints (default: 3)",
    )
    chaos.add_argument(
        "--out-dir", default="traces",
        help="directory for trace + dashboard artifacts (default: traces/)",
    )
    campaign = sub.add_parser(
        "campaign",
        help="run/resume/inspect a resumable experiment-campaign grid",
    )
    campaign_sub = campaign.add_subparsers(dest="campaign_command")
    crun = campaign_sub.add_parser(
        "run", help="execute a campaign spec (JSON grid) in a directory"
    )
    crun.add_argument("spec", help="path to a campaign spec JSON file")
    crun.add_argument(
        "--dir", required=True,
        help="campaign directory (result store + checkpoints)",
    )
    crun.add_argument(
        "--workers", type=int, default=1,
        help="worker processes to shard cells across (default: 1)",
    )
    crun.add_argument(
        "--max-cells", type=int, default=None,
        help="stop after N newly executed cells (deterministic interrupt)",
    )
    cresume = campaign_sub.add_parser(
        "resume",
        help="continue an interrupted campaign (zero cells re-executed)",
    )
    cresume.add_argument("dir", help="existing campaign directory")
    cresume.add_argument(
        "--workers", type=int, default=1,
        help="worker processes to shard cells across (default: 1)",
    )
    cresume.add_argument(
        "--max-cells", type=int, default=None,
        help="stop after N newly executed cells (deterministic interrupt)",
    )
    cstatus = campaign_sub.add_parser(
        "status", help="print a campaign directory's progress ledger"
    )
    cstatus.add_argument("dir", help="existing campaign directory")
    cwatch = campaign_sub.add_parser(
        "watch",
        help="tail a campaign's live progress (throughput, ETA) from its "
        "directory or a serve /campaigns/<id>/live SSE URL",
    )
    cwatch.add_argument(
        "target",
        help="campaign directory, or an http(s) URL of a serve live stream",
    )
    cwatch.add_argument(
        "--interval", type=float, default=0.5,
        help="poll interval in seconds for directory mode (default: 0.5)",
    )
    cwatch.add_argument(
        "--timeout", type=float, default=None,
        help="give up (exit 1) after this many seconds (default: no limit)",
    )
    serve = sub.add_parser(
        "serve",
        help="serve campaign directories over HTTP (status, cells, "
        "reports, dashboards) with ETag response caching",
    )
    serve.add_argument(
        "--root", default="campaigns",
        help="directory containing campaign directories (default: campaigns/)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    serve.add_argument(
        "--port", type=int, default=8765, help="bind port (default: 8765)"
    )
    learn = sub.add_parser(
        "learn",
        help="execution-history cost models: fit from campaign "
        "artifacts, inspect a store, replay with learned policies",
    )
    learn_sub = learn.add_subparsers(dest="learn_command")
    lfit = learn_sub.add_parser(
        "fit",
        help="ingest a campaign's artifacts/ into a history store and "
        "fit the cost models",
    )
    lfit.add_argument(
        "campaign", help="campaign directory with artifacts/<cell>/"
    )
    lfit.add_argument(
        "--store", default=None,
        help="history store directory (default: <campaign>/learn)",
    )
    linspect = learn_sub.add_parser(
        "inspect", help="print a history store's rows and model fits"
    )
    linspect.add_argument("store", help="history store directory")
    lreplay = learn_sub.add_parser(
        "replay",
        help="run the dynamic-load scenario with models warm-started "
        "from a history store, vs the fixed-f baseline",
    )
    lreplay.add_argument("store", help="history store directory")
    lreplay.add_argument(
        "--iterations", type=int, default=60,
        help="AMR iterations per run (default: 60)",
    )
    lreplay.add_argument(
        "--seed", type=int, default=11,
        help="cluster/load-script seed (default: 11)",
    )
    explain = sub.add_parser(
        "explain",
        help="audit a decision ledger: reconstruct decisions, score "
        "CI calibration, price regret vs the hindsight oracle",
    )
    explain.add_argument(
        "ledger",
        help="decision-ledger directory (or its decisions.jsonl)",
    )
    explain.add_argument(
        "--decision", type=int, default=None, metavar="SEQ",
        help="reconstruct one decision bit-exactly from its recorded "
        "inputs (exit 1 on divergence)",
    )
    explain.add_argument(
        "--calibration", action="store_true",
        help="print the CI-coverage calibration detail",
    )
    explain.add_argument(
        "--regret", action="store_true",
        help="print the per-decision oracle-replay regret detail",
    )
    explain.add_argument(
        "--verify", action="store_true",
        help="replay every gate decision; exit 1 if any diverges",
    )
    explain.add_argument(
        "--json", action="store_true",
        help="emit the full reconciliation report as JSON",
    )
    bench = sub.add_parser(
        "bench-diff",
        help="compare two BENCH_*.json artifacts; flag perf regressions",
    )
    bench.add_argument("old", help="baseline BENCH_*.json")
    bench.add_argument("new", help="fresh BENCH_*.json to compare")
    bench.add_argument(
        "--tolerance", type=float, default=0.2,
        help="relative wall-clock slowdown treated as a regression "
        "(default: 0.2)",
    )
    bench.add_argument(
        "--fail-on-regression", action="store_true",
        help="exit 1 when regressions are found (CI gate mode)",
    )
    bench.add_argument(
        "--verbose", action="store_true",
        help="also list added/removed metrics",
    )
    args = parser.parse_args(argv)

    if args.command == "list" or args.command is None:
        print("available experiments:")
        for key, (desc, _) in EXPERIMENTS.items():
            print(f"  {key:>22}  {desc}")
        print("  {:>22}  {}".format("all", "run everything"))
        return 0

    if args.command == "run":
        if args.experiment == "all":
            seen = set()
            for key, (_, fn) in EXPERIMENTS.items():
                if fn in seen:
                    continue
                seen.add(fn)
                print(f"==> {key}")
                print(fn(args.quick))
                print()
            return 0
        fn = _lookup_experiment(args.experiment)
        if fn is None:
            return 2
        if args.ledger is not None:
            if fn is not _run_ablation_learn:
                print(
                    "repro run: --ledger only applies to ablation-learn",
                    file=sys.stderr,
                )
                return 2
            print(_run_ablation_learn(args.quick, args.ledger))
            return 0
        print(fn(args.quick))
        return 0

    if args.command == "trace":
        return _run_traced(args.experiment, args.quick, args.out_dir)
    if args.command == "report":
        return _run_report(args.target, args.quick, args.out_dir)
    if args.command == "profile":
        return _run_profile(args.target, args.quick, args.out_dir)
    if args.command == "top":
        return _run_top(args.experiment, args.quick, args.interval)
    if args.command == "chaos":
        return _run_chaos(
            args.nodes, args.kill, args.steps, args.seed,
            args.checkpoint_interval, args.out_dir,
        )
    if args.command == "campaign":
        return _run_campaign(args)
    if args.command == "serve":
        return _run_serve(args.root, args.host, args.port)
    if args.command == "learn":
        return _run_learn(args)
    if args.command == "explain":
        return _run_explain(args)
    if args.command == "bench-diff":
        return _run_bench_diff(
            args.old, args.new, args.tolerance, args.fail_on_regression,
            args.verbose,
        )
    return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
