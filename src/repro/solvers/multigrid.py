"""Geometric multigrid for the Poisson problem.

Solves ``-laplace(u) = f`` on a uniform cell-centered grid with
homogeneous Dirichlet boundaries, via V-cycles:

- **smoother**: red-black Gauss-Seidel (vectorized checkerboard sweeps);
- **restriction**: full weighting = 2^d-block averaging of the residual
  (the cell-centered adjoint of injection);
- **prolongation**: piecewise-constant injection of the coarse correction;
- **coarsest grid**: smoothed to convergence.

Dirichlet faces are realized through mirror ghosts (``u_ghost = -u_edge``
puts the zero exactly on the cell face).  Works in 1, 2 and 3 dimensions.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import ReproError

__all__ = ["PoissonMultigrid"]


class MultigridError(ReproError):
    """Invalid multigrid configuration or inputs."""


def _pad_dirichlet(u: np.ndarray) -> np.ndarray:
    """Ghost frame implementing u = 0 on every cell face of the boundary."""
    up = np.pad(u, 1, mode="edge")
    for axis in range(u.ndim):
        lo = [slice(None)] * u.ndim
        hi = [slice(None)] * u.ndim
        lo[axis] = slice(0, 1)
        hi[axis] = slice(-1, None)
        up[tuple(lo)] = -up[tuple(lo)]
        up[tuple(hi)] = -up[tuple(hi)]
    return up


def _neighbor_sum(up: np.ndarray) -> np.ndarray:
    """Sum of face neighbours of every interior cell of a padded array."""
    ndim = up.ndim
    core = tuple(slice(1, -1) for _ in range(ndim))
    out = np.zeros(tuple(s - 2 for s in up.shape))
    for axis in range(ndim):
        lo = list(core)
        hi = list(core)
        lo[axis] = slice(0, -2)
        hi[axis] = slice(2, None)
        out += up[tuple(lo)] + up[tuple(hi)]
    return out


class PoissonMultigrid:
    """V-cycle multigrid solver for ``-laplace(u) = f``, u = 0 on the boundary.

    Parameters
    ----------
    shape:
        Grid shape; every extent must be even at each coarsening step down
        to the coarsest level (powers of two are ideal).
    dx:
        Cell width on the finest grid.
    pre_sweeps / post_sweeps:
        Red-black Gauss-Seidel sweeps before/after the coarse-grid visit.
    coarse_sweeps:
        Smoothing sweeps used as the coarsest-level "direct" solve.
    min_coarse:
        Stop coarsening once any extent would drop below this.
    """

    def __init__(
        self,
        shape: tuple[int, ...],
        dx: float = 1.0,
        pre_sweeps: int = 2,
        post_sweeps: int = 2,
        coarse_sweeps: int = 60,
        min_coarse: int = 2,
    ):
        shape = tuple(int(s) for s in shape)
        if not shape or any(s < 2 for s in shape):
            raise MultigridError(f"invalid grid shape {shape}")
        if len(shape) not in (1, 2, 3):
            raise MultigridError("1-3 dimensions supported")
        if dx <= 0:
            raise MultigridError(f"dx must be > 0, got {dx}")
        if min(pre_sweeps, post_sweeps) < 0 or coarse_sweeps < 1:
            raise MultigridError("invalid sweep counts")
        self.shape = shape
        self.dx = float(dx)
        self.pre_sweeps = pre_sweeps
        self.post_sweeps = post_sweeps
        self.coarse_sweeps = coarse_sweeps
        self.min_coarse = max(2, min_coarse)
        # Precompute the level shapes.
        self.level_shapes = [shape]
        s = shape
        while all(x % 2 == 0 and x // 2 >= self.min_coarse for x in s):
            s = tuple(x // 2 for x in s)
            self.level_shapes.append(s)
        self._colors = self._checkerboards()

    def _checkerboards(self) -> list[tuple[np.ndarray, np.ndarray]]:
        out = []
        for s in self.level_shapes:
            grids = np.indices(s).sum(axis=0)
            out.append((grids % 2 == 0, grids % 2 == 1))
        return out

    @property
    def num_levels(self) -> int:
        return len(self.level_shapes)

    # ------------------------------------------------------------------
    def smooth(
        self, u: np.ndarray, f: np.ndarray, h: float, sweeps: int, level: int
    ) -> np.ndarray:
        """Red-black Gauss-Seidel sweeps in place; returns ``u``."""
        diag = 2.0 * u.ndim
        h2 = h * h
        for _ in range(sweeps):
            for color in self._colors[level]:
                nbr = _neighbor_sum(_pad_dirichlet(u))
                u[color] = (nbr[color] + h2 * f[color]) / diag
        return u

    def residual(self, u: np.ndarray, f: np.ndarray, h: float) -> np.ndarray:
        """r = f + laplace(u) (for -laplace(u) = f)."""
        nbr = _neighbor_sum(_pad_dirichlet(u))
        lap = (nbr - 2.0 * u.ndim * u) / (h * h)
        return f + lap

    @staticmethod
    def _restrict(r: np.ndarray) -> np.ndarray:
        """Full weighting: 2^d block average."""
        ndim = r.ndim
        out = np.zeros(tuple(s // 2 for s in r.shape))
        import itertools

        for offs in itertools.product(range(2), repeat=ndim):
            sl = tuple(slice(o, None, 2) for o in offs)
            out += r[sl]
        return out / 2**ndim

    @staticmethod
    def _prolong(e: np.ndarray) -> np.ndarray:
        """Piecewise-constant injection of the coarse correction."""
        out = e
        for axis in range(e.ndim):
            out = np.repeat(out, 2, axis=axis)
        return out

    # ------------------------------------------------------------------
    def _vcycle(self, u: np.ndarray, f: np.ndarray, h: float, level: int) -> np.ndarray:
        if level == self.num_levels - 1:
            return self.smooth(u, f, h, self.coarse_sweeps, level)
        self.smooth(u, f, h, self.pre_sweeps, level)
        r = self.residual(u, f, h)
        rc = self._restrict(r)
        ec = np.zeros_like(rc)
        ec = self._vcycle(ec, rc, 2 * h, level + 1)
        u += self._prolong(ec)
        self.smooth(u, f, h, self.post_sweeps, level)
        return u

    def solve(
        self,
        f: np.ndarray,
        tol: float = 1e-8,
        max_cycles: int = 60,
        u0: np.ndarray | None = None,
    ) -> tuple[np.ndarray, dict]:
        """V-cycle iterate until the relative residual drops below ``tol``.

        Returns ``(u, info)``; ``info['residuals']`` is the 2-norm history
        (one entry per cycle, starting with the initial residual) and
        ``info['converged']`` the tolerance verdict.
        """
        f = np.asarray(f, dtype=float)
        if f.shape != self.shape:
            raise MultigridError(
                f"rhs shape {f.shape} != solver shape {self.shape}"
            )
        u = np.zeros_like(f) if u0 is None else u0.astype(float).copy()
        if u.shape != f.shape:
            raise MultigridError("initial guess shape mismatch")
        f_norm = float(np.linalg.norm(f))
        scale = f_norm if f_norm > 0 else 1.0
        residuals = [float(np.linalg.norm(self.residual(u, f, self.dx)))]
        for _ in range(max_cycles):
            if residuals[-1] / scale <= tol:
                break
            u = self._vcycle(u, f, self.dx, 0)
            residuals.append(
                float(np.linalg.norm(self.residual(u, f, self.dx)))
            )
        return u, {
            "residuals": residuals,
            "cycles": len(residuals) - 1,
            "converged": residuals[-1] / scale <= tol,
        }
