"""Local Defect Correction: a composite-grid Poisson solver.

The elliptic analogue of what the AMR substrate does for hyperbolic
kernels: solve ``-laplace(u) = f`` accurately *inside a refined patch*
without refining the whole domain.  The classic LDC iteration
(Hackbusch 1984):

1. **Coarse solve** on the whole domain (multigrid), with a defect
   correction added to the right-hand side under the patch (zero on the
   first pass);
2. **Fine solve** on the patch, Dirichlet boundary values interpolated
   from the current coarse solution at the patch interface;
3. **Defect update**: restrict the fine solution onto the coarse cells
   under the patch and replace the coarse right-hand side there with the
   coarse operator applied to the restricted solution -- making the
   restricted fine solution a fixed point of the coarse problem;
4. repeat until the composite solution stops changing.

Both subproblems are solved with :class:`~repro.solvers.multigrid.
PoissonMultigrid`; inhomogeneous Dirichlet data enters through the
standard ghost-elimination right-hand-side correction (``+2g/h^2`` on
boundary-adjacent cells).
"""

from __future__ import annotations

import numpy as np

from repro.solvers.multigrid import MultigridError, PoissonMultigrid, _neighbor_sum, _pad_dirichlet
from repro.util.geometry import Box

__all__ = ["LocalDefectCorrection"]


def _boundary_rhs(shape: tuple[int, ...], g: dict, h: float) -> np.ndarray:
    """RHS correction encoding inhomogeneous Dirichlet face values.

    ``g[(axis, side)]`` is the boundary-value array on that face (side 0 =
    low, 1 = high), shaped like the grid with that axis dropped.
    """
    rhs = np.zeros(shape)
    for (axis, side), values in g.items():
        idx = [slice(None)] * len(shape)
        idx[axis] = 0 if side == 0 else -1
        rhs[tuple(idx)] += 2.0 * np.asarray(values) / (h * h)
    return rhs


class LocalDefectCorrection:
    """Two-level composite Poisson solve: coarse domain + one fine patch.

    Parameters
    ----------
    coarse_shape:
        Cell counts of the global coarse grid.
    patch:
        The refined region, as a level-0 :class:`Box` in coarse cells;
        must lie strictly inside the domain (the physical boundary stays
        coarse, keeping the interface handling uniform).
    dx:
        Coarse cell width.
    factor:
        Refinement ratio of the patch grid.
    """

    def __init__(
        self,
        coarse_shape: tuple[int, ...],
        patch: Box,
        dx: float = 1.0,
        factor: int = 2,
    ):
        self.coarse_shape = tuple(int(s) for s in coarse_shape)
        ndim = len(self.coarse_shape)
        if patch.ndim != ndim:
            raise MultigridError("patch dimensionality mismatch")
        domain = Box((0,) * ndim, self.coarse_shape)
        if not domain.contains_box(patch):
            raise MultigridError(f"patch {patch} outside domain {domain}")
        if any(
            l <= 0 or u >= s
            for l, u, s in zip(patch.lower, patch.upper, self.coarse_shape)
        ):
            raise MultigridError(
                "patch must not touch the physical boundary"
            )
        if factor < 2:
            raise MultigridError(f"factor must be >= 2, got {factor}")
        self.patch = patch
        self.dx = float(dx)
        self.factor = factor
        self.fine_shape = tuple(s * factor for s in patch.shape)
        self.fine_dx = self.dx / factor
        self._coarse_mg = PoissonMultigrid(self.coarse_shape, dx=self.dx)
        self._fine_mg = PoissonMultigrid(self.fine_shape, dx=self.fine_dx)

    # ------------------------------------------------------------------
    def _interface_values(self, u_coarse: np.ndarray) -> dict:
        """Dirichlet data for the fine patch faces, interpolated from the
        coarse solution: the face value is the average of the coarse cells
        on either side of the interface, repeated onto fine face cells."""
        g: dict = {}
        ndim = u_coarse.ndim
        for axis in range(ndim):
            for side in (0, 1):
                # Coarse cells just inside / outside the patch face.
                sel_in = list(
                    slice(l, u) for l, u in zip(self.patch.lower, self.patch.upper)
                )
                sel_out = list(sel_in)
                if side == 0:
                    sel_in[axis] = slice(
                        self.patch.lower[axis], self.patch.lower[axis] + 1
                    )
                    sel_out[axis] = slice(
                        self.patch.lower[axis] - 1, self.patch.lower[axis]
                    )
                else:
                    sel_in[axis] = slice(
                        self.patch.upper[axis] - 1, self.patch.upper[axis]
                    )
                    sel_out[axis] = slice(
                        self.patch.upper[axis], self.patch.upper[axis] + 1
                    )
                face = 0.5 * (
                    u_coarse[tuple(sel_in)] + u_coarse[tuple(sel_out)]
                )
                face = np.squeeze(face, axis=axis)
                for ax2 in range(ndim - 1):
                    face = np.repeat(face, self.factor, axis=ax2)
                g[(axis, side)] = face
        return g

    def _coarse_operator(self, u: np.ndarray) -> np.ndarray:
        """-laplace(u) with homogeneous Dirichlet ghosts."""
        nbr = _neighbor_sum(_pad_dirichlet(u))
        return (2.0 * u.ndim * u - nbr) / (self.dx * self.dx)

    @staticmethod
    def _restrict(fine: np.ndarray, factor: int) -> np.ndarray:
        import itertools

        out = np.zeros(tuple(s // factor for s in fine.shape))
        for offs in itertools.product(range(factor), repeat=fine.ndim):
            sl = tuple(slice(o, None, factor) for o in offs)
            out += fine[sl]
        return out / factor**fine.ndim

    # ------------------------------------------------------------------
    def solve(
        self,
        f_coarse: np.ndarray,
        f_fine: np.ndarray,
        iterations: int = 6,
        mg_tol: float = 1e-10,
    ) -> tuple[np.ndarray, np.ndarray, dict]:
        """Run the LDC iteration.

        Parameters
        ----------
        f_coarse / f_fine:
            Right-hand sides sampled on the coarse grid and the fine patch.

        Returns
        -------
        (u_coarse, u_fine, info)
            The composite solution (coarse grid with the patch region
            consistent with the fine solve, and the fine patch itself);
            ``info['changes']`` records the composite update magnitude per
            LDC iteration (should contract).
        """
        f_coarse = np.asarray(f_coarse, dtype=float)
        f_fine = np.asarray(f_fine, dtype=float)
        if f_coarse.shape != self.coarse_shape:
            raise MultigridError("f_coarse shape mismatch")
        if f_fine.shape != self.fine_shape:
            raise MultigridError("f_fine shape mismatch")

        patch_sl = tuple(
            slice(l, u) for l, u in zip(self.patch.lower, self.patch.upper)
        )
        rhs = f_coarse.copy()
        u_coarse, _ = self._coarse_mg.solve(rhs, tol=mg_tol)
        u_fine = np.zeros(self.fine_shape)
        changes: list[float] = []
        for _ in range(iterations):
            # Fine solve with interface Dirichlet data from the coarse grid.
            g = self._interface_values(u_coarse)
            fine_rhs = f_fine + _boundary_rhs(self.fine_shape, g, self.fine_dx)
            new_fine, _ = self._fine_mg.solve(
                fine_rhs, tol=mg_tol, u0=u_fine
            )
            changes.append(float(np.abs(new_fine - u_fine).max()))
            u_fine = new_fine
            # Defect correction: make the restricted fine solution a fixed
            # point of the coarse equations under the patch.
            restricted = self._restrict(u_fine, self.factor)
            u_candidate = u_coarse.copy()
            u_candidate[patch_sl] = restricted
            defect_rhs = f_coarse.copy()
            defect_rhs[patch_sl] = self._coarse_operator(u_candidate)[patch_sl]
            u_coarse, _ = self._coarse_mg.solve(
                defect_rhs, tol=mg_tol, u0=u_candidate
            )
        return u_coarse, u_fine, {"changes": changes}
