"""Multigrid solvers.

GrACE is "an object-oriented toolkit for the development of parallel and
distributed applications based on a family of adaptive mesh-refinement and
*multigrid* techniques" -- the second method family its data-management
substrate was built to serve.  This package supplies it:

- :mod:`repro.solvers.multigrid` -- geometric multigrid for the Poisson
  problem on uniform grids (V-cycles, red-black Gauss-Seidel smoothing,
  full-weighting restriction), the building-block elliptic solve that
  implicit SAMR applications (projection steps, self-gravity) perform on
  every level;
- :mod:`repro.solvers.ldc` -- Local Defect Correction, the composite-grid
  coupling: a refined patch embedded in the coarse domain, iterated to a
  consistent two-level solution -- the elliptic counterpart of the
  hyperbolic AMR substrate.
"""

from repro.solvers.ldc import LocalDefectCorrection
from repro.solvers.multigrid import PoissonMultigrid

__all__ = ["PoissonMultigrid", "LocalDefectCorrection"]
